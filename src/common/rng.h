// Deterministic random number generation.
//
// Benchmarks and the workload generator need reproducible streams that can
// be split per thread without correlation; we use SplitMix64 for seeding
// and xoshiro256** as the workhorse generator.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace rlscommon {

/// SplitMix64 step; good for turning an arbitrary seed into well-mixed
/// 64-bit values (used to seed xoshiro streams).
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  result_type operator()() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Creates an independent stream for worker `index` (seeds are decorrelated
  /// through SplitMix64).
  Xoshiro256 Split(uint64_t index) const {
    uint64_t sm = s_[0] ^ (index * 0x9e3779b97f4a7c15ULL) ^ s_[3];
    return Xoshiro256(SplitMix64(sm));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// Random lowercase identifier of `length` chars (for name corpora).
std::string RandomIdentifier(Xoshiro256& rng, std::size_t length);

}  // namespace rlscommon
