#include "common/stats.h"

#include <cstdio>

namespace rlscommon {

Summary Summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  auto rank = [&](double p) {
    std::size_t idx = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(samples.size()))) ;
    if (idx == 0) idx = 1;
    if (idx > samples.size()) idx = samples.size();
    return samples[idx - 1];
  };
  s.p50 = rank(0.50);
  s.p95 = rank(0.95);
  return s;
}

void TrialStats::AddTrial(std::size_t operations, double seconds) {
  seconds_.push_back(seconds);
  rates_.push_back(seconds > 0 ? static_cast<double>(operations) / seconds : 0.0);
}

double TrialStats::MeanRate() const {
  if (rates_.empty()) return 0.0;
  double sum = 0.0;
  for (double r : rates_) sum += r;
  return sum / static_cast<double>(rates_.size());
}

double TrialStats::MeanSeconds() const {
  if (seconds_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : seconds_) sum += s;
  return sum / static_cast<double>(seconds_.size());
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 3) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[unit]);
  return buf;
}

}  // namespace rlscommon
