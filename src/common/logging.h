// Minimal thread-safe leveled logger.
//
// Benchmarks run with logging at WARN so log I/O never perturbs measured
// rates; tests can raise the level to DEBUG per fixture.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>

namespace rlscommon {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Small dense per-thread id — what log lines print as "tid N" and what
/// the span recorder stores, so a trace's spans line up with the log.
uint32_t DenseThreadId();

/// Token-bucket limiter for one log site. `per_second` tokens refill
/// continuously up to `burst`; each allowed event consumes one. Events
/// arriving with an empty bucket are counted, and the count of
/// suppressed events is handed to the next allowed one so the reader
/// knows lines went missing. Thread-safe; intended to be a function-local
/// static at the log site (one bucket per site).
class LogRateLimiter {
 public:
  LogRateLimiter(double per_second, double burst)
      : per_second_(per_second > 0 ? per_second : 1),
        burst_(burst >= 1 ? burst : 1),
        tokens_(burst_) {}

  /// True if this event may log. On true, *suppressed receives how many
  /// events were dropped since the previous allowed one.
  bool Allow(uint64_t* suppressed = nullptr);

  /// Clock-injected form for tests; `now_us` must be monotonic.
  bool AllowAt(int64_t now_us, uint64_t* suppressed = nullptr);

  uint64_t total_suppressed() const {
    return total_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  const double per_second_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  int64_t last_us_ = 0;
  bool primed_ = false;
  uint64_t pending_suppressed_ = 0;
  std::atomic<uint64_t> total_suppressed_{0};
};

/// Emits one formatted line to stderr:
///   [<monotonic seconds>] [level] [component] [tid N] message [trace=<id>]
/// The trace field appears when the calling thread has a trace context
/// installed (common/trace_context.h). Thread-safe; a single line is
/// never interleaved with another.
void LogLine(LogLevel level, std::string_view component, std::string_view message);

namespace internal {

/// Stream-style log statement builder; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() { LogLine(level_, component_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

/// LogMessage wrapper that appends a "(rate-limited: N suppressed)"
/// trailer when the site's bucket dropped events before this one.
class RateLimitedLogMessage {
 public:
  RateLimitedLogMessage(LogLevel level, std::string_view component,
                        uint64_t suppressed)
      : msg_(level, component), suppressed_(suppressed) {}
  ~RateLimitedLogMessage() {
    if (suppressed_ > 0) {
      msg_ << " (rate-limited: " << suppressed_ << " similar suppressed)";
    }
  }

  RateLimitedLogMessage(const RateLimitedLogMessage&) = delete;
  RateLimitedLogMessage& operator=(const RateLimitedLogMessage&) = delete;

  template <typename T>
  RateLimitedLogMessage& operator<<(const T& value) {
    msg_ << value;
    return *this;
  }

 private:
  LogMessage msg_;
  uint64_t suppressed_;
};

}  // namespace internal
}  // namespace rlscommon

#define RLS_LOG_ENABLED(level) \
  (static_cast<int>(level) >= static_cast<int>(::rlscommon::GetLogLevel()))

#define RLS_LOG(level, component)                       \
  if (!RLS_LOG_ENABLED(level)) {                        \
  } else                                                \
    ::rlscommon::internal::LogMessage(level, component)

// Rate-limited log statement. `limiter` is a LogRateLimiter lvalue —
// typically a function-local static, giving the site its own bucket:
//   static rlscommon::LogRateLimiter limiter(10, 20);
//   RLS_LOG_RATELIMITED(rlscommon::LogLevel::kWarn, "obs", limiter) << ...;
// Suppressed events are counted and reported on the next allowed line.
#define RLS_LOG_RATELIMITED(level, component, limiter)                      \
  if (uint64_t rls_suppressed_ = 0;                                         \
      !RLS_LOG_ENABLED(level) || !(limiter).Allow(&rls_suppressed_)) {      \
  } else                                                                    \
    ::rlscommon::internal::RateLimitedLogMessage(level, component,          \
                                                 rls_suppressed_)

#define RLS_WARN_RATELIMITED(component, limiter) \
  RLS_LOG_RATELIMITED(::rlscommon::LogLevel::kWarn, component, limiter)

#define RLS_DEBUG(component) RLS_LOG(::rlscommon::LogLevel::kDebug, component)
#define RLS_INFO(component) RLS_LOG(::rlscommon::LogLevel::kInfo, component)
#define RLS_WARN(component) RLS_LOG(::rlscommon::LogLevel::kWarn, component)
#define RLS_ERROR(component) RLS_LOG(::rlscommon::LogLevel::kError, component)
