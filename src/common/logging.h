// Minimal thread-safe leveled logger.
//
// Benchmarks run with logging at WARN so log I/O never perturbs measured
// rates; tests can raise the level to DEBUG per fixture.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace rlscommon {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted line to stderr:
///   [<monotonic seconds>] [level] [component] [tid N] message [trace=<id>]
/// The trace field appears when the calling thread has a trace context
/// installed (common/trace_context.h). Thread-safe; a single line is
/// never interleaved with another.
void LogLine(LogLevel level, std::string_view component, std::string_view message);

namespace internal {

/// Stream-style log statement builder; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() { LogLine(level_, component_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rlscommon

#define RLS_LOG_ENABLED(level) \
  (static_cast<int>(level) >= static_cast<int>(::rlscommon::GetLogLevel()))

#define RLS_LOG(level, component)                       \
  if (!RLS_LOG_ENABLED(level)) {                        \
  } else                                                \
    ::rlscommon::internal::LogMessage(level, component)

#define RLS_DEBUG(component) RLS_LOG(::rlscommon::LogLevel::kDebug, component)
#define RLS_INFO(component) RLS_LOG(::rlscommon::LogLevel::kInfo, component)
#define RLS_WARN(component) RLS_LOG(::rlscommon::LogLevel::kWarn, component)
#define RLS_ERROR(component) RLS_LOG(::rlscommon::LogLevel::kError, component)
