// Key=value configuration, mirroring the original RLS server's
// globus-rls-server configuration file (lrc_server true, rli_server true,
// acl entries, update intervals, ...).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace rlscommon {

/// Ordered key/value configuration. Keys may repeat (e.g. multiple `acl`
/// lines); GetAll returns every value in file order.
class Config {
 public:
  Config() = default;

  /// Parses "key value" / "key: value" / "key=value" lines. '#' starts a
  /// comment. Returns InvalidArgument on malformed input.
  static Status ParseString(std::string_view text, Config* out);

  /// Loads a configuration file from disk.
  static Status ParseFile(const std::string& path, Config* out);

  void Set(const std::string& key, const std::string& value);

  std::optional<std::string> Get(const std::string& key) const;
  std::vector<std::string> GetAll(const std::string& key) const;

  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  bool Has(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace rlscommon
