// Workload generation: logical and physical file name corpora.
//
// The paper's experiments preload LRCs with N {logical name -> physical
// name} mappings and then drive add/delete/query mixes against them (§4).
// NameGenerator produces names shaped like the deployments in §6
// (LIGO-style frame files, ESG datasets, Pegasus workflow products) so
// examples and benches exercise realistic key distributions and sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rlscommon {

/// Deterministic generator of logical/physical name pairs.
///
/// Logical name i is stable for a given (prefix, i); physical names embed
/// a site name so one LFN can have replicas at many sites, matching the
/// LIGO deployment's 3M LFN -> 30M PFN ratio.
class NameGenerator {
 public:
  /// `prefix` namespaces the corpus (so distinct LRCs hold distinct names
  /// unless they intentionally share), `seed` drives site selection.
  explicit NameGenerator(std::string prefix = "lfn", uint64_t seed = 42);

  /// Stable logical file name for index `i`, e.g.
  /// "lfn://ligo.org/frames/H-R-7043/lfn-0000001234.gwf".
  std::string LogicalName(uint64_t i) const;

  /// Physical replica name for LFN `i` at replica `replica`, e.g.
  /// "gsiftp://storage3.site.edu/data/7043/pfn-0000001234.0".
  std::string PhysicalName(uint64_t i, uint32_t replica = 0) const;

  /// Batch helper: names for [begin, end).
  std::vector<std::string> LogicalNames(uint64_t begin, uint64_t end) const;

  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
  uint64_t seed_;
  std::vector<std::string> sites_;
};

/// Operation mix for load generation.
enum class OpKind { kAdd, kDelete, kQuery };

/// One generated client operation.
struct Op {
  OpKind kind;
  uint64_t index;  // which LFN it targets
};

/// Generates a deterministic stream of operations over an index space
/// [0, universe): queries hit existing entries; adds/deletes cycle through
/// a scratch range so database size stays constant across trials, matching
/// the paper's methodology ("mappings added in each trial are deleted
/// before subsequent trials").
class OpStream {
 public:
  OpStream(uint64_t universe, double query_fraction, double add_fraction,
           uint64_t seed);

  Op Next();

 private:
  uint64_t universe_;
  double query_fraction_;
  double add_fraction_;
  Xoshiro256 rng_;
  uint64_t scratch_cursor_ = 0;
};

/// Zipf-distributed index sampler over [0, n): rank r is drawn with
/// probability proportional to 1/(r+1)^exponent. Real replica catalogs
/// are sharply skewed (a few hot datasets absorb most queries — the LIGO
/// and ESG deployments of §6), which is exactly the shape that defeats
/// per-entry caching and drives overload hot spots. Sampling inverts a
/// precomputed CDF by binary search: O(log n) per draw, deterministic
/// for a given seed.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double exponent, uint64_t seed);

  /// Next sampled index in [0, n).
  uint64_t Next();

 private:
  std::vector<double> cdf_;
  Xoshiro256 rng_;
};

/// Parameters of an overload storm: a fleet of misbehaving clients
/// hammering a server far past capacity while the catalog churns.
struct StormConfig {
  uint64_t universe = 1000;       // preloaded LFN index space
  double zipf_exponent = 0.99;    // query-popularity skew
  double query_fraction = 0.70;   // of non-burst ops
  double add_fraction = 0.15;     // remainder deletes
  double burst_probability = 0.02;  // chance a step starts an add burst
  uint32_t burst_length = 32;     // ops per add/delete burst
  double churn_probability = 0.0; // chance a step asks to reconnect
  uint64_t seed = 42;
};

/// One step of a storm client: the operation to issue, whether the
/// client should drop and re-establish its connection first (churn),
/// and whether the op belongs to a burst (metrics/debugging).
struct StormAction {
  Op op;
  bool reconnect = false;
  bool in_burst = false;
};

/// Deterministic per-client storm stream. Queries follow the Zipf
/// popularity law; add/delete bursts write a scratch range above the
/// universe and then delete it, so catalog size stays stable across the
/// storm (the paper's add-then-delete methodology, in burst form).
/// Distinct `client_id`s derive distinct streams from one config.
class StormStream {
 public:
  StormStream(const StormConfig& config, uint64_t client_id);

  StormAction Next();

 private:
  /// Start of this client's scratch index range, above the universe and
  /// disjoint from every other client's.
  uint64_t ScratchBase() const;

  StormConfig config_;
  uint64_t client_id_;
  ZipfGenerator zipf_;
  Xoshiro256 rng_;
  uint64_t scratch_cursor_ = 0;
  // Remaining ops of the burst in progress: first half adds, second
  // half deletes the same indices.
  uint32_t burst_remaining_ = 0;
  uint32_t burst_adds_ = 0;
  uint64_t burst_base_ = 0;
};

}  // namespace rlscommon
