// Workload generation: logical and physical file name corpora.
//
// The paper's experiments preload LRCs with N {logical name -> physical
// name} mappings and then drive add/delete/query mixes against them (§4).
// NameGenerator produces names shaped like the deployments in §6
// (LIGO-style frame files, ESG datasets, Pegasus workflow products) so
// examples and benches exercise realistic key distributions and sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rlscommon {

/// Deterministic generator of logical/physical name pairs.
///
/// Logical name i is stable for a given (prefix, i); physical names embed
/// a site name so one LFN can have replicas at many sites, matching the
/// LIGO deployment's 3M LFN -> 30M PFN ratio.
class NameGenerator {
 public:
  /// `prefix` namespaces the corpus (so distinct LRCs hold distinct names
  /// unless they intentionally share), `seed` drives site selection.
  explicit NameGenerator(std::string prefix = "lfn", uint64_t seed = 42);

  /// Stable logical file name for index `i`, e.g.
  /// "lfn://ligo.org/frames/H-R-7043/lfn-0000001234.gwf".
  std::string LogicalName(uint64_t i) const;

  /// Physical replica name for LFN `i` at replica `replica`, e.g.
  /// "gsiftp://storage3.site.edu/data/7043/pfn-0000001234.0".
  std::string PhysicalName(uint64_t i, uint32_t replica = 0) const;

  /// Batch helper: names for [begin, end).
  std::vector<std::string> LogicalNames(uint64_t begin, uint64_t end) const;

  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
  uint64_t seed_;
  std::vector<std::string> sites_;
};

/// Operation mix for load generation.
enum class OpKind { kAdd, kDelete, kQuery };

/// One generated client operation.
struct Op {
  OpKind kind;
  uint64_t index;  // which LFN it targets
};

/// Generates a deterministic stream of operations over an index space
/// [0, universe): queries hit existing entries; adds/deletes cycle through
/// a scratch range so database size stays constant across trials, matching
/// the paper's methodology ("mappings added in each trial are deleted
/// before subsequent trials").
class OpStream {
 public:
  OpStream(uint64_t universe, double query_fraction, double add_fraction,
           uint64_t seed);

  Op Next();

 private:
  uint64_t universe_;
  double query_fraction_;
  double add_fraction_;
  Xoshiro256 rng_;
  uint64_t scratch_cursor_ = 0;
};

}  // namespace rlscommon
