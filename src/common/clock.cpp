#include "common/clock.h"

#include <thread>

namespace rlscommon {

void SystemClock::SleepFor(Duration d) {
  if (d > Duration::zero()) std::this_thread::sleep_for(d);
}

SystemClock* SystemClock::Instance() {
  static SystemClock clock;
  return &clock;
}

void ManualClock::SleepFor(Duration d) {
  if (d <= Duration::zero()) return;
  const int64_t deadline = now_ns_.load(std::memory_order_acquire) + d.count();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return now_ns_.load(std::memory_order_acquire) >= deadline;
  });
}

void ManualClock::Advance(Duration d) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  }
  cv_.notify_all();
}

}  // namespace rlscommon
