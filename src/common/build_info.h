// Compile-time build description for process vitals.
//
// Operators reading a GetStats snapshot need to know whether the numbers
// came from a sanitizer or debug build before comparing them against a
// baseline — a TSan binary is ~10x slower and its latencies are not data.
#pragma once

#include <string>

#ifndef __has_feature
#define __has_feature(x) 0  // GCC: sanitizers advertise via __SANITIZE_*__
#endif

namespace rlscommon {

/// "release" / "debug", plus "+tsan" / "+asan" when the binary was built
/// under a sanitizer (e.g. "debug+tsan").
inline std::string BuildDescription() {
#ifdef NDEBUG
  std::string desc = "release";
#else
  std::string desc = "debug";
#endif
#if defined(__SANITIZE_THREAD__) || __has_feature(thread_sanitizer)
  desc += "+tsan";
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
  desc += "+asan";
#endif
  return desc;
}

}  // namespace rlscommon
