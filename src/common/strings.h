// String helpers: splitting, trimming, wildcard matching.
//
// The RLS exposes Unix-glob style wildcard queries ('*' and '?', §Table 1);
// WildcardMatch implements them directly (no regex engine needed on the
// hot path). Gridmap/ACL patterns use std::regex separately.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rlscommon {

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` matches `pattern`, where '*' matches any run (including
/// empty) and '?' matches exactly one character. Linear-time two-pointer
/// algorithm; no backtracking blowup.
bool WildcardMatch(std::string_view pattern, std::string_view text);

/// True if the pattern contains any wildcard metacharacter.
bool HasWildcard(std::string_view pattern);

/// Case-sensitive prefix/suffix tests.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Converts a SQL LIKE pattern ('%' any run, '_' one char) to the glob
/// alphabet used by WildcardMatch.
std::string LikeToGlob(std::string_view like_pattern);

}  // namespace rlscommon
