#include "common/strings.h"

#include <cctype>

namespace rlscommon {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool WildcardMatch(std::string_view pattern, std::string_view text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool HasWildcard(std::string_view pattern) {
  return pattern.find_first_of("*?") != std::string_view::npos;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string LikeToGlob(std::string_view like_pattern) {
  std::string out;
  out.reserve(like_pattern.size());
  for (char c : like_pattern) {
    if (c == '%') {
      out.push_back('*');
    } else if (c == '_') {
      out.push_back('?');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace rlscommon
