#include "common/error.h"

namespace rlscommon {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnauthenticated: return "UNAUTHENTICATED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kDatabase: return "DATABASE";
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rlscommon
