#include "common/rng.h"

namespace rlscommon {

std::string RandomIdentifier(Xoshiro256& rng, std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.Below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

}  // namespace rlscommon
