// Lock-free latency histogram with logarithmic buckets.
//
// Servers record per-request service times into per-operation-family
// histograms; the monitoring interface reports count/mean/quantiles.
// Buckets are powers of two in microseconds (1 us .. ~36 min), so
// Record is one atomic increment and quantiles are exact to within a 2x
// bucket (plenty for operation-rate monitoring).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace rlscommon {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;  // 2^0 .. 2^31 us

  LatencyHistogram() = default;

  /// Records one sample. Thread-safe, wait-free.
  void Record(std::chrono::nanoseconds latency);

  void RecordMicros(uint64_t micros);

  struct Snapshot {
    uint64_t count = 0;
    double mean_us = 0;
    uint64_t p50_us = 0;
    uint64_t p95_us = 0;
    uint64_t p99_us = 0;
    uint64_t p999_us = 0;  // tail quantile — where overload shows first
    uint64_t max_us = 0;   // upper edge of the highest non-empty bucket
  };

  /// Consistent-enough snapshot for monitoring (buckets are read without
  /// a global lock; concurrent updates may skew counts by a few samples).
  Snapshot GetSnapshot() const;

  /// "count=42 mean=130us p50=128us p95=512us p99=1024us p999=2048us".
  std::string ToString() const;

  void Reset();

 private:
  static std::size_t BucketFor(uint64_t micros);
  static uint64_t BucketUpperEdge(std::size_t bucket);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> total_micros_{0};
  std::atomic<uint64_t> count_{0};
};

}  // namespace rlscommon
