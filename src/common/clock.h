// Clock abstractions.
//
// Soft-state timeouts, immediate-mode flush intervals and the link model
// all consume time through a Clock interface so tests can substitute a
// manually advanced clock and benches can run the expiration machinery
// deterministically.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace rlscommon {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::steady_clock::time_point;

/// Abstract monotonic clock. All timestamps in the RLS are monotonic;
/// wall-clock time is only used for log lines.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current monotonic time.
  virtual TimePoint Now() const = 0;

  /// Blocks the calling thread for `d` (or until the clock is advanced
  /// past it, for manual clocks).
  virtual void SleepFor(Duration d) = 0;
};

/// Real clock backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }
  void SleepFor(Duration d) override;

  /// Shared process-wide instance.
  static SystemClock* Instance();
};

/// Manually advanced clock for tests. SleepFor() blocks until another
/// thread calls Advance() far enough, so periodic threads (expire thread,
/// immediate-mode flusher) can be driven step by step.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_ns_(start.time_since_epoch().count()) {}

  TimePoint Now() const override {
    return TimePoint(Duration(now_ns_.load(std::memory_order_acquire)));
  }

  void SleepFor(Duration d) override;

  /// Moves time forward and wakes sleepers whose deadline passed.
  void Advance(Duration d);

 private:
  std::atomic<int64_t> now_ns_;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Simple stopwatch over a Clock (defaults to the system clock).
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock = SystemClock::Instance())
      : clock_(clock), start_(clock_->Now()) {}

  void Reset() { start_ = clock_->Now(); }

  Duration Elapsed() const { return clock_->Now() - start_; }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Elapsed()).count();
  }

 private:
  const Clock* clock_;
  TimePoint start_;
};

}  // namespace rlscommon
