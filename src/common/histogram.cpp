#include "common/histogram.h"

#include <bit>
#include <cstdio>

namespace rlscommon {

std::size_t LatencyHistogram::BucketFor(uint64_t micros) {
  if (micros <= 1) return 0;
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(micros) - 1);
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

uint64_t LatencyHistogram::BucketUpperEdge(std::size_t bucket) {
  return bucket + 1 >= 64 ? UINT64_MAX : (uint64_t{1} << (bucket + 1)) - 1;
}

void LatencyHistogram::Record(std::chrono::nanoseconds latency) {
  RecordMicros(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(latency).count()));
}

void LatencyHistogram::RecordMicros(uint64_t micros) {
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  total_micros_.fetch_add(micros, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::GetSnapshot() const {
  Snapshot snap;
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  snap.count = total;
  if (total == 0) return snap;
  snap.mean_us = static_cast<double>(total_micros_.load(std::memory_order_relaxed)) /
                 static_cast<double>(total);
  auto quantile = [&](double q) -> uint64_t {
    const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
    uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen > rank) return BucketUpperEdge(b);
    }
    return BucketUpperEdge(kBuckets - 1);
  };
  snap.p50_us = quantile(0.50);
  snap.p95_us = quantile(0.95);
  snap.p99_us = quantile(0.99);
  snap.p999_us = quantile(0.999);
  for (std::size_t b = kBuckets; b-- > 0;) {
    if (counts[b] > 0) {
      snap.max_us = BucketUpperEdge(b);
      break;
    }
  }
  return snap;
}

std::string LatencyHistogram::ToString() const {
  Snapshot s = GetSnapshot();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.0fus p50=%llu"
                "us p95=%lluus p99=%lluus p999=%lluus max=%lluus",
                static_cast<unsigned long long>(s.count), s.mean_us,
                static_cast<unsigned long long>(s.p50_us),
                static_cast<unsigned long long>(s.p95_us),
                static_cast<unsigned long long>(s.p99_us),
                static_cast<unsigned long long>(s.p999_us),
                static_cast<unsigned long long>(s.max_us));
  return buf;
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  total_micros_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

}  // namespace rlscommon
