#include "common/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace rlscommon {

Status Config::ParseString(std::string_view text, Config* out) {
  std::size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    // Accept "key value", "key: value", "key=value".
    std::size_t pos = line.find_first_of(":= \t");
    if (pos == std::string_view::npos) {
      return Status::InvalidArgument("config line " + std::to_string(line_no) +
                                     ": missing value for key '" + std::string(line) + "'");
    }
    std::string key(Trim(line.substr(0, pos)));
    std::string value(Trim(line.substr(pos + 1)));
    if (key.empty()) {
      return Status::InvalidArgument("config line " + std::to_string(line_no) + ": empty key");
    }
    out->Set(key, value);
  }
  return Status::Ok();
}

Status Config::ParseFile(const std::string& path, Config* out) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("config file not found: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseString(buffer.str(), out);
}

void Config::Set(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, value);
}

std::optional<std::string> Config::Get(const std::string& key) const {
  // Last writer wins, matching typical config-file override behaviour.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->first == key) return it->second;
  }
  return std::nullopt;
}

std::vector<std::string> Config::GetAll(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_) {
    if (k == key) out.push_back(v);
  }
  return out;
}

std::string Config::GetString(const std::string& key, const std::string& def) const {
  auto v = Get(key);
  return v ? *v : def;
}

int64_t Config::GetInt(const std::string& key, int64_t def) const {
  auto v = Get(key);
  if (!v) return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') return def;
  return parsed;
}

double Config::GetDouble(const std::string& key, double def) const {
  auto v = Get(key);
  if (!v) return def;
  char* end = nullptr;
  double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') return def;
  return parsed;
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto v = Get(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  return def;
}

bool Config::Has(const std::string& key) const { return Get(key).has_value(); }

}  // namespace rlscommon
