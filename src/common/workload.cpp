#include "common/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rlscommon {

NameGenerator::NameGenerator(std::string prefix, uint64_t seed)
    : prefix_(std::move(prefix)), seed_(seed) {
  // A small fixed pool of storage sites; replica r of LFN i lands at
  // site (i + r) % sites.size().
  sites_ = {"storage1.isi.edu",  "storage2.isi.edu",  "dataserver.ligo.org",
            "se01.cern.ch",      "gridftp.ncsa.edu",  "dcache.fnal.gov",
            "esg.llnl.gov",      "storage.uwm.edu"};
}

std::string NameGenerator::LogicalName(uint64_t i) const {
  // Group names into "runs" of 4096 so the namespace has directory-like
  // structure (useful for wildcard and partition tests).
  char buf[160];
  std::snprintf(buf, sizeof(buf), "lfn://%s/run-%05llu/%s-%010llu",
                prefix_.c_str(),
                static_cast<unsigned long long>(i / 4096),
                prefix_.c_str(),
                static_cast<unsigned long long>(i));
  return buf;
}

std::string NameGenerator::PhysicalName(uint64_t i, uint32_t replica) const {
  const std::string& site = sites_[(i + seed_ + replica) % sites_.size()];
  char buf[220];
  std::snprintf(buf, sizeof(buf), "gsiftp://%s/data/%s/run-%05llu/pfn-%010llu.%u",
                site.c_str(), prefix_.c_str(),
                static_cast<unsigned long long>(i / 4096),
                static_cast<unsigned long long>(i), replica);
  return buf;
}

std::vector<std::string> NameGenerator::LogicalNames(uint64_t begin, uint64_t end) const {
  std::vector<std::string> out;
  out.reserve(end > begin ? end - begin : 0);
  for (uint64_t i = begin; i < end; ++i) out.push_back(LogicalName(i));
  return out;
}

OpStream::OpStream(uint64_t universe, double query_fraction,
                   double add_fraction, uint64_t seed)
    : universe_(universe == 0 ? 1 : universe),
      query_fraction_(query_fraction),
      add_fraction_(add_fraction),
      rng_(seed) {}

Op OpStream::Next() {
  double roll = rng_.NextDouble();
  if (roll < query_fraction_) {
    return {OpKind::kQuery, rng_.Below(universe_)};
  }
  if (roll < query_fraction_ + add_fraction_) {
    // Adds target a scratch range above the preloaded universe; the
    // matching delete (below) removes the same index, keeping size stable.
    return {OpKind::kAdd, universe_ + (scratch_cursor_++ % universe_)};
  }
  uint64_t idx = scratch_cursor_ > 0 ? universe_ + ((scratch_cursor_ - 1) % universe_)
                                     : universe_;
  return {OpKind::kDelete, idx};
}

ZipfGenerator::ZipfGenerator(uint64_t n, double exponent, uint64_t seed)
    : rng_(seed) {
  if (n == 0) n = 1;
  cdf_.reserve(n);
  double total = 0;
  for (uint64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<uint64_t>(it - cdf_.begin());
}

StormStream::StormStream(const StormConfig& config, uint64_t client_id)
    : config_(config),
      client_id_(client_id),
      // Each client gets its own Zipf stream over the shared universe
      // (same popularity law, different draw order) and its own op RNG.
      zipf_(config.universe, config.zipf_exponent,
            config.seed * 0x9e3779b97f4a7c15ULL + client_id),
      rng_(config.seed + client_id * 0x2545f4914f6cdd1dULL) {
  if (config_.universe == 0) config_.universe = 1;
  if (config_.burst_length == 0) config_.burst_length = 1;
}

StormAction StormStream::Next() {
  StormAction action;
  if (burst_remaining_ > 0) {
    // Drain the burst: adds first, then deletes of the same indices.
    const uint32_t step = burst_adds_ * 2 - burst_remaining_;
    const bool adding = step < burst_adds_;
    const uint64_t index =
        burst_base_ + (adding ? step : step - burst_adds_);
    --burst_remaining_;
    action.op = {adding ? OpKind::kAdd : OpKind::kDelete, index};
    action.in_burst = true;
    return action;
  }
  action.reconnect =
      config_.churn_probability > 0 && rng_.NextDouble() < config_.churn_probability;
  if (config_.burst_probability > 0 &&
      rng_.NextDouble() < config_.burst_probability) {
    // Start a burst over the next slice of this client's scratch range.
    // Client ranges are disjoint (width universe + burst_length, so a
    // burst starting at the top of the cursor cycle stays inside), so
    // concurrent storm clients never write the same scratch index.
    burst_adds_ = config_.burst_length;
    burst_base_ = ScratchBase() + (scratch_cursor_ % config_.universe);
    scratch_cursor_ += burst_adds_;
    burst_remaining_ = burst_adds_ * 2;
    const uint64_t index = burst_base_;
    --burst_remaining_;
    action.op = {OpKind::kAdd, index};
    action.in_burst = true;
    return action;
  }
  const double roll = rng_.NextDouble();
  if (roll < config_.query_fraction ||
      config_.query_fraction + config_.add_fraction <= 0) {
    action.op = {OpKind::kQuery, zipf_.Next()};
    return action;
  }
  // Non-burst background writes use the same disjoint scratch range.
  const uint64_t scratch = ScratchBase() + (scratch_cursor_ % config_.universe);
  if (roll < config_.query_fraction + config_.add_fraction) {
    ++scratch_cursor_;
    action.op = {OpKind::kAdd, scratch};
  } else {
    const uint64_t prev =
        scratch_cursor_ > 0
            ? ScratchBase() + ((scratch_cursor_ - 1) % config_.universe)
            : scratch;
    action.op = {OpKind::kDelete, prev};
  }
  return action;
}

uint64_t StormStream::ScratchBase() const {
  return config_.universe +
         client_id_ * (config_.universe + config_.burst_length);
}

}  // namespace rlscommon
