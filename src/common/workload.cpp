#include "common/workload.h"

#include <cstdio>

namespace rlscommon {

NameGenerator::NameGenerator(std::string prefix, uint64_t seed)
    : prefix_(std::move(prefix)), seed_(seed) {
  // A small fixed pool of storage sites; replica r of LFN i lands at
  // site (i + r) % sites.size().
  sites_ = {"storage1.isi.edu",  "storage2.isi.edu",  "dataserver.ligo.org",
            "se01.cern.ch",      "gridftp.ncsa.edu",  "dcache.fnal.gov",
            "esg.llnl.gov",      "storage.uwm.edu"};
}

std::string NameGenerator::LogicalName(uint64_t i) const {
  // Group names into "runs" of 4096 so the namespace has directory-like
  // structure (useful for wildcard and partition tests).
  char buf[160];
  std::snprintf(buf, sizeof(buf), "lfn://%s/run-%05llu/%s-%010llu",
                prefix_.c_str(),
                static_cast<unsigned long long>(i / 4096),
                prefix_.c_str(),
                static_cast<unsigned long long>(i));
  return buf;
}

std::string NameGenerator::PhysicalName(uint64_t i, uint32_t replica) const {
  const std::string& site = sites_[(i + seed_ + replica) % sites_.size()];
  char buf[220];
  std::snprintf(buf, sizeof(buf), "gsiftp://%s/data/%s/run-%05llu/pfn-%010llu.%u",
                site.c_str(), prefix_.c_str(),
                static_cast<unsigned long long>(i / 4096),
                static_cast<unsigned long long>(i), replica);
  return buf;
}

std::vector<std::string> NameGenerator::LogicalNames(uint64_t begin, uint64_t end) const {
  std::vector<std::string> out;
  out.reserve(end > begin ? end - begin : 0);
  for (uint64_t i = begin; i < end; ++i) out.push_back(LogicalName(i));
  return out;
}

OpStream::OpStream(uint64_t universe, double query_fraction,
                   double add_fraction, uint64_t seed)
    : universe_(universe == 0 ? 1 : universe),
      query_fraction_(query_fraction),
      add_fraction_(add_fraction),
      rng_(seed) {}

Op OpStream::Next() {
  double roll = rng_.NextDouble();
  if (roll < query_fraction_) {
    return {OpKind::kQuery, rng_.Below(universe_)};
  }
  if (roll < query_fraction_ + add_fraction_) {
    // Adds target a scratch range above the preloaded universe; the
    // matching delete (below) removes the same index, keeping size stable.
    return {OpKind::kAdd, universe_ + (scratch_cursor_++ % universe_)};
  }
  uint64_t idx = scratch_cursor_ > 0 ? universe_ + ((scratch_cursor_ - 1) % universe_)
                                     : universe_;
  return {OpKind::kDelete, idx};
}

}  // namespace rlscommon
