// Error and status types shared across the RLS reproduction.
//
// The original Globus RLS reported errors through globus_result_t codes.
// We use a small Status/exception pair instead: cheap Status values for
// expected control-flow outcomes (e.g. "mapping not found") and exceptions
// for programming errors and unrecoverable conditions.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace rlscommon {

/// Error categories mirroring the RLS client error codes
/// (globus_rls_client.h in the original implementation).
enum class ErrorCode {
  kOk = 0,
  kNotFound,        // LFN / PFN / attribute does not exist
  kAlreadyExists,   // mapping or attribute already present
  kInvalidArgument, // malformed name, bad wildcard, bad parameter
  kPermissionDenied,// ACL check failed
  kUnauthenticated, // no credential presented and auth required
  kUnavailable,     // server shut down / connection closed
  kTimeout,         // RPC deadline exceeded
  kInternal,        // invariant violation inside a server
  kDatabase,        // back-end database reported an error
  kProtocol,        // malformed wire message
  kUnsupported,     // e.g. wildcard query against a Bloom-filter RLI
  kDataLoss,        // storage fail-stop: WAL write/sync failed, data at risk
};

/// Human-readable name of an ErrorCode ("NOT_FOUND", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// True for transient transport-level failures worth retrying: the server
/// was unreachable (kUnavailable) or did not answer within the deadline
/// (kTimeout). Everything else — including kProtocol (a malformed reply:
/// retrying won't unscramble it) and all application errors — is final.
constexpr bool IsRetryableError(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout;
}

/// Lightweight result status. Functions that can fail in expected ways
/// return Status (or StatusOr-like pairs) instead of throwing.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(ErrorCode::kOk) {}
  /// Constructs a status with a code and a diagnostic message.
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {ErrorCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {ErrorCode::kInvalidArgument, std::move(m)}; }
  static Status PermissionDenied(std::string m) { return {ErrorCode::kPermissionDenied, std::move(m)}; }
  static Status Unauthenticated(std::string m) { return {ErrorCode::kUnauthenticated, std::move(m)}; }
  static Status Unavailable(std::string m) { return {ErrorCode::kUnavailable, std::move(m)}; }
  static Status Timeout(std::string m) { return {ErrorCode::kTimeout, std::move(m)}; }
  static Status Internal(std::string m) { return {ErrorCode::kInternal, std::move(m)}; }
  static Status Database(std::string m) { return {ErrorCode::kDatabase, std::move(m)}; }
  static Status Protocol(std::string m) { return {ErrorCode::kProtocol, std::move(m)}; }
  static Status Unsupported(std::string m) { return {ErrorCode::kUnsupported, std::move(m)}; }
  static Status DataLoss(std::string m) { return {ErrorCode::kDataLoss, std::move(m)}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Attaches a retry-after hint to a retryable status. An overloaded
  /// server sheds with UNAVAILABLE plus this hint; the client's retry
  /// policy backs off at least that long before the next attempt.
  Status& WithRetryAfter(std::chrono::milliseconds hint) {
    retry_after_ms_ = hint.count() > 0 ? static_cast<uint32_t>(hint.count()) : 0;
    return *this;
  }

  /// Server-suggested minimum backoff; zero = no hint.
  std::chrono::milliseconds retry_after() const {
    return std::chrono::milliseconds(retry_after_ms_);
  }

  /// "OK" or "NOT_FOUND: lfn does not exist".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
  uint32_t retry_after_ms_ = 0;
};

/// Exception thrown for unrecoverable failures (and by the convenience
/// throwing wrappers in the client API).
class RlsError : public std::runtime_error {
 public:
  RlsError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(ErrorCodeName(code)) + ": " + message),
        code_(code) {}
  explicit RlsError(const Status& status)
      : RlsError(status.code(), status.message()) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Throws RlsError if `status` is not OK. Use at API boundaries where a
/// failure indicates a caller bug or an unrecoverable condition.
inline void ThrowIfError(const Status& status) {
  if (!status.ok()) throw RlsError(status);
}

}  // namespace rlscommon
