// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Used by the WAL frame format: the Castagnoli polynomial has better
// error-detection properties for storage payloads than CRC32 (it is what
// ext4, Btrfs, LevelDB and iSCSI use). Software slice-by-1 table
// implementation — the WAL is not checksum-bound, and a portable
// implementation keeps the sanitizer builds simple.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rlscommon {

/// Extends a running CRC32C over `data`. Seed with 0 for a fresh
/// checksum; chain calls to checksum discontiguous regions.
uint32_t Crc32cExtend(uint32_t crc, const void* data, std::size_t len);

inline uint32_t Crc32c(const void* data, std::size_t len) {
  return Crc32cExtend(0, data, len);
}

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace rlscommon
