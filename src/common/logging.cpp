#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "common/trace_context.h"

namespace rlscommon {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_io_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Monotonic microseconds since the first log line of the process.
int64_t MonotonicMicros() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Small dense per-thread id (std::thread::id is opaque and wide).
uint32_t DenseThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool LogRateLimiter::Allow(uint64_t* suppressed) {
  return AllowAt(MonotonicMicros(), suppressed);
}

bool LogRateLimiter::AllowAt(int64_t now_us, uint64_t* suppressed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!primed_) {
    primed_ = true;
    last_us_ = now_us;
  }
  if (now_us > last_us_) {
    tokens_ += per_second_ * static_cast<double>(now_us - last_us_) / 1e6;
    if (tokens_ > burst_) tokens_ = burst_;
    last_us_ = now_us;
  }
  if (tokens_ < 1.0) {
    ++pending_suppressed_;
    total_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  tokens_ -= 1.0;
  if (suppressed) *suppressed = pending_suppressed_;
  pending_suppressed_ = 0;
  return true;
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogLine(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  const int64_t t_us = MonotonicMicros();
  const uint32_t tid = DenseThreadId();
  const TraceContext trace = CurrentTrace();
  std::lock_guard<std::mutex> lock(g_io_mu);
  if (trace.valid()) {
    std::fprintf(stderr,
                 "[%10.6f] [%s] [%.*s] [tid %" PRIu32 "] %.*s trace=%016" PRIx64 "\n",
                 static_cast<double>(t_us) / 1e6, LevelName(level),
                 static_cast<int>(component.size()), component.data(), tid,
                 static_cast<int>(message.size()), message.data(), trace.trace_id);
  } else {
    std::fprintf(stderr, "[%10.6f] [%s] [%.*s] [tid %" PRIu32 "] %.*s\n",
                 static_cast<double>(t_us) / 1e6, LevelName(level),
                 static_cast<int>(component.size()), component.data(), tid,
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace rlscommon
