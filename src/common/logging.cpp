#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace rlscommon {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_io_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogLine(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::lock_guard<std::mutex> lock(g_io_mu);
  std::fprintf(stderr, "[%s] [%.*s] %.*s\n", LevelName(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace rlscommon
