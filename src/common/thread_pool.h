// Fixed-size thread pool.
//
// Used by the RPC server to service requests (the paper's server is
// multi-threaded, §3.1) and by benchmarks to drive multi-threaded clients.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/histogram.h"

namespace rlscommon {

/// A fixed pool of worker threads consuming a FIFO task queue.
/// Tasks must not block indefinitely on other tasks in the same pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads, std::string name = "pool");

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Throws std::runtime_error if the pool is shutting
  /// down.
  void Submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result.
  template <typename F>
  auto SubmitWithResult(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Submit([task]() { (*task)(); });
    return result;
  }

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

  /// Number of tasks queued but not yet started.
  std::size_t QueueDepth() const;

  /// Optional instrument sinks (raw pointers keep this module free of a
  /// dependency on obs; the obs registry hands out exactly these types).
  /// All sinks must outlive the pool. nullptr entries are skipped.
  struct MetricHooks {
    LatencyHistogram* queue_wait = nullptr;       // Submit -> task start
    LatencyHistogram* run_time = nullptr;         // task start -> finish
    std::atomic<uint64_t>* tasks_completed = nullptr;
  };
  void BindMetrics(MetricHooks hooks);

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  MetricHooks hooks_;  // set before workers see tasks; guarded by mu_
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool shutdown_ = false;
  std::string name_;
};

}  // namespace rlscommon
