// Thread-local trace context primitive.
//
// A trace follows one logical operation across layers: the RPC client
// stamps the current context into each outgoing frame, the RPC server
// installs the received context around its handler, and the logger
// appends "trace=<id>" to every line emitted while a context is set.
// The ergonomic API (span timing, id generation, RAII scoping) lives in
// src/obs/trace.h; only the raw slot lives here so rlscommon::logging
// can read it without depending on the obs module.
#pragma once

#include <cstdint>

namespace rlscommon {

/// 64-bit trace id (one per end-to-end operation) plus span id (one per
/// hop). Zero trace_id = no trace.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

/// The calling thread's current context (mutable slot).
inline TraceContext& MutableCurrentTrace() {
  thread_local TraceContext context;
  return context;
}

inline TraceContext CurrentTrace() { return MutableCurrentTrace(); }

inline void SetCurrentTrace(TraceContext context) {
  MutableCurrentTrace() = context;
}

}  // namespace rlscommon
