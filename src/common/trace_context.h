// Thread-local trace context primitive.
//
// A trace follows one logical operation across layers: the RPC client
// stamps the current context into each outgoing frame, the RPC server
// installs the received context around its handler, and the logger
// appends "trace=<id>" to every line emitted while a context is set.
// The ergonomic API (span timing, id generation, RAII scoping) lives in
// src/obs/trace.h; only the raw slot lives here so rlscommon::logging
// can read it without depending on the obs module.
#pragma once

#include <cstdint>
#include <string_view>

namespace rlscommon {

/// 64-bit trace id (one per end-to-end operation) plus span id (one per
/// hop). Zero trace_id = no trace.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

/// The calling thread's current context (mutable slot).
inline TraceContext& MutableCurrentTrace() {
  thread_local TraceContext context;
  return context;
}

inline TraceContext CurrentTrace() { return MutableCurrentTrace(); }

inline void SetCurrentTrace(TraceContext context) {
  MutableCurrentTrace() = context;
}

/// Ambient hop sink. The innermost active obs::Span installs itself
/// here (stack discipline, like the trace slot above) so lower layers —
/// rdb's WAL, the SQL engine, RLI ingest — can stamp named stage
/// timestamps onto whatever request span is in flight without taking a
/// dependency on the obs module. `stamp` is a plain function pointer so
/// this header stays free of std::function.
struct HopSlot {
  void* span = nullptr;
  void (*stamp)(void* span, std::string_view what) = nullptr;
};

inline HopSlot& MutableCurrentHopSlot() {
  thread_local HopSlot slot;
  return slot;
}

/// Stamps a named stage timestamp ("db_txn", "wal_sync") on the
/// innermost active span, if any. One thread-local read when no span is
/// active.
inline void StampHop(std::string_view what) {
  const HopSlot& slot = MutableCurrentHopSlot();
  if (slot.span != nullptr && slot.stamp != nullptr) slot.stamp(slot.span, what);
}

}  // namespace rlscommon
