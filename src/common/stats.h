// Statistics helpers used by the benchmark harness.
//
// The paper reports the mean operation rate over (typically 5) trials
// (§4). TrialStats mirrors that methodology; Summary gives the usual
// descriptive statistics for tables.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace rlscommon {

/// Descriptive statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Computes a Summary. Percentiles use nearest-rank on a sorted copy.
Summary Summarize(std::vector<double> samples);

/// Accumulates per-trial results the way the paper's methodology does:
/// each trial contributes one rate (operations / elapsed seconds); the
/// reported figure is the mean over trials.
class TrialStats {
 public:
  /// Records a trial of `operations` completed in `seconds`.
  void AddTrial(std::size_t operations, double seconds);

  /// Records an already-computed rate (ops/sec).
  void AddRate(double rate) { rates_.push_back(rate); }

  /// Mean rate over recorded trials (0 if none).
  double MeanRate() const;

  /// Mean seconds per trial (0 if none).
  double MeanSeconds() const;

  std::size_t trials() const { return rates_.size(); }
  const std::vector<double>& rates() const { return rates_; }

 private:
  std::vector<double> rates_;
  std::vector<double> seconds_;
};

/// Formats a double with `precision` fractional digits (for table output).
std::string FormatDouble(double value, int precision = 1);

/// Formats a byte count with unit suffix ("10 Mbit" style helper is in the
/// bench harness; this gives "1.25 MB").
std::string FormatBytes(double bytes);

}  // namespace rlscommon
