#include "common/thread_pool.h"

#include <stdexcept>

namespace rlscommon {

ThreadPool::ThreadPool(std::size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) throw std::runtime_error("ThreadPool(" + name_ + "): submit after shutdown");
    queue_.push_back(Task{std::move(task), std::chrono::steady_clock::now()});
  }
  work_cv_.notify_one();
}

void ThreadPool::BindMetrics(MetricHooks hooks) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_ = hooks;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    MetricHooks hooks;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      hooks = hooks_;
    }
    const auto start = std::chrono::steady_clock::now();
    if (hooks.queue_wait) hooks.queue_wait->Record(start - task.enqueued);
    task.fn();
    if (hooks.run_time) hooks.run_time->Record(std::chrono::steady_clock::now() - start);
    if (hooks.tasks_completed) {
      hooks.tasks_completed->fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace rlscommon
