// Simulated Grid Security Infrastructure (GSI).
//
// The 2004 RLS authenticated clients with X.509 certificates: the
// Distinguished Name (DN) in the certificate is optionally mapped by a
// gridmap file to a local username, and access control list entries —
// regular expressions over DNs or local usernames — grant privileges such
// as lrc_read and lrc_write (paper §3.1). The server can also run with
// authentication disabled, granting everyone read/write.
//
// We simulate the certificate handshake with a plain DN string plus a
// configurable handshake cost; the gridmap/ACL machinery is implemented
// in full and evaluated on every operation, so the authorization code
// path the paper cites as server overhead is exercised for real.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "common/error.h"

namespace gsi {

/// Privileges the RLS grants through ACL entries (paper §3.1).
enum class Privilege : uint8_t {
  kLrcRead = 0,
  kLrcWrite = 1,
  kRliRead = 2,
  kRliWrite = 3,   // soft-state updates from LRCs
  kAdmin = 4,      // server management
  kStats = 5,      // monitoring
};

std::string_view PrivilegeName(Privilege p);
std::optional<Privilege> ParsePrivilege(std::string_view name);

/// A client credential: the DN of a (simulated) X.509 certificate.
/// Empty DN = anonymous.
struct Credential {
  std::string dn;

  bool anonymous() const { return dn.empty(); }
  static Credential Anonymous() { return Credential{}; }
};

/// gridmap file: maps DNs to local usernames. File format, one per line:
///   "/DC=org/DC=Grid/CN=Ann Chervenak" annc
/// The quoted DN may be a literal or an ECMAScript regular expression.
class Gridmap {
 public:
  /// Parses gridmap text; returns InvalidArgument on malformed lines.
  static rlscommon::Status Parse(std::string_view text, Gridmap* out);

  /// Adds one mapping programmatically.
  rlscommon::Status AddEntry(const std::string& dn_pattern,
                             const std::string& local_user);

  /// First matching local username for this DN, or nullopt.
  std::optional<std::string> MapToLocal(const std::string& dn) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string pattern_text;
    std::regex pattern;
    std::string local_user;
  };
  std::vector<Entry> entries_;
};

/// Access control list: regex patterns over the DN or the gridmap-mapped
/// local username, each granting a set of privileges.
class Acl {
 public:
  /// Adds an entry. `pattern` is an ECMAScript regex matched against both
  /// the DN and the local username.
  rlscommon::Status AddEntry(const std::string& pattern,
                             std::vector<Privilege> privileges);

  /// Parses the config-file form "pattern: priv1,priv2,...".
  rlscommon::Status AddEntryFromString(const std::string& line);

  /// True if any entry matching `dn` or `local_user` grants `p`.
  bool IsAuthorized(const std::string& dn, const std::string& local_user,
                    Privilege p) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string pattern_text;
    std::regex pattern;
    uint32_t privilege_mask = 0;
  };
  std::vector<Entry> entries_;
};

/// Result of a completed handshake, attached to the connection.
struct AuthContext {
  bool authenticated = false;  // false = anonymous on an open server
  std::string dn;
  std::string local_user;  // gridmap mapping, if any
};

/// Per-server authentication/authorization policy.
class AuthManager {
 public:
  /// An open server: no authentication, everyone gets all privileges
  /// ("the RLS server can also be run without any authentication or
  /// authorization" — paper §3.1).
  static AuthManager Open();

  /// A securing server with a gridmap and ACL.
  static AuthManager Secured(Gridmap gridmap, Acl acl,
                             std::chrono::microseconds handshake_cost =
                                 std::chrono::microseconds(1500));

  /// Validates a credential at connection time. Applies the simulated
  /// handshake cost. Unauthenticated if a secured server receives an
  /// anonymous credential.
  rlscommon::Status Authenticate(const Credential& credential,
                                 AuthContext* out) const;

  /// Per-operation check. PermissionDenied when the context lacks `p`.
  rlscommon::Status Authorize(const AuthContext& context, Privilege p) const;

  bool open() const { return open_; }

 private:
  bool open_ = true;
  Gridmap gridmap_;
  Acl acl_;
  std::chrono::microseconds handshake_cost_{0};
};

}  // namespace gsi
