#include "gsi/gsi.h"

#include <thread>

#include "common/strings.h"

namespace gsi {

using rlscommon::Status;

std::string_view PrivilegeName(Privilege p) {
  switch (p) {
    case Privilege::kLrcRead: return "lrc_read";
    case Privilege::kLrcWrite: return "lrc_write";
    case Privilege::kRliRead: return "rli_read";
    case Privilege::kRliWrite: return "rli_write";
    case Privilege::kAdmin: return "admin";
    case Privilege::kStats: return "stats";
  }
  return "?";
}

std::optional<Privilege> ParsePrivilege(std::string_view name) {
  static constexpr Privilege kAll[] = {Privilege::kLrcRead,  Privilege::kLrcWrite,
                                       Privilege::kRliRead,  Privilege::kRliWrite,
                                       Privilege::kAdmin,    Privilege::kStats};
  for (Privilege p : kAll) {
    if (PrivilegeName(p) == name) return p;
  }
  return std::nullopt;
}

Status Gridmap::Parse(std::string_view text, Gridmap* out) {
  for (const std::string& raw : rlscommon::Split(text, '\n')) {
    std::string_view line = rlscommon::Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() != '"') {
      return Status::InvalidArgument("gridmap line must start with a quoted DN: " +
                                     std::string(line));
    }
    std::size_t close = line.find('"', 1);
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("unterminated DN quote in gridmap");
    }
    std::string dn(line.substr(1, close - 1));
    std::string user(rlscommon::Trim(line.substr(close + 1)));
    if (user.empty()) {
      return Status::InvalidArgument("gridmap entry missing local user for " + dn);
    }
    Status s = out->AddEntry(dn, user);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status Gridmap::AddEntry(const std::string& dn_pattern, const std::string& local_user) {
  Entry e;
  e.pattern_text = dn_pattern;
  try {
    e.pattern = std::regex(dn_pattern, std::regex::ECMAScript);
  } catch (const std::regex_error& err) {
    return Status::InvalidArgument("bad gridmap DN regex '" + dn_pattern +
                                   "': " + err.what());
  }
  e.local_user = local_user;
  entries_.push_back(std::move(e));
  return Status::Ok();
}

std::optional<std::string> Gridmap::MapToLocal(const std::string& dn) const {
  for (const Entry& e : entries_) {
    if (std::regex_match(dn, e.pattern)) return e.local_user;
  }
  return std::nullopt;
}

Status Acl::AddEntry(const std::string& pattern, std::vector<Privilege> privileges) {
  Entry e;
  e.pattern_text = pattern;
  try {
    e.pattern = std::regex(pattern, std::regex::ECMAScript);
  } catch (const std::regex_error& err) {
    return Status::InvalidArgument("bad ACL regex '" + pattern + "': " + err.what());
  }
  for (Privilege p : privileges) e.privilege_mask |= 1u << static_cast<uint8_t>(p);
  entries_.push_back(std::move(e));
  return Status::Ok();
}

Status Acl::AddEntryFromString(const std::string& line) {
  auto colon = line.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("ACL entry must be 'pattern: priv,...': " + line);
  }
  std::string pattern(rlscommon::Trim(line.substr(0, colon)));
  std::vector<Privilege> privs;
  for (const std::string& raw : rlscommon::Split(line.substr(colon + 1), ',')) {
    std::string name(rlscommon::Trim(raw));
    if (name.empty()) continue;
    auto p = ParsePrivilege(name);
    if (!p) return Status::InvalidArgument("unknown privilege '" + name + "'");
    privs.push_back(*p);
  }
  if (privs.empty()) return Status::InvalidArgument("ACL entry grants nothing: " + line);
  return AddEntry(pattern, std::move(privs));
}

bool Acl::IsAuthorized(const std::string& dn, const std::string& local_user,
                       Privilege p) const {
  const uint32_t bit = 1u << static_cast<uint8_t>(p);
  for (const Entry& e : entries_) {
    if (!(e.privilege_mask & bit)) continue;
    if (!dn.empty() && std::regex_match(dn, e.pattern)) return true;
    if (!local_user.empty() && std::regex_match(local_user, e.pattern)) return true;
  }
  return false;
}

AuthManager AuthManager::Open() { return AuthManager(); }

AuthManager AuthManager::Secured(Gridmap gridmap, Acl acl,
                                 std::chrono::microseconds handshake_cost) {
  AuthManager m;
  m.open_ = false;
  m.gridmap_ = std::move(gridmap);
  m.acl_ = std::move(acl);
  m.handshake_cost_ = handshake_cost;
  return m;
}

Status AuthManager::Authenticate(const Credential& credential, AuthContext* out) const {
  if (open_) {
    out->authenticated = !credential.anonymous();
    out->dn = credential.dn;
    out->local_user.clear();
    return Status::Ok();
  }
  if (credential.anonymous()) {
    return Status::Unauthenticated("server requires a credential");
  }
  // Simulated certificate verification cost (the real server's GSI
  // handshake, which the paper identifies as a source of overhead).
  if (handshake_cost_.count() > 0) std::this_thread::sleep_for(handshake_cost_);
  out->authenticated = true;
  out->dn = credential.dn;
  if (auto user = gridmap_.MapToLocal(credential.dn)) {
    out->local_user = *user;
  } else {
    out->local_user.clear();
  }
  return Status::Ok();
}

Status AuthManager::Authorize(const AuthContext& context, Privilege p) const {
  if (open_) return Status::Ok();
  if (!context.authenticated) {
    return Status::Unauthenticated("operation requires authentication");
  }
  if (acl_.IsAuthorized(context.dn, context.local_user, p)) return Status::Ok();
  return Status::PermissionDenied(std::string(PrivilegeName(p)) + " denied for " +
                                  context.dn);
}

}  // namespace gsi
