#include "net/fault.h"

namespace net {

using rlscommon::Status;

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDisconnect: return "disconnect";
    case FaultKind::kConnectRefused: return "connect_refused";
    case FaultKind::kBlackoutDrop: return "blackout_drop";
    case FaultKind::kPartitionDrop: return "partition_drop";
  }
  return "?";
}

void FaultInjector::SetPlan(const std::string& endpoint, FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_[endpoint] = plan;
}

void FaultInjector::ClearPlan(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.erase(endpoint);
}

void FaultInjector::Partition(const std::string& a, const std::string& b) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.insert(PairKey(a, b));
}

void FaultInjector::Heal(const std::string& a, const std::string& b) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.erase(PairKey(a, b));
}

void FaultInjector::HealAllPartitions() {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.clear();
}

void FaultInjector::BlackoutFor(const std::string& endpoint,
                                rlscommon::Duration window) {
  std::lock_guard<std::mutex> lock(mu_);
  blackout_until_[endpoint] = clock_->Now() + window;
}

void FaultInjector::Blackout(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  blackout_until_[endpoint] = rlscommon::TimePoint::max();
}

void FaultInjector::ClearBlackout(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  blackout_until_.erase(endpoint);
}

bool FaultInjector::IsBlackedOut(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  return BlackedOutLocked(endpoint);
}

bool FaultInjector::BlackedOutLocked(const std::string& endpoint) const {
  auto it = blackout_until_.find(endpoint);
  if (it == blackout_until_.end()) return false;
  return it->second == rlscommon::TimePoint::max() || clock_->Now() < it->second;
}

void FaultInjector::RecordLocked(FaultKind kind, const std::string& from,
                                 const std::string& to) {
  events_.push_back(FaultEvent{next_seq_++, kind, from, to});
}

Status FaultInjector::OnConnect(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (BlackedOutLocked(to) || partitions_.count(PairKey(from, to))) {
    RecordLocked(FaultKind::kConnectRefused, from, to);
    ++connects_refused_;
    return Status::Unavailable("fault: endpoint unreachable: " + to);
  }
  auto plan = plans_.find(to);
  if (plan != plans_.end() && plan->second.connect_failure_probability > 0 &&
      rng_.NextDouble() < plan->second.connect_failure_probability) {
    RecordLocked(FaultKind::kConnectRefused, from, to);
    ++connects_refused_;
    return Status::Unavailable("fault: connect to " + to + " refused");
  }
  return Status::Ok();
}

SendVerdict FaultInjector::OnSend(const std::string& from, const std::string& to,
                                  uint64_t message_index,
                                  rlscommon::Duration* extra_delay) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partitions_.count(PairKey(from, to))) {
    RecordLocked(FaultKind::kPartitionDrop, from, to);
    ++drops_;
    return SendVerdict::kDrop;
  }
  // A dark endpoint neither receives nor emits: both directions drop.
  if (BlackedOutLocked(to) || BlackedOutLocked(from)) {
    RecordLocked(FaultKind::kBlackoutDrop, from, to);
    ++drops_;
    return SendVerdict::kDrop;
  }
  auto it = plans_.find(to);
  if (it == plans_.end()) return SendVerdict::kDeliver;
  const FaultPlan& plan = it->second;
  if (plan.disconnect_after_messages > 0 &&
      message_index > plan.disconnect_after_messages) {
    RecordLocked(FaultKind::kDisconnect, from, to);
    ++disconnects_;
    return SendVerdict::kDisconnect;
  }
  if (plan.drop_probability > 0 && rng_.NextDouble() < plan.drop_probability) {
    RecordLocked(FaultKind::kDrop, from, to);
    ++drops_;
    return SendVerdict::kDrop;
  }
  if (extra_delay && plan.extra_latency.count() > 0) {
    *extra_delay += std::chrono::duration_cast<rlscommon::Duration>(plan.extra_latency);
  }
  return SendVerdict::kDeliver;
}

std::vector<FaultEvent> FaultInjector::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t FaultInjector::drops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drops_;
}

uint64_t FaultInjector::disconnects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disconnects_;
}

uint64_t FaultInjector::connects_refused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connects_refused_;
}

}  // namespace net
