// RPC layer: multi-threaded server + blocking client.
//
// Mirrors the original RLS server structure (§3.1): a multi-threaded
// server authenticates each connection (GSI), then services framed
// request/response messages. One server thread per connection, matching
// the thread-management overhead the paper attributes to its server.
// With ServerOptions::workers > 0 the connection threads only receive,
// authenticate and admit; execution moves to a shared worker pool fed by
// a bounded two-lane run queue, giving the server a well-defined
// overload surface (admit / shed / prioritize) instead of unbounded
// per-connection concurrency.
//
// Wire protocol: the first message on a connection must be an AUTH
// request carrying the client's DN (empty = anonymous). Subsequent
// messages are dispatched to the registered handler by opcode. Error
// responses carry {u8 error code, string message}.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gsi/gsi.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace obs {
class Span;
}

namespace net {

/// Opcode reserved for the connection handshake.
inline constexpr uint16_t kOpcodeAuth = 0;

/// Encodes a failed Status as an error-response payload.
void EncodeError(const rlscommon::Status& status, std::string* payload);

/// Decodes an error-response payload back into a Status.
rlscommon::Status DecodeError(std::string_view payload);

/// Application dispatch: (auth context, opcode, request) -> response.
/// Returning a non-OK status sends an error response; throwing is a bug.
using RpcHandler = std::function<rlscommon::Status(
    const gsi::AuthContext&, uint16_t opcode, const std::string& request,
    std::string* response)>;

/// Verdict of an admission check, made after authentication and before
/// the request is enqueued for execution. A non-OK status is returned to
/// the client immediately (the handler never sees the request);
/// `priority` routes admitted work to the protected lane that overload
/// cannot starve (soft-state updates, admin ops, stats probes).
struct AdmitDecision {
  rlscommon::Status status;
  bool priority = false;
};

/// Policy hook deciding admission per request. Runs on the connection
/// thread; must be cheap and thread-safe.
using AdmissionHook = std::function<AdmitDecision(
    const gsi::AuthContext&, uint16_t opcode, const std::string& request)>;

struct ServerOptions {
  std::string name = "rls-server";
  gsi::AuthManager auth = gsi::AuthManager::Open();

  /// When set, the server registers per-method instruments here:
  ///   rpc_requests_total{method=...}, rpc_errors_total{method=...},
  ///   rpc_request_latency_us{method=...}, rpc_active_connections.
  /// The registry must outlive the server.
  obs::Registry* metrics = nullptr;

  /// Renders an opcode as the `method` label value (e.g. rls::OpName).
  /// Unset = the decimal opcode.
  std::function<std::string(uint16_t)> opcode_name;

  /// Admission policy; unset = admit everything on the normal lane.
  AdmissionHook admission;

  /// Worker threads executing admitted requests. 0 (default) keeps the
  /// legacy thread-per-connection execution: handlers run inline on the
  /// connection thread and the run queue below is unused (admission
  /// still applies).
  int workers = 0;

  /// Normal-lane run-queue bound (requests waiting for a worker).
  /// A full lane sheds with UNAVAILABLE + retry-after instead of
  /// queueing unbounded latency. 0 = unbounded.
  std::size_t queue_depth = 0;

  /// Priority-lane bound; sized separately (and generously) so admin
  /// and soft-state traffic survives a client storm. 0 = unbounded.
  std::size_t priority_queue_depth = 0;

  /// Retry-after hint attached to queue-full sheds.
  std::chrono::milliseconds shed_retry_after{50};
};

class RpcServer {
 public:
  RpcServer(Network* network, std::string address, ServerOptions options,
            RpcHandler handler);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers the listener; AlreadyExists if the address is taken.
  rlscommon::Status Start();

  /// Unregisters, closes all connections, joins service threads.
  void Stop();

  const std::string& address() const { return address_; }
  uint64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }
  /// Requests rejected at the run queue (queue-full sheds). Rejections
  /// made by the admission hook itself are counted by its owner.
  uint64_t requests_shed() const { return shed_.load(std::memory_order_relaxed); }
  std::size_t active_connections() const;

 private:
  /// Per-opcode instrument pointers, resolved once per opcode and cached
  /// so the request hot path does no registry (map+mutex) lookups.
  struct OpMetrics {
    std::string method;  // rendered method label for this opcode
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency = nullptr;
    // Per-stage latency histograms (rpc_stage_latency_us{method,stage}),
    // resolved lazily per stage name. The live table is published
    // copy-on-write so the tracing-enabled hot path reads it with a
    // single acquire load and a short linear scan — no lock. Retired
    // versions stay parked in `stage_versions` (a handful of tiny
    // vectors per method, freed with the server) so a racing reader can
    // never dangle.
    struct StageTable {
      std::vector<std::pair<std::string, obs::Histogram*>> entries;
    };
    std::atomic<const StageTable*> stage_table{nullptr};
    std::mutex stage_mu;  // serializes table updates only
    std::vector<std::unique_ptr<const StageTable>> stage_versions;
  };
  static constexpr std::size_t kOpcodeCacheSize = 256;

  /// One admitted request parked in the run queue. The auth context is
  /// copied at admission: the connection thread may re-authenticate
  /// mid-stream, and workers must not read a mutating context.
  /// `recv_time`/`admit_time` stamp the transport receive and admission
  /// decision instants so the request span can charge queue wait.
  struct Pending {
    std::shared_ptr<Connection> conn;
    gsi::AuthContext context;
    Message msg;
    std::chrono::steady_clock::time_point recv_time{};
    std::chrono::steady_clock::time_point admit_time{};
  };

  void ServeConnection(std::shared_ptr<Connection> conn);
  OpMetrics* MetricsFor(uint16_t opcode);

  /// Stage histogram for (opcode method, stage); created on first use.
  obs::Histogram* StageHistogram(OpMetrics* metrics, std::string_view stage);

  /// Records per-stage latencies (deltas between consecutive span hops)
  /// into the stage histograms, with the trace id as exemplar.
  void RecordStageLatencies(OpMetrics* metrics, const obs::Span& span,
                            uint64_t trace_id);

  /// Runs the handler for one admitted request and sends the reply.
  void ExecuteRequest(const std::shared_ptr<Connection>& conn,
                      const gsi::AuthContext& context, Message msg,
                      std::chrono::steady_clock::time_point recv_time,
                      std::chrono::steady_clock::time_point admit_time);

  /// Parks an admitted request on the chosen lane; UNAVAILABLE +
  /// retry-after if that lane is full.
  rlscommon::Status Enqueue(Pending pending, bool priority);
  void WorkerLoop();

  Network* network_;
  std::string address_;
  ServerOptions options_;
  RpcHandler handler_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // Two-lane bounded run queue feeding the worker pool. Workers drain
  // the priority lane first, so soft-state/admin traffic keeps flowing
  // while the normal lane sheds under storm load.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> normal_queue_;
  std::deque<Pending> priority_queue_;
  bool queue_closed_ = false;
  std::vector<std::thread> workers_;
  obs::Counter* shed_queue_full_ = nullptr;

  // Cache slots are created lazily and retired only at destruction.
  std::array<std::atomic<OpMetrics*>, kOpcodeCacheSize> op_metrics_{};
  std::mutex op_metrics_mu_;
  std::vector<std::unique_ptr<OpMetrics>> op_metrics_storage_;

  mutable std::mutex mu_;
  uint64_t next_conn_id_ = 0;
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;
};

/// Retry policy for transient transport failures. Attempt k (0-based)
/// sleeps initial_backoff * multiplier^(k-1) before retrying, capped at
/// max_backoff, with up to ±jitter fraction of randomization so a fleet
/// of clients doesn't thunder in lock-step. Only retryable codes
/// (UNAVAILABLE, TIMEOUT — see rlscommon::IsRetryableError) are retried;
/// PROTOCOL and application errors fail immediately.
struct RetryPolicy {
  int max_attempts = 1;  // 1 = no retry
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  double multiplier = 2.0;
  double jitter = 0.2;

  /// The paper-style default for soft-state senders and chaos tests.
  static RetryPolicy Standard() {
    RetryPolicy p;
    p.max_attempts = 4;
    return p;
  }
};

struct ClientOptions {
  gsi::Credential credential;           // empty DN = anonymous
  LinkModel link = LinkModel::Loopback();

  /// The client's endpoint identity on the fabric — what the fault
  /// injector keys partitions/blackouts on. Default "client".
  std::string identity = "client";

  /// Per-call deadline; zero = wait forever (the pre-resilience
  /// behavior). When it expires the call fails with TIMEOUT.
  std::chrono::milliseconds call_timeout{0};

  RetryPolicy retry;

  /// Seed for the backoff jitter stream (deterministic chaos tests).
  uint64_t retry_seed = 0x5ca1ab1e;

  /// When set, the client counts rpc_client_retries_total,
  /// rpc_client_timeouts_total and rpc_client_reconnects_total here.
  /// The registry must outlive the client.
  obs::Registry* metrics = nullptr;
};

/// Blocking RPC client: one outstanding call at a time (use one client
/// per thread, like the paper's multi-threaded test client).
///
/// Error taxonomy of Call():
///   UNAVAILABLE — could not reach the server (no listener, connection
///                 closed/refused, forced disconnect); retryable.
///   TIMEOUT     — no response within call_timeout; retryable.
///   PROTOCOL    — the server answered with a malformed frame; NOT
///                 retryable (garbled data won't unscramble itself).
///   anything else — the server's own application Status, verbatim.
/// Retryable failures are retried per ClientOptions::retry, reconnecting
/// (and re-authenticating) as needed between attempts.
class RpcClient {
 public:
  /// Connects and completes the AUTH handshake. A connect failure is
  /// UNAVAILABLE (retried here per the policy too).
  static rlscommon::Status Connect(Network* network, const std::string& address,
                                   const ClientOptions& options,
                                   std::unique_ptr<RpcClient>* out);

  /// Issues one call and waits for its response. Server-side failures
  /// come back as the server's Status; see the taxonomy above.
  rlscommon::Status Call(uint16_t opcode, const std::string& request,
                         std::string* response);

  void Close() {
    if (conn_) conn_->Close();
  }

  uint64_t bytes_sent() const {
    return bytes_sent_prior_ + (conn_ ? conn_->bytes_sent() : 0);
  }

  /// Transport-level retries performed over this client's lifetime.
  uint64_t retries() const { return retries_; }
  uint64_t reconnects() const { return reconnects_; }

 private:
  RpcClient(Network* network, std::string address, ClientOptions options)
      : network_(network),
        address_(std::move(address)),
        options_(std::move(options)),
        jitter_rng_(options_.retry_seed) {}

  /// (Re)establishes the connection + AUTH handshake if needed.
  rlscommon::Status EnsureConnected();

  /// One attempt: send, await the matching response until the deadline.
  rlscommon::Status CallOnce(uint16_t opcode, const std::string& request,
                             std::string* response);

  rlscommon::Duration NextBackoff(int attempt);

  Network* network_;
  std::string address_;
  ClientOptions options_;
  rlscommon::Xoshiro256 jitter_rng_;
  ConnectionPtr conn_;
  bool ever_connected_ = false;
  uint64_t bytes_sent_prior_ = 0;  // from connections since replaced
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
  uint32_t next_request_id_ = 1;
};

}  // namespace net
