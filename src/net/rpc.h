// RPC layer: multi-threaded server + blocking client.
//
// Mirrors the original RLS server structure (§3.1): a multi-threaded
// server authenticates each connection (GSI), then services framed
// request/response messages. One server thread per connection, matching
// the thread-management overhead the paper attributes to its server.
// With ServerOptions::workers > 0 the connection threads only receive,
// authenticate and admit; execution moves to a shared worker pool fed by
// a bounded two-lane run queue, giving the server a well-defined
// overload surface (admit / shed / prioritize) instead of unbounded
// per-connection concurrency.
//
// Wire protocol: the first message on a connection must be an AUTH
// request carrying the client's DN (empty = anonymous). Subsequent
// messages are dispatched to the registered handler by opcode. Error
// responses carry {u8 error code, string message}.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gsi/gsi.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace obs {
class Span;
}

namespace net {

/// Opcode reserved for the connection handshake.
inline constexpr uint16_t kOpcodeAuth = 0;

/// Encodes a failed Status as an error-response payload.
void EncodeError(const rlscommon::Status& status, std::string* payload);

/// Decodes an error-response payload back into a Status.
rlscommon::Status DecodeError(std::string_view payload);

/// Application dispatch: (auth context, opcode, request) -> response.
/// Returning a non-OK status sends an error response; throwing is a bug.
using RpcHandler = std::function<rlscommon::Status(
    const gsi::AuthContext&, uint16_t opcode, const std::string& request,
    std::string* response)>;

/// Verdict of an admission check, made after authentication and before
/// the request is enqueued for execution. A non-OK status is returned to
/// the client immediately (the handler never sees the request);
/// `priority` routes admitted work to the protected lane that overload
/// cannot starve (soft-state updates, admin ops, stats probes).
struct AdmitDecision {
  rlscommon::Status status;
  bool priority = false;
};

/// Policy hook deciding admission per request. Runs on the connection
/// thread; must be cheap and thread-safe.
using AdmissionHook = std::function<AdmitDecision(
    const gsi::AuthContext&, uint16_t opcode, const std::string& request)>;

struct ServerOptions {
  std::string name = "rls-server";
  gsi::AuthManager auth = gsi::AuthManager::Open();

  /// When set, the server registers per-method instruments here:
  ///   rpc_requests_total{method=...}, rpc_errors_total{method=...},
  ///   rpc_request_latency_us{method=...}, rpc_active_connections.
  /// The registry must outlive the server.
  obs::Registry* metrics = nullptr;

  /// Renders an opcode as the `method` label value (e.g. rls::OpName).
  /// Unset = the decimal opcode.
  std::function<std::string(uint16_t)> opcode_name;

  /// Admission policy; unset = admit everything on the normal lane.
  AdmissionHook admission;

  /// Worker threads executing admitted requests. 0 (default) keeps the
  /// legacy thread-per-connection execution: handlers run inline on the
  /// connection thread and the run queue below is unused (admission
  /// still applies).
  int workers = 0;

  /// Normal-lane run-queue bound (requests waiting for a worker).
  /// A full lane sheds with UNAVAILABLE + retry-after instead of
  /// queueing unbounded latency. 0 = unbounded.
  std::size_t queue_depth = 0;

  /// Priority-lane bound; sized separately (and generously) so admin
  /// and soft-state traffic survives a client storm. 0 = unbounded.
  std::size_t priority_queue_depth = 0;

  /// Retry-after hint attached to queue-full sheds.
  std::chrono::milliseconds shed_retry_after{50};
};

class RpcServer {
 public:
  RpcServer(Transport* network, std::string address, ServerOptions options,
            RpcHandler handler);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers the listener; AlreadyExists if the address is taken.
  rlscommon::Status Start();

  /// Unregisters, closes all connections, joins service threads.
  void Stop();

  const std::string& address() const { return address_; }
  uint64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }
  /// Requests rejected at the run queue (queue-full sheds). Rejections
  /// made by the admission hook itself are counted by its owner.
  uint64_t requests_shed() const { return shed_.load(std::memory_order_relaxed); }
  std::size_t active_connections() const;

 private:
  /// Per-opcode instrument pointers, resolved once per opcode and cached
  /// so the request hot path does no registry (map+mutex) lookups.
  struct OpMetrics {
    std::string method;  // rendered method label for this opcode
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency = nullptr;
    // Per-stage latency histograms (rpc_stage_latency_us{method,stage}),
    // resolved lazily per stage name. The live table is published
    // copy-on-write so the tracing-enabled hot path reads it with a
    // single acquire load and a short linear scan — no lock. Retired
    // versions stay parked in `stage_versions` (a handful of tiny
    // vectors per method, freed with the server) so a racing reader can
    // never dangle.
    struct StageTable {
      std::vector<std::pair<std::string, obs::Histogram*>> entries;
    };
    std::atomic<const StageTable*> stage_table{nullptr};
    std::mutex stage_mu;  // serializes table updates only
    std::vector<std::unique_ptr<const StageTable>> stage_versions;
  };
  static constexpr std::size_t kOpcodeCacheSize = 256;

  /// One admitted request parked in the run queue. The auth context is
  /// copied at admission: the connection thread may re-authenticate
  /// mid-stream, and workers must not read a mutating context.
  /// `recv_time`/`admit_time` stamp the transport receive and admission
  /// decision instants so the request span can charge queue wait.
  struct Pending {
    std::shared_ptr<Connection> conn;
    gsi::AuthContext context;
    Message msg;
    std::chrono::steady_clock::time_point recv_time{};
    std::chrono::steady_clock::time_point admit_time{};
  };

  void ServeConnection(std::shared_ptr<Connection> conn);
  OpMetrics* MetricsFor(uint16_t opcode);

  /// Stage histogram for (opcode method, stage); created on first use.
  obs::Histogram* StageHistogram(OpMetrics* metrics, std::string_view stage);

  /// Records per-stage latencies (deltas between consecutive span hops)
  /// into the stage histograms, with the trace id as exemplar.
  void RecordStageLatencies(OpMetrics* metrics, const obs::Span& span,
                            uint64_t trace_id);

  /// Runs the handler for one admitted request and sends the reply.
  void ExecuteRequest(const std::shared_ptr<Connection>& conn,
                      const gsi::AuthContext& context, Message msg,
                      std::chrono::steady_clock::time_point recv_time,
                      std::chrono::steady_clock::time_point admit_time);

  /// Parks an admitted request on the chosen lane; UNAVAILABLE +
  /// retry-after if that lane is full.
  rlscommon::Status Enqueue(Pending pending, bool priority);
  void WorkerLoop();

  Transport* network_;
  std::string address_;
  ServerOptions options_;
  RpcHandler handler_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // Two-lane bounded run queue feeding the worker pool. Workers drain
  // the priority lane first, so soft-state/admin traffic keeps flowing
  // while the normal lane sheds under storm load.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> normal_queue_;
  std::deque<Pending> priority_queue_;
  bool queue_closed_ = false;
  std::vector<std::thread> workers_;
  obs::Counter* shed_queue_full_ = nullptr;

  // Cache slots are created lazily and retired only at destruction.
  std::array<std::atomic<OpMetrics*>, kOpcodeCacheSize> op_metrics_{};
  std::mutex op_metrics_mu_;
  std::vector<std::unique_ptr<OpMetrics>> op_metrics_storage_;

  mutable std::mutex mu_;
  uint64_t next_conn_id_ = 0;
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;
};

/// Retry policy for transient transport failures. Attempt k (0-based)
/// sleeps initial_backoff * multiplier^(k-1) before retrying, capped at
/// max_backoff, with up to ±jitter fraction of randomization so a fleet
/// of clients doesn't thunder in lock-step. Only retryable codes
/// (UNAVAILABLE, TIMEOUT — see rlscommon::IsRetryableError) are retried;
/// PROTOCOL and application errors fail immediately.
struct RetryPolicy {
  int max_attempts = 1;  // 1 = no retry
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  double multiplier = 2.0;
  double jitter = 0.2;

  /// The paper-style default for soft-state senders and chaos tests.
  static RetryPolicy Standard() {
    RetryPolicy p;
    p.max_attempts = 4;
    return p;
  }
};

struct ClientOptions {
  gsi::Credential credential;           // empty DN = anonymous
  LinkModel link = LinkModel::Loopback();

  /// The client's endpoint identity on the fabric — what the fault
  /// injector keys partitions/blackouts on. Default "client".
  std::string identity = "client";

  /// Per-call deadline; zero = wait forever (the pre-resilience
  /// behavior). When it expires the call fails with TIMEOUT.
  std::chrono::milliseconds call_timeout{0};

  RetryPolicy retry;

  /// Seed for the backoff jitter stream (deterministic chaos tests).
  uint64_t retry_seed = 0x5ca1ab1e;

  /// When set, the client counts rpc_client_retries_total,
  /// rpc_client_timeouts_total and rpc_client_reconnects_total here.
  /// The registry must outlive the client.
  obs::Registry* metrics = nullptr;

  /// First request id issued (test hook for exercising the id-wrap
  /// path; ids are monotonic and skip 0 when the counter wraps).
  uint32_t first_request_id = 1;
};

namespace detail {

/// Shared completion state behind one Future. The issuing thread, the
/// receiver thread, and any number of waiters coordinate through it.
struct CallState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  rlscommon::Status status = rlscommon::Status::Ok();
  std::string response;
  std::vector<std::function<void(const rlscommon::Status&, const std::string&)>>
      callbacks;
  bool has_deadline = false;
  rlscommon::TimePoint deadline{};
  std::string target;  // server address, for timeout messages
};

}  // namespace detail

/// Handle to one in-flight RPC issued with RpcClient::BeginCall. Copyable
/// (all copies share the call). Completion is one of: the matching
/// response arrived, the connection it was issued on retired
/// (UNAVAILABLE), or the send itself failed.
class Future {
 public:
  Future() = default;

  /// False for a default-constructed handle.
  bool valid() const { return state_ != nullptr; }

  /// True once the call completed (response, error, or retired
  /// connection). Wait() will not block.
  bool done() const;

  /// Blocks until completion or the call deadline (ClientOptions::
  /// call_timeout, measured from BeginCall). On success copies the
  /// response payload out; on deadline expiry returns TIMEOUT (the call
  /// stays in flight — a late response is discarded by id/epoch).
  rlscommon::Status Wait(std::string* response = nullptr);

  /// Registers a completion callback: runs on the receiver thread when
  /// the call completes, or inline right now if it already has. Must not
  /// block; may issue follow-up BeginCalls.
  void Then(std::function<void(const rlscommon::Status&, const std::string&)> fn);

 private:
  friend class RpcClient;
  explicit Future(std::shared_ptr<detail::CallState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CallState> state_;
};

/// Async RPC client with a blocking facade.
///
/// The core is BeginCall(opcode, payload) -> Future: requests pipeline
/// on one multiplexed connection (many outstanding request ids), and a
/// per-connection receiver thread matches responses to futures by id.
/// The classic blocking Call() is a thin retry loop over
/// BeginCall().Wait(), so every existing call site keeps its semantics
/// while benches drive the async path for true server-saturation runs.
///
/// Error taxonomy of Call():
///   UNAVAILABLE — could not reach the server (no listener, connection
///                 closed/refused, forced disconnect); retryable.
///   TIMEOUT     — no response within call_timeout; retryable.
///   PROTOCOL    — the server answered with a malformed frame; NOT
///                 retryable (garbled data won't unscramble itself).
///   anything else — the server's own application Status, verbatim.
/// Retryable failures are retried per ClientOptions::retry, reconnecting
/// (and re-authenticating) as needed between attempts. BeginCall itself
/// never retries: a pipelined caller owns its own retry policy.
///
/// Request-id lifecycle: ids are monotonic across the client's lifetime
/// (never reset on reconnect) and skip 0 on wrap. Every pending call is
/// tagged with the connection epoch it was issued on; responses arriving
/// from a retired connection are discarded, so a late reply can never
/// complete a different call that reused its id.
///
/// Thread-safe: calls may be issued concurrently from many threads.
class RpcClient {
 public:
  /// Connects and completes the AUTH handshake. A connect failure is
  /// UNAVAILABLE (retried here per the policy too).
  static rlscommon::Status Connect(Transport* network, const std::string& address,
                                   const ClientOptions& options,
                                   std::unique_ptr<RpcClient>* out);

  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Issues one call without waiting: connects if needed, assigns a
  /// request id, sends, and returns the Future tracking the response.
  /// Connect/send failures come back as an already-completed Future.
  Future BeginCall(uint16_t opcode, const std::string& request);

  /// Issues one call and waits for its response. Server-side failures
  /// come back as the server's Status; see the taxonomy above.
  rlscommon::Status Call(uint16_t opcode, const std::string& request,
                         std::string* response);

  /// Closes the connection and fails all in-flight futures UNAVAILABLE.
  void Close();

  uint64_t bytes_sent() const;

  /// Transport-level retries performed over this client's lifetime.
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  /// One in-flight call: the completion state plus the connection epoch
  /// it was issued on (responses are only matched within their epoch).
  struct PendingCall {
    uint64_t epoch = 0;
    std::shared_ptr<detail::CallState> state;
  };

  RpcClient(Transport* network, std::string address, ClientOptions options)
      : network_(network),
        address_(std::move(address)),
        options_(std::move(options)),
        jitter_rng_(options_.retry_seed),
        next_request_id_(options_.first_request_id) {}

  /// (Re)establishes the connection + AUTH handshake if needed; spawns
  /// the receiver for the new epoch. Caller holds mu_.
  rlscommon::Status EnsureConnectedLocked();

  /// Closes the current connection and joins its receiver (which fails
  /// that epoch's pending calls). Caller holds mu_.
  void RetireConnectionLocked();

  /// Drains responses off one connection until it closes.
  void ReceiverLoop(std::shared_ptr<Connection> conn, uint64_t epoch);

  void FailPendingForEpoch(uint64_t epoch, const rlscommon::Status& status);

  /// Monotonic id allocator; skips 0 on wrap. Caller holds pending_mu_.
  uint32_t NextRequestIdLocked();

  rlscommon::Duration NextBackoff(int attempt);

  Transport* network_;
  std::string address_;
  ClientOptions options_;

  // Connection lifecycle (serialized reconnects).
  mutable std::mutex mu_;
  rlscommon::Xoshiro256 jitter_rng_;     // guarded by mu_
  std::shared_ptr<Connection> conn_;     // guarded by mu_
  std::thread receiver_;                 // guarded by mu_
  uint64_t epoch_ = 0;                   // guarded by mu_
  bool ever_connected_ = false;          // guarded by mu_
  uint64_t bytes_sent_prior_ = 0;        // guarded by mu_

  // In-flight calls, shared with the receiver thread.
  std::mutex pending_mu_;
  std::map<uint32_t, PendingCall> pending_;
  uint32_t next_request_id_;  // guarded by pending_mu_

  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace net
