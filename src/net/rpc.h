// RPC layer: multi-threaded server + blocking client.
//
// Mirrors the original RLS server structure (§3.1): a multi-threaded
// server authenticates each connection (GSI), then services framed
// request/response messages. One server thread per connection, matching
// the thread-management overhead the paper attributes to its server.
//
// Wire protocol: the first message on a connection must be an AUTH
// request carrying the client's DN (empty = anonymous). Subsequent
// messages are dispatched to the registered handler by opcode. Error
// responses carry {u8 error code, string message}.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gsi/gsi.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace net {

/// Opcode reserved for the connection handshake.
inline constexpr uint16_t kOpcodeAuth = 0;

/// Encodes a failed Status as an error-response payload.
void EncodeError(const rlscommon::Status& status, std::string* payload);

/// Decodes an error-response payload back into a Status.
rlscommon::Status DecodeError(std::string_view payload);

/// Application dispatch: (auth context, opcode, request) -> response.
/// Returning a non-OK status sends an error response; throwing is a bug.
using RpcHandler = std::function<rlscommon::Status(
    const gsi::AuthContext&, uint16_t opcode, const std::string& request,
    std::string* response)>;

struct ServerOptions {
  std::string name = "rls-server";
  gsi::AuthManager auth = gsi::AuthManager::Open();

  /// When set, the server registers per-method instruments here:
  ///   rpc_requests_total{method=...}, rpc_errors_total{method=...},
  ///   rpc_request_latency_us{method=...}, rpc_active_connections.
  /// The registry must outlive the server.
  obs::Registry* metrics = nullptr;

  /// Renders an opcode as the `method` label value (e.g. rls::OpName).
  /// Unset = the decimal opcode.
  std::function<std::string(uint16_t)> opcode_name;
};

class RpcServer {
 public:
  RpcServer(Network* network, std::string address, ServerOptions options,
            RpcHandler handler);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers the listener; AlreadyExists if the address is taken.
  rlscommon::Status Start();

  /// Unregisters, closes all connections, joins service threads.
  void Stop();

  const std::string& address() const { return address_; }
  uint64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }
  std::size_t active_connections() const;

 private:
  /// Per-opcode instrument pointers, resolved once per opcode and cached
  /// so the request hot path does no registry (map+mutex) lookups.
  struct OpMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency = nullptr;
  };
  static constexpr std::size_t kOpcodeCacheSize = 256;

  void ServeConnection(std::shared_ptr<Connection> conn);
  const OpMetrics* MetricsFor(uint16_t opcode);

  Network* network_;
  std::string address_;
  ServerOptions options_;
  RpcHandler handler_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // Cache slots are created lazily and retired only at destruction.
  std::array<std::atomic<OpMetrics*>, kOpcodeCacheSize> op_metrics_{};
  std::mutex op_metrics_mu_;
  std::vector<std::unique_ptr<OpMetrics>> op_metrics_storage_;

  mutable std::mutex mu_;
  uint64_t next_conn_id_ = 0;
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;
};

struct ClientOptions {
  gsi::Credential credential;           // empty DN = anonymous
  LinkModel link = LinkModel::Loopback();
};

/// Blocking RPC client: one outstanding call at a time (use one client
/// per thread, like the paper's multi-threaded test client).
class RpcClient {
 public:
  /// Connects and completes the AUTH handshake.
  static rlscommon::Status Connect(Network* network, const std::string& address,
                                   const ClientOptions& options,
                                   std::unique_ptr<RpcClient>* out);

  /// Issues one call and waits for its response. Server-side failures
  /// come back as the server's Status.
  rlscommon::Status Call(uint16_t opcode, const std::string& request,
                         std::string* response);

  void Close() { conn_->Close(); }

  uint64_t bytes_sent() const { return conn_->bytes_sent(); }

 private:
  explicit RpcClient(ConnectionPtr conn) : conn_(std::move(conn)) {}

  ConnectionPtr conn_;
  uint32_t next_request_id_ = 1;
};

}  // namespace net
