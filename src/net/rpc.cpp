#include "net/rpc.h"

#include <algorithm>
#include <optional>

#include "common/clock.h"
#include "common/logging.h"
#include "net/serialize.h"
#include "obs/trace.h"

namespace net {

using rlscommon::ErrorCode;
using rlscommon::Status;

void EncodeError(const Status& status, std::string* payload) {
  Writer w(payload);
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  w.U32(static_cast<uint32_t>(status.retry_after().count()));
}

Status DecodeError(std::string_view payload) {
  Reader r(payload);
  uint8_t code = 0;
  std::string message;
  if (!r.U8(&code) || !r.Str(&message)) {
    return Status::Protocol("malformed error response");
  }
  Status status(static_cast<ErrorCode>(code), std::move(message));
  // Optional trailer: the server's retry-after hint (overload sheds).
  uint32_t retry_after_ms = 0;
  if (r.U32(&retry_after_ms) && retry_after_ms > 0) {
    status.WithRetryAfter(std::chrono::milliseconds(retry_after_ms));
  }
  return status;
}

RpcServer::RpcServer(Transport* network, std::string address,
                     ServerOptions options, RpcHandler handler)
    : network_(network),
      address_(std::move(address)),
      options_(std::move(options)),
      handler_(std::move(handler)) {}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  if (options_.metrics) {
    options_.metrics->RegisterCallback(
        "rpc_active_connections", "",
        [this] { return static_cast<double>(active_connections()); });
    shed_queue_full_ = options_.metrics->GetCounter(
        "rpc_shed_total", obs::Label("reason", "queue_full"));
    if (options_.workers > 0) {
      options_.metrics->RegisterCallback(
          "rpc_queue_depth", obs::Label("lane", "normal"), [this] {
            std::lock_guard<std::mutex> lock(queue_mu_);
            return static_cast<double>(normal_queue_.size());
          });
      options_.metrics->RegisterCallback(
          "rpc_queue_depth", obs::Label("lane", "priority"), [this] {
            std::lock_guard<std::mutex> lock(queue_mu_);
            return static_cast<double>(priority_queue_.size());
          });
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = false;
  }
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  Status s = network_->Listen(address_, [this](ConnectionPtr conn) {
    std::shared_ptr<Connection> shared(conn.release());
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      shared->Close();
      return;
    }
    connections_.emplace(next_conn_id_++, shared);
    threads_.emplace_back([this, shared] { ServeConnection(shared); });
  });
  if (s.ok()) started_ = true;
  return s;
}

void RpcServer::Stop() {
  if (!started_) return;
  if (options_.metrics) {
    options_.metrics->UnregisterCallback("rpc_active_connections", "");
    if (options_.workers > 0) {
      options_.metrics->UnregisterCallback("rpc_queue_depth",
                                           obs::Label("lane", "normal"));
      options_.metrics->UnregisterCallback("rpc_queue_depth",
                                           obs::Label("lane", "priority"));
    }
  }
  stopping_.store(true);
  network_->StopListening(address_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, conn] : connections_) conn->Close();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) t.join();
  // Connection threads are gone, so no more enqueues: close the run
  // queue, let workers drain what was already admitted, then join them.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections_.clear();
  }
  started_ = false;
  stopping_.store(false);
}

std::size_t RpcServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_.size();
}

RpcServer::OpMetrics* RpcServer::MetricsFor(uint16_t opcode) {
  if (!options_.metrics) return nullptr;
  // Real opcodes are all < 256; anything larger takes the locked path
  // every time rather than growing the cache unboundedly.
  const bool cacheable = opcode < kOpcodeCacheSize;
  if (cacheable) {
    OpMetrics* cached = op_metrics_[opcode].load(std::memory_order_acquire);
    if (cached) return cached;
  }
  std::lock_guard<std::mutex> lock(op_metrics_mu_);
  if (cacheable) {
    OpMetrics* cached = op_metrics_[opcode].load(std::memory_order_acquire);
    if (cached) return cached;
  }
  const std::string method = options_.opcode_name ? options_.opcode_name(opcode)
                                                  : std::to_string(opcode);
  const std::string labels = obs::Label("method", method);
  auto metrics = std::make_unique<OpMetrics>();
  metrics->method = method;
  metrics->requests = options_.metrics->GetCounter("rpc_requests_total", labels);
  metrics->errors = options_.metrics->GetCounter("rpc_errors_total", labels);
  metrics->latency =
      options_.metrics->GetHistogram("rpc_request_latency_us", labels);
  OpMetrics* raw = metrics.get();
  op_metrics_storage_.push_back(std::move(metrics));
  if (cacheable) op_metrics_[opcode].store(raw, std::memory_order_release);
  return raw;
}

obs::Histogram* RpcServer::StageHistogram(OpMetrics* metrics,
                                          std::string_view stage) {
  // Slow path: first request ever to report this (method, stage) pair.
  // Publish a copied table so concurrent readers never need the lock.
  std::lock_guard<std::mutex> lock(metrics->stage_mu);
  const OpMetrics::StageTable* current =
      metrics->stage_table.load(std::memory_order_relaxed);
  if (current) {
    for (const auto& [name, hist] : current->entries) {
      if (name == stage) return hist;
    }
  }
  const std::string labels = obs::Label("method", metrics->method) + "," +
                             obs::Label("stage", std::string(stage));
  obs::Histogram* hist =
      options_.metrics->GetHistogram("rpc_stage_latency_us", labels);
  auto next = std::make_unique<OpMetrics::StageTable>();
  if (current) next->entries = current->entries;
  next->entries.emplace_back(std::string(stage), hist);
  metrics->stage_table.store(next.get(), std::memory_order_release);
  metrics->stage_versions.push_back(std::move(next));
  return hist;
}

void RpcServer::RecordStageLatencies(OpMetrics* metrics, const obs::Span& span,
                                     uint64_t trace_id) {
  // Lock-free on the steady-state path: every worker records the same
  // handful of stages per method, so after warm-up the published table
  // answers each lookup with a short linear scan. Histograms themselves
  // are atomic-based and need no external lock.
  const OpMetrics::StageTable* table =
      metrics->stage_table.load(std::memory_order_acquire);
  uint64_t prev_us = 0;
  for (const auto& [what, at] : span.hops()) {
    const int64_t at_signed =
        std::chrono::duration_cast<std::chrono::microseconds>(at).count();
    const uint64_t at_us = at_signed > 0 ? static_cast<uint64_t>(at_signed) : 0;
    if (at_us < prev_us) continue;  // out-of-order ambient stamp; skip
    obs::Histogram* hist = nullptr;
    if (table) {
      for (const auto& [name, cached] : table->entries) {
        if (name == what) {
          hist = cached;
          break;
        }
      }
    }
    if (!hist) {
      hist = StageHistogram(metrics, what);
      table = metrics->stage_table.load(std::memory_order_acquire);
    }
    hist->RecordMicros(at_us - prev_us);
    hist->OfferExemplar(at_us - prev_us, trace_id);
    prev_us = at_us;
  }
}

void RpcServer::ExecuteRequest(const std::shared_ptr<Connection>& conn,
                               const gsi::AuthContext& context, Message msg,
                               std::chrono::steady_clock::time_point recv_time,
                               std::chrono::steady_clock::time_point admit_time) {
  Message reply;
  reply.request_id = msg.request_id;
  reply.opcode = msg.opcode;
  reply.flags = Message::kFlagResponse;
  reply.trace_id = msg.trace_id;
  reply.span_id = msg.span_id;

  OpMetrics* metrics = MetricsFor(msg.opcode);
  // Make the caller's trace ambient for the handler (and anything it
  // triggers on this thread, e.g. synchronous soft-state sends).
  obs::ScopedTrace trace(obs::TraceContext{msg.trace_id, msg.span_id});

  // The request span decomposes the lifecycle into stages: [recv ->
  // admission -> queue_wait -> (handler, which stamps auth/db_txn/
  // wal_sync/rli_ingest hops ambiently) -> handler residue -> reply].
  // Only built while tracing is active; the always-on cost of the
  // subsystem is the two clock stamps taken in ServeConnection.
  std::optional<obs::Span> span;
  if (obs::TracingActive()) {
    std::string fallback;
    if (!metrics) {
      fallback = options_.opcode_name ? options_.opcode_name(msg.opcode)
                                      : std::to_string(msg.opcode);
    }
    span.emplace("rpc", metrics ? std::string_view(metrics->method)
                                : std::string_view(fallback),
                 recv_time);
    span->Hop("admission", admit_time);
    span->Hop("queue_wait");  // admit -> a worker picked it up (inline: ~0)
  }

  rlscommon::Stopwatch timer;
  Status status = handler_(context, msg.opcode, msg.payload, &reply.payload);
  if (span) span->Hop("handler");  // handler time not claimed by inner hops
  const auto handler_elapsed = timer.Elapsed();
  if (metrics) {
    metrics->requests->Increment();
    metrics->latency->Record(handler_elapsed);
    metrics->latency->OfferExemplar(
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  handler_elapsed)
                                  .count()),
        msg.trace_id);
    if (!status.ok()) metrics->errors->Increment();
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!status.ok()) {
    reply.flags |= Message::kFlagError;
    reply.payload.clear();
    EncodeError(status, &reply.payload);
  }
  // A failed reply send means the peer is gone; nothing more to do.
  const Status send_status = conn->Send(std::move(reply));
  (void)send_status;
  if (span) {
    span->End("reply");
    if (metrics) RecordStageLatencies(metrics, *span, msg.trace_id);
    span.reset();  // completes the span: recorder entry + slow-WARN check
  }
}

Status RpcServer::Enqueue(Pending pending, bool priority) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_closed_) {
      return Status::Unavailable("server shutting down");
    }
    std::deque<Pending>& lane = priority ? priority_queue_ : normal_queue_;
    const std::size_t bound =
        priority ? options_.priority_queue_depth : options_.queue_depth;
    if (bound > 0 && lane.size() >= bound) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (shed_queue_full_) shed_queue_full_->Increment();
      return Status::Unavailable("server overloaded: request queue full")
          .WithRetryAfter(options_.shed_retry_after);
    }
    lane.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return Status::Ok();
}

void RpcServer::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return queue_closed_ || !priority_queue_.empty() ||
               !normal_queue_.empty();
      });
      // Priority lane first: under storm load the normal lane is long
      // (or shedding) while soft-state/admin work must keep flowing.
      if (!priority_queue_.empty()) {
        pending = std::move(priority_queue_.front());
        priority_queue_.pop_front();
      } else if (!normal_queue_.empty()) {
        pending = std::move(normal_queue_.front());
        normal_queue_.pop_front();
      } else {
        return;  // closed and drained
      }
    }
    ExecuteRequest(pending.conn, pending.context, std::move(pending.msg),
                   pending.recv_time, pending.admit_time);
  }
}

void RpcServer::ServeConnection(std::shared_ptr<Connection> conn) {
  gsi::AuthContext context;
  bool authenticated = false;
  const bool pooled = options_.workers > 0;
  Message msg;
  while (conn->Recv(&msg).ok()) {
    // Transport-receive stamp: the request span starts here, so run-queue
    // wait is charged to the request. With tracing off these two stamps
    // (recv here, admit below) are the subsystem's whole per-request cost.
    const auto recv_time = std::chrono::steady_clock::now();
    Status status;
    bool priority = false;
    if (msg.opcode == kOpcodeAuth) {
      gsi::Credential cred{msg.payload};
      status = options_.auth.Authenticate(cred, &context);
      authenticated = status.ok();
    } else if (!authenticated) {
      status = Status::Unauthenticated("handshake required before requests");
    } else {
      if (options_.admission) {
        AdmitDecision decision =
            options_.admission(context, msg.opcode, msg.payload);
        status = std::move(decision.status);
        priority = decision.priority;
      }
      if (status.ok()) {
        const auto admit_time = std::chrono::steady_clock::now();
        if (pooled) {
          // Hand off to the worker pool; the reply (including a
          // queue-full shed) is produced there or right below.
          status = Enqueue(Pending{conn, context, msg, recv_time, admit_time},
                           priority);
          if (status.ok()) continue;
        } else {
          ExecuteRequest(conn, context, std::move(msg), recv_time, admit_time);
          continue;
        }
      }
    }
    // Only handshake results and rejections reach here.
    Message reply;
    reply.request_id = msg.request_id;
    reply.opcode = msg.opcode;
    reply.flags = Message::kFlagResponse;
    reply.trace_id = msg.trace_id;
    reply.span_id = msg.span_id;
    if (!status.ok()) {
      reply.flags |= Message::kFlagError;
      EncodeError(status, &reply.payload);
    }
    if (!conn->Send(std::move(reply)).ok()) break;
  }
  conn->Close();
}

namespace {

/// Completes one call exactly once: latches the result, wakes waiters,
/// fires callbacks (outside the state lock).
void Complete(const std::shared_ptr<detail::CallState>& state, Status status,
              std::string response) {
  std::vector<std::function<void(const Status&, const std::string&)>> callbacks;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return;
    state->done = true;
    state->status = std::move(status);
    state->response = std::move(response);
    callbacks.swap(state->callbacks);
  }
  state->cv.notify_all();
  for (auto& fn : callbacks) fn(state->status, state->response);
}

}  // namespace

bool Future::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

Status Future::Wait(std::string* response) {
  if (!state_) return Status::Internal("wait on an invalid future");
  std::unique_lock<std::mutex> lock(state_->mu);
  if (state_->has_deadline) {
    if (!state_->cv.wait_until(lock, state_->deadline,
                               [&] { return state_->done; })) {
      return Status::Timeout("rpc deadline exceeded calling " + state_->target);
    }
  } else {
    state_->cv.wait(lock, [&] { return state_->done; });
  }
  if (state_->status.ok() && response) *response = state_->response;
  return state_->status;
}

void Future::Then(
    std::function<void(const Status&, const std::string&)> fn) {
  if (!state_) return;
  bool fire_now = false;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->done) {
      fire_now = true;
    } else {
      state_->callbacks.push_back(std::move(fn));
    }
  }
  if (fire_now) fn(state_->status, state_->response);
}

Status RpcClient::Connect(Transport* network, const std::string& address,
                          const ClientOptions& options,
                          std::unique_ptr<RpcClient>* out) {
  std::unique_ptr<RpcClient> client(
      new RpcClient(network, address, options));
  // Run the handshake through Call() so connect failures get the same
  // retry/backoff treatment as any other transient transport error.
  std::string response;
  Status s = client->Call(kOpcodeAuth, options.credential.dn, &response);
  if (!s.ok()) return s;
  *out = std::move(client);
  return Status::Ok();
}

RpcClient::~RpcClient() { Close(); }

void RpcClient::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  RetireConnectionLocked();
}

uint64_t RpcClient::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_sent_prior_ + (conn_ ? conn_->bytes_sent() : 0);
}

void RpcClient::RetireConnectionLocked() {
  if (conn_) {
    conn_->Close();
    bytes_sent_prior_ += conn_->bytes_sent();
  }
  // The receiver notices the close, fails this epoch's pending calls
  // UNAVAILABLE, and exits.
  if (receiver_.joinable()) receiver_.join();
  conn_.reset();
}

uint32_t RpcClient::NextRequestIdLocked() {
  uint32_t id = next_request_id_++;
  if (id == 0) id = next_request_id_++;  // skip 0 on wrap
  return id;
}

void RpcClient::FailPendingForEpoch(uint64_t epoch, const Status& status) {
  std::vector<std::shared_ptr<detail::CallState>> failed;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.epoch == epoch) {
        failed.push_back(std::move(it->second.state));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& state : failed) Complete(state, status, "");
}

void RpcClient::ReceiverLoop(std::shared_ptr<Connection> conn, uint64_t epoch) {
  Message msg;
  while (conn->Recv(&msg).ok()) {
    if (!msg.is_response()) continue;
    std::shared_ptr<detail::CallState> state;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      auto it = pending_.find(msg.request_id);
      // Only complete calls issued on this connection: a response
      // surfacing from a retired epoch must not complete a newer call
      // that happens to reuse the id.
      if (it != pending_.end() && it->second.epoch == epoch) {
        state = std::move(it->second.state);
        pending_.erase(it);
      }
    }
    if (!state) continue;  // stale or unknown response — discard
    if (msg.is_error()) {
      Complete(state, DecodeError(msg.payload), "");
    } else {
      Complete(state, Status::Ok(), std::move(msg.payload));
    }
  }
  FailPendingForEpoch(
      epoch, Status::Unavailable("connection closed to " + address_));
}

Status RpcClient::EnsureConnectedLocked() {
  if (conn_ && !conn_->closed()) return Status::Ok();
  RetireConnectionLocked();
  ConnectionPtr conn;
  Status s = network_->Connect(address_, options_.link, &conn,
                               options_.identity);
  if (!s.ok()) {
    // A vanished listener is a transient condition (the server may
    // restart) — surface it as retryable UNAVAILABLE, not NotFound.
    if (s.code() == ErrorCode::kNotFound) {
      return Status::Unavailable("server unreachable: " + s.message());
    }
    return s;
  }
  conn_ = std::shared_ptr<Connection>(conn.release());
  const uint64_t epoch = ++epoch_;
  std::shared_ptr<Connection> shared = conn_;
  receiver_ = std::thread(
      [this, shared, epoch] { ReceiverLoop(std::move(shared), epoch); });
  if (ever_connected_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    if (options_.metrics) {
      options_.metrics->GetCounter("rpc_client_reconnects_total")->Increment();
    }
    // Re-authenticate on the fresh connection as a pending call (the
    // receiver completes it), waiting here so no later call outruns the
    // handshake. Inline rather than via Call() to avoid recursing into
    // the retry loop.
    auto state = std::make_shared<detail::CallState>();
    state->target = address_;
    if (options_.call_timeout.count() > 0) {
      state->has_deadline = true;
      state->deadline =
          rlscommon::SystemClock::Instance()->Now() +
          std::chrono::duration_cast<rlscommon::Duration>(options_.call_timeout);
    }
    Message auth;
    auth.opcode = kOpcodeAuth;
    auth.payload = options_.credential.dn;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      auth.request_id = NextRequestIdLocked();
      pending_.emplace(auth.request_id, PendingCall{epoch, state});
    }
    const uint32_t auth_id = auth.request_id;
    s = conn_->Send(std::move(auth));
    if (!s.ok()) {
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        pending_.erase(auth_id);
      }
      return s;
    }
    s = Future(state).Wait(nullptr);
    if (!s.ok()) return s;
  }
  ever_connected_ = true;
  return Status::Ok();
}

Future RpcClient::BeginCall(uint16_t opcode, const std::string& request) {
  auto state = std::make_shared<detail::CallState>();
  state->target = address_;
  // The deadline covers send + wait: the link delay charged by Send()
  // counts against it.
  if (options_.call_timeout.count() > 0) {
    state->has_deadline = true;
    state->deadline =
        rlscommon::SystemClock::Instance()->Now() +
        std::chrono::duration_cast<rlscommon::Duration>(options_.call_timeout);
  }
  std::shared_ptr<Connection> conn;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status s = EnsureConnectedLocked();
    if (!s.ok()) {
      Complete(state, std::move(s), "");
      return Future(state);
    }
    conn = conn_;
    epoch = epoch_;
  }
  Message msg;
  msg.opcode = opcode;
  msg.payload = request;
  // Propagate the ambient trace, or start a root trace at this edge.
  // Each call gets its own span id under the trace.
  rlscommon::TraceContext trace = rlscommon::CurrentTrace();
  msg.trace_id = trace.valid() ? trace.trace_id : obs::NewTraceId();
  msg.span_id = obs::NewTraceId();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    msg.request_id = NextRequestIdLocked();
    pending_.emplace(msg.request_id, PendingCall{epoch, state});
  }
  const uint32_t request_id = msg.request_id;
  Status s = conn->Send(std::move(msg));
  if (!s.ok()) {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.erase(request_id);
    }
    Complete(state, std::move(s), "");
  }
  return Future(state);
}

rlscommon::Duration RpcClient::NextBackoff(int attempt) {
  const RetryPolicy& p = options_.retry;
  double backoff_ms = static_cast<double>(p.initial_backoff.count());
  for (int i = 1; i < attempt; ++i) backoff_ms *= p.multiplier;
  backoff_ms = std::min(backoff_ms, static_cast<double>(p.max_backoff.count()));
  if (p.jitter > 0) {
    // Uniform in [1 - jitter, 1 + jitter], from the client's own seeded
    // stream so chaos runs replay exactly.
    backoff_ms *= 1.0 + p.jitter * (2.0 * jitter_rng_.NextDouble() - 1.0);
  }
  return std::chrono::duration_cast<rlscommon::Duration>(
      std::chrono::duration<double, std::milli>(backoff_ms));
}

Status RpcClient::Call(uint16_t opcode, const std::string& request,
                       std::string* response) {
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  Status s;
  for (int attempt = 1;; ++attempt) {
    Future future = BeginCall(opcode, request);
    s = future.Wait(response);
    if (s.ok() || !rlscommon::IsRetryableError(s.code())) return s;
    if (s.code() == ErrorCode::kTimeout && options_.metrics) {
      options_.metrics->GetCounter("rpc_client_timeouts_total")->Increment();
    }
    if (attempt >= max_attempts) return s;
    // A timed-out connection may still deliver the late response; drop
    // the connection so the retry starts clean (the epoch tag on the
    // abandoned call keeps the late response from crossing over).
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn_) conn_->Close();
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (options_.metrics) {
      options_.metrics->GetCounter("rpc_client_retries_total")->Increment();
    }
    // Honor a server-provided retry-after hint (load shedding): never
    // come back sooner than the server asked, whatever the local policy.
    rlscommon::Duration backoff;
    {
      std::lock_guard<std::mutex> lock(mu_);
      backoff = NextBackoff(attempt);
    }
    const rlscommon::Duration hinted =
        std::chrono::duration_cast<rlscommon::Duration>(s.retry_after());
    if (hinted > backoff) backoff = hinted;
    if (backoff > rlscommon::Duration::zero()) {
      rlscommon::SystemClock::Instance()->SleepFor(backoff);
    }
  }
}

}  // namespace net
