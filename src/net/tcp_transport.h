// TCP implementation of the transport seam: a single epoll event-loop
// thread drives nonblocking sockets through accept/read/write state
// machines; user threads talk to it through per-connection write
// buffers (with backpressure) and the MessageQueue inbox.
//
// Wire format (little-endian, see EncodeFrame):
//   u32 frame_length                    -- bytes after this field
//   u32 request_id  u16 opcode  u8 flags  u64 trace_id  u64 span_id
//   payload[frame_length - 23]
//
// The first frame on every connection is a HELLO preamble instead
// (EncodeHello): magic "RLSH", version, the client's fault-injection
// identity, and its LinkModel (rtt_us, bandwidth_bps). That gives the
// server side the same (local, peer) identity pair and reply-direction
// pacing the in-process fabric gets for free, so FaultInjector
// scenarios and LinkModel shaping behave identically on both
// transports.
//
// Addresses: "tcp://host:port" binds/connects literally (the
// multi-process path). Any other string is a *logical* name — the
// listener binds an ephemeral port on `bind_host` and registers
// name -> "ip:port" in an in-process resolver, so tests and benches
// written against logical addresses ("lrc:fig6") run unmodified.
// ListenAddress() exposes the resolved "ip:port" for handing to a
// second process.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace net {

struct TcpOptions {
  /// Interface logical-name listeners bind on.
  std::string bind_host = "127.0.0.1";
  /// Send() blocks once this many unflushed bytes queue on a connection.
  std::size_t write_buffer_limit = 4 * 1024 * 1024;
  /// Frames beyond this are a protocol violation (connection dropped).
  std::size_t max_frame_bytes = 64 * 1024 * 1024;
  /// How long a Close()d connection may keep flushing queued replies.
  std::chrono::milliseconds close_linger{1000};
};

/// Frame codec, exposed for tests (torn-frame reassembly) and docs.
void EncodeFrame(const Message& msg, std::string* out);
bool DecodeFrameBody(std::string_view body, Message* out);
void EncodeHello(const std::string& identity, const LinkModel& link,
                 std::string* out);
bool DecodeHelloBody(std::string_view body, std::string* identity,
                     LinkModel* link);

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(
      TcpOptions options = {},
      rlscommon::Clock* clock = rlscommon::SystemClock::Instance());
  ~TcpTransport() override;

  rlscommon::Status Listen(const std::string& address,
                           AcceptHandler on_accept) override;
  void StopListening(const std::string& address) override;
  rlscommon::Status Connect(const std::string& address, const LinkModel& link,
                            ConnectionPtr* out,
                            const std::string& local_identity = "client") override;
  std::string ListenAddress(const std::string& address) const override;
  FaultInjector* EnableFaultInjection(uint64_t seed) override;
  FaultInjector* faults() override;
  rlscommon::Clock* clock() override;

 private:
  friend class TcpConnection;
  struct Conn;
  struct ListenerState;
  struct Cmd;
  struct Core;

  void LoopMain();
  void DrainCommands(bool* stop_requested);
  void HandleAccept(const std::shared_ptr<ListenerState>& listener);
  void HandleRead(const std::shared_ptr<Conn>& conn);
  void HandleWrite(const std::shared_ptr<Conn>& conn);
  bool ParseFrames(const std::shared_ptr<Conn>& conn);
  void FinishClose(const std::shared_ptr<Conn>& conn);
  void UpdateInterest(const std::shared_ptr<Conn>& conn, bool want_read,
                      bool want_write);

  std::shared_ptr<Core> core_;  // shared with connection wrappers
  std::unique_ptr<FaultInjector> faults_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ListenerState>> listeners_;  // by name

  // Loop-thread-only state.
  std::map<uint64_t, std::shared_ptr<Conn>> conns_;
  std::map<uint64_t, std::shared_ptr<ListenerState>> polling_listeners_;
  std::vector<std::shared_ptr<Conn>> lingering_;

  std::thread loop_;
};

}  // namespace net
