// The transport seam: one abstract Transport/Connection pair with two
// implementations selectable by URI scheme.
//
//   inproc://  InProcTransport — the in-process fabric with link
//              modeling. Each message charges (propagation = RTT/2) +
//              (serialization = bytes / bandwidth) before delivery,
//              blocking the sender the way a TCP send of that size
//              effectively would for these request/response protocols
//              (the paper's 100 Mbit/s LAN and LA<->Chicago WAN with
//              63.8 ms mean RTT, §5).
//   tcp://     TcpTransport (tcp_transport.h) — a real epoll socket
//              stack: nonblocking sockets, length-prefixed frames,
//              per-connection write buffers with backpressure. The
//              LinkModel degrades to an egress pacing shim there.
//
// Servers Listen() on string addresses, clients Connect() with a chosen
// LinkModel; everything above the seam (RpcServer, RpcClient, the rls
// layer, benches, chaos tests) runs unmodified on either implementation.
// MakeTransport() picks the implementation from a URI.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "net/fault.h"

namespace net {

/// One framed message. `opcode` dispatches; `flags` marks responses and
/// errors; `request_id` matches responses to calls. `trace_id`/`span_id`
/// carry the trace context of the originating client operation in the
/// frame header (common/trace_context.h); 0 = untraced.
struct Message {
  static constexpr uint8_t kFlagResponse = 1;
  static constexpr uint8_t kFlagError = 2;

  uint32_t request_id = 0;
  uint16_t opcode = 0;
  uint8_t flags = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  std::string payload;

  std::size_t WireBytes() const { return 32 + payload.size(); }  // header + body
  bool is_response() const { return flags & kFlagResponse; }
  bool is_error() const { return flags & kFlagError; }
};

/// Latency/bandwidth model of one direction of a link.
struct LinkModel {
  std::chrono::microseconds rtt{0};
  double bandwidth_bps = 0.0;  // 0 = infinite

  /// One-way delay for a message of `bytes`.
  rlscommon::Duration DelayFor(std::size_t bytes) const {
    auto delay = std::chrono::duration_cast<rlscommon::Duration>(rtt) / 2;
    if (bandwidth_bps > 0) {
      const double seconds = static_cast<double>(bytes) * 8.0 / bandwidth_bps;
      delay += std::chrono::duration_cast<rlscommon::Duration>(
          std::chrono::duration<double>(seconds));
    }
    return delay;
  }

  /// The paper's testbeds.
  static LinkModel Loopback() { return LinkModel{}; }
  static LinkModel Lan100Mbit() {
    return LinkModel{std::chrono::microseconds(200), 100e6};
  }
  static LinkModel WanLaToChicago() {
    // Mean RTT 63.8 ms (paper §5.5); ~2004 transcontinental throughput.
    return LinkModel{std::chrono::microseconds(63800), 10e6};
  }
};

/// Leaky-bucket rate limiter modeling a shared resource (e.g. a server's
/// inbound NIC): concurrent senders share `bytes_per_sec`, so aggregate
/// demand beyond the capacity stretches everyone's transfer time — the
/// mechanism behind the paper's Fig. 13 (client update times rise once
/// more than ~7 LRCs send continuous Bloom updates).
class RateLimiter {
 public:
  RateLimiter(double bytes_per_sec, rlscommon::Clock* clock)
      : bytes_per_sec_(bytes_per_sec), clock_(clock) {}

  /// Blocks until `bytes` may pass; admission is serialized at the
  /// configured rate.
  void Acquire(std::size_t bytes);

 private:
  double bytes_per_sec_;
  rlscommon::Clock* clock_;
  std::mutex mu_;
  rlscommon::TimePoint next_free_{};
};

/// MPSC-ish message queue with shutdown and an optional depth bound.
///
/// Unbounded by default (the pre-overload behavior). With `max_depth`
/// set, TryPush reports kFull instead of queueing past the bound — the
/// transport-level primitive behind load shedding: a full inbound queue
/// turns into an UNAVAILABLE + retry-after response instead of latency.
class MessageQueue {
 public:
  explicit MessageQueue(std::size_t max_depth = 0) : max_depth_(max_depth) {}

  enum class PushResult { kOk, kClosed, kFull };

  /// Enqueues; returns false after Close(). Ignores the depth bound
  /// (close/teardown control messages must never be dropped).
  bool Push(Message msg);

  /// Bound-respecting enqueue: kFull once `max_depth` messages wait.
  PushResult TryPush(Message msg);

  /// Blocks for the next message. Returns Unavailable after Close() once
  /// drained.
  rlscommon::Status Pop(Message* out);

  /// Like Pop but gives up after `timeout` (real time) with a Timeout
  /// status. Backs RPC deadlines.
  rlscommon::Status PopFor(Message* out, rlscommon::Duration timeout);

  /// Non-blocking variant; NotFound when empty.
  rlscommon::Status TryPop(Message* out);

  void Close();
  bool closed() const;

  /// Messages currently waiting (monitoring; racy by nature).
  std::size_t depth() const;
  std::size_t max_depth() const { return max_depth_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::size_t max_depth_;  // 0 = unbounded
  bool closed_ = false;
};

/// One endpoint of an established connection — the abstract half of the
/// transport seam. `local`/`peer` are the endpoint identities the fault
/// injector keys on (the listener address for the server side; the
/// client's chosen identity, default "client", for the client side).
///
/// Send/Recv semantics every implementation honors:
///   * Send charges any link delay / pacing before returning, returns
///     Unavailable once the connection is closed, and reports OK for
///     injected drops (like a lost datagram, the sender only finds out
///     via its RPC deadline);
///   * Recv blocks for the next message and returns Unavailable after
///     close once buffered messages are drained (a half-closed TCP peer
///     still gets the messages that were in flight);
///   * Close is idempotent and wakes pending Recv calls.
class Connection {
 public:
  Connection(LinkModel link, std::string peer, std::string local)
      : link_(link), peer_(std::move(peer)), local_(std::move(local)) {}
  virtual ~Connection() = default;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  virtual rlscommon::Status Send(Message msg) = 0;
  virtual rlscommon::Status Recv(Message* out) = 0;
  virtual rlscommon::Status RecvFor(Message* out, rlscommon::Duration timeout) = 0;
  virtual void Close() = 0;
  virtual bool closed() const = 0;

  const std::string& peer() const { return peer_; }
  const std::string& local() const { return local_; }
  const LinkModel& link() const { return link_; }

  uint64_t bytes_sent() const { return bytes_sent_.load(std::memory_order_relaxed); }
  uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

 protected:
  LinkModel link_;
  std::string peer_;
  std::string local_;
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_sent_{0};
};

using ConnectionPtr = std::unique_ptr<Connection>;

/// The fabric half of the seam: maps string addresses
/// ("rli.chicago:39281", "tcp://127.0.0.1:39281") to listeners.
class Transport {
 public:
  virtual ~Transport() = default;

  using AcceptHandler = std::function<void(ConnectionPtr)>;

  /// Registers a listener. AlreadyExists if the address is taken. The
  /// handler may be invoked from an internal transport thread.
  virtual rlscommon::Status Listen(const std::string& address,
                                   AcceptHandler on_accept) = 0;

  /// Removes a listener (existing connections keep working until closed).
  virtual void StopListening(const std::string& address) = 0;

  /// Establishes a connection to `address`. NotFound if nothing listens
  /// there; Unavailable if the fault injector refuses it.
  /// `local_identity` names the client side for fault targeting
  /// (partition pairs, blackouts).
  virtual rlscommon::Status Connect(const std::string& address,
                                    const LinkModel& link, ConnectionPtr* out,
                                    const std::string& local_identity = "client") = 0;

  /// Caps the aggregate inbound byte rate of one listener (models the
  /// server's NIC / access link). Only the in-process transport models
  /// this; the default is a no-op — on TCP the kernel's own flow control
  /// applies instead.
  virtual void SetInboundCapacity(const std::string& address,
                                  double bytes_per_sec) {
    (void)address;
    (void)bytes_per_sec;
  }

  /// The concrete endpoint a listener is reachable at — "ip:port" for
  /// TCP listeners (ephemeral-port resolution); the address itself for
  /// the in-process fabric. Empty if nothing listens on `address`.
  virtual std::string ListenAddress(const std::string& address) const {
    return address;
  }

  /// Installs a seeded fault injector on the fabric. Call before
  /// establishing connections (existing connections keep running
  /// fault-free). Returns the injector for scenario scripting; the
  /// transport owns it. Idempotent: a second call returns the existing
  /// injector and ignores the seed.
  virtual FaultInjector* EnableFaultInjection(uint64_t seed) = 0;

  /// The installed injector, or nullptr.
  virtual FaultInjector* faults() = 0;

  virtual rlscommon::Clock* clock() = 0;
};

/// In-process transport: message queues stitched into bidirectional
/// pipes, with link modeling and the Fig. 13 inbound-capacity limiter.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(
      rlscommon::Clock* clock = rlscommon::SystemClock::Instance())
      : clock_(clock) {}

  rlscommon::Status Listen(const std::string& address,
                           AcceptHandler on_accept) override;
  void StopListening(const std::string& address) override;
  rlscommon::Status Connect(const std::string& address, const LinkModel& link,
                            ConnectionPtr* out,
                            const std::string& local_identity = "client") override;
  void SetInboundCapacity(const std::string& address,
                          double bytes_per_sec) override;
  FaultInjector* EnableFaultInjection(uint64_t seed) override;
  FaultInjector* faults() override { return faults_.get(); }
  rlscommon::Clock* clock() override { return clock_; }

 private:
  rlscommon::Clock* clock_;
  std::unique_ptr<FaultInjector> faults_;
  mutable std::mutex mu_;
  std::map<std::string, AcceptHandler> listeners_;
  std::map<std::string, std::shared_ptr<RateLimiter>> inbound_limits_;
};

/// Historical name for the in-process fabric; most tests and benches
/// declare `net::Network` and run on either transport via the seam.
using Network = InProcTransport;

/// In-process connection endpoint (one direction of queues each way).
class InProcConnection final : public Connection {
 public:
  InProcConnection(std::shared_ptr<MessageQueue> incoming,
                   std::shared_ptr<MessageQueue> outgoing, LinkModel link,
                   rlscommon::Clock* clock, std::string peer,
                   std::shared_ptr<RateLimiter> peer_inbound = nullptr,
                   std::string local = "client", FaultInjector* faults = nullptr);
  ~InProcConnection() override { Close(); }

  rlscommon::Status Send(Message msg) override;
  rlscommon::Status Recv(Message* out) override;
  rlscommon::Status RecvFor(Message* out, rlscommon::Duration timeout) override;
  void Close() override;

  /// True once either side closed the connection (both queues close
  /// together, so checking the inbound one suffices).
  bool closed() const override { return incoming_->closed(); }

 private:
  std::shared_ptr<MessageQueue> incoming_;
  std::shared_ptr<MessageQueue> outgoing_;
  rlscommon::Clock* clock_;
  std::shared_ptr<RateLimiter> peer_inbound_;  // shared capacity at the peer
  FaultInjector* faults_;  // nullable; owned by the transport
};

/// Transport factory by URI scheme: "inproc://..." (or a bare name)
/// builds an InProcTransport; "tcp://host" builds a TcpTransport bound
/// to `host` (default 127.0.0.1). Returns nullptr for an unknown
/// scheme. The RLS_TRANSPORT environment variable conventionally feeds
/// this so one binary runs on either stack.
std::unique_ptr<Transport> MakeTransport(
    const std::string& uri,
    rlscommon::Clock* clock = rlscommon::SystemClock::Instance());

}  // namespace net
