// Binary wire codec: little-endian fixed-width integers and
// length-prefixed strings. Used by the RLS RPC protocol and the
// soft-state update payloads.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace net {

/// Append-only writer over a std::string buffer.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { AppendRaw(&v, 2); }
  void U32(uint32_t v) { AppendRaw(&v, 4); }
  void U64(uint64_t v) { AppendRaw(&v, 8); }
  void I64(int64_t v) { AppendRaw(&v, 8); }
  void F64(double v) { AppendRaw(&v, 8); }

  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s);
  }

  void StrVec(const std::vector<std::string>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (const std::string& s : v) Str(s);
  }

  /// Raw bytes without a length prefix (caller frames them).
  void Raw(std::string_view s) { out_->append(s); }

 private:
  void AppendRaw(const void* p, std::size_t n) {
    out_->append(static_cast<const char*>(p), n);
  }
  std::string* out_;
};

/// Cursor-based reader; every method returns false on underflow and the
/// caller converts to a Protocol status (Ok() helper below).
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) { return Fixed(v, 1); }
  bool U16(uint16_t* v) { return Fixed(v, 2); }
  bool U32(uint32_t* v) { return Fixed(v, 4); }
  bool U64(uint64_t* v) { return Fixed(v, 8); }
  bool I64(int64_t* v) { return Fixed(v, 8); }
  bool F64(double* v) { return Fixed(v, 8); }

  bool Str(std::string* out) {
    uint32_t len;
    if (!U32(&len) || data_.size() < len) return false;
    out->assign(data_.substr(0, len));
    data_.remove_prefix(len);
    return true;
  }

  bool StrVec(std::vector<std::string>* out) {
    uint32_t count;
    if (!U32(&count)) return false;
    // Each entry needs at least its 4-byte length prefix.
    if (static_cast<uint64_t>(count) * 4 > data_.size()) return false;
    out->clear();
    out->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string s;
      if (!Str(&s)) return false;
      out->push_back(std::move(s));
    }
    return true;
  }

  /// All remaining bytes.
  std::string_view Rest() const { return data_; }
  void Skip(std::size_t n) { data_.remove_prefix(n < data_.size() ? n : data_.size()); }

  bool AtEnd() const { return data_.empty(); }
  std::size_t remaining() const { return data_.size(); }

 private:
  bool Fixed(void* p, std::size_t n) {
    if (data_.size() < n) return false;
    std::memcpy(p, data_.data(), n);
    data_.remove_prefix(n);
    return true;
  }
  std::string_view data_;
};

/// Standard malformed-message status.
inline rlscommon::Status TruncatedMessage(std::string_view what) {
  return rlscommon::Status::Protocol("truncated message: " + std::string(what));
}

}  // namespace net
