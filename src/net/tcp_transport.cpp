#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/serialize.h"

namespace net {

using rlscommon::Status;

namespace {

constexpr uint32_t kHelloMagic = 0x48534C52;  // "RLSH" little-endian
constexpr uint16_t kHelloVersion = 1;
// Fixed frame header past the length prefix: request_id(4) opcode(2)
// flags(1) trace_id(8) span_id(8).
constexpr std::size_t kFrameHeaderBytes = 23;

std::string LastErrno() { return std::string(std::strerror(errno)); }

bool ParseHostPort(std::string_view hp, std::string* host, uint16_t* port) {
  const std::size_t colon = hp.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view digits = hp.substr(colon + 1);
  if (digits.empty()) return false;
  uint32_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 65535) return false;
  }
  *host = std::string(hp.substr(0, colon));
  *port = static_cast<uint16_t>(value);
  return true;
}

Status FillSockaddr(const std::string& host, uint16_t port, sockaddr_in* sa) {
  std::memset(sa, 0, sizeof(*sa));
  sa->sin_family = AF_INET;
  sa->sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &sa->sin_addr) != 1) {
    return Status::Protocol("not an IPv4 address: " + host);
  }
  return Status::Ok();
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void EncodeFrame(const Message& msg, std::string* out) {
  Writer w(out);
  w.U32(static_cast<uint32_t>(kFrameHeaderBytes + msg.payload.size()));
  w.U32(msg.request_id);
  w.U16(msg.opcode);
  w.U8(msg.flags);
  w.U64(msg.trace_id);
  w.U64(msg.span_id);
  w.Raw(msg.payload);
}

bool DecodeFrameBody(std::string_view body, Message* out) {
  Reader r(body);
  if (!r.U32(&out->request_id) || !r.U16(&out->opcode) || !r.U8(&out->flags) ||
      !r.U64(&out->trace_id) || !r.U64(&out->span_id)) {
    return false;
  }
  out->payload.assign(r.Rest());
  return true;
}

void EncodeHello(const std::string& identity, const LinkModel& link,
                 std::string* out) {
  std::string body;
  Writer w(&body);
  w.U32(kHelloMagic);
  w.U16(kHelloVersion);
  w.Str(identity);
  w.U64(static_cast<uint64_t>(link.rtt.count()));
  w.F64(link.bandwidth_bps);
  Writer f(out);
  f.U32(static_cast<uint32_t>(body.size()));
  f.Raw(body);
}

bool DecodeHelloBody(std::string_view body, std::string* identity,
                     LinkModel* link) {
  Reader r(body);
  uint32_t magic;
  uint16_t version;
  uint64_t rtt_us;
  double bandwidth_bps;
  if (!r.U32(&magic) || magic != kHelloMagic) return false;
  if (!r.U16(&version) || version != kHelloVersion) return false;
  if (!r.Str(identity)) return false;
  if (!r.U64(&rtt_us) || !r.F64(&bandwidth_bps)) return false;
  link->rtt = std::chrono::microseconds(rtt_us);
  link->bandwidth_bps = bandwidth_bps;
  return r.AtEnd();
}

/// Cross-thread command for the event loop.
struct TcpTransport::Cmd {
  enum Kind {
    kRegisterConn,
    kWrite,
    kCloseConn,
    kRegisterListener,
    kCloseListener,
    kStop,
  };
  Kind kind;
  std::shared_ptr<Conn> conn;
  std::shared_ptr<ListenerState> listener;
};

/// State shared by the transport, its event loop, and every connection
/// wrapper (wrappers may outlive the transport object).
struct TcpTransport::Core {
  TcpOptions options;
  rlscommon::Clock* clock = nullptr;
  std::atomic<FaultInjector*> faults{nullptr};
  std::atomic<uint64_t> next_id{1};  // 0 = the wakeup eventfd
  int epfd = -1;
  int wakefd = -1;

  std::mutex cmd_mu;
  std::vector<Cmd> cmds;
  bool stopped = false;  // guarded by cmd_mu; set after the loop joins

  void PushCmd(Cmd cmd) {
    std::lock_guard<std::mutex> lock(cmd_mu);
    if (stopped) return;
    cmds.push_back(std::move(cmd));
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakefd, &one, sizeof(one));
  }
};

struct TcpTransport::ListenerState {
  uint64_t id = 0;
  int fd = -1;
  std::string address;  // the logical (or tcp://) listen name
  std::string ip_port;  // resolved "ip:port" from getsockname
  AcceptHandler handler;
};

/// Per-socket state. The write side (wbuf and friends) is shared with
/// user threads under wmu; everything else belongs to the loop thread.
struct TcpTransport::Conn {
  uint64_t id = 0;
  int fd = -1;

  std::shared_ptr<MessageQueue> incoming = std::make_shared<MessageQueue>();

  std::mutex wmu;
  std::condition_variable wcv;
  std::string wbuf;
  bool user_closed = false;  // Close() called: flush queued bytes, then drop
  bool dead = false;         // fd closed: Send fails immediately
  std::atomic<bool> write_requested{false};

  // Loop-thread-only.
  std::string rbuf;
  bool hello_done = false;
  bool read_eof = false;
  bool want_read = true;
  bool want_write = false;
  bool lingering = false;
  std::chrono::steady_clock::time_point linger_deadline{};
  std::shared_ptr<ListenerState> listener;  // server side: owning acceptor
};

/// User-facing endpoint over one socket. Send() runs the same
/// fault-injection and LinkModel pacing decision points as the
/// in-process connection, then hands the encoded frame to the event
/// loop via the write buffer (blocking on backpressure).
class TcpConnection final : public Connection {
 public:
  TcpConnection(std::shared_ptr<TcpTransport::Core> core,
                std::shared_ptr<TcpTransport::Conn> conn, LinkModel link,
                std::string peer, std::string local)
      : Connection(link, std::move(peer), std::move(local)),
        core_(std::move(core)),
        conn_(std::move(conn)) {}
  ~TcpConnection() override { Close(); }

  Status Send(Message msg) override {
    const std::size_t bytes = msg.WireBytes();
    if (kFrameHeaderBytes + msg.payload.size() > core_->options.max_frame_bytes) {
      return Status::Protocol("frame exceeds max_frame_bytes");
    }
    rlscommon::Duration delay = link_.DelayFor(bytes);
    SendVerdict verdict = SendVerdict::kDeliver;
    if (FaultInjector* faults = core_->faults.load(std::memory_order_acquire)) {
      const uint64_t index = messages_sent_.load(std::memory_order_relaxed) + 1;
      verdict = faults->OnSend(local_, peer_, index, &delay);
    }
    if (verdict == SendVerdict::kDisconnect) {
      Close();
      return Status::Unavailable("fault: forced disconnect from " + peer_);
    }
    if (delay > rlscommon::Duration::zero()) core_->clock->SleepFor(delay);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    // A dropped message still charged the link and counts as sent — the
    // sender cannot tell; its RPC deadline will.
    if (verdict == SendVerdict::kDrop) return Status::Ok();
    std::string frame;
    EncodeFrame(msg, &frame);
    {
      std::unique_lock<std::mutex> lock(conn_->wmu);
      conn_->wcv.wait(lock, [&] {
        return conn_->user_closed || conn_->dead ||
               conn_->wbuf.size() < core_->options.write_buffer_limit;
      });
      if (conn_->user_closed || conn_->dead) {
        return Status::Unavailable("connection closed to " + peer_);
      }
      conn_->wbuf.append(frame);
    }
    if (!conn_->write_requested.exchange(true, std::memory_order_acq_rel)) {
      core_->PushCmd({TcpTransport::Cmd::kWrite, conn_, nullptr});
    }
    return Status::Ok();
  }

  Status Recv(Message* out) override { return conn_->incoming->Pop(out); }

  Status RecvFor(Message* out, rlscommon::Duration timeout) override {
    return conn_->incoming->PopFor(out, timeout);
  }

  void Close() override {
    bool first = false;
    {
      std::lock_guard<std::mutex> lock(conn_->wmu);
      if (!conn_->user_closed) {
        conn_->user_closed = true;
        first = true;
      }
    }
    if (!first) return;
    conn_->incoming->Close();
    conn_->wcv.notify_all();
    core_->PushCmd({TcpTransport::Cmd::kCloseConn, conn_, nullptr});
  }

  bool closed() const override { return conn_->incoming->closed(); }

 private:
  std::shared_ptr<TcpTransport::Core> core_;
  std::shared_ptr<TcpTransport::Conn> conn_;
};

TcpTransport::TcpTransport(TcpOptions options, rlscommon::Clock* clock)
    : core_(std::make_shared<Core>()) {
  core_->options = std::move(options);
  core_->clock = clock;
  core_->epfd = ::epoll_create1(EPOLL_CLOEXEC);
  core_->wakefd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (core_->epfd < 0 || core_->wakefd < 0) {
    std::perror("tcp transport: epoll_create1/eventfd");
    std::abort();
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;
  ::epoll_ctl(core_->epfd, EPOLL_CTL_ADD, core_->wakefd, &ev);
  loop_ = std::thread([this] { LoopMain(); });
}

TcpTransport::~TcpTransport() {
  core_->PushCmd({Cmd::kStop, nullptr, nullptr});
  loop_.join();
  {
    std::lock_guard<std::mutex> lock(core_->cmd_mu);
    core_->stopped = true;
  }
  ::close(core_->epfd);
  ::close(core_->wakefd);
}

Status TcpTransport::Listen(const std::string& address, AcceptHandler on_accept) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listeners_.count(address)) {
      return Status::AlreadyExists("address already in use: " + address);
    }
  }
  std::string host = core_->options.bind_host;
  uint16_t port = 0;  // logical names take an ephemeral port
  if (address.rfind("tcp://", 0) == 0) {
    if (!ParseHostPort(address.substr(6), &host, &port)) {
      return Status::Protocol("bad tcp listen address: " + address);
    }
  }
  sockaddr_in sa;
  Status filled = FillSockaddr(host, port, &sa);
  if (!filled.ok()) return filled;
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Unavailable("socket: " + LastErrno());
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    const Status bound =
        errno == EADDRINUSE
            ? Status::AlreadyExists("address already in use: " + address)
            : Status::Unavailable("bind " + address + ": " + LastErrno());
    ::close(fd);
    return bound;
  }
  if (::listen(fd, 256) < 0) {
    const Status listening =
        Status::Unavailable("listen " + address + ": " + LastErrno());
    ::close(fd);
    return listening;
  }
  sockaddr_in actual;
  socklen_t len = sizeof(actual);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len);
  char ip[INET_ADDRSTRLEN] = "0.0.0.0";
  ::inet_ntop(AF_INET, &actual.sin_addr, ip, sizeof(ip));
  auto listener = std::make_shared<ListenerState>();
  listener->id = core_->next_id.fetch_add(1, std::memory_order_relaxed);
  listener->fd = fd;
  listener->address = address;
  listener->ip_port = std::string(ip) + ":" + std::to_string(ntohs(actual.sin_port));
  listener->handler = std::move(on_accept);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!listeners_.emplace(address, listener).second) {
      ::close(fd);
      return Status::AlreadyExists("address already in use: " + address);
    }
  }
  core_->PushCmd({Cmd::kRegisterListener, nullptr, listener});
  return Status::Ok();
}

void TcpTransport::StopListening(const std::string& address) {
  std::shared_ptr<ListenerState> listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = listeners_.find(address);
    if (it == listeners_.end()) return;
    listener = it->second;
    listeners_.erase(it);
  }
  core_->PushCmd({Cmd::kCloseListener, nullptr, listener});
}

Status TcpTransport::Connect(const std::string& address, const LinkModel& link,
                             ConnectionPtr* out,
                             const std::string& local_identity) {
  if (FaultInjector* faults = core_->faults.load(std::memory_order_acquire)) {
    Status verdict = faults->OnConnect(local_identity, address);
    if (!verdict.ok()) return verdict;
  }
  std::string target;
  if (address.rfind("tcp://", 0) == 0) {
    target = address.substr(6);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = listeners_.find(address);
    if (it == listeners_.end()) {
      return Status::NotFound("connection refused: " + address);
    }
    target = it->second->ip_port;
  }
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(target, &host, &port) || port == 0) {
    return Status::Protocol("bad tcp address: " + address);
  }
  sockaddr_in sa;
  Status filled = FillSockaddr(host, port, &sa);
  if (!filled.ok()) return filled;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Unavailable("socket: " + LastErrno());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    const Status refused = Status::NotFound("connection refused: " + address +
                                            " (" + LastErrno() + ")");
    ::close(fd);
    return refused;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetNonBlocking(fd);
  auto conn = std::make_shared<Conn>();
  conn->id = core_->next_id.fetch_add(1, std::memory_order_relaxed);
  conn->fd = fd;
  conn->hello_done = true;  // the client sends the hello, never expects one
  EncodeHello(local_identity, link, &conn->wbuf);
  conn->write_requested.store(true, std::memory_order_release);
  core_->PushCmd({Cmd::kRegisterConn, conn, nullptr});
  *out = std::make_unique<TcpConnection>(core_, conn, link, address,
                                         local_identity);
  return Status::Ok();
}

std::string TcpTransport::ListenAddress(const std::string& address) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(address);
  return it == listeners_.end() ? std::string() : it->second->ip_port;
}

FaultInjector* TcpTransport::EnableFaultInjection(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!faults_) {
    faults_ = std::make_unique<FaultInjector>(seed, core_->clock);
    core_->faults.store(faults_.get(), std::memory_order_release);
  }
  return faults_.get();
}

FaultInjector* TcpTransport::faults() {
  return core_->faults.load(std::memory_order_acquire);
}

rlscommon::Clock* TcpTransport::clock() { return core_->clock; }

void TcpTransport::LoopMain() {
  std::vector<epoll_event> events(128);
  bool stop = false;
  while (!stop) {
    const int timeout_ms = lingering_.empty() ? -1 : 20;
    const int n =
        ::epoll_wait(core_->epfd, events.data(), static_cast<int>(events.size()),
                     timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == 0) {
        uint64_t drain;
        while (::read(core_->wakefd, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto listener_it = polling_listeners_.find(id);
      if (listener_it != polling_listeners_.end()) {
        HandleAccept(listener_it->second);
        continue;
      }
      auto conn_it = conns_.find(id);
      if (conn_it == conns_.end()) continue;
      const std::shared_ptr<Conn> conn = conn_it->second;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) HandleRead(conn);
      if (conn->fd >= 0 && (events[i].events & EPOLLOUT)) HandleWrite(conn);
    }
    DrainCommands(&stop);
    if (!lingering_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      auto it = lingering_.begin();
      while (it != lingering_.end()) {
        const std::shared_ptr<Conn> conn = *it;
        bool drained = conn->fd < 0;
        if (!drained) {
          std::lock_guard<std::mutex> lock(conn->wmu);
          drained = conn->wbuf.empty();
        }
        if (drained || now >= conn->linger_deadline) {
          it = lingering_.erase(it);
          if (conn->fd >= 0) FinishClose(conn);
        } else {
          ++it;
        }
      }
    }
  }
  // Teardown: one best-effort flush pass, then close everything.
  std::vector<std::shared_ptr<Conn>> remaining;
  remaining.reserve(conns_.size());
  for (auto& entry : conns_) remaining.push_back(entry.second);
  for (auto& conn : remaining) {
    if (conn->fd >= 0) HandleWrite(conn);
  }
  for (auto& conn : remaining) {
    if (conn->fd >= 0) FinishClose(conn);
  }
  for (auto& entry : polling_listeners_) ::close(entry.second->fd);
  polling_listeners_.clear();
  lingering_.clear();
}

void TcpTransport::DrainCommands(bool* stop_requested) {
  std::vector<Cmd> cmds;
  {
    std::lock_guard<std::mutex> lock(core_->cmd_mu);
    cmds.swap(core_->cmds);
  }
  for (Cmd& cmd : cmds) {
    switch (cmd.kind) {
      case Cmd::kRegisterListener: {
        polling_listeners_[cmd.listener->id] = cmd.listener;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = cmd.listener->id;
        ::epoll_ctl(core_->epfd, EPOLL_CTL_ADD, cmd.listener->fd, &ev);
        break;
      }
      case Cmd::kCloseListener:
        if (polling_listeners_.erase(cmd.listener->id)) {
          ::epoll_ctl(core_->epfd, EPOLL_CTL_DEL, cmd.listener->fd, nullptr);
          ::close(cmd.listener->fd);
        }
        break;
      case Cmd::kRegisterConn: {
        conns_[cmd.conn->id] = cmd.conn;
        bool pending;
        {
          std::lock_guard<std::mutex> lock(cmd.conn->wmu);
          pending = !cmd.conn->wbuf.empty();
        }
        cmd.conn->want_read = true;
        cmd.conn->want_write = pending;
        epoll_event ev{};
        ev.events = EPOLLIN | (pending ? EPOLLOUT : 0u);
        ev.data.u64 = cmd.conn->id;
        ::epoll_ctl(core_->epfd, EPOLL_CTL_ADD, cmd.conn->fd, &ev);
        break;
      }
      case Cmd::kWrite:
        if (cmd.conn->fd >= 0) HandleWrite(cmd.conn);
        break;
      case Cmd::kCloseConn: {
        const std::shared_ptr<Conn>& conn = cmd.conn;
        if (conn->fd < 0 || conn->lingering) break;
        bool drained;
        {
          std::lock_guard<std::mutex> lock(conn->wmu);
          drained = conn->wbuf.empty();
        }
        if (drained) {
          FinishClose(conn);
        } else {
          // Flush queued replies for a bounded window before dropping
          // the socket (so a response sent just before Close() lands).
          conn->lingering = true;
          conn->linger_deadline = std::chrono::steady_clock::now() +
                                  core_->options.close_linger;
          UpdateInterest(conn, /*want_read=*/false, /*want_write=*/true);
          lingering_.push_back(conn);
        }
        break;
      }
      case Cmd::kStop:
        *stop_requested = true;
        break;
    }
  }
}

void TcpTransport::HandleAccept(const std::shared_ptr<ListenerState>& listener) {
  for (;;) {
    const int fd =
        ::accept4(listener->fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->id = core_->next_id.fetch_add(1, std::memory_order_relaxed);
    conn->fd = fd;
    conn->listener = listener;
    conns_[conn->id] = conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    ::epoll_ctl(core_->epfd, EPOLL_CTL_ADD, fd, &ev);
  }
}

void TcpTransport::HandleRead(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0 || conn->read_eof) return;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->rbuf.append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      conn->read_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    FinishClose(conn);  // hard error (ECONNRESET and friends)
    return;
  }
  if (!ParseFrames(conn)) {
    FinishClose(conn);  // framing violation: drop the peer
    return;
  }
  if (conn->read_eof) {
    // Half-close: buffered messages stay poppable, the inbox reports
    // closed once drained, and our write side keeps working until the
    // user calls Close().
    conn->incoming->Close();
    UpdateInterest(conn, /*want_read=*/false, conn->want_write);
  }
}

bool TcpTransport::ParseFrames(const std::shared_ptr<Conn>& conn) {
  std::string& rbuf = conn->rbuf;
  std::size_t off = 0;
  while (rbuf.size() - off >= 4) {
    uint32_t frame_len;
    std::memcpy(&frame_len, rbuf.data() + off, 4);
    if (frame_len > core_->options.max_frame_bytes) return false;
    if (rbuf.size() - off - 4 < frame_len) break;  // torn frame: wait
    const std::string_view body(rbuf.data() + off + 4, frame_len);
    if (!conn->hello_done) {
      std::string identity;
      LinkModel link;
      if (!DecodeHelloBody(body, &identity, &link)) return false;
      conn->hello_done = true;
      if (conn->listener && conn->listener->handler) {
        // The hello names the peer and its link model, so the server
        // side gets the same fault identities and reply-direction
        // pacing the in-process fabric builds in.
        auto wrapper = std::make_unique<TcpConnection>(
            core_, conn, link, /*peer=*/identity,
            /*local=*/conn->listener->address);
        conn->listener->handler(std::move(wrapper));
      }
    } else {
      Message msg;
      if (frame_len < kFrameHeaderBytes || !DecodeFrameBody(body, &msg)) {
        return false;
      }
      conn->incoming->Push(std::move(msg));
    }
    off += 4 + static_cast<std::size_t>(frame_len);
  }
  if (off > 0) rbuf.erase(0, off);
  return true;
}

void TcpTransport::HandleWrite(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  bool fatal = false;
  bool pending;
  {
    std::unique_lock<std::mutex> lock(conn->wmu);
    while (!conn->wbuf.empty()) {
      const std::size_t chunk =
          std::min<std::size_t>(conn->wbuf.size(), 256 * 1024);
      const ssize_t n = ::send(conn->fd, conn->wbuf.data(), chunk, MSG_NOSIGNAL);
      if (n > 0) {
        conn->wbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      fatal = true;
      break;
    }
    pending = !conn->wbuf.empty();
    if (!pending) conn->write_requested.store(false, std::memory_order_release);
  }
  conn->wcv.notify_all();  // backpressure release
  if (fatal) {
    FinishClose(conn);
    return;
  }
  if (pending != conn->want_write) {
    UpdateInterest(conn, conn->want_read, pending);
  }
  if (!pending) {
    bool user_closed;
    {
      std::lock_guard<std::mutex> lock(conn->wmu);
      user_closed = conn->user_closed;
    }
    if (user_closed) FinishClose(conn);
  }
}

void TcpTransport::FinishClose(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  {
    std::lock_guard<std::mutex> lock(conn->wmu);
    conn->dead = true;
    conn->wbuf.clear();
  }
  conn->wcv.notify_all();
  conn->incoming->Close();
  ::epoll_ctl(core_->epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  conns_.erase(conn->id);
}

void TcpTransport::UpdateInterest(const std::shared_ptr<Conn>& conn,
                                  bool want_read, bool want_write) {
  if (conn->fd < 0) return;
  conn->want_read = want_read;
  conn->want_write = want_write;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(core_->epfd, EPOLL_CTL_MOD, conn->fd, &ev);
}

}  // namespace net
