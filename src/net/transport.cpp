#include "net/transport.h"

namespace net {

using rlscommon::Status;

bool MessageQueue::Push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
  return true;
}

Status MessageQueue::Pop(Message* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return Status::Unavailable("connection closed");
  *out = std::move(queue_.front());
  queue_.pop_front();
  return Status::Ok();
}

Status MessageQueue::TryPop(Message* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    return closed_ ? Status::Unavailable("connection closed")
                   : Status::NotFound("queue empty");
  }
  *out = std::move(queue_.front());
  queue_.pop_front();
  return Status::Ok();
}

void MessageQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool MessageQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

void RateLimiter::Acquire(std::size_t bytes) {
  if (bytes_per_sec_ <= 0) return;
  const auto cost = std::chrono::duration_cast<rlscommon::Duration>(
      std::chrono::duration<double>(static_cast<double>(bytes) / bytes_per_sec_));
  rlscommon::TimePoint wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const rlscommon::TimePoint now = clock_->Now();
    const rlscommon::TimePoint start = next_free_ > now ? next_free_ : now;
    next_free_ = start + cost;
    wake = next_free_;
  }
  const rlscommon::Duration delay = wake - clock_->Now();
  if (delay > rlscommon::Duration::zero()) clock_->SleepFor(delay);
}

Connection::Connection(std::shared_ptr<MessageQueue> incoming,
                       std::shared_ptr<MessageQueue> outgoing, LinkModel link,
                       rlscommon::Clock* clock, std::string peer,
                       std::shared_ptr<RateLimiter> peer_inbound)
    : incoming_(std::move(incoming)),
      outgoing_(std::move(outgoing)),
      link_(link),
      clock_(clock),
      peer_(std::move(peer)),
      peer_inbound_(std::move(peer_inbound)) {}

Status Connection::Send(Message msg) {
  const std::size_t bytes = msg.WireBytes();
  const rlscommon::Duration delay = link_.DelayFor(bytes);
  if (delay > rlscommon::Duration::zero()) clock_->SleepFor(delay);
  if (peer_inbound_) peer_inbound_->Acquire(bytes);
  if (!outgoing_->Push(std::move(msg))) {
    return Status::Unavailable("peer closed connection to " + peer_);
  }
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Connection::Recv(Message* out) { return incoming_->Pop(out); }

void Connection::Close() {
  incoming_->Close();
  outgoing_->Close();
}

Status Network::Listen(const std::string& address, AcceptHandler on_accept) {
  std::lock_guard<std::mutex> lock(mu_);
  if (listeners_.count(address)) {
    return Status::AlreadyExists("address already in use: " + address);
  }
  listeners_.emplace(address, std::move(on_accept));
  return Status::Ok();
}

void Network::StopListening(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(address);
}

void Network::SetInboundCapacity(const std::string& address, double bytes_per_sec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes_per_sec <= 0) {
    inbound_limits_.erase(address);
  } else {
    inbound_limits_[address] = std::make_shared<RateLimiter>(bytes_per_sec, clock_);
  }
}

Status Network::Connect(const std::string& address, const LinkModel& link,
                        ConnectionPtr* out) {
  AcceptHandler handler;
  std::shared_ptr<RateLimiter> inbound;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = listeners_.find(address);
    if (it == listeners_.end()) {
      return Status::NotFound("connection refused: " + address);
    }
    handler = it->second;
    auto limit = inbound_limits_.find(address);
    if (limit != inbound_limits_.end()) inbound = limit->second;
  }
  auto client_to_server = std::make_shared<MessageQueue>();
  auto server_to_client = std::make_shared<MessageQueue>();
  auto client_side = std::make_unique<Connection>(server_to_client, client_to_server,
                                                  link, clock_, address, inbound);
  auto server_side = std::make_unique<Connection>(client_to_server, server_to_client,
                                                  link, clock_, "client");
  handler(std::move(server_side));
  *out = std::move(client_side);
  return Status::Ok();
}

}  // namespace net
