#include "net/transport.h"

#include "net/tcp_transport.h"

namespace net {

using rlscommon::Status;

bool MessageQueue::Push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
  return true;
}

MessageQueue::PushResult MessageQueue::TryPush(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (max_depth_ > 0 && queue_.size() >= max_depth_) return PushResult::kFull;
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
  return PushResult::kOk;
}

std::size_t MessageQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

Status MessageQueue::Pop(Message* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return Status::Unavailable("connection closed");
  *out = std::move(queue_.front());
  queue_.pop_front();
  return Status::Ok();
}

Status MessageQueue::PopFor(Message* out, rlscommon::Duration timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout, [this] { return closed_ || !queue_.empty(); })) {
    return Status::Timeout("recv deadline exceeded");
  }
  if (queue_.empty()) return Status::Unavailable("connection closed");
  *out = std::move(queue_.front());
  queue_.pop_front();
  return Status::Ok();
}

Status MessageQueue::TryPop(Message* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    return closed_ ? Status::Unavailable("connection closed")
                   : Status::NotFound("queue empty");
  }
  *out = std::move(queue_.front());
  queue_.pop_front();
  return Status::Ok();
}

void MessageQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool MessageQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

void RateLimiter::Acquire(std::size_t bytes) {
  if (bytes_per_sec_ <= 0) return;
  const auto cost = std::chrono::duration_cast<rlscommon::Duration>(
      std::chrono::duration<double>(static_cast<double>(bytes) / bytes_per_sec_));
  rlscommon::TimePoint wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const rlscommon::TimePoint now = clock_->Now();
    const rlscommon::TimePoint start = next_free_ > now ? next_free_ : now;
    next_free_ = start + cost;
    wake = next_free_;
  }
  const rlscommon::Duration delay = wake - clock_->Now();
  if (delay > rlscommon::Duration::zero()) clock_->SleepFor(delay);
}

InProcConnection::InProcConnection(std::shared_ptr<MessageQueue> incoming,
                                   std::shared_ptr<MessageQueue> outgoing,
                                   LinkModel link, rlscommon::Clock* clock,
                                   std::string peer,
                                   std::shared_ptr<RateLimiter> peer_inbound,
                                   std::string local, FaultInjector* faults)
    : Connection(link, std::move(peer), std::move(local)),
      incoming_(std::move(incoming)),
      outgoing_(std::move(outgoing)),
      clock_(clock),
      peer_inbound_(std::move(peer_inbound)),
      faults_(faults) {}

Status InProcConnection::Send(Message msg) {
  const std::size_t bytes = msg.WireBytes();
  rlscommon::Duration delay = link_.DelayFor(bytes);
  SendVerdict verdict = SendVerdict::kDeliver;
  if (faults_) {
    const uint64_t index = messages_sent_.load(std::memory_order_relaxed) + 1;
    verdict = faults_->OnSend(local_, peer_, index, &delay);
  }
  if (verdict == SendVerdict::kDisconnect) {
    Close();
    return Status::Unavailable("fault: forced disconnect from " + peer_);
  }
  if (delay > rlscommon::Duration::zero()) clock_->SleepFor(delay);
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  // A dropped message still charged the link and counts as sent — the
  // sender cannot tell; its RPC deadline will.
  if (verdict == SendVerdict::kDrop) return Status::Ok();
  if (peer_inbound_) peer_inbound_->Acquire(bytes);
  if (!outgoing_->Push(std::move(msg))) {
    return Status::Unavailable("peer closed connection to " + peer_);
  }
  return Status::Ok();
}

Status InProcConnection::Recv(Message* out) { return incoming_->Pop(out); }

Status InProcConnection::RecvFor(Message* out, rlscommon::Duration timeout) {
  return incoming_->PopFor(out, timeout);
}

void InProcConnection::Close() {
  incoming_->Close();
  outgoing_->Close();
}

Status InProcTransport::Listen(const std::string& address, AcceptHandler on_accept) {
  std::lock_guard<std::mutex> lock(mu_);
  if (listeners_.count(address)) {
    return Status::AlreadyExists("address already in use: " + address);
  }
  listeners_.emplace(address, std::move(on_accept));
  return Status::Ok();
}

void InProcTransport::StopListening(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(address);
}

void InProcTransport::SetInboundCapacity(const std::string& address,
                                         double bytes_per_sec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes_per_sec <= 0) {
    inbound_limits_.erase(address);
  } else {
    inbound_limits_[address] = std::make_shared<RateLimiter>(bytes_per_sec, clock_);
  }
}

Status InProcTransport::Connect(const std::string& address, const LinkModel& link,
                                ConnectionPtr* out,
                                const std::string& local_identity) {
  if (faults_) {
    Status verdict = faults_->OnConnect(local_identity, address);
    if (!verdict.ok()) return verdict;
  }
  AcceptHandler handler;
  std::shared_ptr<RateLimiter> inbound;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = listeners_.find(address);
    if (it == listeners_.end()) {
      return Status::NotFound("connection refused: " + address);
    }
    handler = it->second;
    auto limit = inbound_limits_.find(address);
    if (limit != inbound_limits_.end()) inbound = limit->second;
  }
  auto client_to_server = std::make_shared<MessageQueue>();
  auto server_to_client = std::make_shared<MessageQueue>();
  auto client_side = std::make_unique<InProcConnection>(
      server_to_client, client_to_server, link, clock_, address, inbound,
      local_identity, faults_.get());
  auto server_side = std::make_unique<InProcConnection>(
      client_to_server, server_to_client, link, clock_, local_identity, nullptr,
      address, faults_.get());
  handler(std::move(server_side));
  *out = std::move(client_side);
  return Status::Ok();
}

FaultInjector* InProcTransport::EnableFaultInjection(uint64_t seed) {
  if (!faults_) faults_ = std::make_unique<FaultInjector>(seed, clock_);
  return faults_.get();
}

std::unique_ptr<Transport> MakeTransport(const std::string& uri,
                                         rlscommon::Clock* clock) {
  std::string scheme = uri;
  std::string rest;
  const std::size_t sep = uri.find("://");
  if (sep != std::string::npos) {
    scheme = uri.substr(0, sep);
    rest = uri.substr(sep + 3);
  }
  if (scheme.empty() || scheme == "inproc") {
    return std::make_unique<InProcTransport>(clock);
  }
  if (scheme == "tcp") {
    TcpOptions options;
    if (!rest.empty()) {
      // A port in the factory URI is irrelevant (listeners name their
      // own); keep only the bind host.
      const std::size_t colon = rest.find(':');
      options.bind_host = colon == std::string::npos ? rest : rest.substr(0, colon);
    }
    return std::make_unique<TcpTransport>(options, clock);
  }
  return nullptr;
}

}  // namespace net
