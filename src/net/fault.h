// Fault-injection fabric for the in-process network.
//
// The paper's soft-state argument (§4, §6) is that an RLS keeps working
// through server failure: clients tolerate transient unavailability and a
// restarted RLI reconverges from periodic full/Bloom updates. To exercise
// that claim the Network can carry a FaultInjector that perturbs traffic
// at well-defined decision points:
//
//   * per-endpoint FaultPlan: message drop probability, extra delivery
//     latency, connect-failure probability, forced disconnect after N
//     messages on a connection;
//   * partition pairs: traffic between two named endpoints fails in both
//     directions until healed;
//   * listener blackout windows: an endpoint goes dark — new connects are
//     refused and in-flight traffic to/from it is dropped — until the
//     window ends (modeling a crashed or unreachable host).
//
// All probabilistic decisions draw from one seeded xoshiro256** stream,
// so a single-threaded chaos driver replays the exact same fault
// sequence for a given seed. Every injected fault is appended to an
// event log that tests can compare across runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "common/rng.h"

namespace net {

/// Faults applied to traffic toward one endpoint (the destination name a
/// connection was established to, or the listener address on connect).
struct FaultPlan {
  /// Probability that a message toward the endpoint is silently dropped
  /// (the sender sees success; the receiver never sees the message — a
  /// lost datagram, surfaced to callers as an RPC deadline expiry).
  double drop_probability = 0.0;

  /// Probability that a Connect() attempt to the endpoint is refused
  /// with UNAVAILABLE.
  double connect_failure_probability = 0.0;

  /// Added to the link delay of every delivered message (slow path /
  /// congested peer).
  std::chrono::microseconds extra_latency{0};

  /// Force-close a connection when its (per-connection) sent-message
  /// count exceeds this value; 0 = never. Models a peer that dies
  /// mid-conversation.
  uint64_t disconnect_after_messages = 0;
};

/// What the injector did to one message or connect attempt.
enum class FaultKind : uint8_t {
  kDrop = 0,            // FaultPlan::drop_probability fired
  kDisconnect = 1,      // disconnect_after_messages exceeded
  kConnectRefused = 2,  // connect refused (probability or blackout)
  kBlackoutDrop = 3,    // message dropped because an endpoint is dark
  kPartitionDrop = 4,   // message dropped across a partition pair
};

std::string_view FaultKindName(FaultKind kind);

/// One entry of the injector's event log. `seq` is the global decision
/// order; for a fixed seed and a deterministic driver the whole log
/// replays identically.
struct FaultEvent {
  uint64_t seq = 0;
  FaultKind kind = FaultKind::kDrop;
  std::string from;  // sender endpoint identity
  std::string to;    // destination endpoint identity

  bool operator==(const FaultEvent& other) const {
    return seq == other.seq && kind == other.kind && from == other.from &&
           to == other.to;
  }
};

/// Verdict for one message send.
enum class SendVerdict { kDeliver, kDrop, kDisconnect };

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed,
                         rlscommon::Clock* clock = rlscommon::SystemClock::Instance())
      : rng_(seed), clock_(clock) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- scenario configuration ---

  void SetPlan(const std::string& endpoint, FaultPlan plan);
  void ClearPlan(const std::string& endpoint);

  /// Partitions the pair (symmetric): sends between `a` and `b` are
  /// dropped and connects refused, in both directions.
  void Partition(const std::string& a, const std::string& b);
  void Heal(const std::string& a, const std::string& b);
  void HealAllPartitions();

  /// Endpoint goes dark for `window` (Duration::max() via Blackout() for
  /// "until healed"). New connects are refused; messages to or from it
  /// are dropped.
  void BlackoutFor(const std::string& endpoint, rlscommon::Duration window);
  void Blackout(const std::string& endpoint);
  void ClearBlackout(const std::string& endpoint);
  bool IsBlackedOut(const std::string& endpoint) const;

  // --- decision points (called by the transport) ---

  /// Verdict for a Connect() from `from` to listener `to`. OK = proceed.
  rlscommon::Status OnConnect(const std::string& from, const std::string& to);

  /// Verdict for one message from `from` to `to`; `message_index` is the
  /// 1-based per-connection sent-message counter. On kDeliver,
  /// `extra_delay` receives any injected latency.
  SendVerdict OnSend(const std::string& from, const std::string& to,
                     uint64_t message_index, rlscommon::Duration* extra_delay);

  // --- introspection ---

  std::vector<FaultEvent> Events() const;
  uint64_t drops() const;
  uint64_t disconnects() const;
  uint64_t connects_refused() const;

 private:
  /// Normalized (sorted) partition key.
  static std::pair<std::string, std::string> PairKey(const std::string& a,
                                                     const std::string& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  bool BlackedOutLocked(const std::string& endpoint) const;
  void RecordLocked(FaultKind kind, const std::string& from, const std::string& to);

  mutable std::mutex mu_;
  rlscommon::Xoshiro256 rng_;
  rlscommon::Clock* clock_;
  std::map<std::string, FaultPlan> plans_;
  std::set<std::pair<std::string, std::string>> partitions_;
  std::map<std::string, rlscommon::TimePoint> blackout_until_;
  std::vector<FaultEvent> events_;
  uint64_t next_seq_ = 0;
  uint64_t drops_ = 0;
  uint64_t disconnects_ = 0;
  uint64_t connects_refused_ = 0;
};

}  // namespace net
