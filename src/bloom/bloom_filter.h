// Bloom filter (Bloom 1970), as used by the RLS for soft-state update
// compression (paper §3.4).
//
// The paper's parameters: ~10 bits per LRC mapping and 3 hash functions,
// giving a false-positive rate of about 1%. SizeForEntries implements
// that policy. The serialized form (raw bit array + header) is what an
// LRC ships to an RLI in a compressed soft-state update.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/hashing.h"
#include "common/error.h"

namespace bloom {

/// Parameters of a filter.
struct BloomParams {
  uint64_t num_bits = 0;
  uint32_t num_hashes = 3;

  bool operator==(const BloomParams&) const = default;
};

/// Paper policy: 10 bits per expected entry (e.g. 10 Mbit for 1M entries),
/// minimum 1024 bits; 3 hashes.
BloomParams SizeForEntries(uint64_t expected_entries);

/// Expected false-positive rate for `entries` keys inserted into a filter
/// with the given parameters: (1 - e^{-kn/m})^k.
double ExpectedFalsePositiveRate(const BloomParams& params, uint64_t entries);

/// Plain Bloom filter: supports Insert and Contains. Removal is NOT
/// supported (clearing bits could erase other keys); the RLS uses
/// CountingBloomFilter on the LRC side to track deletions and exports a
/// plain bitmap for the wire.
class BloomFilter {
 public:
  BloomFilter() = default;
  explicit BloomFilter(BloomParams params);

  /// Convenience: filter sized for `expected_entries` by the paper policy.
  static BloomFilter ForEntries(uint64_t expected_entries);

  void Insert(std::string_view key);
  void InsertHashed(const HashPair& h);

  /// True if the key may be in the set (false positives possible, false
  /// negatives impossible).
  bool Contains(std::string_view key) const;
  bool ContainsHashed(const HashPair& h) const;

  /// Number of Insert calls (duplicates counted).
  uint64_t insert_count() const { return insert_count_; }
  uint64_t num_bits() const { return params_.num_bits; }
  uint32_t num_hashes() const { return params_.num_hashes; }
  const BloomParams& params() const { return params_; }

  /// Number of set bits (popcount over the array).
  uint64_t CountSetBits() const;

  /// Bitwise OR of another filter with identical parameters (used when an
  /// RLI aggregates partitioned updates from one LRC).
  rlscommon::Status Merge(const BloomFilter& other);

  void Clear();

  /// Serialized size in bytes (header + bit array): this is the wire size
  /// of a compressed soft-state update.
  std::size_t SerializedBytes() const;

  /// Serializes to `out` (appends).
  void Serialize(std::string* out) const;

  /// Parses a serialized filter. Returns Protocol error on malformed input.
  static rlscommon::Status Deserialize(std::string_view data, BloomFilter* out);

  /// Direct access for tests and the RLI memory store.
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  friend class CountingBloomFilter;

  BloomParams params_;
  std::vector<uint64_t> words_;
  uint64_t insert_count_ = 0;
};

/// Counting Bloom filter (Fan et al. 2000, "Summary Cache" — reference [3]
/// of the paper): 4-bit counters support deletion. The LRC keeps one of
/// these so that mapping deletions can "unset" bits (paper §5.5 claims
/// subsequent updates are reflected by setting or unsetting bits — only
/// sound with counters). ToBloomFilter() exports the plain bitmap.
class CountingBloomFilter {
 public:
  CountingBloomFilter() = default;
  explicit CountingBloomFilter(BloomParams params);

  static CountingBloomFilter ForEntries(uint64_t expected_entries);

  void Insert(std::string_view key);

  /// Decrements the key's counters. Removing a key that was never inserted
  /// corrupts the filter, as with any counting Bloom filter; callers
  /// (LrcStore) only remove keys they previously inserted.
  void Remove(std::string_view key);

  bool Contains(std::string_view key) const;

  /// Plain bitmap snapshot (bit set where counter > 0) for the wire.
  BloomFilter ToBloomFilter() const;

  uint64_t num_bits() const { return params_.num_bits; }
  const BloomParams& params() const { return params_; }

  /// True if any counter has saturated at 15 (then Remove may leave the
  /// bit stuck set; never produces false negatives).
  bool HasSaturated() const { return saturated_; }

  void Clear();

 private:
  uint8_t GetCounter(uint64_t index) const;
  void SetCounter(uint64_t index, uint8_t value);

  BloomParams params_;
  std::vector<uint8_t> nibbles_;  // two 4-bit counters per byte
  bool saturated_ = false;
};

}  // namespace bloom
