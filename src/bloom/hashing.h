// Hash functions for Bloom filters.
//
// The paper computes "three hash values for every logical name" (§3.4).
// We derive any number of index hashes from two independent 64-bit hashes
// via the Kirsch–Mitzenmacher double-hashing construction
// g_i(x) = h1(x) + i * h2(x), which preserves the Bloom false-positive
// analysis while hashing the key only once.
#pragma once

#include <cstdint>
#include <string_view>

namespace bloom {

/// 64-bit FNV-1a.
uint64_t Fnv1a64(std::string_view data);

/// 64-bit MurmurHash3-style finalizer-based hash (xxh-like mixing), with
/// a seed so h1/h2 are independent.
uint64_t Mix64(std::string_view data, uint64_t seed);

/// Pair of independent 64-bit hashes of one key.
struct HashPair {
  uint64_t h1;
  uint64_t h2;
};

/// Hashes `key` once; index hashes are derived with IndexHash().
HashPair HashKey(std::string_view key);

/// i-th derived hash, reduced modulo `num_bits`.
inline uint64_t IndexHash(const HashPair& h, uint32_t i, uint64_t num_bits) {
  // h2 is forced odd so the stride is coprime with power-of-two sizes and
  // never zero for any size.
  return (h.h1 + static_cast<uint64_t>(i) * (h.h2 | 1)) % num_bits;
}

}  // namespace bloom
