#include "bloom/bloom_filter.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace bloom {
namespace {

constexpr uint32_t kSerialMagic = 0x424c4d31;  // "BLM1"

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU32(std::string_view& data, uint32_t* v) {
  if (data.size() < 4) return false;
  std::memcpy(v, data.data(), 4);
  data.remove_prefix(4);
  return true;
}

bool ReadU64(std::string_view& data, uint64_t* v) {
  if (data.size() < 8) return false;
  std::memcpy(v, data.data(), 8);
  data.remove_prefix(8);
  return true;
}

}  // namespace

BloomParams SizeForEntries(uint64_t expected_entries) {
  BloomParams p;
  p.num_bits = expected_entries * 10;
  if (p.num_bits < 1024) p.num_bits = 1024;
  p.num_hashes = 3;
  return p;
}

double ExpectedFalsePositiveRate(const BloomParams& params, uint64_t entries) {
  if (params.num_bits == 0) return 1.0;
  const double k = params.num_hashes;
  const double n = static_cast<double>(entries);
  const double m = static_cast<double>(params.num_bits);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

BloomFilter::BloomFilter(BloomParams params) : params_(params) {
  words_.assign((params_.num_bits + 63) / 64, 0);
}

BloomFilter BloomFilter::ForEntries(uint64_t expected_entries) {
  return BloomFilter(SizeForEntries(expected_entries));
}

void BloomFilter::Insert(std::string_view key) { InsertHashed(HashKey(key)); }

void BloomFilter::InsertHashed(const HashPair& h) {
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    uint64_t bit = IndexHash(h, i, params_.num_bits);
    words_[bit >> 6] |= (1ULL << (bit & 63));
  }
  ++insert_count_;
}

bool BloomFilter::Contains(std::string_view key) const {
  return ContainsHashed(HashKey(key));
}

bool BloomFilter::ContainsHashed(const HashPair& h) const {
  if (params_.num_bits == 0) return false;
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    uint64_t bit = IndexHash(h, i, params_.num_bits);
    if (!(words_[bit >> 6] & (1ULL << (bit & 63)))) return false;
  }
  return true;
}

uint64_t BloomFilter::CountSetBits() const {
  uint64_t total = 0;
  for (uint64_t w : words_) total += static_cast<uint64_t>(std::popcount(w));
  return total;
}

rlscommon::Status BloomFilter::Merge(const BloomFilter& other) {
  if (!(params_ == other.params_)) {
    return rlscommon::Status::InvalidArgument(
        "cannot merge Bloom filters with different parameters");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  insert_count_ += other.insert_count_;
  return rlscommon::Status::Ok();
}

void BloomFilter::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
  insert_count_ = 0;
}

std::size_t BloomFilter::SerializedBytes() const {
  return 4 + 8 + 4 + 8 + words_.size() * 8;
}

void BloomFilter::Serialize(std::string* out) const {
  AppendU32(out, kSerialMagic);
  AppendU64(out, params_.num_bits);
  AppendU32(out, params_.num_hashes);
  AppendU64(out, insert_count_);
  out->append(reinterpret_cast<const char*>(words_.data()), words_.size() * 8);
}

rlscommon::Status BloomFilter::Deserialize(std::string_view data, BloomFilter* out) {
  uint32_t magic = 0;
  if (!ReadU32(data, &magic) || magic != kSerialMagic) {
    return rlscommon::Status::Protocol("bad Bloom filter magic");
  }
  BloomParams params;
  uint32_t hashes = 0;
  uint64_t count = 0;
  if (!ReadU64(data, &params.num_bits) || !ReadU32(data, &hashes) ||
      !ReadU64(data, &count)) {
    return rlscommon::Status::Protocol("truncated Bloom filter header");
  }
  params.num_hashes = hashes;
  if (params.num_hashes == 0 || params.num_hashes > 32) {
    return rlscommon::Status::Protocol("unreasonable Bloom hash count");
  }
  const std::size_t word_count = (params.num_bits + 63) / 64;
  if (data.size() != word_count * 8) {
    return rlscommon::Status::Protocol("Bloom filter body size mismatch");
  }
  BloomFilter filter(params);
  std::memcpy(filter.words_.data(), data.data(), data.size());
  filter.insert_count_ = count;
  *out = std::move(filter);
  return rlscommon::Status::Ok();
}

CountingBloomFilter::CountingBloomFilter(BloomParams params) : params_(params) {
  nibbles_.assign((params_.num_bits + 1) / 2, 0);
}

CountingBloomFilter CountingBloomFilter::ForEntries(uint64_t expected_entries) {
  return CountingBloomFilter(SizeForEntries(expected_entries));
}

uint8_t CountingBloomFilter::GetCounter(uint64_t index) const {
  uint8_t byte = nibbles_[index >> 1];
  return (index & 1) ? (byte >> 4) : (byte & 0x0f);
}

void CountingBloomFilter::SetCounter(uint64_t index, uint8_t value) {
  uint8_t& byte = nibbles_[index >> 1];
  if (index & 1) {
    byte = static_cast<uint8_t>((byte & 0x0f) | (value << 4));
  } else {
    byte = static_cast<uint8_t>((byte & 0xf0) | (value & 0x0f));
  }
}

void CountingBloomFilter::Insert(std::string_view key) {
  HashPair h = HashKey(key);
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    uint64_t bit = IndexHash(h, i, params_.num_bits);
    uint8_t c = GetCounter(bit);
    if (c == 15) {
      saturated_ = true;  // stuck counter: never decremented below
    } else {
      SetCounter(bit, static_cast<uint8_t>(c + 1));
    }
  }
}

void CountingBloomFilter::Remove(std::string_view key) {
  HashPair h = HashKey(key);
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    uint64_t bit = IndexHash(h, i, params_.num_bits);
    uint8_t c = GetCounter(bit);
    if (c == 15) continue;  // saturated: leave stuck (no false negatives)
    if (c > 0) SetCounter(bit, static_cast<uint8_t>(c - 1));
  }
}

bool CountingBloomFilter::Contains(std::string_view key) const {
  if (params_.num_bits == 0) return false;
  HashPair h = HashKey(key);
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    uint64_t bit = IndexHash(h, i, params_.num_bits);
    if (GetCounter(bit) == 0) return false;
  }
  return true;
}

BloomFilter CountingBloomFilter::ToBloomFilter() const {
  BloomFilter out(params_);
  // Walk counters and set corresponding bits in the plain filter.
  for (uint64_t bit = 0; bit < params_.num_bits; ++bit) {
    if (GetCounter(bit) > 0) {
      out.words_[bit >> 6] |= (1ULL << (bit & 63));
    }
  }
  return out;
}

void CountingBloomFilter::Clear() {
  std::fill(nibbles_.begin(), nibbles_.end(), 0);
  saturated_ = false;
}

}  // namespace bloom
