#include "bloom/hashing.h"

#include <cstring>

namespace bloom {
namespace {

inline uint64_t Load64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Mix(uint64_t v) {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ULL;
  v ^= v >> 33;
  return v;
}

}  // namespace

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix64(std::string_view data, uint64_t seed) {
  uint64_t h = seed ^ (data.size() * 0x9e3779b97f4a7c15ULL);
  const char* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    h = Mix(h ^ Load64(p));
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tail |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  if (n) h = Mix(h ^ tail);
  return Mix(h);
}

HashPair HashKey(std::string_view key) {
  return HashPair{Mix64(key, 0x51ed27f4a7c15b97ULL), Fnv1a64(key)};
}

}  // namespace bloom
