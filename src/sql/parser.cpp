#include "sql/parser.h"

#include <cctype>

#include "sql/lexer.h"

namespace sql {
namespace {

using rlscommon::Status;

/// Token cursor with helpers; all Parse* methods return Status and write
/// through out-parameters.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status ParseStatement(Statement* out) {
    const Token& t = Peek();
    Status status;
    if (t.IsKeyword("SELECT")) {
      SelectStmt stmt;
      status = ParseSelect(&stmt);
      if (status.ok()) *out = std::move(stmt);
    } else if (t.IsKeyword("EXPLAIN")) {
      Advance();
      ExplainStmt stmt;
      status = ParseSelect(&stmt.select);
      if (status.ok()) *out = std::move(stmt);
    } else if (t.IsKeyword("INSERT")) {
      InsertStmt stmt;
      status = ParseInsert(&stmt);
      if (status.ok()) *out = std::move(stmt);
    } else if (t.IsKeyword("UPDATE")) {
      UpdateStmt stmt;
      status = ParseUpdate(&stmt);
      if (status.ok()) *out = std::move(stmt);
    } else if (t.IsKeyword("DELETE")) {
      DeleteStmt stmt;
      status = ParseDelete(&stmt);
      if (status.ok()) *out = std::move(stmt);
    } else if (t.IsKeyword("CREATE")) {
      status = ParseCreate(out);
    } else if (t.IsKeyword("DROP")) {
      DropTableStmt stmt;
      status = ParseDrop(&stmt);
      if (status.ok()) *out = std::move(stmt);
    } else if (t.IsKeyword("VACUUM")) {
      Advance();
      VacuumStmt stmt;
      if (Peek().kind == TokenKind::kIdent) stmt.table = Advance().text;
      *out = std::move(stmt);
    } else if (t.IsKeyword("BEGIN") || t.IsKeyword("START")) {
      Advance();
      if (Peek().IsKeyword("TRANSACTION")) Advance();
      *out = TxnStmt{TxnStmt::Kind::kBegin};
    } else if (t.IsKeyword("COMMIT")) {
      Advance();
      *out = TxnStmt{TxnStmt::Kind::kCommit};
    } else if (t.IsKeyword("ROLLBACK")) {
      Advance();
      *out = TxnStmt{TxnStmt::Kind::kRollback};
    } else {
      return Error("expected a statement keyword");
    }
    if (!status.ok()) return status;
    if (Peek().kind == TokenKind::kSymbol && Peek().text == ";") Advance();
    if (Peek().kind != TokenKind::kEnd) return Error("trailing input after statement");
    return Status::Ok();
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool AcceptSymbol(std::string_view sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) return Error(std::string("expected '") + std::string(sym) + "'");
    return Status::Ok();
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) return Error(std::string("expected ") + std::string(kw));
    return Status::Ok();
  }

  Status ExpectIdent(std::string* out) {
    if (Peek().kind != TokenKind::kIdent) return Error("expected identifier");
    *out = Advance().text;
    return Status::Ok();
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("SQL parse error at offset " +
                                   std::to_string(Peek().offset) + ": " + message +
                                   " (got '" + Peek().text + "')");
  }

  // column ref: ident ['.' ident]
  Status ParseColumnRef(ColumnRef* out) {
    std::string first;
    Status s = ExpectIdent(&first);
    if (!s.ok()) return s;
    if (AcceptSymbol(".")) {
      out->table = std::move(first);
      return ExpectIdent(&out->column);
    }
    out->column = std::move(first);
    return Status::Ok();
  }

  Status ParseOperand(Operand* out) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kParam:
        Advance();
        *out = Operand::Param(param_count_++);
        return Status::Ok();
      case TokenKind::kString:
        *out = Operand::Literal(rdb::Value::String(Advance().text));
        return Status::Ok();
      case TokenKind::kInt:
        *out = Operand::Literal(rdb::Value::Int(Advance().int_value));
        return Status::Ok();
      case TokenKind::kFloat:
        *out = Operand::Literal(rdb::Value::Double(Advance().float_value));
        return Status::Ok();
      case TokenKind::kIdent: {
        if (t.IsKeyword("NULL")) {
          Advance();
          *out = Operand::Literal(rdb::Value::Null());
          return Status::Ok();
        }
        ColumnRef ref;
        Status s = ParseColumnRef(&ref);
        if (!s.ok()) return s;
        *out = Operand::Column(std::move(ref));
        return Status::Ok();
      }
      default:
        return Error("expected literal, parameter or column");
    }
  }

  Status ParseCmpOp(CmpOp* out) {
    if (Peek().IsKeyword("LIKE")) {
      Advance();
      *out = CmpOp::kLike;
      return Status::Ok();
    }
    if (Peek().kind != TokenKind::kSymbol) return Error("expected comparison operator");
    const std::string& s = Peek().text;
    if (s == "=") *out = CmpOp::kEq;
    else if (s == "!=" || s == "<>") *out = CmpOp::kNe;
    else if (s == "<") *out = CmpOp::kLt;
    else if (s == "<=") *out = CmpOp::kLe;
    else if (s == ">") *out = CmpOp::kGt;
    else if (s == ">=") *out = CmpOp::kGe;
    else return Error("expected comparison operator");
    Advance();
    return Status::Ok();
  }

  Status ParsePredicate(Predicate* out) {
    Status s = ParseOperand(&out->lhs);
    if (!s.ok()) return s;
    s = ParseCmpOp(&out->op);
    if (!s.ok()) return s;
    return ParseOperand(&out->rhs);
  }

  Status ParseWhere(std::vector<Predicate>* out) {
    if (!AcceptKeyword("WHERE")) return Status::Ok();
    do {
      Predicate pred;
      Status s = ParsePredicate(&pred);
      if (!s.ok()) return s;
      out->push_back(std::move(pred));
    } while (AcceptKeyword("AND"));
    return Status::Ok();
  }

  Status ParseTableRef(TableRef* out) {
    Status s = ExpectIdent(&out->table);
    if (!s.ok()) return s;
    if (AcceptKeyword("AS")) return ExpectIdent(&out->alias);
    // Bare alias: ident not followed by a clause keyword.
    const Token& t = Peek();
    if (t.kind == TokenKind::kIdent && !t.IsKeyword("WHERE") && !t.IsKeyword("JOIN") &&
        !t.IsKeyword("ON") && !t.IsKeyword("AND") && !t.IsKeyword("LIMIT") &&
        !t.IsKeyword("INNER") && !t.IsKeyword("SET") && !t.IsKeyword("VALUES") &&
        !t.IsKeyword("ORDER") && !t.IsKeyword("OFFSET")) {
      out->alias = Advance().text;
    }
    return Status::Ok();
  }

  Status ParseSelect(SelectStmt* out) {
    Status s = ExpectKeyword("SELECT");
    if (!s.ok()) return s;
    if (AcceptSymbol("*")) {
      out->star = true;
    } else if (Peek().IsKeyword("COUNT")) {
      Advance();
      s = ExpectSymbol("(");
      if (!s.ok()) return s;
      s = ExpectSymbol("*");
      if (!s.ok()) return s;
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      out->count_star = true;
    } else {
      do {
        ColumnRef ref;
        s = ParseColumnRef(&ref);
        if (!s.ok()) return s;
        out->columns.push_back(std::move(ref));
      } while (AcceptSymbol(","));
    }
    s = ExpectKeyword("FROM");
    if (!s.ok()) return s;
    s = ParseTableRef(&out->from);
    if (!s.ok()) return s;
    while (true) {
      if (AcceptKeyword("INNER")) {
        s = ExpectKeyword("JOIN");
        if (!s.ok()) return s;
      } else if (!AcceptKeyword("JOIN")) {
        break;
      }
      JoinClause join;
      s = ParseTableRef(&join.table);
      if (!s.ok()) return s;
      s = ExpectKeyword("ON");
      if (!s.ok()) return s;
      s = ParsePredicate(&join.on);
      if (!s.ok()) return s;
      if (join.on.op != CmpOp::kEq) return Error("only equality joins are supported");
      out->joins.push_back(std::move(join));
    }
    s = ParseWhere(&out->where);
    if (!s.ok()) return s;
    if (AcceptKeyword("ORDER")) {
      s = ExpectKeyword("BY");
      if (!s.ok()) return s;
      ColumnRef ref;
      s = ParseColumnRef(&ref);
      if (!s.ok()) return s;
      out->order_by = std::move(ref);
      if (AcceptKeyword("DESC")) {
        out->order_desc = true;
      } else {
        (void)AcceptKeyword("ASC");
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInt || Peek().int_value < 0) {
        return Error("LIMIT expects a non-negative integer");
      }
      out->limit = static_cast<uint64_t>(Advance().int_value);
    }
    if (AcceptKeyword("OFFSET")) {
      if (Peek().kind != TokenKind::kInt || Peek().int_value < 0) {
        return Error("OFFSET expects a non-negative integer");
      }
      out->offset = static_cast<uint64_t>(Advance().int_value);
    }
    return Status::Ok();
  }

  Status ParseInsert(InsertStmt* out) {
    Status s = ExpectKeyword("INSERT");
    if (!s.ok()) return s;
    s = ExpectKeyword("INTO");
    if (!s.ok()) return s;
    s = ExpectIdent(&out->table);
    if (!s.ok()) return s;
    if (AcceptSymbol("(")) {
      do {
        std::string col;
        s = ExpectIdent(&col);
        if (!s.ok()) return s;
        out->columns.push_back(std::move(col));
      } while (AcceptSymbol(","));
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
    }
    s = ExpectKeyword("VALUES");
    if (!s.ok()) return s;
    do {
      s = ExpectSymbol("(");
      if (!s.ok()) return s;
      std::vector<Operand> row;
      do {
        Operand op;
        s = ParseOperand(&op);
        if (!s.ok()) return s;
        if (op.kind == Operand::Kind::kColumn) {
          return Error("column references are not allowed in VALUES");
        }
        row.push_back(std::move(op));
      } while (AcceptSymbol(","));
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      out->rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    return Status::Ok();
  }

  Status ParseUpdate(UpdateStmt* out) {
    Status s = ExpectKeyword("UPDATE");
    if (!s.ok()) return s;
    s = ExpectIdent(&out->table);
    if (!s.ok()) return s;
    s = ExpectKeyword("SET");
    if (!s.ok()) return s;
    do {
      Assignment a;
      s = ExpectIdent(&a.column);
      if (!s.ok()) return s;
      s = ExpectSymbol("=");
      if (!s.ok()) return s;
      // Detect "col = col + N" / "col = col - N".
      if (Peek().kind == TokenKind::kIdent && Peek().text == a.column &&
          Peek(1).kind == TokenKind::kSymbol &&
          (Peek(1).text == "+" || Peek(1).text == "-")) {
        Advance();  // column
        const bool negative = Advance().text == "-";
        if (Peek().kind != TokenKind::kInt) return Error("expected integer delta");
        a.is_delta = true;
        a.delta = Advance().int_value * (negative ? -1 : 1);
      } else {
        s = ParseOperand(&a.value);
        if (!s.ok()) return s;
        if (a.value.kind == Operand::Kind::kColumn) {
          return Error("only 'col = col +/- N' column expressions are supported");
        }
      }
      out->sets.push_back(std::move(a));
    } while (AcceptSymbol(","));
    return ParseWhere(&out->where);
  }

  Status ParseDelete(DeleteStmt* out) {
    Status s = ExpectKeyword("DELETE");
    if (!s.ok()) return s;
    s = ExpectKeyword("FROM");
    if (!s.ok()) return s;
    s = ExpectIdent(&out->table);
    if (!s.ok()) return s;
    return ParseWhere(&out->where);
  }

  Status ParseColumnType(rdb::ColumnDef* col) {
    const Token& t = Peek();
    if (t.IsKeyword("INT") || t.IsKeyword("INTEGER") || t.IsKeyword("BIGINT")) {
      Advance();
      col->type = rdb::ColumnType::kInt;
    } else if (t.IsKeyword("DOUBLE") || t.IsKeyword("FLOAT")) {
      Advance();
      col->type = rdb::ColumnType::kDouble;
    } else if (t.IsKeyword("TIMESTAMP")) {
      Advance();
      col->type = rdb::ColumnType::kTimestamp;
    } else if (t.IsKeyword("VARCHAR")) {
      Advance();
      col->type = rdb::ColumnType::kVarchar;
      if (AcceptSymbol("(")) {
        if (Peek().kind != TokenKind::kInt || Peek().int_value <= 0) {
          return Error("VARCHAR length must be a positive integer");
        }
        col->max_length = static_cast<uint32_t>(Advance().int_value);
        Status s = ExpectSymbol(")");
        if (!s.ok()) return s;
      }
    } else {
      return Error("expected a column type");
    }
    // Optional (N) on INT/TIMESTAMP, MySQL-style display width — ignored.
    if (col->type != rdb::ColumnType::kVarchar && AcceptSymbol("(")) {
      if (Peek().kind != TokenKind::kInt) return Error("expected display width");
      Advance();
      Status s = ExpectSymbol(")");
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }

  Status ParseCreate(Statement* out) {
    Status s = ExpectKeyword("CREATE");
    if (!s.ok()) return s;
    bool unique = AcceptKeyword("UNIQUE");
    bool ordered = AcceptKeyword("ORDERED");
    if (AcceptKeyword("INDEX")) {
      CreateIndexStmt stmt;
      stmt.unique = unique;
      stmt.ordered = ordered;
      s = ExpectIdent(&stmt.index);
      if (!s.ok()) return s;
      s = ExpectKeyword("ON");
      if (!s.ok()) return s;
      s = ExpectIdent(&stmt.table);
      if (!s.ok()) return s;
      s = ExpectSymbol("(");
      if (!s.ok()) return s;
      s = ExpectIdent(&stmt.column);
      if (!s.ok()) return s;
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      *out = std::move(stmt);
      return Status::Ok();
    }
    if (unique || ordered) return Error("expected INDEX");
    s = ExpectKeyword("TABLE");
    if (!s.ok()) return s;
    std::string table;
    s = ExpectIdent(&table);
    if (!s.ok()) return s;
    s = ExpectSymbol("(");
    if (!s.ok()) return s;
    std::vector<rdb::ColumnDef> columns;
    std::string primary_key;
    do {
      if (Peek().IsKeyword("PRIMARY")) {
        Advance();
        s = ExpectKeyword("KEY");
        if (!s.ok()) return s;
        s = ExpectSymbol("(");
        if (!s.ok()) return s;
        s = ExpectIdent(&primary_key);
        if (!s.ok()) return s;
        s = ExpectSymbol(")");
        if (!s.ok()) return s;
        continue;
      }
      rdb::ColumnDef col;
      s = ExpectIdent(&col.name);
      if (!s.ok()) return s;
      s = ParseColumnType(&col);
      if (!s.ok()) return s;
      while (true) {
        if (AcceptKeyword("NOT")) {
          s = ExpectKeyword("NULL");
          if (!s.ok()) return s;
          col.nullable = false;
        } else if (AcceptKeyword("NULL")) {
          col.nullable = true;
        } else if (AcceptKeyword("AUTO_INCREMENT")) {
          if (col.type != rdb::ColumnType::kInt) {
            return Error("AUTO_INCREMENT requires an INT column");
          }
          col.auto_increment = true;
        } else if (AcceptKeyword("PRIMARY")) {
          s = ExpectKeyword("KEY");
          if (!s.ok()) return s;
          primary_key = col.name;
        } else {
          break;
        }
      }
      columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    s = ExpectSymbol(")");
    if (!s.ok()) return s;
    CreateTableStmt stmt;
    stmt.schema = rdb::TableSchema(table, std::move(columns));
    stmt.primary_key = std::move(primary_key);
    *out = std::move(stmt);
    return Status::Ok();
  }

  Status ParseDrop(DropTableStmt* out) {
    Status s = ExpectKeyword("DROP");
    if (!s.ok()) return s;
    s = ExpectKeyword("TABLE");
    if (!s.ok()) return s;
    return ExpectIdent(&out->table);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t param_count_ = 0;
};

}  // namespace

rlscommon::Status Parse(std::string_view text, Statement* out) {
  std::vector<Token> tokens;
  rlscommon::Status status = Tokenize(text, &tokens);
  if (!status.ok()) return status;
  Parser parser(std::move(tokens));
  return parser.ParseStatement(out);
}

}  // namespace sql
