// SQL lexer for the subset the RLS issues against its back ends.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace sql {

enum class TokenKind : uint8_t {
  kIdent,    // unquoted identifier (table/column names, keywords)
  kString,   // 'quoted literal' ('' escapes a quote)
  kInt,      // integer literal
  kFloat,    // floating-point literal
  kSymbol,   // punctuation / operator, text holds it ("(", ">=", ...)
  kParam,    // '?' placeholder
  kEnd,      // end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier/symbol text or string value
  int64_t int_value = 0;
  double float_value = 0.0;
  std::size_t offset = 0; // byte offset for error messages

  /// Case-insensitive keyword test for identifiers.
  bool IsKeyword(std::string_view keyword) const;
};

/// Tokenizes `input`. Returns InvalidArgument with position info on
/// malformed input (unterminated string, stray character).
rlscommon::Status Tokenize(std::string_view input, std::vector<Token>* out);

}  // namespace sql
