#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace sql {

using rlscommon::Status;

bool Token::IsKeyword(std::string_view keyword) const {
  if (kind != TokenKind::kIdent || text.size() != keyword.size()) return false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

Status Tokenize(std::string_view input, std::vector<Token>* out) {
  out->clear();
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.kind = TokenKind::kIdent;
      tok.text = std::string(input.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        if (input[i] == '.' || input[i] == 'e' || input[i] == 'E') is_float = true;
        ++i;
      }
      std::string text(input.substr(start, i - start));
      if (is_float) {
        tok.kind = TokenKind::kFloat;
        tok.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(tok.offset));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(value);
    } else if (c == '?') {
      tok.kind = TokenKind::kParam;
      tok.text = "?";
      ++i;
    } else {
      // One- and two-character symbols.
      static constexpr std::string_view kTwoChar[] = {"<=", ">=", "!=", "<>"};
      std::string sym(1, c);
      if (i + 1 < n) {
        std::string two = {c, input[i + 1]};
        for (std::string_view t : kTwoChar) {
          if (two == t) {
            sym = two;
            break;
          }
        }
      }
      static constexpr std::string_view kSingles = "()=<>,.*+-/;";
      if (sym.size() == 1 && kSingles.find(c) == std::string_view::npos) {
        return Status::InvalidArgument(std::string("unexpected character '") + c +
                                       "' at offset " + std::to_string(i));
      }
      tok.kind = TokenKind::kSymbol;
      tok.text = sym;
      i += sym.size();
    }
    out->push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out->push_back(std::move(end));
  return Status::Ok();
}

}  // namespace sql
