#include "sql/engine.h"

#include <algorithm>
#include <functional>
#include <shared_mutex>

#include "common/strings.h"
#include "common/trace_context.h"
#include "rdb/wal_record.h"
#include "sql/parser.h"

namespace sql {
namespace {

using rdb::Rid;
using rdb::Row;
using rdb::SlotState;
using rdb::Table;
using rdb::Value;
using rlscommon::Status;

/// One table participating in a SELECT.
struct Source {
  std::string alias;
  Table* table = nullptr;
};

/// Resolved column: (source index, column index).
struct ResolvedColumn {
  std::size_t source = 0;
  std::size_t column = 0;
};

Status ResolveColumn(const std::vector<Source>& sources, const ColumnRef& ref,
                     ResolvedColumn* out) {
  if (!ref.table.empty()) {
    for (std::size_t s = 0; s < sources.size(); ++s) {
      if (sources[s].alias != ref.table) continue;
      auto col = sources[s].table->schema().FindColumn(ref.column);
      if (!col) {
        return Status::InvalidArgument("no column " + ref.ToString());
      }
      *out = {s, *col};
      return Status::Ok();
    }
    return Status::InvalidArgument("unknown table alias " + ref.table);
  }
  bool found = false;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    if (auto col = sources[s].table->schema().FindColumn(ref.column)) {
      if (found) {
        return Status::InvalidArgument("ambiguous column " + ref.column);
      }
      *out = {s, *col};
      found = true;
    }
  }
  if (!found) return Status::InvalidArgument("no column " + ref.column);
  return Status::Ok();
}

/// Operand resolved against sources: either a column or a constant value.
struct BoundOperand {
  bool is_column = false;
  ResolvedColumn column;
  Value constant;
};

Status BindOperand(const std::vector<Source>& sources, const Operand& op,
                   const std::vector<Value>& params, BoundOperand* out) {
  switch (op.kind) {
    case Operand::Kind::kColumn:
      out->is_column = true;
      return ResolveColumn(sources, op.column, &out->column);
    case Operand::Kind::kLiteral:
      out->is_column = false;
      out->constant = op.literal;
      return Status::Ok();
    case Operand::Kind::kParam:
      if (op.param_index >= params.size()) {
        return Status::InvalidArgument("parameter " + std::to_string(op.param_index + 1) +
                                       " not bound");
      }
      out->is_column = false;
      out->constant = params[op.param_index];
      return Status::Ok();
  }
  return Status::Internal("bad operand kind");
}

struct BoundPredicate {
  BoundOperand lhs;
  CmpOp op = CmpOp::kEq;
  BoundOperand rhs;
  std::size_t level = 0;  // deepest source referenced
};

std::size_t OperandLevel(const BoundOperand& op) {
  return op.is_column ? op.column.source : 0;
}

Status BindPredicate(const std::vector<Source>& sources, const Predicate& pred,
                     const std::vector<Value>& params, BoundPredicate* out) {
  Status s = BindOperand(sources, pred.lhs, params, &out->lhs);
  if (!s.ok()) return s;
  s = BindOperand(sources, pred.rhs, params, &out->rhs);
  if (!s.ok()) return s;
  out->op = pred.op;
  out->level = std::max(OperandLevel(out->lhs), OperandLevel(out->rhs));
  return Status::Ok();
}

const Value& OperandValue(const BoundOperand& op, const std::vector<Row>& current) {
  return op.is_column ? current[op.column.source][op.column.column] : op.constant;
}

bool EvalPredicate(const BoundPredicate& pred, const std::vector<Row>& current) {
  const Value& lhs = OperandValue(pred.lhs, current);
  const Value& rhs = OperandValue(pred.rhs, current);
  if (pred.op == CmpOp::kLike) {
    if (!lhs.is_string() || !rhs.is_string()) return false;
    return rlscommon::WildcardMatch(rlscommon::LikeToGlob(rhs.AsString()),
                                    lhs.AsString());
  }
  // SQL three-valued logic: any comparison with NULL is not-true, except
  // "= NULL" which we treat as IS NULL (the RLS never generates IS NULL).
  const int cmp = lhs.Compare(rhs);
  const bool has_null = lhs.is_null() || rhs.is_null();
  switch (pred.op) {
    case CmpOp::kEq: return cmp == 0 && (lhs.is_null() == rhs.is_null());
    case CmpOp::kNe: return !has_null && cmp != 0;
    case CmpOp::kLt: return !has_null && cmp < 0;
    case CmpOp::kLe: return !has_null && cmp <= 0;
    case CmpOp::kGt: return !has_null && cmp > 0;
    case CmpOp::kGe: return !has_null && cmp >= 0;
    case CmpOp::kLike: return false;  // handled above
  }
  return false;
}

/// Candidate row producer for one source: either an index lookup result
/// or a full scan.
void EnumerateSource(Table* table,
                     const std::function<void(Rid)>& emit_candidate,
                     const BoundPredicate* driver,
                     const std::vector<Row>& current,
                     std::size_t source_index) {
  if (driver) {
    // Which side names this source's column?
    const BoundOperand* col_side = nullptr;
    const BoundOperand* val_side = nullptr;
    if (driver->lhs.is_column && driver->lhs.column.source == source_index) {
      col_side = &driver->lhs;
      val_side = &driver->rhs;
    } else {
      col_side = &driver->rhs;
      val_side = &driver->lhs;
    }
    const std::string& column =
        table->schema().columns()[col_side->column.column].name;
    const Value& key = OperandValue(*val_side, current);
    if (driver->op == CmpOp::kEq) {
      if (const rdb::HashIndex* idx = table->FindHashIndex(column)) {
        std::vector<Rid> rids;
        idx->Lookup(key, &rids);
        for (Rid rid : rids) emit_candidate(rid);
        return;
      }
      if (const rdb::OrderedIndex* idx = table->FindOrderedIndex(column)) {
        std::vector<Rid> rids;
        idx->Lookup(key, &rids);
        for (Rid rid : rids) emit_candidate(rid);
        return;
      }
    } else if (driver->op == CmpOp::kLt || driver->op == CmpOp::kLe) {
      if (const rdb::OrderedIndex* idx = table->FindOrderedIndex(column)) {
        std::vector<Rid> rids;
        if (driver->op == CmpOp::kLt) {
          idx->LookupLess(key, &rids);
        } else {
          idx->LookupRange(Value::Null(), key, &rids);
        }
        for (Rid rid : rids) emit_candidate(rid);
        return;
      }
    }
  }
  table->Scan([&](Rid rid, SlotState st) {
    if (st == SlotState::kLive) emit_candidate(rid);
    return true;
  });
}

/// Picks the driving predicate for `source_index`: a predicate at this
/// level whose column side belongs to this source, whose other side is
/// already bound (constant or lower source), comparing by =, < or <=, and
/// whose column has a usable index.
const BoundPredicate* PickDriver(const std::vector<BoundPredicate>& preds,
                                 const std::vector<Source>& sources,
                                 std::size_t source_index) {
  const BoundPredicate* fallback = nullptr;
  for (const BoundPredicate& p : preds) {
    if (p.level != source_index) continue;
    const BoundOperand* col_side = nullptr;
    const BoundOperand* other = nullptr;
    if (p.lhs.is_column && p.lhs.column.source == source_index) {
      col_side = &p.lhs;
      other = &p.rhs;
    } else if (p.rhs.is_column && p.rhs.column.source == source_index) {
      col_side = &p.rhs;
      other = &p.lhs;
    }
    if (!col_side) continue;
    if (other->is_column && other->column.source >= source_index) continue;
    Table* table = sources[source_index].table;
    const std::string& column =
        table->schema().columns()[col_side->column.column].name;
    if (p.op == CmpOp::kEq &&
        (table->FindHashIndex(column) || table->FindOrderedIndex(column))) {
      return &p;  // equality with an index: best
    }
    if ((p.op == CmpOp::kLt || p.op == CmpOp::kLe) &&
        table->FindOrderedIndex(column) && !fallback) {
      fallback = &p;
    }
  }
  return fallback;
}

/// Lock manager: takes shared or exclusive table locks in a canonical
/// order (by table name) to avoid deadlocks between concurrent statements.
class TableLocks {
 public:
  void AddShared(Table* table) { Add(table, /*exclusive=*/false); }
  void AddExclusive(Table* table) { Add(table, /*exclusive=*/true); }

  void Acquire() {
    std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
      return a.table->name() < b.table->name();
    });
    entries_.erase(std::unique(entries_.begin(), entries_.end(),
                               [](const Entry& a, const Entry& b) {
                                 return a.table == b.table;
                               }),
                   entries_.end());
    for (Entry& e : entries_) {
      if (e.exclusive) {
        e.table->mutex().lock();
      } else {
        e.table->mutex().lock_shared();
      }
    }
    held_ = true;
  }

  ~TableLocks() {
    if (!held_) return;
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->exclusive) {
        it->table->mutex().unlock();
      } else {
        it->table->mutex().unlock_shared();
      }
    }
  }

 private:
  struct Entry {
    Table* table;
    bool exclusive;
  };
  void Add(Table* table, bool exclusive) {
    for (Entry& e : entries_) {
      if (e.table == table) {
        e.exclusive |= exclusive;
        return;
      }
    }
    entries_.push_back({table, exclusive});
  }
  std::vector<Entry> entries_;
  bool held_ = false;
};

}  // namespace

Status Engine::ExecuteSql(std::string_view text, const std::vector<Value>& params,
                          Session* session, ResultSet* result) {
  Statement stmt;
  Status s = Parse(text, &stmt);
  if (!s.ok()) return s;
  return Execute(stmt, params, session, result);
}

Status Engine::Execute(const Statement& stmt, const std::vector<Value>& params,
                       Session* session, ResultSet* result) {
  *result = ResultSet{};
  // Recovery profiles: hold the txn gate shared across the window
  // between applying a mutation to the tables and reserving its WAL
  // LSN, so a deferred checkpoint (group-commit wrap) can wait out that
  // window and never snapshot effects its LSN stamp would replay again.
  const bool mutating = std::holds_alternative<InsertStmt>(stmt) ||
                        std::holds_alternative<UpdateStmt>(stmt) ||
                        std::holds_alternative<DeleteStmt>(stmt);
  if (session && mutating && !session->holds_txn_gate_ &&
      db_->profile().wal_recovery) {
    db_->LockTxnGateShared();
    session->holds_txn_gate_ = true;
  }
  Status status = std::visit(
      [&](const auto& s) -> Status {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, SelectStmt>) {
          return ExecSelect(s, params, result);
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          return ExecInsert(s, params, session, result);
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          return ExecUpdate(s, params, session, result);
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          return ExecDelete(s, params, session, result);
        } else if constexpr (std::is_same_v<T, CreateTableStmt>) {
          return ExecCreateTable(s);
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          return ExecCreateIndex(s);
        } else if constexpr (std::is_same_v<T, DropTableStmt>) {
          return db_->DropTable(s.table);
        } else if constexpr (std::is_same_v<T, VacuumStmt>) {
          if (s.table.empty()) {
            db_->VacuumAll();
            return Status::Ok();
          }
          return db_->Vacuum(s.table);
        } else if constexpr (std::is_same_v<T, ExplainStmt>) {
          return ExecExplain(s, params, result);
        } else {
          return ExecTxn(s, session);
        }
      },
      stmt);
  if (!status.ok()) {
    // A failed statement outside a transaction has nothing left to
    // commit or roll back; do not keep blocking checkpoints.
    if (session && !session->in_txn_) ReleaseTxnGate(session);
    return status;
  }
  // Autocommit any buffered mutations when no transaction is open.
  if (session && !session->in_txn_ && !session->wal_buffer_.empty()) {
    session->undo_.clear();
    return CommitWal(session);
  }
  // Mutating statement that touched no rows outside a transaction: the
  // gate was taken but there is nothing to commit.
  if (session && !session->in_txn_) ReleaseTxnGate(session);
  if (session) result->last_insert_id = session->last_insert_id_;
  return Status::Ok();
}

Status Engine::ExecSelect(const SelectStmt& stmt, const std::vector<Value>& params,
                          ResultSet* result) {
  // Resolve sources.
  std::vector<Source> sources;
  auto add_source = [&](const TableRef& ref) -> Status {
    Table* table = db_->GetTable(ref.table);
    if (!table) return Status::Database("no table " + ref.table);
    const std::string& alias = ref.effective_alias();
    for (const Source& s : sources) {
      if (s.alias == alias) {
        return Status::InvalidArgument("duplicate table alias " + alias);
      }
    }
    sources.push_back({alias, table});
    return Status::Ok();
  };
  Status s = add_source(stmt.from);
  if (!s.ok()) return s;
  for (const JoinClause& join : stmt.joins) {
    s = add_source(join.table);
    if (!s.ok()) return s;
  }

  TableLocks locks;
  for (const Source& src : sources) locks.AddShared(src.table);
  locks.Acquire();

  // Bind predicates: WHERE plus JOIN ... ON conditions.
  std::vector<BoundPredicate> preds;
  preds.reserve(stmt.where.size() + stmt.joins.size());
  for (const JoinClause& join : stmt.joins) {
    BoundPredicate bp;
    s = BindPredicate(sources, join.on, params, &bp);
    if (!s.ok()) return s;
    preds.push_back(std::move(bp));
  }
  for (const Predicate& pred : stmt.where) {
    BoundPredicate bp;
    s = BindPredicate(sources, pred, params, &bp);
    if (!s.ok()) return s;
    preds.push_back(std::move(bp));
  }

  // Projection.
  std::vector<ResolvedColumn> projection;
  if (stmt.star) {
    for (std::size_t src = 0; src < sources.size(); ++src) {
      const auto& cols = sources[src].table->schema().columns();
      for (std::size_t c = 0; c < cols.size(); ++c) {
        projection.push_back({src, c});
        result->columns.push_back(sources[src].alias + "." + cols[c].name);
      }
    }
  } else if (stmt.count_star) {
    result->columns.push_back("count");
  } else {
    for (const ColumnRef& ref : stmt.columns) {
      ResolvedColumn rc;
      s = ResolveColumn(sources, ref, &rc);
      if (!s.ok()) return s;
      projection.push_back(rc);
      result->columns.push_back(ref.ToString());
    }
  }

  // ORDER BY / OFFSET disable the early-limit short circuit: every match
  // must be seen before sorting/slicing.
  ResolvedColumn order_column;
  const bool ordered = stmt.order_by.has_value() && !stmt.count_star;
  if (ordered) {
    s = ResolveColumn(sources, *stmt.order_by, &order_column);
    if (!s.ok()) return s;
  }
  const uint64_t offset = stmt.offset.value_or(0);
  const bool early_limit = stmt.limit && !ordered && offset == 0;

  uint64_t count = 0;
  bool done = false;
  std::vector<Row> current(sources.size());
  std::vector<Value> sort_keys;  // parallel to result->rows when ordered

  std::function<void(std::size_t)> bind_level = [&](std::size_t level) {
    if (done) return;
    if (level == sources.size()) {
      if (stmt.count_star) {
        ++count;
      } else {
        Row out;
        out.reserve(projection.size());
        for (const ResolvedColumn& rc : projection) {
          out.push_back(current[rc.source][rc.column]);
        }
        if (ordered) {
          sort_keys.push_back(current[order_column.source][order_column.column]);
        }
        result->rows.push_back(std::move(out));
      }
      if (early_limit && !stmt.count_star && result->rows.size() >= *stmt.limit) {
        done = true;
      }
      return;
    }
    Table* table = sources[level].table;
    const BoundPredicate* driver = PickDriver(preds, sources, level);
    EnumerateSource(
        table,
        [&](Rid rid) {
          if (done) return;
          if (!table->IsLive(rid)) {
            // Dead rid from a tombstoned index entry: the visibility
            // check still fetches and decodes the tuple (PostgreSQL
            // dead-tuple cost, paper Fig. 8).
            Row scratch;
            (void)table->ReadRow(rid, &scratch);
            return;
          }
          if (!table->ReadRow(rid, &current[level]).ok()) return;
          for (const BoundPredicate& p : preds) {
            if (p.level == level && !EvalPredicate(p, current)) return;
          }
          bind_level(level + 1);
        },
        driver, current, level);
  };
  bind_level(0);

  if (stmt.count_star) {
    result->rows.push_back({Value::Int(static_cast<int64_t>(count))});
    return Status::Ok();
  }

  if (ordered) {
    // Stable sort by key (indices first, then permute).
    std::vector<std::size_t> perm(result->rows.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      const int cmp = sort_keys[a].Compare(sort_keys[b]);
      return stmt.order_desc ? cmp > 0 : cmp < 0;
    });
    std::vector<Row> sorted;
    sorted.reserve(perm.size());
    for (std::size_t i : perm) sorted.push_back(std::move(result->rows[i]));
    result->rows = std::move(sorted);
  }
  if (offset > 0 || (stmt.limit && !early_limit)) {
    std::vector<Row> page;
    for (std::size_t i = offset; i < result->rows.size(); ++i) {
      if (stmt.limit && page.size() >= *stmt.limit) break;
      page.push_back(std::move(result->rows[i]));
    }
    result->rows = std::move(page);
  }
  return Status::Ok();
}

Status Engine::ExecExplain(const ExplainStmt& stmt, const std::vector<Value>& params,
                           ResultSet* result) {
  const SelectStmt& sel = stmt.select;
  std::vector<Source> sources;
  auto add_source = [&](const TableRef& ref) -> Status {
    Table* table = db_->GetTable(ref.table);
    if (!table) return Status::Database("no table " + ref.table);
    sources.push_back({ref.effective_alias(), table});
    return Status::Ok();
  };
  Status s = add_source(sel.from);
  if (!s.ok()) return s;
  for (const JoinClause& join : sel.joins) {
    s = add_source(join.table);
    if (!s.ok()) return s;
  }

  std::vector<BoundPredicate> preds;
  for (const JoinClause& join : sel.joins) {
    BoundPredicate bp;
    s = BindPredicate(sources, join.on, params, &bp);
    if (!s.ok()) return s;
    preds.push_back(std::move(bp));
  }
  for (const Predicate& pred : sel.where) {
    BoundPredicate bp;
    s = BindPredicate(sources, pred, params, &bp);
    if (!s.ok()) return s;
    preds.push_back(std::move(bp));
  }

  result->columns = {"source", "access_path"};
  for (std::size_t level = 0; level < sources.size(); ++level) {
    Table* table = sources[level].table;
    const BoundPredicate* driver = PickDriver(preds, sources, level);
    std::string path;
    if (driver) {
      const BoundOperand* col_side =
          (driver->lhs.is_column && driver->lhs.column.source == level)
              ? &driver->lhs
              : &driver->rhs;
      const std::string& column =
          table->schema().columns()[col_side->column.column].name;
      const char* kind = table->FindHashIndex(column) ? "hash index" : "ordered index";
      const char* op = driver->op == CmpOp::kEq ? "=" : (driver->op == CmpOp::kLt ? "<" : "<=");
      path = std::string(kind) + " on " + column + " (" + op + ")";
    } else {
      path = "sequential scan";
    }
    result->rows.push_back(
        {Value::String(sources[level].alias), Value::String(path)});
  }
  return Status::Ok();
}

Status Engine::ExecInsert(const InsertStmt& stmt, const std::vector<Value>& params,
                          Session* session, ResultSet* result) {
  Table* table = db_->GetTable(stmt.table);
  if (!table) return Status::Database("no table " + stmt.table);
  const rdb::TableSchema& schema = table->schema();

  // Map statement columns to schema positions.
  std::vector<std::size_t> positions;
  if (stmt.columns.empty()) {
    for (std::size_t i = 0; i < schema.num_columns(); ++i) positions.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      auto col = schema.FindColumn(name);
      if (!col) return Status::InvalidArgument("no column " + name + " in " + stmt.table);
      positions.push_back(*col);
    }
  }

  TableLocks locks;
  locks.AddExclusive(table);
  locks.Acquire();

  std::vector<Rid> inserted;
  for (const std::vector<Operand>& values : stmt.rows) {
    if (values.size() != positions.size()) {
      return Status::InvalidArgument("VALUES arity mismatch for " + stmt.table);
    }
    Row row(schema.num_columns(), Value::Null());
    for (std::size_t i = 0; i < values.size(); ++i) {
      BoundOperand bound;
      Status s = BindOperand({}, values[i], params, &bound);
      if (!s.ok()) return s;
      Value v = bound.constant;
      // Coerce ints into TIMESTAMP columns.
      if (schema.columns()[positions[i]].type == rdb::ColumnType::kTimestamp &&
          v.is_int()) {
        v = Value::Timestamp(v.AsInt());
      }
      row[positions[i]] = std::move(v);
    }
    Rid rid;
    int64_t auto_id = 0;
    Status s = table->Insert(row, &rid, &auto_id);
    if (!s.ok()) {
      // Statement atomicity: undo this statement's own inserts.
      for (auto it = inserted.rbegin(); it != inserted.rend(); ++it) {
        (void)table->Delete(*it);
      }
      return s;
    }
    inserted.push_back(rid);
    if (session) {
      if (auto_id != 0) {
        session->last_insert_id_ = auto_id;
        // Record the row as stored (with the assigned id) for undo.
        if (auto auto_col = schema.AutoIncrementColumn()) {
          row[*auto_col] = Value::Int(auto_id);
        }
      }
      session->undo_.push_back({UndoRecord::Kind::kInsert, stmt.table, row, {}});
      // The logged image carries the assigned auto-increment id, so WAL
      // replay re-inserts the identical row.
      rdb::AppendInsertRecord(stmt.table, row, &session->wal_buffer_);
    }
  }
  result->affected = inserted.size();
  if (session) result->last_insert_id = session->last_insert_id_;
  return Status::Ok();
}

namespace {

/// Shared match enumeration for UPDATE/DELETE (single table, exclusive
/// lock already held). Collects matching rids + row images first so
/// mutation does not disturb iteration.
Status CollectMatches(Table* table, const std::string& alias,
                      const std::vector<Predicate>& where,
                      const std::vector<Value>& params,
                      std::vector<std::pair<Rid, Row>>* out) {
  std::vector<Source> sources{{alias, table}};
  std::vector<BoundPredicate> preds;
  for (const Predicate& pred : where) {
    BoundPredicate bp;
    Status s = BindPredicate(sources, pred, params, &bp);
    if (!s.ok()) return s;
    preds.push_back(std::move(bp));
  }
  std::vector<Row> current(1);
  const BoundPredicate* driver = PickDriver(preds, sources, 0);
  EnumerateSource(
      table,
      [&](Rid rid) {
        if (!table->IsLive(rid)) {
          Row scratch;  // dead-tuple visibility fetch (see ExecSelect)
          (void)table->ReadRow(rid, &scratch);
          return;
        }
        if (!table->ReadRow(rid, &current[0]).ok()) return;
        for (const BoundPredicate& p : preds) {
          if (!EvalPredicate(p, current)) return;
        }
        out->emplace_back(rid, current[0]);
      },
      driver, current, 0);
  return Status::Ok();
}

}  // namespace

Status Engine::ExecUpdate(const UpdateStmt& stmt, const std::vector<Value>& params,
                          Session* session, ResultSet* result) {
  Table* table = db_->GetTable(stmt.table);
  if (!table) return Status::Database("no table " + stmt.table);
  const rdb::TableSchema& schema = table->schema();

  struct BoundSet {
    std::size_t column;
    bool is_delta;
    int64_t delta;
    Value value;
  };
  std::vector<BoundSet> sets;
  for (const Assignment& a : stmt.sets) {
    auto col = schema.FindColumn(a.column);
    if (!col) return Status::InvalidArgument("no column " + a.column);
    BoundSet bs;
    bs.column = *col;
    bs.is_delta = a.is_delta;
    bs.delta = a.delta;
    if (!a.is_delta) {
      BoundOperand bound;
      Status s = BindOperand({}, a.value, params, &bound);
      if (!s.ok()) return s;
      bs.value = bound.constant;
      if (schema.columns()[*col].type == rdb::ColumnType::kTimestamp &&
          bs.value.is_int()) {
        bs.value = Value::Timestamp(bs.value.AsInt());
      }
    }
    sets.push_back(std::move(bs));
  }

  TableLocks locks;
  locks.AddExclusive(table);
  locks.Acquire();

  std::vector<std::pair<Rid, Row>> matches;
  Status s = CollectMatches(table, stmt.table, stmt.where, params, &matches);
  if (!s.ok()) return s;

  for (auto& [rid, old_row] : matches) {
    Row new_row = old_row;
    for (const BoundSet& bs : sets) {
      if (bs.is_delta) {
        if (!new_row[bs.column].is_int() && !new_row[bs.column].is_timestamp()) {
          return Status::InvalidArgument("delta update on non-integer column");
        }
        new_row[bs.column] = Value::Int(new_row[bs.column].AsInt() + bs.delta);
      } else {
        new_row[bs.column] = bs.value;
      }
    }
    Rid new_rid;
    s = table->Update(rid, new_row, &new_rid);
    if (!s.ok()) return s;
    if (session) {
      session->undo_.push_back({UndoRecord::Kind::kUpdate, stmt.table, new_row, old_row});
      // Both images: replay locates the row by its old value before
      // installing the new one.
      rdb::AppendUpdateRecord(stmt.table, old_row, new_row, &session->wal_buffer_);
    }
    ++result->affected;
  }
  return Status::Ok();
}

Status Engine::ExecDelete(const DeleteStmt& stmt, const std::vector<Value>& params,
                          Session* session, ResultSet* result) {
  Table* table = db_->GetTable(stmt.table);
  if (!table) return Status::Database("no table " + stmt.table);

  TableLocks locks;
  locks.AddExclusive(table);
  locks.Acquire();

  std::vector<std::pair<Rid, Row>> matches;
  Status s = CollectMatches(table, stmt.table, stmt.where, params, &matches);
  if (!s.ok()) return s;

  for (auto& [rid, old_row] : matches) {
    s = table->Delete(rid);
    if (!s.ok()) return s;
    if (session) {
      session->undo_.push_back({UndoRecord::Kind::kDelete, stmt.table, {}, old_row});
      rdb::AppendDeleteRecord(stmt.table, old_row, &session->wal_buffer_);
    }
    ++result->affected;
  }
  return Status::Ok();
}

Status Engine::ExecCreateTable(const CreateTableStmt& stmt) {
  Status s = db_->CreateTable(stmt.schema);
  if (!s.ok()) return s;
  if (!stmt.primary_key.empty()) {
    Table* table = db_->GetTable(stmt.schema.name());
    std::unique_lock<std::shared_mutex> lock(table->mutex());
    return table->CreateIndex("pk_" + stmt.schema.name(), stmt.primary_key,
                              rdb::IndexKind::kHash, /*unique=*/true);
  }
  return Status::Ok();
}

Status Engine::ExecCreateIndex(const CreateIndexStmt& stmt) {
  Table* table = db_->GetTable(stmt.table);
  if (!table) return Status::Database("no table " + stmt.table);
  std::unique_lock<std::shared_mutex> lock(table->mutex());
  return table->CreateIndex(stmt.index, stmt.column,
                            stmt.ordered ? rdb::IndexKind::kOrdered
                                         : rdb::IndexKind::kHash,
                            stmt.unique);
}

Status Engine::ExecTxn(const TxnStmt& stmt, Session* session) {
  if (!session) return Status::InvalidArgument("transaction statements need a session");
  switch (stmt.kind) {
    case TxnStmt::Kind::kBegin:
      if (session->in_txn_) return Status::InvalidArgument("transaction already open");
      session->in_txn_ = true;
      session->undo_.clear();
      session->wal_buffer_.clear();
      return Status::Ok();
    case TxnStmt::Kind::kCommit: {
      if (!session->in_txn_) return Status::InvalidArgument("no open transaction");
      session->in_txn_ = false;
      session->undo_.clear();
      return CommitWal(session);
    }
    case TxnStmt::Kind::kRollback: {
      if (!session->in_txn_) return Status::InvalidArgument("no open transaction");
      session->in_txn_ = false;
      session->wal_buffer_.clear();
      Status s = ApplyUndo(session, 0);
      ReleaseTxnGate(session);
      return s;
    }
  }
  return Status::Internal("bad txn kind");
}

Status Engine::CommitWal(Session* session) {
  rdb::Wal::CommitTicket ticket;
  Status s = CommitWalBegin(session, &ticket);
  if (!s.ok()) return s;
  return CommitWait(&ticket);
}

Status Engine::CommitWalBegin(Session* session,
                              rdb::Wal::CommitTicket* ticket) {
  // Stage stamp on the ambient request span: time up to here was the
  // transaction's parse/plan/execute work; the WAL commit stamps
  // wal_sync once its group (or its own sync) completes.
  rlscommon::StampHop("db_txn");
  const rdb::BackendProfile& profile = db_->profile();
  Status s = db_->wal().CommitBegin(session->wal_buffer_,
                                    profile.durable_flush,
                                    profile.durable_flush_penalty, ticket);
  session->wal_buffer_.clear();
  // The WAL has reserved this transaction's LSN (or rejected it): a
  // checkpoint snapshot from here on accounts for it correctly.
  ReleaseTxnGate(session);
  return s;
}

Status Engine::CommitBegin(Session* session, rdb::Wal::CommitTicket* ticket) {
  if (!session) return Status::InvalidArgument("commit needs a session");
  if (!session->in_txn_) return Status::InvalidArgument("no open transaction");
  session->in_txn_ = false;
  session->undo_.clear();
  return CommitWalBegin(session, ticket);
}

Status Engine::CommitWait(rdb::Wal::CommitTicket* ticket) {
  Status s = db_->wal().CommitFinish(ticket);
  // A group-commit batch that crossed the recycle threshold deferred
  // its checkpoint; run it now that this thread holds no locks.
  Status ckpt = db_->MaybeCheckpoint();
  return s.ok() ? ckpt : s;
}

Status Engine::RollbackToSavepoint(Session* session, const Savepoint& sp) {
  if (!session) return Status::InvalidArgument("savepoints need a session");
  if (session->wal_buffer_.size() > sp.wal_size) {
    session->wal_buffer_.resize(sp.wal_size);
  }
  return ApplyUndo(session, sp.undo_size);
}

void Engine::ReleaseTxnGate(Session* session) {
  if (!session->holds_txn_gate_) return;
  session->holds_txn_gate_ = false;
  db_->UnlockTxnGateShared();
}

Status Engine::ApplyUndo(Session* session, std::size_t down_to) {
  Status first_error = Status::Ok();
  while (session->undo_.size() > down_to) {
    UndoRecord rec = std::move(session->undo_.back());
    session->undo_.pop_back();
    Table* table = db_->GetTable(rec.table);
    if (!table) continue;  // table dropped mid-transaction
    std::unique_lock<std::shared_mutex> lock(table->mutex());
    Status s;
    switch (rec.kind) {
      case UndoRecord::Kind::kInsert:
        s = table->DeleteByValue(rec.row);
        break;
      case UndoRecord::Kind::kDelete:
        s = table->Insert(std::move(rec.old_row), nullptr, nullptr);
        break;
      case UndoRecord::Kind::kUpdate: {
        s = table->DeleteByValue(rec.row);
        if (s.ok()) s = table->Insert(std::move(rec.old_row), nullptr, nullptr);
        break;
      }
    }
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

}  // namespace sql
