// Result of executing a SQL statement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rdb/schema.h"

namespace sql {

struct ResultSet {
  std::vector<std::string> columns;  // projection names ("t_pfn.name")
  std::vector<rdb::Row> rows;
  uint64_t affected = 0;       // rows inserted/updated/deleted
  int64_t last_insert_id = 0;  // auto-increment id of the last INSERT

  bool empty() const { return rows.empty(); }
  std::size_t size() const { return rows.size(); }

  /// Convenience accessors (bounds-checked via at()).
  const rdb::Value& at(std::size_t row, std::size_t col) const {
    return rows.at(row).at(col);
  }
};

}  // namespace sql
