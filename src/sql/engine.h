// SQL execution engine: binds parsed statements to an rdb::Database.
//
// Planning is deliberately simple and deterministic, in the spirit of the
// hand-tuned SQL the 2004 RLS issued through ODBC:
//   * the first FROM table drives; an equality WHERE predicate with a hash
//     index (or a </<= predicate with an ordered index) selects the access
//     path, otherwise the table is scanned;
//   * joins are left-deep nested loops in FROM-clause order, probing the
//     inner table's hash index on the join column when one exists.
// The RLS schema indexes every join/lookup column, so all hot queries run
// index-to-index.
#pragma once

#include <string_view>
#include <vector>

#include "common/error.h"
#include "rdb/database.h"
#include "sql/ast.h"
#include "sql/result_set.h"
#include "sql/session.h"

namespace sql {

/// A point inside an open transaction that RollbackToSavepoint can
/// rewind to: later undo records are inverted and later WAL-buffer
/// bytes dropped, leaving the transaction open. Powers per-item
/// isolation inside batched (multi-row) transactions.
struct Savepoint {
  std::size_t undo_size = 0;
  std::size_t wal_size = 0;
};

class Engine {
 public:
  explicit Engine(rdb::Database* db) : db_(db) {}

  /// Executes a parsed statement with positional parameters.
  /// Autocommits unless `session` has an open transaction.
  rlscommon::Status Execute(const Statement& stmt,
                            const std::vector<rdb::Value>& params,
                            Session* session, ResultSet* result);

  /// Parses and executes in one step (convenience for tests/examples).
  rlscommon::Status ExecuteSql(std::string_view text,
                               const std::vector<rdb::Value>& params,
                               Session* session, ResultSet* result);

  rdb::Database* database() { return db_; }

  /// First half of COMMIT, split so a caller can release its own
  /// ordering lock before parking for the group sync: closes the open
  /// transaction, hands the WAL buffer to the log (group mode: reserves
  /// the LSN and enqueues without blocking on disk) and releases the
  /// txn gate. Complete with CommitWait.
  rlscommon::Status CommitBegin(Session* session,
                                rdb::Wal::CommitTicket* ticket);

  /// Second half of COMMIT: parks until the ticket's batch is synced,
  /// then runs any checkpoint a group-commit wrap deferred.
  rlscommon::Status CommitWait(rdb::Wal::CommitTicket* ticket);

  /// Marks the current position of the open transaction (batched write
  /// paths take one per item).
  Savepoint MakeSavepoint(const Session* session) const {
    return Savepoint{session->undo_.size(), session->wal_buffer_.size()};
  }

  /// Rewinds the open transaction to `sp`: inverts the undo records
  /// pushed since, drops their WAL bytes, keeps the transaction open.
  rlscommon::Status RollbackToSavepoint(Session* session, const Savepoint& sp);

 private:
  rlscommon::Status ExecSelect(const SelectStmt& stmt,
                               const std::vector<rdb::Value>& params,
                               ResultSet* result);
  rlscommon::Status ExecInsert(const InsertStmt& stmt,
                               const std::vector<rdb::Value>& params,
                               Session* session, ResultSet* result);
  rlscommon::Status ExecUpdate(const UpdateStmt& stmt,
                               const std::vector<rdb::Value>& params,
                               Session* session, ResultSet* result);
  rlscommon::Status ExecDelete(const DeleteStmt& stmt,
                               const std::vector<rdb::Value>& params,
                               Session* session, ResultSet* result);
  rlscommon::Status ExecCreateTable(const CreateTableStmt& stmt);
  rlscommon::Status ExecCreateIndex(const CreateIndexStmt& stmt);
  rlscommon::Status ExecTxn(const TxnStmt& stmt, Session* session);
  rlscommon::Status ExecExplain(const ExplainStmt& stmt,
                                const std::vector<rdb::Value>& params,
                                ResultSet* result);

  /// Commits the session's WAL buffer (autocommit or explicit COMMIT):
  /// CommitWalBegin + CommitWait in one blocking step.
  rlscommon::Status CommitWal(Session* session);

  /// Hands the WAL buffer to the log (enqueue half) and releases the
  /// txn gate. The commit completes via CommitWait on the ticket.
  rlscommon::Status CommitWalBegin(Session* session,
                                   rdb::Wal::CommitTicket* ticket);

  /// Applies the undo log in reverse (ROLLBACK / failed statement).
  rlscommon::Status ApplyUndo(Session* session, std::size_t down_to);

  /// Drops the session's shared hold on the database txn gate, if any.
  void ReleaseTxnGate(Session* session);

  rdb::Database* db_;
};

}  // namespace sql
