// SQL execution engine: binds parsed statements to an rdb::Database.
//
// Planning is deliberately simple and deterministic, in the spirit of the
// hand-tuned SQL the 2004 RLS issued through ODBC:
//   * the first FROM table drives; an equality WHERE predicate with a hash
//     index (or a </<= predicate with an ordered index) selects the access
//     path, otherwise the table is scanned;
//   * joins are left-deep nested loops in FROM-clause order, probing the
//     inner table's hash index on the join column when one exists.
// The RLS schema indexes every join/lookup column, so all hot queries run
// index-to-index.
#pragma once

#include <string_view>
#include <vector>

#include "common/error.h"
#include "rdb/database.h"
#include "sql/ast.h"
#include "sql/result_set.h"
#include "sql/session.h"

namespace sql {

class Engine {
 public:
  explicit Engine(rdb::Database* db) : db_(db) {}

  /// Executes a parsed statement with positional parameters.
  /// Autocommits unless `session` has an open transaction.
  rlscommon::Status Execute(const Statement& stmt,
                            const std::vector<rdb::Value>& params,
                            Session* session, ResultSet* result);

  /// Parses and executes in one step (convenience for tests/examples).
  rlscommon::Status ExecuteSql(std::string_view text,
                               const std::vector<rdb::Value>& params,
                               Session* session, ResultSet* result);

  rdb::Database* database() { return db_; }

 private:
  rlscommon::Status ExecSelect(const SelectStmt& stmt,
                               const std::vector<rdb::Value>& params,
                               ResultSet* result);
  rlscommon::Status ExecInsert(const InsertStmt& stmt,
                               const std::vector<rdb::Value>& params,
                               Session* session, ResultSet* result);
  rlscommon::Status ExecUpdate(const UpdateStmt& stmt,
                               const std::vector<rdb::Value>& params,
                               Session* session, ResultSet* result);
  rlscommon::Status ExecDelete(const DeleteStmt& stmt,
                               const std::vector<rdb::Value>& params,
                               Session* session, ResultSet* result);
  rlscommon::Status ExecCreateTable(const CreateTableStmt& stmt);
  rlscommon::Status ExecCreateIndex(const CreateIndexStmt& stmt);
  rlscommon::Status ExecTxn(const TxnStmt& stmt, Session* session);
  rlscommon::Status ExecExplain(const ExplainStmt& stmt,
                                const std::vector<rdb::Value>& params,
                                ResultSet* result);

  /// Commits the session's WAL buffer (autocommit or explicit COMMIT).
  rlscommon::Status CommitWal(Session* session);

  /// Applies the undo log in reverse (ROLLBACK / failed statement).
  rlscommon::Status ApplyUndo(Session* session, std::size_t down_to);

  rdb::Database* db_;
};

}  // namespace sql
