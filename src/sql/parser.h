// Recursive-descent parser for the SQL subset (see ast.h).
#pragma once

#include <string_view>

#include "common/error.h"
#include "sql/ast.h"

namespace sql {

/// Parses a single statement (an optional trailing ';' is allowed).
/// On success fills `out`; on failure returns InvalidArgument with a
/// message pointing at the offending token.
rlscommon::Status Parse(std::string_view text, Statement* out);

}  // namespace sql
