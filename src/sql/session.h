// Per-connection execution state: transaction flag, undo log and the
// WAL buffer for the open transaction.
//
// Transactions provide atomicity via an undo log (rollback re-applies
// inverse operations). Isolation is statement-level: locks are held per
// statement, not to commit — matching the loose consistency the paper
// accepts when the durable flush is disabled (§5.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rdb/heap.h"
#include "rdb/schema.h"

namespace sql {

// Undo records are VALUE-based, not rid-based: later operations in the
// same transaction (e.g. deleting a row that an earlier statement
// updated) relocate rows, so rollback locates rows by content — applied
// strictly LIFO, each inverse acts on the state its forward op produced.
struct UndoRecord {
  enum class Kind { kInsert, kDelete, kUpdate };
  Kind kind = Kind::kInsert;
  std::string table;
  rdb::Row row;       // insert/update: the image the forward op wrote
  rdb::Row old_row;   // delete/update: the image to restore
};

class Session {
 public:
  bool in_transaction() const { return in_txn_; }
  int64_t last_insert_id() const { return last_insert_id_; }

  /// Number of pending undo records (tests).
  std::size_t pending_undo() const { return undo_.size(); }

 private:
  friend class Engine;

  bool in_txn_ = false;
  std::vector<UndoRecord> undo_;
  std::string wal_buffer_;
  int64_t last_insert_id_ = 0;
  /// True while this session holds the database's txn gate shared
  /// (wal_recovery profiles: from the first logged mutation until the
  /// WAL reserves the commit's LSN, or rollback). See
  /// rdb::Database::LockTxnGateShared.
  bool holds_txn_gate_ = false;
};

}  // namespace sql
