// AST for the SQL subset the RLS issues: CREATE TABLE/INDEX, INSERT,
// SELECT (inner equality joins, conjunctive WHERE, LIKE, COUNT(*), LIMIT),
// UPDATE (including "SET ref = ref + 1" reference counting), DELETE,
// BEGIN/COMMIT/ROLLBACK, VACUUM, DROP TABLE.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rdb/schema.h"
#include "rdb/value.h"

namespace sql {

/// Possibly table-qualified column reference ("t_lfn.name" or "name").
struct ColumnRef {
  std::string table;  // alias; empty = resolve by unique column name
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe, kLike };

/// One side of a predicate or a VALUES entry.
struct Operand {
  enum class Kind { kColumn, kLiteral, kParam };
  Kind kind = Kind::kLiteral;
  ColumnRef column;            // kColumn
  rdb::Value literal;          // kLiteral
  std::size_t param_index = 0; // kParam (0-based, in order of '?')

  static Operand Column(ColumnRef ref) {
    Operand o;
    o.kind = Kind::kColumn;
    o.column = std::move(ref);
    return o;
  }
  static Operand Literal(rdb::Value v) {
    Operand o;
    o.kind = Kind::kLiteral;
    o.literal = std::move(v);
    return o;
  }
  static Operand Param(std::size_t index) {
    Operand o;
    o.kind = Kind::kParam;
    o.param_index = index;
    return o;
  }
};

/// Binary comparison; WHERE clauses are conjunctions of these.
struct Predicate {
  Operand lhs;
  CmpOp op = CmpOp::kEq;
  Operand rhs;
};

/// FROM / JOIN table with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name

  const std::string& effective_alias() const {
    return alias.empty() ? table : alias;
  }
};

struct JoinClause {
  TableRef table;
  Predicate on;  // equality join predicate
};

struct SelectStmt {
  bool star = false;
  bool count_star = false;  // SELECT COUNT(*)
  std::vector<ColumnRef> columns;
  TableRef from;
  std::vector<JoinClause> joins;
  std::vector<Predicate> where;
  std::optional<ColumnRef> order_by;  // single-column ORDER BY
  bool order_desc = false;
  std::optional<uint64_t> limit;
  std::optional<uint64_t> offset;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = full schema order
  std::vector<std::vector<Operand>> rows;
};

/// SET column = <operand>  |  SET column = column +/- <int>.
struct Assignment {
  std::string column;
  Operand value;
  bool is_delta = false;
  int64_t delta = 0;
};

struct UpdateStmt {
  std::string table;
  std::vector<Assignment> sets;
  std::vector<Predicate> where;
};

struct DeleteStmt {
  std::string table;
  std::vector<Predicate> where;
};

struct CreateTableStmt {
  rdb::TableSchema schema;
  std::string primary_key;  // column name; empty = none
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string column;
  bool unique = false;
  bool ordered = false;  // CREATE ORDERED INDEX — range-scan capable
};

struct DropTableStmt {
  std::string table;
};

struct VacuumStmt {
  std::string table;  // empty = all tables
};

struct TxnStmt {
  enum class Kind { kBegin, kCommit, kRollback };
  Kind kind = Kind::kBegin;
};

/// EXPLAIN SELECT ...: reports the access path per source instead of
/// executing (one row of plan text per FROM/JOIN table).
struct ExplainStmt {
  SelectStmt select;
};

using Statement = std::variant<SelectStmt, InsertStmt, UpdateStmt, DeleteStmt,
                               CreateTableStmt, CreateIndexStmt, DropTableStmt,
                               VacuumStmt, TxnStmt, ExplainStmt>;

}  // namespace sql
