#include "dbapi/dbapi.h"

#include "common/strings.h"
#include "sql/parser.h"

namespace dbapi {

using rlscommon::Status;

Status ParseDsn(const std::string& dsn, rdb::BackendKind* kind, std::string* name) {
  const std::string sep = "://";
  auto pos = dsn.find(sep);
  if (pos == std::string::npos) {
    return Status::InvalidArgument("DSN must look like driver://name: " + dsn);
  }
  const std::string driver = dsn.substr(0, pos);
  *name = dsn.substr(pos + sep.size());
  if (name->empty()) return Status::InvalidArgument("empty database name in DSN " + dsn);
  if (driver == "mysql") {
    *kind = rdb::BackendKind::kMySQL;
  } else if (driver == "postgresql" || driver == "postgres") {
    *kind = rdb::BackendKind::kPostgreSQL;
  } else {
    return Status::InvalidArgument("unknown DSN driver '" + driver +
                                   "' (expected mysql or postgresql)");
  }
  return Status::Ok();
}

Environment& Environment::Global() {
  static Environment* env = new Environment();
  return *env;
}

Status Environment::CreateDatabase(const std::string& dsn, const std::string& wal_path) {
  rdb::BackendKind kind;
  std::string name;
  Status s = ParseDsn(dsn, &kind, &name);
  if (!s.ok()) return s;
  rdb::BackendProfile profile = kind == rdb::BackendKind::kPostgreSQL
                                    ? rdb::BackendProfile::PostgreSQL()
                                    : rdb::BackendProfile::MySQL();
  return CreateDatabaseWithProfile(dsn, profile, wal_path);
}

Status Environment::CreateDatabaseWithProfile(const std::string& dsn,
                                              rdb::BackendProfile profile,
                                              const std::string& wal_path,
                                              rdb::StorageFaultInjector* fault) {
  rdb::BackendKind kind;
  std::string name;
  Status s = ParseDsn(dsn, &kind, &name);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  if (databases_.count(dsn)) {
    return Status::AlreadyExists("database already registered: " + dsn);
  }
  databases_.emplace(
      dsn, std::make_unique<rdb::Database>(name, profile, wal_path, fault));
  return Status::Ok();
}

rdb::Database* Environment::Find(const std::string& dsn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = databases_.find(dsn);
  return it == databases_.end() ? nullptr : it->second.get();
}

Status Environment::DropDatabase(const std::string& dsn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = databases_.find(dsn);
  if (it == databases_.end()) return Status::NotFound("no database " + dsn);
  databases_.erase(it);
  return Status::Ok();
}

Status Connection::Open(Environment& env, const std::string& dsn,
                        std::unique_ptr<Connection>* out) {
  rdb::Database* db = env.Find(dsn);
  if (!db) return Status::NotFound("no database registered for DSN " + dsn);
  out->reset(new Connection(db));
  return Status::Ok();
}

Status Connection::Execute(const std::string& sql_text,
                           const std::vector<rdb::Value>& params,
                           sql::ResultSet* result) {
  auto it = statement_cache_.find(sql_text);
  if (it == statement_cache_.end()) {
    sql::Statement stmt;
    Status s = sql::Parse(sql_text, &stmt);
    if (!s.ok()) return s;
    it = statement_cache_.emplace(sql_text, std::move(stmt)).first;
  }
  return engine_.Execute(it->second, params, &session_, result);
}

Status Connection::Begin() {
  sql::ResultSet rs;
  return Execute("BEGIN", &rs);
}

Status Connection::Commit() {
  sql::ResultSet rs;
  return Execute("COMMIT", &rs);
}

Status Connection::Rollback() {
  sql::ResultSet rs;
  return Execute("ROLLBACK", &rs);
}

Status Connection::Vacuum(const std::string& table) {
  sql::ResultSet rs;
  return Execute(table.empty() ? "VACUUM" : "VACUUM " + table, &rs);
}

}  // namespace dbapi
