// ODBC-style database access layer.
//
// The 2004 RLS reached its back ends through libiodbc + myodbc/psqlodbc so
// the server code was back-end agnostic (paper §3.1, Fig. 2). This layer
// plays that role: servers open a Connection by DSN and speak SQL; whether
// the engine behind it behaves like MySQL or PostgreSQL is decided by the
// DSN's driver prefix:
//
//   "mysql://lrc0"       -> rdb engine with the MySQL profile
//   "postgresql://lrc0"  -> rdb engine with the PostgreSQL profile
//
// Connections are NOT thread-safe; use one per server worker thread (the
// original did the same with ODBC handles).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/error.h"
#include "rdb/database.h"
#include "sql/engine.h"
#include "sql/session.h"

namespace dbapi {

/// Parses "<driver>://<name>". Returns InvalidArgument on unknown driver.
rlscommon::Status ParseDsn(const std::string& dsn, rdb::BackendKind* kind,
                           std::string* name);

/// Process-wide registry of databases, keyed by DSN.
class Environment {
 public:
  /// Singleton used by servers and examples; tests may construct private
  /// environments.
  static Environment& Global();

  Environment() = default;
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  /// Creates the database named by `dsn` (driver prefix selects the
  /// profile). `wal_path` empty = in-memory WAL accounting only.
  /// AlreadyExists if the DSN is taken.
  rlscommon::Status CreateDatabase(const std::string& dsn,
                                   const std::string& wal_path = "");

  /// Creates with a custom profile (tests tune the flush penalty or
  /// enable WAL recovery). `fault` (optional, tests only) injects storage
  /// failures into the database's WAL; it must outlive the database.
  rlscommon::Status CreateDatabaseWithProfile(
      const std::string& dsn, rdb::BackendProfile profile,
      const std::string& wal_path = "",
      rdb::StorageFaultInjector* fault = nullptr);

  /// Looks up a registered database; nullptr if absent.
  rdb::Database* Find(const std::string& dsn);

  /// Drops the database and all its tables.
  rlscommon::Status DropDatabase(const std::string& dsn);

 private:
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<rdb::Database>> databases_;
};

/// A connection: SQL in, ResultSets out. Caches prepared statements by
/// SQL text so hot-path statements parse once.
class Connection {
 public:
  /// Opens a connection to an existing DSN in `env`.
  static rlscommon::Status Open(Environment& env, const std::string& dsn,
                                std::unique_ptr<Connection>* out);

  /// Executes one statement with positional '?' parameters.
  rlscommon::Status Execute(const std::string& sql,
                            const std::vector<rdb::Value>& params,
                            sql::ResultSet* result);

  /// Parameterless convenience.
  rlscommon::Status Execute(const std::string& sql, sql::ResultSet* result) {
    return Execute(sql, {}, result);
  }

  rlscommon::Status Begin();
  rlscommon::Status Commit();
  rlscommon::Status Rollback();

  /// Split commit: CommitBegin closes the open transaction and reserves
  /// its WAL slot without blocking on the disk (group-commit mode), so
  /// the caller can release its own ordering lock before parking in
  /// CommitFinish for the group sync. The ticket must outlive the
  /// matching CommitFinish. In per-txn-flush mode CommitBegin performs
  /// the whole commit and CommitFinish just reports its status.
  rlscommon::Status CommitBegin(rdb::Wal::CommitTicket* ticket) {
    return engine_.CommitBegin(&session_, ticket);
  }
  rlscommon::Status CommitFinish(rdb::Wal::CommitTicket* ticket) {
    return engine_.CommitWait(ticket);
  }

  /// Marks a rewind point inside the open transaction; see
  /// RollbackToSavepoint. Batched write paths take one per item so a
  /// failed item rolls back alone instead of aborting the batch.
  sql::Savepoint Savepoint() const { return engine_.MakeSavepoint(&session_); }
  rlscommon::Status RollbackToSavepoint(const sql::Savepoint& sp) {
    return engine_.RollbackToSavepoint(&session_, sp);
  }

  bool in_transaction() const { return session_.in_transaction(); }
  int64_t LastInsertId() const { return session_.last_insert_id(); }

  /// Runs VACUUM on one table (empty = all): the PostgreSQL maintenance
  /// operation of paper §5.2.
  rlscommon::Status Vacuum(const std::string& table = "");

  /// Toggles durable flush for the underlying database (the paper's
  /// "database flush enabled/disabled" knob).
  void SetDurableFlush(bool enabled) { db_->SetDurableFlush(enabled); }

  rdb::Database* database() { return db_; }

 private:
  Connection(rdb::Database* db) : db_(db), engine_(db) {}

  rdb::Database* db_;
  sql::Engine engine_;
  sql::Session session_;
  std::unordered_map<std::string, sql::Statement> statement_cache_;
};

}  // namespace dbapi
