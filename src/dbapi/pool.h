// Connection pool: dbapi::Connection is single-threaded (like an ODBC
// handle), so multi-threaded servers lease one per request.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "dbapi/dbapi.h"
#include "obs/metrics.h"

namespace dbapi {

class ConnectionPool {
 public:
  /// Pool over `dsn` in `env`; connections are created on demand and
  /// kept for reuse (no upper bound — the RPC layer bounds concurrency
  /// by its connection count).
  ConnectionPool(Environment& env, std::string dsn)
      : env_(env), dsn_(std::move(dsn)) {}

  /// RAII lease: returns the connection to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ConnectionPool* pool, std::unique_ptr<Connection> conn)
        : pool_(pool), conn_(std::move(conn)) {}
    ~Lease() { Release(); }

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), conn_(std::move(other.conn_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        conn_ = std::move(other.conn_);
        other.pool_ = nullptr;
      }
      return *this;
    }

    Connection* operator->() { return conn_.get(); }
    Connection& operator*() { return *conn_; }
    Connection* get() { return conn_.get(); }
    bool valid() const { return conn_ != nullptr; }

   private:
    void Release() {
      if (pool_ && conn_) {
        // A connection abandoned mid-transaction is rolled back before
        // anyone else can lease it.
        if (conn_->in_transaction()) (void)conn_->Rollback();
        pool_->Return(std::move(conn_));
      }
      pool_ = nullptr;
    }
    ConnectionPool* pool_ = nullptr;
    std::unique_ptr<Connection> conn_;
  };

  /// Registers this pool's instruments in `registry`, labeled
  /// pool=<pool_label>: db_pool_acquires_total,
  /// db_pool_connections_created_total, db_pool_acquire_wait_us,
  /// db_pool_idle_connections, db_pool_in_use. The registry must outlive
  /// the pool. Call before the pool is shared across threads.
  void BindMetrics(obs::Registry* registry, const std::string& pool_label) {
    const std::string labels = obs::Label("pool", pool_label);
    acquires_ = registry->GetCounter("db_pool_acquires_total", labels);
    created_ = registry->GetCounter("db_pool_connections_created_total", labels);
    acquire_wait_ = registry->GetHistogram("db_pool_acquire_wait_us", labels);
    idle_gauge_ = registry->GetGauge("db_pool_idle_connections", labels);
    in_use_ = registry->GetGauge("db_pool_in_use", labels);
  }

  /// Leases a connection (creating one if the pool is empty).
  rlscommon::Status Acquire(Lease* out) {
    rlscommon::Stopwatch timer;
    if (acquires_) acquires_->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        *out = Lease(this, std::move(idle_.back()));
        idle_.pop_back();
        if (idle_gauge_) idle_gauge_->Set(static_cast<int64_t>(idle_.size()));
        if (in_use_) in_use_->Add();
        if (acquire_wait_) acquire_wait_->Record(timer.Elapsed());
        return rlscommon::Status::Ok();
      }
    }
    std::unique_ptr<Connection> conn;
    rlscommon::Status s = Connection::Open(env_, dsn_, &conn);
    if (!s.ok()) return s;
    if (created_) created_->Increment();
    if (in_use_) in_use_->Add();
    if (acquire_wait_) acquire_wait_->Record(timer.Elapsed());
    *out = Lease(this, std::move(conn));
    return rlscommon::Status::Ok();
  }

  const std::string& dsn() const { return dsn_; }

  std::size_t idle_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
  }

 private:
  friend class Lease;
  void Return(std::unique_ptr<Connection> conn) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(conn));
    if (idle_gauge_) idle_gauge_->Set(static_cast<int64_t>(idle_.size()));
    if (in_use_) in_use_->Sub();
  }

  Environment& env_;
  std::string dsn_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Connection>> idle_;

  // Optional instruments (owned by the bound registry); null = unbound.
  obs::Counter* acquires_ = nullptr;
  obs::Counter* created_ = nullptr;
  obs::Histogram* acquire_wait_ = nullptr;
  obs::Gauge* idle_gauge_ = nullptr;
  obs::Gauge* in_use_ = nullptr;
};

}  // namespace dbapi
