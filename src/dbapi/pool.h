// Connection pool: dbapi::Connection is single-threaded (like an ODBC
// handle), so multi-threaded servers lease one per request.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dbapi/dbapi.h"

namespace dbapi {

class ConnectionPool {
 public:
  /// Pool over `dsn` in `env`; connections are created on demand and
  /// kept for reuse (no upper bound — the RPC layer bounds concurrency
  /// by its connection count).
  ConnectionPool(Environment& env, std::string dsn)
      : env_(env), dsn_(std::move(dsn)) {}

  /// RAII lease: returns the connection to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ConnectionPool* pool, std::unique_ptr<Connection> conn)
        : pool_(pool), conn_(std::move(conn)) {}
    ~Lease() { Release(); }

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), conn_(std::move(other.conn_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        conn_ = std::move(other.conn_);
        other.pool_ = nullptr;
      }
      return *this;
    }

    Connection* operator->() { return conn_.get(); }
    Connection& operator*() { return *conn_; }
    Connection* get() { return conn_.get(); }
    bool valid() const { return conn_ != nullptr; }

   private:
    void Release() {
      if (pool_ && conn_) {
        // A connection abandoned mid-transaction is rolled back before
        // anyone else can lease it.
        if (conn_->in_transaction()) (void)conn_->Rollback();
        pool_->Return(std::move(conn_));
      }
      pool_ = nullptr;
    }
    ConnectionPool* pool_ = nullptr;
    std::unique_ptr<Connection> conn_;
  };

  /// Leases a connection (creating one if the pool is empty).
  rlscommon::Status Acquire(Lease* out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        *out = Lease(this, std::move(idle_.back()));
        idle_.pop_back();
        return rlscommon::Status::Ok();
      }
    }
    std::unique_ptr<Connection> conn;
    rlscommon::Status s = Connection::Open(env_, dsn_, &conn);
    if (!s.ok()) return s;
    *out = Lease(this, std::move(conn));
    return rlscommon::Status::Ok();
  }

  const std::string& dsn() const { return dsn_; }

  std::size_t idle_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
  }

 private:
  friend class Lease;
  void Return(std::unique_ptr<Connection> conn) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(conn));
  }

  Environment& env_;
  std::string dsn_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Connection>> idle_;
};

}  // namespace dbapi
