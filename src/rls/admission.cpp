#include "rls/admission.h"

#include <algorithm>

#include "rls/protocol.h"

namespace rls {

using rlscommon::Status;

namespace {

/// Protected traffic: never charged against a tenant bucket, executed
/// on the RPC server's priority lane. Covers the flows whose loss turns
/// a local overload into a global one — soft-state updates (an RLI that
/// stops receiving them expires its whole index), admin operations (the
/// operator's only lever during an incident) and monitoring probes.
bool IsPriorityOp(uint16_t opcode) {
  switch (opcode) {
    case kPing:
    case kServerStats:
    case kServerMetrics:
    case kServerGetStats:
    case kServerGetTraces:
    case kLrcRliList:
    case kLrcRliAdd:
    case kLrcRliRemove:
    case kLrcForceUpdate:
    case kSsFullBegin:
    case kSsFullChunk:
    case kSsFullEnd:
    case kSsIncremental:
    case kSsBloom:
      return true;
    default:
      return false;
  }
}

/// Privilege class an opcode is charged as (mirrors the Authorize
/// mapping in rls_server.cpp, collapsed to cost classes).
gsi::Privilege CostClassFor(uint16_t opcode) {
  switch (opcode) {
    case kLrcCreate:
    case kLrcAdd:
    case kLrcDelete:
    case kLrcBulkCreate:
    case kLrcBulkAdd:
    case kLrcBulkDelete:
    case kLrcAttrDefine:
    case kLrcAttrAdd:
    case kLrcAttrModify:
    case kLrcAttrDelete:
    case kLrcBulkAttrAdd:
    case kLrcBulkAttrDelete:
    case kLrcAttrUndefine:
      return gsi::Privilege::kLrcWrite;
    case kRliQueryLfn:
    case kRliBulkQuery:
    case kRliWildcardQuery:
    case kRliLrcList:
      return gsi::Privilege::kRliRead;
    default:
      return gsi::Privilege::kLrcRead;
  }
}

}  // namespace

AdmissionController::AdmissionController(const ServerLimits& limits,
                                         rlscommon::Clock* clock,
                                         obs::Registry* registry)
    : limits_(limits), clock_(clock), registry_(registry) {
  if (limits_.per_dn_burst <= 0) limits_.per_dn_burst = limits_.per_dn_rate;
  if (registry_) {
    admitted_normal_ = registry_->GetCounter("admission_admitted_total",
                                             obs::Label("lane", "normal"));
    admitted_priority_ = registry_->GetCounter("admission_admitted_total",
                                               obs::Label("lane", "priority"));
    shed_rate_limit_ = registry_->GetCounter("admission_shed_total",
                                             obs::Label("reason", "rate_limit"));
  }
}

net::AdmitDecision AdmissionController::Admit(const gsi::AuthContext& context,
                                              uint16_t opcode,
                                              const std::string& /*request*/) {
  if (IsPriorityOp(opcode)) {
    if (admitted_priority_) admitted_priority_->Increment();
    return {Status::Ok(), /*priority=*/true};
  }
  if (limits_.per_dn_rate > 0) {
    const gsi::Privilege cls = CostClassFor(opcode);
    const double cost =
        std::max(0.0, limits_.privilege_cost[static_cast<std::size_t>(cls)]);
    const rlscommon::TimePoint now = clock_->Now();
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, fresh] = buckets_.try_emplace(context.dn);
    Bucket& bucket = it->second;
    if (fresh) {
      bucket.tokens = limits_.per_dn_burst;
      bucket.last = now;
      if (registry_) {
        const std::string label = obs::Label(
            "dn", context.dn.empty() ? "anonymous" : context.dn);
        bucket.requests =
            registry_->GetCounter("admission_dn_requests_total", label);
        bucket.shed = registry_->GetCounter("admission_dn_shed_total", label);
      }
    } else {
      const double dt =
          std::chrono::duration<double>(now - bucket.last).count();
      if (dt > 0) {
        bucket.tokens = std::min(limits_.per_dn_burst,
                                 bucket.tokens + dt * limits_.per_dn_rate);
        bucket.last = now;
      }
    }
    if (bucket.requests) bucket.requests->Increment();
    if (bucket.tokens < cost) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (shed_rate_limit_) shed_rate_limit_->Increment();
      if (bucket.shed) bucket.shed->Increment();
      // Tell the client when its bucket will actually hold `cost`
      // tokens again; never less than the configured floor.
      const double deficit_ms =
          (cost - bucket.tokens) / limits_.per_dn_rate * 1000.0;
      const auto hint = std::max(
          limits_.retry_after,
          std::chrono::milliseconds(static_cast<int64_t>(deficit_ms) + 1));
      return {Status::Unavailable("rate limit exceeded for " +
                                  (context.dn.empty() ? "anonymous client"
                                                      : context.dn))
                  .WithRetryAfter(hint),
              false};
    }
    bucket.tokens -= cost;
  }
  if (admitted_normal_) admitted_normal_->Increment();
  return {Status::Ok(), /*priority=*/false};
}

}  // namespace rls
