#include "rls/rls_server.h"

#include <algorithm>

#include "common/build_info.h"
#include "common/logging.h"
#include "common/trace_context.h"
#include "obs/span_recorder.h"
#include "obs/trace.h"

namespace rls {

using rlscommon::Status;

namespace {

/// Single-mapping decode helper for kLrcCreate/kLrcAdd/kLrcDelete.
Status DecodeOneMapping(const std::string& request, Mapping* out) {
  MappingRequest req;
  Status s = MappingRequest::Decode(request, &req);
  if (!s.ok()) return s;
  if (req.mappings.size() != 1) {
    return Status::Protocol("expected exactly one mapping");
  }
  *out = std::move(req.mappings[0]);
  return Status::Ok();
}

/// Merges `extra` into `base`, dropping duplicates, preserving order.
void MergeUnique(std::vector<std::string>* base, const std::vector<std::string>& extra) {
  for (const std::string& value : extra) {
    if (std::find(base->begin(), base->end(), value) == base->end()) {
      base->push_back(value);
    }
  }
}

}  // namespace

RlsServer::RlsServer(net::Transport* network, RlsServerConfig config,
                     dbapi::Environment* env, rlscommon::Clock* clock)
    : network_(network), config_(std::move(config)), env_(env), clock_(clock) {
  if (config_.url.empty()) config_.url = config_.address;
  lrc_read_latency_ = registry_.GetHistogram("rls_family_latency_us",
                                             obs::Label("family", "lrc_read"));
  lrc_write_latency_ = registry_.GetHistogram("rls_family_latency_us",
                                              obs::Label("family", "lrc_write"));
  rli_query_latency_ = registry_.GetHistogram("rls_family_latency_us",
                                              obs::Label("family", "rli_query"));
  soft_state_latency_ = registry_.GetHistogram(
      "rls_family_latency_us", obs::Label("family", "soft_state"));
  rli_updates_received_ = registry_.GetCounter("rli_updates_received_total");
  rli_expired_entries_ = registry_.GetCounter("rli_expired_entries_total");
  ss_receive_lag_ = registry_.GetHistogram("ss_receive_lag_us");
}

RlsServer::~RlsServer() { Stop(); }

Status RlsServer::Start() {
  if (config_.lrc.enabled) {
    Status s = LrcStore::Create(*env_, config_.lrc.dsn, &lrc_store_);
    if (!s.ok()) return s;
    lrc_store_->pool().BindMetrics(&registry_, "lrc");
    update_manager_ = std::make_unique<UpdateManager>(
        network_, lrc_store_.get(), config_.url, config_.lrc.update, clock_);
    update_manager_->BindMetrics(&registry_);
    lrc_store_->SetChangeObserver([this](const std::string& lfn, bool added) {
      update_manager_->OnMappingChange(lfn, added);
    });
    if (lrc_store_->database()) {
      rdb::Database* db = lrc_store_->database();
      if (config_.lrc.wal_group_commit) {
        // Config-driven enable (profile-driven databases arrive with it
        // already on; SetGroupCommit is idempotent). Recovery has run,
        // so no commits are in flight yet.
        db->SetGroupCommit(true);
      }
      // WAL commit-scheduling instruments: batch-size distribution,
      // time a committer spends parked for its group's sync (exemplar =
      // slowest waiter's trace, the `wal_sync` stage in its breakdown),
      // and batches flushed.
      obs::Histogram* group_size = registry_.GetHistogram("wal_group_size");
      obs::Histogram* sync_wait = registry_.GetHistogram("wal_sync_wait_us");
      obs::Counter* group_commits = registry_.GetCounter("wal_group_commits_total");
      rdb::WalObserver wal_observer;
      wal_observer.group_commit = [group_size, group_commits](uint64_t frames,
                                                              uint64_t) {
        group_size->RecordMicros(frames);  // dimensionless: commits per batch
        group_commits->Increment();
      };
      wal_observer.sync_wait = [sync_wait](uint64_t wait_us, uint64_t trace_id) {
        sync_wait->RecordMicros(wait_us);
        sync_wait->OfferExemplar(wait_us, trace_id);
      };
      db->wal().SetObserver(std::move(wal_observer));
    }
  }
  if (config_.rli.enabled) {
    if (!config_.rli.dsn.empty()) {
      Status s = RliRelationalStore::Create(*env_, config_.rli.dsn, &rli_relational_);
      if (!s.ok()) return s;
      rli_relational_->pool().BindMetrics(&registry_, "rli");
    }
    if (config_.rli.accept_bloom) {
      rli_bloom_ = std::make_unique<RliBloomStore>(clock_);
    }
    for (const UpdateTarget& parent : config_.rli.parents) {
      parents_.emplace_back(parent, nullptr);
    }
  }
  if (!config_.lrc.enabled && !config_.rli.enabled) {
    return Status::InvalidArgument("server must enable at least one role");
  }

  // Monitoring-side worker pool: runs JSONL export writes so the pool's
  // queue/latency instruments see real traffic.
  worker_pool_ = std::make_unique<rlscommon::ThreadPool>(1, "obs-worker");
  rlscommon::ThreadPool::MetricHooks hooks;
  hooks.queue_wait = registry_.GetHistogram("threadpool_queue_wait_us")->raw();
  hooks.run_time = registry_.GetHistogram("threadpool_task_run_us")->raw();
  hooks.tasks_completed =
      registry_.GetCounter("threadpool_tasks_completed_total")->raw();
  worker_pool_->BindMetrics(hooks);

  start_time_ = clock_->Now();
  RegisterGauges();
  if (config_.obs.slow_span_threshold.count() > 0) {
    obs::SetSlowSpanThreshold(config_.obs.slow_span_threshold);
  }
  if (config_.obs.trace_capacity > 0) {
    obs::SpanRecorder::Global().Enable(config_.obs.trace_capacity);
  }

  net::ServerOptions options;
  options.name = config_.url;
  options.auth = config_.auth;
  options.metrics = &registry_;
  options.opcode_name = OpName;
  if (config_.limits.Enabled()) {
    admission_ = std::make_unique<AdmissionController>(config_.limits, clock_,
                                                       &registry_);
    options.workers = config_.limits.workers;
    options.queue_depth = config_.limits.queue_depth;
    options.priority_queue_depth = config_.limits.priority_queue_depth;
    options.shed_retry_after = config_.limits.retry_after;
    options.admission = [this](const gsi::AuthContext& auth, uint16_t opcode,
                               const std::string& request) {
      return admission_->Admit(auth, opcode, request);
    };
  }
  rpc_server_ = std::make_unique<net::RpcServer>(
      network_, config_.address, options,
      [this](const gsi::AuthContext& auth, uint16_t opcode,
             const std::string& request, std::string* response) {
        return Handle(auth, opcode, request, response);
      });
  Status s = rpc_server_->Start();
  if (!s.ok()) return s;

  if (update_manager_) update_manager_->Start();
  {
    std::lock_guard<std::mutex> lock(expire_mu_);
    running_ = true;
  }
  if (config_.rli.enabled && config_.rli.timeout.count() > 0) {
    expire_thread_ = std::thread([this] { ExpireLoop(); });
  }
  if (!config_.obs.export_path.empty()) {
    obs::JsonlExporter::Options eopts;
    eopts.path = config_.obs.export_path;
    eopts.period = config_.obs.export_period;
    exporter_ = std::make_unique<obs::JsonlExporter>(
        eopts, [this] { return RenderStatsJson(); }, worker_pool_.get());
    s = exporter_->Start();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void RlsServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(expire_mu_);
    if (!running_) return;
    running_ = false;
  }
  expire_cv_.notify_all();
  if (expire_thread_.joinable()) expire_thread_.join();
  if (exporter_) exporter_->Stop();
  if (update_manager_) update_manager_->Stop();
  if (rpc_server_) rpc_server_->Stop();
  // The WAL outlives this server (the Environment owns the database) but
  // its observer captures registry-owned instruments; detach it.
  if (lrc_store_ && lrc_store_->database()) {
    lrc_store_->database()->wal().SetObserver({});
  }
  // The gauges capture raw store pointers; drop them before the stores go.
  UnregisterGauges();
}

std::string RlsServer::role() const {
  if (config_.lrc.enabled && config_.rli.enabled) return "lrc+rli";
  return config_.lrc.enabled ? "lrc" : "rli";
}

void RlsServer::RegisterGauges() {
  registry_.RegisterCallback("server_uptime_seconds", "", [this] {
    return std::chrono::duration<double>(clock_->Now() - start_time_).count();
  });
  registry_.RegisterCallback("threadpool_queue_depth", "", [this] {
    return static_cast<double>(worker_pool_->QueueDepth());
  });
  if (lrc_store_) {
    registry_.RegisterCallback("lrc_logical_names", "", [this] {
      return static_cast<double>(lrc_store_->LogicalNameCount());
    });
    registry_.RegisterCallback("lrc_mappings", "", [this] {
      return static_cast<double>(lrc_store_->MappingCount());
    });
  }
  if (lrc_store_ && lrc_store_->database()) {
    rdb::Database* db = lrc_store_->database();
    registry_.RegisterCallback("wal_recovered_txns", "", [db] {
      return static_cast<double>(db->recovery_stats().recovered_txns);
    });
    registry_.RegisterCallback("wal_torn_tail_bytes", "", [db] {
      return static_cast<double>(db->recovery_stats().torn_tail_bytes);
    });
    registry_.RegisterCallback("wal_checksum_failures", "", [db] {
      return static_cast<double>(db->recovery_stats().checksum_failures +
                                 db->wal().checksum_failures());
    });
    registry_.RegisterCallback("wal_commits", "", [db] {
      return static_cast<double>(db->wal().commits());
    });
    registry_.RegisterCallback("wal_syncs", "", [db] {
      return static_cast<double>(db->wal().syncs());
    });
  }
  if (rli_relational_) {
    registry_.RegisterCallback("rli_associations", "", [this] {
      return static_cast<double>(rli_relational_->AssociationCount());
    });
  }
  if (rli_bloom_) {
    registry_.RegisterCallback("rli_bloom_filters", "", [this] {
      return static_cast<double>(rli_bloom_->filter_count());
    });
  }
  registry_.RegisterCallback("trace_recorder_depth", "", [] {
    return static_cast<double>(obs::SpanRecorder::Global().GetStats().depth);
  });
  registry_.RegisterCallback("trace_recorder_dropped", "", [] {
    return static_cast<double>(obs::SpanRecorder::Global().GetStats().dropped);
  });
}

void RlsServer::UnregisterGauges() {
  registry_.UnregisterCallback("server_uptime_seconds", "");
  registry_.UnregisterCallback("threadpool_queue_depth", "");
  registry_.UnregisterCallback("lrc_logical_names", "");
  registry_.UnregisterCallback("lrc_mappings", "");
  registry_.UnregisterCallback("wal_recovered_txns", "");
  registry_.UnregisterCallback("wal_torn_tail_bytes", "");
  registry_.UnregisterCallback("wal_checksum_failures", "");
  registry_.UnregisterCallback("wal_commits", "");
  registry_.UnregisterCallback("wal_syncs", "");
  registry_.UnregisterCallback("rli_associations", "");
  registry_.UnregisterCallback("rli_bloom_filters", "");
  registry_.UnregisterCallback("trace_recorder_depth", "");
  registry_.UnregisterCallback("trace_recorder_dropped", "");
}

std::string RlsServer::RenderStatsJson() const {
  const double uptime =
      std::chrono::duration<double>(clock_->Now() - start_time_).count();
  std::string extra = "\"server\": \"" + config_.url + "\", \"role\": \"" +
                      role() + "\", \"uptime_seconds\": " +
                      std::to_string(uptime);
  return registry_.RenderJson(extra);
}

GetStatsResponse RlsServer::GetStatsSnapshot() const {
  GetStatsResponse resp;
  resp.role = role();
  resp.uptime_seconds =
      std::chrono::duration<double>(clock_->Now() - start_time_).count();
  resp.build_flags = rlscommon::BuildDescription();
  resp.vitals = Stats();
  resp.last_update_trace_id =
      last_update_trace_id_.load(std::memory_order_relaxed);
  const obs::SpanRecorder::Stats rstats = obs::SpanRecorder::Global().GetStats();
  resp.trace_depth = rstats.depth;
  resp.trace_dropped = rstats.dropped;
  resp.trace_capacity = rstats.capacity;
  if (lrc_store_ && lrc_store_->database()) {
    rdb::Database* db = lrc_store_->database();
    const rdb::RecoveryStats& rec = db->recovery_stats();
    resp.wal.enabled = rec.enabled ? 1 : 0;
    resp.wal.recovered_txns = rec.recovered_txns;
    resp.wal.records_applied = rec.records_applied;
    resp.wal.snapshot_rows = rec.snapshot_rows;
    resp.wal.torn_tail_bytes = rec.torn_tail_bytes;
    resp.wal.checksum_failures =
        rec.checksum_failures + db->wal().checksum_failures();
    resp.wal.last_lsn = db->wal().last_lsn();
    resp.wal.recover_micros = rec.recover_micros;
    resp.wal.group_commit = db->wal().group_commit_enabled() ? 1 : 0;
    resp.wal.commits = db->wal().commits();
    resp.wal.syncs = db->wal().syncs();
    resp.wal.group_commits = db->wal().group_commits();
  }
  if (update_manager_) {
    for (const TargetFreshness& f : update_manager_->TargetStatuses()) {
      resp.targets.push_back(TargetStatus{f.address, f.updates_sent,
                                          f.seconds_since_last, f.healthy,
                                          f.consecutive_failures,
                                          f.full_resends});
    }
  }
  obs::Snapshot snapshot = registry_.TakeSnapshot();
  resp.metrics.reserve(snapshot.samples.size());
  for (const obs::Sample& sample : snapshot.samples) {
    MetricSample m;
    m.name = sample.name;
    m.labels = sample.labels;
    m.kind = static_cast<uint8_t>(sample.kind);
    m.value = sample.value;
    if (sample.kind == obs::MetricKind::kHistogram) {
      m.count = sample.hist.count;
      m.mean_us = sample.hist.mean_us;
      m.p50_us = sample.hist.p50_us;
      m.p95_us = sample.hist.p95_us;
      m.p99_us = sample.hist.p99_us;
      m.p999_us = sample.hist.p999_us;
      m.max_us = sample.hist.max_us;
      m.exemplar_us = sample.exemplar_us;
      m.exemplar_trace = sample.exemplar_trace;
    }
    resp.metrics.push_back(std::move(m));
  }
  return resp;
}

ServerStats RlsServer::Stats() const {
  ServerStats stats;
  if (lrc_store_) {
    stats.lfn_count = lrc_store_->LogicalNameCount();
    stats.mapping_count = lrc_store_->MappingCount();
  } else if (rli_relational_) {
    stats.lfn_count = rli_relational_->LogicalNameCount();
    stats.mapping_count = rli_relational_->AssociationCount();
  }
  if (rpc_server_) {
    stats.requests_served = rpc_server_->requests_served();
    stats.requests_shed = rpc_server_->requests_shed();
  }
  if (admission_) stats.requests_shed += admission_->shed_total();
  stats.updates_received = rli_updates_received_->Value();
  if (update_manager_) {
    UpdateStats us = update_manager_->stats();
    stats.updates_sent = us.full_updates_sent + us.incremental_updates_sent +
                         us.bloom_updates_sent;
  }
  if (rli_bloom_) stats.bloom_filters = rli_bloom_->filter_count();
  return stats;
}

void RlsServer::ExpireNow() {
  const auto timeout = config_.rli.timeout;
  if (timeout.count() <= 0) return;
  if (rli_relational_) {
    const int64_t now_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                   clock_->Now().time_since_epoch())
                                   .count();
    const int64_t cutoff =
        now_micros -
        std::chrono::duration_cast<std::chrono::microseconds>(timeout).count();
    uint64_t removed = 0;
    if (rli_relational_->ExpireOlderThan(cutoff, &removed).ok()) {
      rli_expired_entries_->Increment(removed);
    }
  }
  if (rli_bloom_) {
    rli_expired_entries_->Increment(rli_bloom_->ExpireOlderThan(timeout));
  }
}

void RlsServer::ExpireLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(expire_mu_);
      expire_cv_.wait_for(lock, config_.rli.expire_poll, [this] { return !running_; });
      if (!running_) return;
    }
    ExpireNow();
  }
}

MetricsResponse RlsServer::Metrics() const {
  MetricsResponse metrics;
  auto add = [&](const char* family, const obs::Histogram* hist) {
    auto snap = hist->GetSnapshot();
    FamilyMetrics f;
    f.family = family;
    f.count = snap.count;
    f.mean_us = snap.mean_us;
    f.p50_us = snap.p50_us;
    f.p95_us = snap.p95_us;
    f.p99_us = snap.p99_us;
    f.p999_us = snap.p999_us;
    f.max_us = snap.max_us;
    metrics.families.push_back(std::move(f));
  };
  add("lrc_read", lrc_read_latency_);
  add("lrc_write", lrc_write_latency_);
  add("rli_query", rli_query_latency_);
  add("soft_state", soft_state_latency_);
  return metrics;
}

namespace {

/// Which latency family an opcode bills to; nullptr = untracked.
enum class OpFamily { kNone, kLrcRead, kLrcWrite, kRliQuery, kSoftState };

OpFamily FamilyFor(uint16_t opcode) {
  switch (opcode) {
    case kLrcQueryLfn:
    case kLrcQueryPfn:
    case kLrcBulkQueryLfn:
    case kLrcWildcardQueryLfn:
    case kLrcExists:
    case kLrcAttrQueryObj:
    case kLrcAttrSearch:
    case kLrcRliList:
      return OpFamily::kLrcRead;
    case kLrcCreate:
    case kLrcAdd:
    case kLrcDelete:
    case kLrcBulkCreate:
    case kLrcBulkAdd:
    case kLrcBulkDelete:
    case kLrcAttrDefine:
    case kLrcAttrUndefine:
    case kLrcAttrAdd:
    case kLrcAttrModify:
    case kLrcAttrDelete:
    case kLrcBulkAttrAdd:
    case kLrcBulkAttrDelete:
      return OpFamily::kLrcWrite;
    case kRliQueryLfn:
    case kRliBulkQuery:
    case kRliWildcardQuery:
    case kRliLrcList:
      return OpFamily::kRliQuery;
    case kSsFullBegin:
    case kSsFullChunk:
    case kSsFullEnd:
    case kSsIncremental:
    case kSsBloom:
      return OpFamily::kSoftState;
    default:
      return OpFamily::kNone;
  }
}

}  // namespace

Status RlsServer::Handle(const gsi::AuthContext& auth, uint16_t opcode,
                         const std::string& request, std::string* response) {
  rlscommon::Stopwatch watch(clock_);
  Status status = Dispatch(auth, opcode, request, response);
  switch (FamilyFor(opcode)) {
    case OpFamily::kLrcRead: lrc_read_latency_->Record(watch.Elapsed()); break;
    case OpFamily::kLrcWrite: lrc_write_latency_->Record(watch.Elapsed()); break;
    case OpFamily::kRliQuery: rli_query_latency_->Record(watch.Elapsed()); break;
    case OpFamily::kSoftState: soft_state_latency_->Record(watch.Elapsed()); break;
    case OpFamily::kNone: break;
  }
  return status;
}

Status RlsServer::Dispatch(const gsi::AuthContext& auth, uint16_t opcode,
                           const std::string& request, std::string* response) {
  if (opcode == kPing) {
    *response = "pong";
    return Status::Ok();
  }
  if (opcode == kServerStats) {
    Status s = config_.auth.Authorize(auth, gsi::Privilege::kStats);
    if (!s.ok()) return s;
    EncodeStats(Stats(), response);
    return Status::Ok();
  }
  if (opcode == kServerMetrics) {
    Status s = config_.auth.Authorize(auth, gsi::Privilege::kStats);
    if (!s.ok()) return s;
    Metrics().Encode(response);
    return Status::Ok();
  }
  if (opcode == kServerGetStats) {
    Status s = config_.auth.Authorize(auth, gsi::Privilege::kStats);
    if (!s.ok()) return s;
    GetStatsSnapshot().Encode(response);
    return Status::Ok();
  }
  if (opcode == kServerGetTraces) {
    Status s = config_.auth.Authorize(auth, gsi::Privilege::kStats);
    if (!s.ok()) return s;
    GetTracesRequest req;
    s = GetTracesRequest::Decode(request, &req);
    if (!s.ok()) return s;
    obs::TraceFilter filter;
    filter.trace_id = req.trace_id;
    filter.name = req.method;
    filter.component = req.component;
    filter.min_duration_us = req.min_duration_us;
    filter.limit = req.limit;
    filter.slow_log = req.source == kTraceSourceSlowLog;
    obs::SpanRecorder& recorder = obs::SpanRecorder::Global();
    const obs::SpanRecorder::Stats rstats = recorder.GetStats();
    GetTracesResponse resp;
    resp.depth = rstats.depth;
    resp.dropped = rstats.dropped;
    resp.capacity = rstats.capacity;
    for (obs::CompletedSpan& span : recorder.Query(filter)) {
      TraceSpan out;
      out.component = std::move(span.component);
      out.name = std::move(span.name);
      out.trace_id = span.trace_id;
      out.span_id = span.span_id;
      out.tid = span.tid;
      out.start_us = span.start_us;
      out.duration_us = span.duration_us;
      out.hops.reserve(span.hops.size());
      for (auto& [hop_name, offset_us] : span.hops) {
        out.hops.push_back(TraceHop{std::move(hop_name), offset_us});
      }
      resp.spans.push_back(std::move(out));
    }
    resp.Encode(response);
    return Status::Ok();
  }
  if (opcode >= kLrcCreate && opcode <= kLrcForceUpdate) {
    if (!config_.lrc.enabled) return Status::Unsupported("server has no LRC role");
    return HandleLrc(auth, opcode, request, response);
  }
  if (opcode >= kRliQueryLfn && opcode <= kRliLrcList) {
    if (!config_.rli.enabled) return Status::Unsupported("server has no RLI role");
    return HandleRli(auth, opcode, request, response);
  }
  if (opcode >= kSsFullBegin && opcode <= kSsBloom) {
    if (!config_.rli.enabled) return Status::Unsupported("server has no RLI role");
    return HandleSoftState(auth, opcode, request, response);
  }
  return Status::Protocol("unknown opcode " + std::to_string(opcode));
}

Status RlsServer::HandleLrc(const gsi::AuthContext& auth, uint16_t opcode,
                            const std::string& request, std::string* response) {
  LrcStore& store = *lrc_store_;

  // Privilege per opcode family.
  gsi::Privilege needed = gsi::Privilege::kLrcRead;
  switch (opcode) {
    case kLrcCreate:
    case kLrcAdd:
    case kLrcDelete:
    case kLrcBulkCreate:
    case kLrcBulkAdd:
    case kLrcBulkDelete:
    case kLrcAttrDefine:
    case kLrcAttrAdd:
    case kLrcAttrModify:
    case kLrcAttrDelete:
    case kLrcBulkAttrAdd:
    case kLrcBulkAttrDelete:
    case kLrcAttrUndefine:
      needed = gsi::Privilege::kLrcWrite;
      break;
    case kLrcRliList:
    case kLrcRliAdd:
    case kLrcRliRemove:
    case kLrcForceUpdate:
      needed = gsi::Privilege::kAdmin;
      break;
    default:
      needed = gsi::Privilege::kLrcRead;
  }
  Status s = config_.auth.Authorize(auth, needed);
  rlscommon::StampHop("auth");
  if (!s.ok()) return s;

  switch (opcode) {
    case kLrcCreate:
    case kLrcAdd:
    case kLrcDelete: {
      Mapping m;
      s = DecodeOneMapping(request, &m);
      if (!s.ok()) return s;
      if (opcode == kLrcCreate) return store.CreateMapping(m.logical, m.target);
      if (opcode == kLrcAdd) return store.AddMapping(m.logical, m.target);
      return store.DeleteMapping(m.logical, m.target);
    }
    case kLrcBulkCreate:
    case kLrcBulkAdd:
    case kLrcBulkDelete: {
      MappingRequest req;
      s = MappingRequest::Decode(request, &req);
      if (!s.ok()) return s;
      // One multi-row WAL transaction for the whole batch (single log
      // append + single sync) instead of a commit per item.
      BulkStatusResponse result;
      if (opcode == kLrcBulkCreate) {
        s = store.CreateMappings(req.mappings, &result);
      } else if (opcode == kLrcBulkAdd) {
        s = store.AddMappings(req.mappings, &result);
      } else {
        s = store.DeleteMappings(req.mappings, &result);
      }
      if (!s.ok()) return s;
      result.Encode(response);
      return Status::Ok();
    }
    case kLrcQueryLfn:
    case kLrcQueryPfn: {
      NameQueryRequest req;
      s = NameQueryRequest::Decode(request, &req);
      if (!s.ok()) return s;
      StringListResponse result;
      s = opcode == kLrcQueryLfn
              ? store.QueryLogical(req.name, &result.values, req.offset, req.limit)
              : store.QueryTarget(req.name, &result.values, req.offset, req.limit);
      if (!s.ok()) return s;
      result.Encode(response);
      return Status::Ok();
    }
    case kLrcBulkQueryLfn: {
      BulkQueryRequest req;
      s = BulkQueryRequest::Decode(request, &req);
      if (!s.ok()) return s;
      MappingListResponse result;
      std::vector<std::string> targets;
      for (const std::string& lfn : req.names) {
        if (store.QueryLogical(lfn, &targets).ok()) {
          for (std::string& target : targets) {
            result.mappings.push_back(Mapping{lfn, std::move(target)});
          }
        }
      }
      result.Encode(response);
      return Status::Ok();
    }
    case kLrcWildcardQueryLfn: {
      NameQueryRequest req;
      s = NameQueryRequest::Decode(request, &req);
      if (!s.ok()) return s;
      MappingListResponse result;
      s = store.WildcardQuery(req.name, req.limit, &result.mappings, req.offset);
      if (!s.ok()) return s;
      result.Encode(response);
      return Status::Ok();
    }
    case kLrcExists: {
      NameQueryRequest req;
      s = NameQueryRequest::Decode(request, &req);
      if (!s.ok()) return s;
      return store.LogicalExists(req.name)
                 ? Status::Ok()
                 : Status::NotFound("not registered: " + req.name);
    }
    case kLrcAttrDefine: {
      AttrDefineRequest req;
      s = AttrDefineRequest::Decode(request, &req);
      if (!s.ok()) return s;
      return store.DefineAttribute(req.name, req.object, req.type);
    }
    case kLrcAttrUndefine: {
      AttrDefineRequest req;
      s = AttrDefineRequest::Decode(request, &req);
      if (!s.ok()) return s;
      return store.UndefineAttribute(req.name, req.object);
    }
    case kLrcAttrAdd:
    case kLrcAttrModify: {
      AttrValueRequest req;
      s = AttrValueRequest::Decode(request, &req);
      if (!s.ok()) return s;
      return opcode == kLrcAttrAdd ? store.AddAttribute(req)
                                   : store.ModifyAttribute(req);
    }
    case kLrcAttrDelete: {
      AttrValueRequest req;
      s = AttrValueRequest::Decode(request, &req);
      if (!s.ok()) return s;
      return store.DeleteAttribute(req.object_name, req.attr_name, req.object);
    }
    case kLrcBulkAttrAdd:
    case kLrcBulkAttrDelete: {
      BulkAttrRequest req;
      s = BulkAttrRequest::Decode(request, &req);
      if (!s.ok()) return s;
      BulkStatusResponse result;
      for (uint32_t i = 0; i < req.items.size(); ++i) {
        const AttrValueRequest& item = req.items[i];
        Status st = opcode == kLrcBulkAttrAdd
                        ? store.AddAttribute(item)
                        : store.DeleteAttribute(item.object_name, item.attr_name,
                                                item.object);
        if (st.ok()) {
          ++result.succeeded;
        } else {
          result.failures.push_back({i, st.code()});
        }
      }
      result.Encode(response);
      return Status::Ok();
    }
    case kLrcAttrQueryObj: {
      AttrValueRequest req;  // value ignored
      s = AttrValueRequest::Decode(request, &req);
      if (!s.ok()) return s;
      AttrListResponse result;
      s = store.QueryObjectAttributes(req.object_name, req.object, &result.attributes);
      if (!s.ok()) return s;
      result.Encode(response);
      return Status::Ok();
    }
    case kLrcAttrSearch: {
      AttrSearchRequest req;
      s = AttrSearchRequest::Decode(request, &req);
      if (!s.ok()) return s;
      std::vector<std::pair<std::string, AttrValue>> found;
      s = store.SearchAttribute(req, &found);
      if (!s.ok()) return s;
      AttrListResponse result;
      for (auto& [object_name, value] : found) {
        Attribute a;
        a.name = object_name;  // object names keyed by attribute value
        a.object = req.object;
        a.value = value;
        result.attributes.push_back(std::move(a));
      }
      result.Encode(response);
      return Status::Ok();
    }
    case kLrcRliList: {
      StringListResponse result;
      s = store.ListRlis(&result.values);
      if (!s.ok()) return s;
      result.Encode(response);
      return Status::Ok();
    }
    case kLrcRliAdd:
    case kLrcRliRemove: {
      NameQueryRequest req;
      s = NameQueryRequest::Decode(request, &req);
      if (!s.ok()) return s;
      if (opcode == kLrcRliAdd) {
        s = store.AddRli(req.name);
        if (s.ok() && update_manager_) {
          update_manager_->AddTarget(UpdateTarget{req.name, net::LinkModel::Loopback(), {}});
        }
        return s;
      }
      s = store.RemoveRli(req.name);
      if (s.ok() && update_manager_) update_manager_->RemoveTarget(req.name);
      return s;
    }
    case kLrcForceUpdate: {
      if (!update_manager_) return Status::Unsupported("no update manager");
      s = update_manager_->FlushImmediate();
      if (!s.ok()) return s;
      return update_manager_->ForceFullUpdate();
    }
    default:
      return Status::Protocol("unhandled LRC opcode " + std::to_string(opcode));
  }
}

Status RlsServer::HandleRli(const gsi::AuthContext& auth, uint16_t opcode,
                            const std::string& request, std::string* response) {
  Status s = config_.auth.Authorize(auth, gsi::Privilege::kRliRead);
  rlscommon::StampHop("auth");
  if (!s.ok()) return s;

  switch (opcode) {
    case kRliQueryLfn: {
      NameQueryRequest req;
      s = NameQueryRequest::Decode(request, &req);
      if (!s.ok()) return s;
      StringListResponse result;
      bool found = false;
      if (rli_relational_ &&
          rli_relational_->Query(req.name, &result.values).ok()) {
        found = true;
      }
      if (rli_bloom_) {
        std::vector<std::string> from_bloom;
        if (rli_bloom_->Query(req.name, &from_bloom).ok()) {
          MergeUnique(&result.values, from_bloom);
          found = true;
        }
      }
      if (!found) return Status::NotFound("no LRC holds mappings for: " + req.name);
      result.Encode(response);
      return Status::Ok();
    }
    case kRliBulkQuery: {
      BulkQueryRequest req;
      s = BulkQueryRequest::Decode(request, &req);
      if (!s.ok()) return s;
      MappingListResponse result;
      std::vector<std::string> lrcs;
      for (const std::string& lfn : req.names) {
        lrcs.clear();
        if (rli_relational_) {
          std::vector<std::string> found;
          if (rli_relational_->Query(lfn, &found).ok()) MergeUnique(&lrcs, found);
        }
        if (rli_bloom_) {
          std::vector<std::string> found;
          if (rli_bloom_->Query(lfn, &found).ok()) MergeUnique(&lrcs, found);
        }
        for (std::string& lrc : lrcs) {
          result.mappings.push_back(Mapping{lfn, std::move(lrc)});
        }
      }
      result.Encode(response);
      return Status::Ok();
    }
    case kRliWildcardQuery: {
      NameQueryRequest req;
      s = NameQueryRequest::Decode(request, &req);
      if (!s.ok()) return s;
      if (!rli_relational_) {
        // Paper §5.4: wildcard searches on RLI contents "are not possible
        // when using Bloom filter compression".
        return Status::Unsupported("wildcard queries unsupported on a Bloom-filter RLI");
      }
      MappingListResponse result;
      s = rli_relational_->WildcardQuery(req.name, req.limit, &result.mappings);
      if (!s.ok()) return s;
      result.Encode(response);
      return Status::Ok();
    }
    case kRliLrcList: {
      StringListResponse result;
      if (rli_relational_) {
        s = rli_relational_->ListLrcs(&result.values);
        if (!s.ok()) return s;
      }
      if (rli_bloom_) {
        std::vector<std::string> from_bloom;
        s = rli_bloom_->ListLrcs(&from_bloom);
        if (!s.ok()) return s;
        MergeUnique(&result.values, from_bloom);
      }
      result.Encode(response);
      return Status::Ok();
    }
    default:
      return Status::Protocol("unhandled RLI opcode " + std::to_string(opcode));
  }
}

Status RlsServer::HandleSoftState(const gsi::AuthContext& auth, uint16_t opcode,
                                  const std::string& request, std::string* response) {
  (void)response;
  Status s = config_.auth.Authorize(auth, gsi::Privilege::kRliWrite);
  rlscommon::StampHop("auth");
  if (!s.ok()) return s;

  const int64_t now_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                 clock_->Now().time_since_epoch())
                                 .count();

  // Summarize->receive lag of this hop, and the trace that produced it
  // (the sender re-stamps the originating client's trace id).
  auto note_update = [&](int64_t sent_micros, bool count) {
    if (count) rli_updates_received_->Increment();
    if (sent_micros > 0 && now_micros >= sent_micros) {
      ss_receive_lag_->RecordMicros(static_cast<uint64_t>(now_micros - sent_micros));
    }
    const rlscommon::TraceContext trace = rlscommon::CurrentTrace();
    if (trace.valid()) {
      last_update_trace_id_.store(trace.trace_id, std::memory_order_relaxed);
    }
    // Stage stamp: everything since the last hop was soft-state ingest.
    rlscommon::StampHop("rli_ingest");
  };

  switch (opcode) {
    case kSsFullBegin: {
      FullUpdateBegin req;
      s = FullUpdateBegin::Decode(request, &req);
      if (!s.ok()) return s;
      if (!rli_relational_) {
        return Status::Unsupported("RLI accepts only Bloom updates (no database)");
      }
      note_update(req.sent_micros, /*count=*/false);
      ForwardToParents(opcode, request);
      return Status::Ok();
    }
    case kSsFullChunk: {
      FullUpdateChunk req;
      s = FullUpdateChunk::Decode(request, &req);
      if (!s.ok()) return s;
      if (!rli_relational_) {
        return Status::Unsupported("RLI accepts only Bloom updates (no database)");
      }
      s = rli_relational_->UpsertBatch(req.names, req.lrc_url, now_micros);
      if (!s.ok()) return s;
      rlscommon::StampHop("rli_ingest");
      ForwardToParents(opcode, request);
      return Status::Ok();
    }
    case kSsFullEnd: {
      FullUpdateEnd req;
      s = FullUpdateEnd::Decode(request, &req);
      if (!s.ok()) return s;
      note_update(0, /*count=*/true);
      ForwardToParents(opcode, request);
      return Status::Ok();
    }
    case kSsIncremental: {
      IncrementalUpdate req;
      s = IncrementalUpdate::Decode(request, &req);
      if (!s.ok()) return s;
      if (!rli_relational_) {
        return Status::Unsupported("RLI accepts only Bloom updates (no database)");
      }
      s = rli_relational_->UpsertBatch(req.added, req.lrc_url, now_micros);
      if (!s.ok()) return s;
      for (const std::string& lfn : req.removed) {
        s = rli_relational_->Remove(lfn, req.lrc_url);
        if (!s.ok()) return s;
      }
      note_update(req.sent_micros, /*count=*/true);
      ForwardToParents(opcode, request);
      return Status::Ok();
    }
    case kSsBloom: {
      BloomUpdate req;
      s = BloomUpdate::Decode(request, &req);
      if (!s.ok()) return s;
      if (!rli_bloom_) {
        return Status::Unsupported("RLI does not accept Bloom updates");
      }
      bloom::BloomFilter filter;
      s = bloom::BloomFilter::Deserialize(req.filter_bytes, &filter);
      if (!s.ok()) return s;
      rli_bloom_->StoreFilter(req.lrc_url, std::move(filter));
      note_update(req.sent_micros, /*count=*/true);
      ForwardToParents(opcode, request);
      return Status::Ok();
    }
    default:
      return Status::Protocol("unhandled soft-state opcode " + std::to_string(opcode));
  }
}

void RlsServer::ForwardToParents(uint16_t opcode, const std::string& request) {
  std::lock_guard<std::mutex> lock(parents_mu_);
  for (auto& [target, client] : parents_) {
    if (!client) {
      net::ClientOptions options;
      options.link = target.link;
      if (!net::RpcClient::Connect(network_, target.address, options, &client).ok()) {
        RLS_WARN("rli") << config_.url << ": cannot reach parent RLI " << target.address;
        continue;
      }
    }
    std::string response;
    Status s = client->Call(opcode, request, &response);
    if (!s.ok()) {
      RLS_WARN("rli") << config_.url << ": forward to " << target.address
                      << " failed: " << s.ToString();
      client.reset();  // reconnect next time
    }
  }
}

}  // namespace rls
