#include "rls/lrc_store.h"

#include "common/logging.h"
#include "common/strings.h"

namespace rls {
namespace {

using dbapi::Connection;
using rlscommon::Status;
using sql::ResultSet;

/// Runs `body` inside BEGIN/COMMIT, rolling back on failure.
Status WithTxn(Connection& conn, const std::function<Status()>& body) {
  Status s = conn.Begin();
  if (!s.ok()) return s;
  s = body();
  if (!s.ok()) {
    (void)conn.Rollback();
    return s;
  }
  return conn.Commit();
}

/// WithTxn with a split commit: the WAL slot is reserved (fixing replay
/// order) while `write_lock` is still held, then the lock drops before
/// parking for the — possibly group — sync, so concurrent writers can
/// share one fdatasync. `on_logged` fires under the lock once the
/// transaction is in the log's commit order (soft-state events stay
/// ordered); in per-txn-flush mode the commit is already complete and
/// durable at that point.
Status WithTxnDeferred(Connection& conn, std::unique_lock<std::mutex>& write_lock,
                       const std::function<Status()>& body,
                       const std::function<void()>& on_logged) {
  Status s = conn.Begin();
  if (!s.ok()) return s;
  s = body();
  if (!s.ok()) {
    (void)conn.Rollback();
    return s;
  }
  rdb::Wal::CommitTicket ticket;
  s = conn.CommitBegin(&ticket);
  if (!s.ok()) return s;
  if (on_logged) on_logged();
  write_lock.unlock();
  return conn.CommitFinish(&ticket);
}

const char* AttrTable(AttrType type) {
  switch (type) {
    case AttrType::kString: return "t_str_attr";
    case AttrType::kInt: return "t_int_attr";
    case AttrType::kFloat: return "t_flt_attr";
    case AttrType::kDate: return "t_date_attr";
  }
  return "t_str_attr";
}

const char* ObjectTable(AttrObject object) {
  return object == AttrObject::kLogical ? "t_lfn" : "t_pfn";
}

rdb::Value ToDbValue(const AttrValue& v) {
  switch (v.type) {
    case AttrType::kString: return rdb::Value::String(v.string_value);
    case AttrType::kInt: return rdb::Value::Int(v.int_value);
    case AttrType::kFloat: return rdb::Value::Double(v.float_value);
    case AttrType::kDate: return rdb::Value::Timestamp(v.int_value);
  }
  return rdb::Value::Null();
}

AttrValue FromDbValue(AttrType type, const rdb::Value& v) {
  switch (type) {
    case AttrType::kString: return AttrValue::Str(v.is_string() ? v.AsString() : "");
    case AttrType::kInt: return AttrValue::Int(v.is_null() ? 0 : v.AsInt());
    case AttrType::kFloat: return AttrValue::Float(v.is_null() ? 0.0 : v.NumericValue());
    case AttrType::kDate: return AttrValue::Date(v.is_null() ? 0 : v.AsInt());
  }
  return AttrValue();
}

const char* CmpSql(AttrCmp cmp) {
  switch (cmp) {
    case AttrCmp::kEq: return "=";
    case AttrCmp::kNe: return "!=";
    case AttrCmp::kLt: return "<";
    case AttrCmp::kLe: return "<=";
    case AttrCmp::kGt: return ">";
    case AttrCmp::kGe: return ">=";
  }
  return "=";
}

}  // namespace

std::string GlobToLike(std::string_view glob) {
  std::string out;
  out.reserve(glob.size());
  for (char c : glob) {
    switch (c) {
      case '*': out.push_back('%'); break;
      case '?': out.push_back('_'); break;
      // Literal '%'/'_' in names pass through and act as wildcards; the
      // LIKE dialect has no escape syntax (documented limitation).
      default: out.push_back(c);
    }
  }
  return out;
}

Status LrcStore::Create(dbapi::Environment& env, const std::string& dsn,
                        std::unique_ptr<LrcStore>* out) {
  std::unique_ptr<LrcStore> store(new LrcStore(env, dsn));
  Status s = store->InitSchema();
  if (!s.ok()) return s;
  // Replay the WAL once the schema exists (DDL is not logged; only row
  // mutations are). No-op unless the profile enables wal_recovery. The
  // RLI's relational store is intentionally NOT recovered: RLI state is
  // soft state the paper rebuilds from LRC updates (§2).
  store->db_ = env.Find(dsn);
  if (store->db_) {
    s = store->db_->Recover();
    if (!s.ok()) return s;
  }
  *out = std::move(store);
  return Status::Ok();
}

Status LrcStore::InitSchema() {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  // Fig. 3 of the paper, LRC database.
  static constexpr const char* kSchema[] = {
      "CREATE TABLE t_lfn (id INT AUTO_INCREMENT PRIMARY KEY,"
      " name VARCHAR(250) NOT NULL, ref INT)",
      "CREATE UNIQUE INDEX idx_lfn_name ON t_lfn (name)",
      "CREATE TABLE t_pfn (id INT AUTO_INCREMENT PRIMARY KEY,"
      " name VARCHAR(250) NOT NULL, ref INT)",
      "CREATE UNIQUE INDEX idx_pfn_name ON t_pfn (name)",
      "CREATE TABLE t_map (lfn_id INT NOT NULL, pfn_id INT NOT NULL)",
      "CREATE INDEX idx_map_lfn ON t_map (lfn_id)",
      "CREATE INDEX idx_map_pfn ON t_map (pfn_id)",
      "CREATE TABLE t_attribute (id INT AUTO_INCREMENT PRIMARY KEY,"
      " name VARCHAR(250) NOT NULL, objtype INT NOT NULL, type INT NOT NULL)",
      "CREATE INDEX idx_attr_name ON t_attribute (name)",
      "CREATE TABLE t_str_attr (obj_id INT, attr_id INT, value VARCHAR(250))",
      "CREATE INDEX idx_str_obj ON t_str_attr (obj_id)",
      "CREATE ORDERED INDEX idx_str_val ON t_str_attr (value)",
      "CREATE TABLE t_int_attr (obj_id INT, attr_id INT, value INT)",
      "CREATE INDEX idx_int_obj ON t_int_attr (obj_id)",
      "CREATE ORDERED INDEX idx_int_val ON t_int_attr (value)",
      "CREATE TABLE t_flt_attr (obj_id INT, attr_id INT, value DOUBLE)",
      "CREATE INDEX idx_flt_obj ON t_flt_attr (obj_id)",
      "CREATE ORDERED INDEX idx_flt_val ON t_flt_attr (value)",
      "CREATE TABLE t_date_attr (obj_id INT, attr_id INT, value TIMESTAMP)",
      "CREATE INDEX idx_date_obj ON t_date_attr (obj_id)",
      "CREATE ORDERED INDEX idx_date_val ON t_date_attr (value)",
      "CREATE TABLE t_rli (id INT AUTO_INCREMENT PRIMARY KEY,"
      " flags INT, name VARCHAR(250) NOT NULL)",
      "CREATE UNIQUE INDEX idx_rli_name ON t_rli (name)",
      "CREATE TABLE t_rlipartition (rli_id INT NOT NULL, pattern VARCHAR(250))",
      "CREATE INDEX idx_part_rli ON t_rlipartition (rli_id)",
  };
  for (const char* ddl : kSchema) {
    ResultSet rs;
    s = conn->Execute(ddl, &rs);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status LrcStore::LookupId(Connection& conn, const char* table,
                          const std::string& name, int64_t* id) {
  ResultSet rs;
  Status s = conn.Execute(std::string("SELECT id FROM ") + table + " WHERE name = ?",
                          {rdb::Value::String(name)}, &rs);
  if (!s.ok()) return s;
  *id = rs.empty() ? 0 : rs.at(0, 0).AsInt();
  return Status::Ok();
}

Status LrcStore::InsertMappingTx(Connection& conn, const std::string& logical,
                                 const std::string& target, bool create_new,
                                 bool* lfn_added) {
  int64_t lfn_id = 0;
  Status st = LookupId(conn, "t_lfn", logical, &lfn_id);
  if (!st.ok()) return st;
  if (create_new && lfn_id != 0) {
    return Status::AlreadyExists("logical name already registered: " + logical);
  }
  if (!create_new && lfn_id == 0) {
    return Status::NotFound("logical name not registered: " + logical);
  }

  int64_t pfn_id = 0;
  st = LookupId(conn, "t_pfn", target, &pfn_id);
  if (!st.ok()) return st;

  if (!create_new && pfn_id != 0) {
    // Duplicate-mapping check (only possible when both ends exist).
    ResultSet rs;
    st = conn.Execute("SELECT COUNT(*) FROM t_map WHERE lfn_id = ? AND pfn_id = ?",
                      {rdb::Value::Int(lfn_id), rdb::Value::Int(pfn_id)}, &rs);
    if (!st.ok()) return st;
    if (rs.at(0, 0).AsInt() > 0) {
      return Status::AlreadyExists("mapping already exists: " + logical + " -> " +
                                   target);
    }
  }

  ResultSet rs;
  if (lfn_id == 0) {
    st = conn.Execute("INSERT INTO t_lfn (name, ref) VALUES (?, 1)",
                      {rdb::Value::String(logical)}, &rs);
    if (!st.ok()) return st;
    lfn_id = rs.last_insert_id;
    *lfn_added = true;
  } else {
    st = conn.Execute("UPDATE t_lfn SET ref = ref + 1 WHERE id = ?",
                      {rdb::Value::Int(lfn_id)}, &rs);
    if (!st.ok()) return st;
  }

  if (pfn_id == 0) {
    st = conn.Execute("INSERT INTO t_pfn (name, ref) VALUES (?, 1)",
                      {rdb::Value::String(target)}, &rs);
    if (!st.ok()) return st;
    pfn_id = rs.last_insert_id;
  } else {
    st = conn.Execute("UPDATE t_pfn SET ref = ref + 1 WHERE id = ?",
                      {rdb::Value::Int(pfn_id)}, &rs);
    if (!st.ok()) return st;
  }

  return conn.Execute("INSERT INTO t_map (lfn_id, pfn_id) VALUES (?, ?)",
                      {rdb::Value::Int(lfn_id), rdb::Value::Int(pfn_id)}, &rs);
}

Status LrcStore::InsertMapping(const std::string& logical, const std::string& target,
                               bool create_new) {
  std::unique_lock<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;

  bool lfn_added = false;
  return WithTxnDeferred(
      *conn, write_lock,
      [&] { return InsertMappingTx(*conn, logical, target, create_new, &lfn_added); },
      [&] {
        if (lfn_added && observer_) observer_(logical, /*added=*/true);
      });
}

Status LrcStore::CreateMapping(const std::string& logical, const std::string& target) {
  return InsertMapping(logical, target, /*create_new=*/true);
}

Status LrcStore::AddMapping(const std::string& logical, const std::string& target) {
  return InsertMapping(logical, target, /*create_new=*/false);
}

Status LrcStore::DeleteMappingTx(Connection& conn, const std::string& logical,
                                 const std::string& target, bool* lfn_removed) {
  int64_t lfn_id = 0, pfn_id = 0;
  Status st = LookupId(conn, "t_lfn", logical, &lfn_id);
  if (!st.ok()) return st;
  if (lfn_id == 0) return Status::NotFound("logical name not registered: " + logical);
  st = LookupId(conn, "t_pfn", target, &pfn_id);
  if (!st.ok()) return st;
  if (pfn_id == 0) return Status::NotFound("target name not registered: " + target);

  ResultSet rs;
  st = conn.Execute("DELETE FROM t_map WHERE lfn_id = ? AND pfn_id = ?",
                    {rdb::Value::Int(lfn_id), rdb::Value::Int(pfn_id)}, &rs);
  if (!st.ok()) return st;
  if (rs.affected == 0) {
    return Status::NotFound("mapping does not exist: " + logical + " -> " + target);
  }

  // Decrement / remove the logical-name row.
  st = conn.Execute("SELECT ref FROM t_lfn WHERE id = ?",
                    {rdb::Value::Int(lfn_id)}, &rs);
  if (!st.ok()) return st;
  if (rs.at(0, 0).AsInt() <= 1) {
    st = conn.Execute("DELETE FROM t_lfn WHERE id = ?", {rdb::Value::Int(lfn_id)}, &rs);
    if (!st.ok()) return st;
    *lfn_removed = true;
    st = DeleteObjectAttributes(conn, lfn_id, AttrObject::kLogical);
    if (!st.ok()) return st;
  } else {
    st = conn.Execute("UPDATE t_lfn SET ref = ref - 1 WHERE id = ?",
                      {rdb::Value::Int(lfn_id)}, &rs);
    if (!st.ok()) return st;
  }

  // Decrement / remove the target-name row.
  st = conn.Execute("SELECT ref FROM t_pfn WHERE id = ?",
                    {rdb::Value::Int(pfn_id)}, &rs);
  if (!st.ok()) return st;
  if (rs.at(0, 0).AsInt() <= 1) {
    st = conn.Execute("DELETE FROM t_pfn WHERE id = ?", {rdb::Value::Int(pfn_id)}, &rs);
    if (!st.ok()) return st;
    st = DeleteObjectAttributes(conn, pfn_id, AttrObject::kTarget);
    if (!st.ok()) return st;
  } else {
    st = conn.Execute("UPDATE t_pfn SET ref = ref - 1 WHERE id = ?",
                      {rdb::Value::Int(pfn_id)}, &rs);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

Status LrcStore::DeleteMapping(const std::string& logical, const std::string& target) {
  std::unique_lock<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;

  bool lfn_removed = false;
  return WithTxnDeferred(
      *conn, write_lock,
      [&] { return DeleteMappingTx(*conn, logical, target, &lfn_removed); },
      [&] {
        if (lfn_removed && observer_) observer_(logical, /*added=*/false);
      });
}

Status LrcStore::MutateMappings(const std::vector<Mapping>& mappings, MappingOp op,
                                BulkStatusResponse* result) {
  result->succeeded = 0;
  result->failures.clear();
  if (mappings.empty()) return Status::Ok();

  std::unique_lock<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  s = conn->Begin();
  if (!s.ok()) return s;

  // Soft-state events collected per item, fired in order once the batch
  // is in the log's commit order.
  std::vector<std::pair<const std::string*, bool>> events;
  for (uint32_t i = 0; i < mappings.size(); ++i) {
    const Mapping& m = mappings[i];
    const sql::Savepoint sp = conn->Savepoint();
    bool lfn_added = false, lfn_removed = false;
    Status item = op == MappingOp::kDelete
                      ? DeleteMappingTx(*conn, m.logical, m.target, &lfn_removed)
                      : InsertMappingTx(*conn, m.logical, m.target,
                                        op == MappingOp::kCreate, &lfn_added);
    if (item.ok()) {
      ++result->succeeded;
      if (lfn_added) events.emplace_back(&m.logical, true);
      if (lfn_removed) events.emplace_back(&m.logical, false);
    } else {
      Status undo = conn->RollbackToSavepoint(sp);
      if (!undo.ok()) {
        // Undo failed: the in-memory state is suspect, drop the batch.
        (void)conn->Rollback();
        return undo;
      }
      result->failures.push_back({i, item.code()});
    }
  }

  rdb::Wal::CommitTicket ticket;
  s = conn->CommitBegin(&ticket);
  if (!s.ok()) return s;
  if (observer_) {
    for (const auto& [logical, added] : events) observer_(*logical, added);
  }
  write_lock.unlock();
  return conn->CommitFinish(&ticket);
}

Status LrcStore::CreateMappings(const std::vector<Mapping>& mappings,
                                BulkStatusResponse* result) {
  return MutateMappings(mappings, MappingOp::kCreate, result);
}

Status LrcStore::AddMappings(const std::vector<Mapping>& mappings,
                             BulkStatusResponse* result) {
  return MutateMappings(mappings, MappingOp::kAdd, result);
}

Status LrcStore::DeleteMappings(const std::vector<Mapping>& mappings,
                                BulkStatusResponse* result) {
  return MutateMappings(mappings, MappingOp::kDelete, result);
}

namespace {

/// Applies offset/limit paging to a fetched column, appending to `out`.
void PageInto(const ResultSet& rs, std::size_t column, uint32_t offset,
              uint32_t limit, std::vector<std::string>* out) {
  out->clear();
  for (std::size_t i = offset; i < rs.size(); ++i) {
    if (limit > 0 && out->size() >= limit) break;
    out->push_back(rs.rows[i][column].AsString());
  }
}

}  // namespace

Status LrcStore::QueryLogical(const std::string& logical,
                              std::vector<std::string>* targets, uint32_t offset,
                              uint32_t limit) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  ResultSet rs;
  s = conn->Execute(
      "SELECT t_pfn.name FROM t_lfn"
      " JOIN t_map ON t_lfn.id = t_map.lfn_id"
      " JOIN t_pfn ON t_map.pfn_id = t_pfn.id"
      " WHERE t_lfn.name = ?",
      {rdb::Value::String(logical)}, &rs);
  if (!s.ok()) return s;
  if (rs.empty()) return Status::NotFound("no mappings for logical name: " + logical);
  PageInto(rs, 0, offset, limit, targets);
  return Status::Ok();
}

Status LrcStore::QueryTarget(const std::string& target,
                             std::vector<std::string>* logicals, uint32_t offset,
                             uint32_t limit) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  ResultSet rs;
  s = conn->Execute(
      "SELECT t_lfn.name FROM t_pfn"
      " JOIN t_map ON t_pfn.id = t_map.pfn_id"
      " JOIN t_lfn ON t_map.lfn_id = t_lfn.id"
      " WHERE t_pfn.name = ?",
      {rdb::Value::String(target)}, &rs);
  if (!s.ok()) return s;
  if (rs.empty()) return Status::NotFound("no mappings for target name: " + target);
  PageInto(rs, 0, offset, limit, logicals);
  return Status::Ok();
}

Status LrcStore::WildcardQuery(const std::string& pattern, uint32_t limit,
                               std::vector<Mapping>* out, uint32_t offset) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  std::string sql =
      "SELECT t_lfn.name, t_pfn.name FROM t_lfn"
      " JOIN t_map ON t_lfn.id = t_map.lfn_id"
      " JOIN t_pfn ON t_map.pfn_id = t_pfn.id"
      " WHERE t_lfn.name LIKE ?";
  // Paging pushed down into the SQL layer.
  if (limit > 0) sql += " LIMIT " + std::to_string(limit);
  if (offset > 0) sql += " OFFSET " + std::to_string(offset);
  ResultSet rs;
  s = conn->Execute(sql, {rdb::Value::String(GlobToLike(pattern))}, &rs);
  if (!s.ok()) return s;
  out->clear();
  out->reserve(rs.size());
  for (const rdb::Row& row : rs.rows) {
    out->push_back(Mapping{row[0].AsString(), row[1].AsString()});
  }
  return Status::Ok();
}

bool LrcStore::LogicalExists(const std::string& logical) const {
  dbapi::ConnectionPool::Lease conn;
  if (!pool_.Acquire(&conn).ok()) return false;
  int64_t id = 0;
  if (!LookupId(*conn, "t_lfn", logical, &id).ok()) return false;
  return id != 0;
}

// --- attributes ---

Status LrcStore::DefineAttribute(const std::string& name, AttrObject object,
                                 AttrType type) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  return WithTxn(*conn, [&]() -> Status {
    ResultSet rs;
    Status st = conn->Execute(
        "SELECT id FROM t_attribute WHERE name = ? AND objtype = ?",
        {rdb::Value::String(name), rdb::Value::Int(static_cast<int64_t>(object))}, &rs);
    if (!st.ok()) return st;
    if (!rs.empty()) {
      return Status::AlreadyExists("attribute already defined: " + name);
    }
    return conn->Execute(
        "INSERT INTO t_attribute (name, objtype, type) VALUES (?, ?, ?)",
        {rdb::Value::String(name), rdb::Value::Int(static_cast<int64_t>(object)),
         rdb::Value::Int(static_cast<int64_t>(type))},
        &rs);
  });
}

Status LrcStore::UndefineAttribute(const std::string& name, AttrObject object) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  return WithTxn(*conn, [&]() -> Status {
    int64_t attr_id = 0;
    AttrType type;
    Status st = LookupAttribute(*conn, name, object, &attr_id, &type);
    if (!st.ok()) return st;
    ResultSet rs;
    st = conn->Execute(std::string("DELETE FROM ") + AttrTable(type) +
                           " WHERE attr_id = ?",
                       {rdb::Value::Int(attr_id)}, &rs);
    if (!st.ok()) return st;
    return conn->Execute("DELETE FROM t_attribute WHERE id = ?",
                         {rdb::Value::Int(attr_id)}, &rs);
  });
}

Status LrcStore::LookupAttribute(dbapi::Connection& conn, const std::string& name,
                                 AttrObject object, int64_t* attr_id, AttrType* type) {
  ResultSet rs;
  Status s = conn.Execute(
      "SELECT id, type FROM t_attribute WHERE name = ? AND objtype = ?",
      {rdb::Value::String(name), rdb::Value::Int(static_cast<int64_t>(object))}, &rs);
  if (!s.ok()) return s;
  if (rs.empty()) return Status::NotFound("attribute not defined: " + name);
  *attr_id = rs.at(0, 0).AsInt();
  *type = static_cast<AttrType>(rs.at(0, 1).AsInt());
  return Status::Ok();
}

Status LrcStore::DeleteObjectAttributes(dbapi::Connection& conn, int64_t obj_id,
                                        AttrObject object) {
  // Fast path: no attributes defined at all (the hot benchmark loop).
  ResultSet rs;
  Status s = conn.Execute("SELECT COUNT(*) FROM t_attribute", &rs);
  if (!s.ok()) return s;
  if (rs.at(0, 0).AsInt() == 0) return Status::Ok();

  s = conn.Execute("SELECT id, type FROM t_attribute WHERE objtype = ?",
                   {rdb::Value::Int(static_cast<int64_t>(object))}, &rs);
  if (!s.ok()) return s;
  for (const rdb::Row& row : rs.rows) {
    const int64_t attr_id = row[0].AsInt();
    const AttrType type = static_cast<AttrType>(row[1].AsInt());
    ResultSet del;
    s = conn.Execute(std::string("DELETE FROM ") + AttrTable(type) +
                         " WHERE obj_id = ? AND attr_id = ?",
                     {rdb::Value::Int(obj_id), rdb::Value::Int(attr_id)}, &del);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status LrcStore::AddAttribute(const AttrValueRequest& request) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  return WithTxn(*conn, [&]() -> Status {
    int64_t attr_id = 0;
    AttrType type;
    Status st = LookupAttribute(*conn, request.attr_name, request.object, &attr_id, &type);
    if (!st.ok()) return st;
    if (type != request.value.type) {
      return Status::InvalidArgument("attribute value type mismatch for " +
                                     request.attr_name);
    }
    int64_t obj_id = 0;
    st = LookupId(*conn, ObjectTable(request.object), request.object_name, &obj_id);
    if (!st.ok()) return st;
    if (obj_id == 0) return Status::NotFound("object not registered: " + request.object_name);

    ResultSet rs;
    st = conn->Execute(std::string("SELECT COUNT(*) FROM ") + AttrTable(type) +
                           " WHERE obj_id = ? AND attr_id = ?",
                       {rdb::Value::Int(obj_id), rdb::Value::Int(attr_id)}, &rs);
    if (!st.ok()) return st;
    if (rs.at(0, 0).AsInt() > 0) {
      return Status::AlreadyExists("attribute already set on " + request.object_name);
    }
    return conn->Execute(std::string("INSERT INTO ") + AttrTable(type) +
                             " (obj_id, attr_id, value) VALUES (?, ?, ?)",
                         {rdb::Value::Int(obj_id), rdb::Value::Int(attr_id),
                          ToDbValue(request.value)},
                         &rs);
  });
}

Status LrcStore::ModifyAttribute(const AttrValueRequest& request) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  return WithTxn(*conn, [&]() -> Status {
    int64_t attr_id = 0;
    AttrType type;
    Status st = LookupAttribute(*conn, request.attr_name, request.object, &attr_id, &type);
    if (!st.ok()) return st;
    if (type != request.value.type) {
      return Status::InvalidArgument("attribute value type mismatch");
    }
    int64_t obj_id = 0;
    st = LookupId(*conn, ObjectTable(request.object), request.object_name, &obj_id);
    if (!st.ok()) return st;
    if (obj_id == 0) return Status::NotFound("object not registered: " + request.object_name);
    ResultSet rs;
    st = conn->Execute(std::string("UPDATE ") + AttrTable(type) +
                           " SET value = ? WHERE obj_id = ? AND attr_id = ?",
                       {ToDbValue(request.value), rdb::Value::Int(obj_id),
                        rdb::Value::Int(attr_id)},
                       &rs);
    if (!st.ok()) return st;
    if (rs.affected == 0) {
      return Status::NotFound("attribute not set on " + request.object_name);
    }
    return Status::Ok();
  });
}

Status LrcStore::DeleteAttribute(const std::string& object_name,
                                 const std::string& attr_name, AttrObject object) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  return WithTxn(*conn, [&]() -> Status {
    int64_t attr_id = 0;
    AttrType type;
    Status st = LookupAttribute(*conn, attr_name, object, &attr_id, &type);
    if (!st.ok()) return st;
    int64_t obj_id = 0;
    st = LookupId(*conn, ObjectTable(object), object_name, &obj_id);
    if (!st.ok()) return st;
    if (obj_id == 0) return Status::NotFound("object not registered: " + object_name);
    ResultSet rs;
    st = conn->Execute(std::string("DELETE FROM ") + AttrTable(type) +
                           " WHERE obj_id = ? AND attr_id = ?",
                       {rdb::Value::Int(obj_id), rdb::Value::Int(attr_id)}, &rs);
    if (!st.ok()) return st;
    if (rs.affected == 0) return Status::NotFound("attribute not set on " + object_name);
    return Status::Ok();
  });
}

Status LrcStore::QueryObjectAttributes(const std::string& object_name, AttrObject object,
                                       std::vector<Attribute>* out) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  int64_t obj_id = 0;
  s = LookupId(*conn, ObjectTable(object), object_name, &obj_id);
  if (!s.ok()) return s;
  if (obj_id == 0) return Status::NotFound("object not registered: " + object_name);

  out->clear();
  static constexpr AttrType kTypes[] = {AttrType::kString, AttrType::kInt,
                                        AttrType::kFloat, AttrType::kDate};
  for (AttrType type : kTypes) {
    ResultSet rs;
    std::string table = AttrTable(type);
    s = conn->Execute("SELECT t_attribute.name, " + table + ".value FROM " + table +
                          " JOIN t_attribute ON " + table +
                          ".attr_id = t_attribute.id WHERE " + table +
                          ".obj_id = ? AND t_attribute.objtype = ?",
                      {rdb::Value::Int(obj_id),
                       rdb::Value::Int(static_cast<int64_t>(object))},
                      &rs);
    if (!s.ok()) return s;
    for (const rdb::Row& row : rs.rows) {
      Attribute a;
      a.name = row[0].AsString();
      a.object = object;
      a.value = FromDbValue(type, row[1]);
      out->push_back(std::move(a));
    }
  }
  return Status::Ok();
}

Status LrcStore::SearchAttribute(const AttrSearchRequest& request,
                                 std::vector<std::pair<std::string, AttrValue>>* out) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  int64_t attr_id = 0;
  AttrType type;
  s = LookupAttribute(*conn, request.attr_name, request.object, &attr_id, &type);
  if (!s.ok()) return s;
  if (type != request.value.type) {
    return Status::InvalidArgument("attribute value type mismatch in search");
  }
  const std::string table = AttrTable(type);
  const std::string obj_table = ObjectTable(request.object);
  ResultSet rs;
  s = conn->Execute("SELECT " + obj_table + ".name, " + table + ".value FROM " + table +
                        " JOIN " + obj_table + " ON " + table + ".obj_id = " +
                        obj_table + ".id WHERE " + table + ".attr_id = ? AND " +
                        table + ".value " + CmpSql(request.cmp) + " ?",
                    {rdb::Value::Int(attr_id), ToDbValue(request.value)}, &rs);
  if (!s.ok()) return s;
  out->clear();
  out->reserve(rs.size());
  for (const rdb::Row& row : rs.rows) {
    out->emplace_back(row[0].AsString(), FromDbValue(type, row[1]));
  }
  return Status::Ok();
}

// --- RLI update-list management ---

Status LrcStore::AddRli(const std::string& rli_url, int64_t flags) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  ResultSet rs;
  s = conn->Execute("INSERT INTO t_rli (flags, name) VALUES (?, ?)",
                    {rdb::Value::Int(flags), rdb::Value::String(rli_url)}, &rs);
  return s;
}

Status LrcStore::RemoveRli(const std::string& rli_url) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  return WithTxn(*conn, [&]() -> Status {
    int64_t rli_id = 0;
    Status st = LookupId(*conn, "t_rli", rli_url, &rli_id);
    if (!st.ok()) return st;
    if (rli_id == 0) return Status::NotFound("RLI not in update list: " + rli_url);
    ResultSet rs;
    st = conn->Execute("DELETE FROM t_rlipartition WHERE rli_id = ?",
                       {rdb::Value::Int(rli_id)}, &rs);
    if (!st.ok()) return st;
    return conn->Execute("DELETE FROM t_rli WHERE id = ?", {rdb::Value::Int(rli_id)}, &rs);
  });
}

Status LrcStore::ListRlis(std::vector<std::string>* out) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  ResultSet rs;
  s = conn->Execute("SELECT name FROM t_rli", &rs);
  if (!s.ok()) return s;
  out->clear();
  for (const rdb::Row& row : rs.rows) out->push_back(row[0].AsString());
  return Status::Ok();
}

Status LrcStore::AddPartition(const std::string& rli_url, const std::string& pattern) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  return WithTxn(*conn, [&]() -> Status {
    int64_t rli_id = 0;
    Status st = LookupId(*conn, "t_rli", rli_url, &rli_id);
    if (!st.ok()) return st;
    if (rli_id == 0) return Status::NotFound("RLI not in update list: " + rli_url);
    ResultSet rs;
    return conn->Execute("INSERT INTO t_rlipartition (rli_id, pattern) VALUES (?, ?)",
                         {rdb::Value::Int(rli_id), rdb::Value::String(pattern)}, &rs);
  });
}

Status LrcStore::ListPartitions(
    std::vector<std::pair<std::string, std::string>>* out) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  ResultSet rs;
  s = conn->Execute(
      "SELECT t_rli.name, t_rlipartition.pattern FROM t_rlipartition"
      " JOIN t_rli ON t_rlipartition.rli_id = t_rli.id",
      &rs);
  if (!s.ok()) return s;
  out->clear();
  for (const rdb::Row& row : rs.rows) {
    out->emplace_back(row[0].AsString(), row[1].AsString());
  }
  return Status::Ok();
}

Status LrcStore::BulkLoad(uint64_t count,
                          const std::function<Mapping(uint64_t)>& make,
                          std::size_t batch_size) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  if (batch_size == 0) batch_size = 1;
  uint64_t loaded = 0;
  while (loaded < count) {
    const uint64_t end = std::min<uint64_t>(count, loaded + batch_size);
    s = WithTxn(*conn, [&]() -> Status {
      ResultSet rs;
      for (uint64_t i = loaded; i < end; ++i) {
        Mapping m = make(i);
        Status st = conn->Execute("INSERT INTO t_lfn (name, ref) VALUES (?, 1)",
                                  {rdb::Value::String(m.logical)}, &rs);
        if (!st.ok()) return st;
        const int64_t lfn_id = rs.last_insert_id;
        st = conn->Execute("INSERT INTO t_pfn (name, ref) VALUES (?, 1)",
                           {rdb::Value::String(m.target)}, &rs);
        if (!st.ok()) return st;
        const int64_t pfn_id = rs.last_insert_id;
        st = conn->Execute("INSERT INTO t_map (lfn_id, pfn_id) VALUES (?, ?)",
                           {rdb::Value::Int(lfn_id), rdb::Value::Int(pfn_id)}, &rs);
        if (!st.ok()) return st;
      }
      return Status::Ok();
    });
    if (!s.ok()) return s;
    loaded = end;
  }
  return Status::Ok();
}

Status LrcStore::ForEachLogicalName(
    std::size_t chunk_size,
    const std::function<void(const std::vector<std::string>&)>& fn) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  ResultSet rs;
  s = conn->Execute("SELECT name FROM t_lfn", &rs);
  if (!s.ok()) return s;
  std::vector<std::string> chunk;
  chunk.reserve(chunk_size);
  for (const rdb::Row& row : rs.rows) {
    chunk.push_back(row[0].AsString());
    if (chunk.size() >= chunk_size) {
      fn(chunk);
      chunk.clear();
    }
  }
  if (!chunk.empty()) fn(chunk);
  return Status::Ok();
}

uint64_t LrcStore::LogicalNameCount() const {
  dbapi::ConnectionPool::Lease conn;
  if (!pool_.Acquire(&conn).ok()) return 0;
  ResultSet rs;
  if (!conn->Execute("SELECT COUNT(*) FROM t_lfn", &rs).ok()) return 0;
  return static_cast<uint64_t>(rs.at(0, 0).AsInt());
}

uint64_t LrcStore::MappingCount() const {
  dbapi::ConnectionPool::Lease conn;
  if (!pool_.Acquire(&conn).ok()) return 0;
  ResultSet rs;
  if (!conn->Execute("SELECT COUNT(*) FROM t_map", &rs).ok()) return 0;
  return static_cast<uint64_t>(rs.at(0, 0).AsInt());
}

}  // namespace rls
