// Core RLS domain types (paper §2–3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "net/serialize.h"

namespace rls {

/// A replica mapping: logical name -> target name. Target names are
/// "typically the physical locations of data replicas, but they may also
/// be other logical names representing the data" (paper §2).
struct Mapping {
  std::string logical;
  std::string target;

  bool operator==(const Mapping&) const = default;
};

/// Whether an attribute attaches to logical or target names (the
/// t_attribute.objtype column of Fig. 3).
enum class AttrObject : uint8_t { kLogical = 0, kTarget = 1 };

/// Attribute value types — one relational table per type in Fig. 3.
enum class AttrType : uint8_t { kString = 0, kInt = 1, kFloat = 2, kDate = 3 };

/// A typed attribute value ("typically ... such values as size with a
/// physical name", paper §3.1).
struct AttrValue {
  AttrType type = AttrType::kString;
  std::string string_value;
  int64_t int_value = 0;     // also holds kDate (micros since epoch)
  double float_value = 0.0;

  static AttrValue Str(std::string v) {
    AttrValue a;
    a.type = AttrType::kString;
    a.string_value = std::move(v);
    return a;
  }
  static AttrValue Int(int64_t v) {
    AttrValue a;
    a.type = AttrType::kInt;
    a.int_value = v;
    return a;
  }
  static AttrValue Float(double v) {
    AttrValue a;
    a.type = AttrType::kFloat;
    a.float_value = v;
    return a;
  }
  static AttrValue Date(int64_t micros) {
    AttrValue a;
    a.type = AttrType::kDate;
    a.int_value = micros;
    return a;
  }

  void Encode(net::Writer* w) const;
  static bool Decode(net::Reader* r, AttrValue* out);

  std::string ToString() const;
  bool operator==(const AttrValue&) const = default;
};

/// An attribute definition plus (optionally) a value bound to an object.
struct Attribute {
  std::string name;
  AttrObject object = AttrObject::kLogical;
  AttrValue value;
};

/// Comparison operators for attribute searches (Table 1 "query based on
/// attribute names or values").
enum class AttrCmp : uint8_t { kEq = 0, kNe = 1, kLt = 2, kLe = 3, kGt = 4, kGe = 5 };

/// Per-item outcome of a bulk operation.
struct BulkResult {
  uint32_t index = 0;                 // position in the request
  rlscommon::ErrorCode code = rlscommon::ErrorCode::kOk;
};

/// Summary statistics a server reports (admin/monitoring).
struct ServerStats {
  uint64_t lfn_count = 0;
  uint64_t mapping_count = 0;
  uint64_t requests_served = 0;
  uint64_t updates_received = 0;   // RLI: soft-state updates
  uint64_t updates_sent = 0;       // LRC: soft-state updates
  uint64_t bloom_filters = 0;      // RLI: resident compressed summaries
  uint64_t requests_shed = 0;      // overload: admission/queue rejections
};

}  // namespace rls
