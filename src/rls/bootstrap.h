// Configuration-file bootstrap.
//
// The 2004 RLS server was configured through globus-rls-server.conf
// (lrc_server true, rli_server true, acl entries, update lists, ...).
// This module builds RlsServerConfig values from the same style of
// key/value file, and — because RLS 2.0.9 had no dynamic membership
// service — provides Topology, the "simple static configuration of LRCs
// and RLIs" (paper §3.6) that stands up a whole deployment from one file.
//
// Single-server keys:
//   address            rls://lrc.site.org        (required)
//   lrc_server         true|false
//   rli_server         true|false
//   lrc_dsn            mysql://lrc0              (required with lrc_server)
//   wal_recovery       true|false  (crash-safe LRC WAL: checksummed
//                      frames + open-time replay; default false = legacy
//                      bytes-only flush model)
//   rli_dsn            mysql://rli0              (empty = Bloom-only RLI)
//   rli_bloomfilter    true|false                (accept Bloom updates)
//   rli_timeout_s      N                         (soft-state timeout)
//   rli_expire_poll_ms N
//   rli_parent         rls://parent              (repeatable; RLI hierarchy)
//   update_mode        none|full|immediate|bloom|partitioned
//   update_rli         rls://rli [pattern ...]   (repeatable; patterns for
//                                                 partitioned mode)
//   update_full_interval_ms       N   (0 = manual)
//   update_immediate_interval_ms  N   (paper default 30000)
//   update_buffer_count           N   (pending changes before a flush)
//   update_chunk_size             N
//   update_bloom_expected_entries N
//   authentication     true|false
//   gridmap            "<dn regex>" localuser    (repeatable)
//   acl                <regex>: priv[,priv...]   (repeatable; privs:
//                      lrc_read lrc_write rli_read rli_write admin stats)
//   auth_handshake_us  N
//
// Topology files prefix every key with `server.<name>.`:
//   server.lrc0.address     rls://lrc0.site.org
//   server.lrc0.lrc_server  true
//   ...
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "rls/rls_server.h"

namespace rls {

/// Builds a server configuration from key/value configuration.
/// Does NOT create databases: call EnsureDatabases (or create them
/// yourself) before Start.
rlscommon::Status ConfigureServer(const rlscommon::Config& config,
                                  RlsServerConfig* out);

/// Builds the deployment's transport from the `transport` configuration
/// key ("inproc" or "tcp://host", see net::MakeTransport), falling back
/// to the RLS_TRANSPORT environment variable, then to inproc. Protocol
/// error on an unknown scheme.
rlscommon::Status MakeTransportFromConfig(const rlscommon::Config& config,
                                          std::unique_ptr<net::Transport>* out);

/// Registers every DSN the server configuration references (LRC and RLI)
/// in `env`, if not already present. `wal_dir` non-empty = file-backed
/// WALs under that directory.
rlscommon::Status EnsureDatabases(const RlsServerConfig& config,
                                  dbapi::Environment& env,
                                  const std::string& wal_dir = "");

/// A whole static deployment: the paper's stand-in for a membership
/// service. Owns every server it starts.
class Topology {
 public:
  /// Parses `server.<name>.<key>` entries, configures and starts every
  /// server (databases are created on demand). On failure, previously
  /// started servers are stopped.
  static rlscommon::Status Create(const rlscommon::Config& config,
                                  net::Transport* network, dbapi::Environment* env,
                                  std::unique_ptr<Topology>* out);

  ~Topology();

  /// Server by topology name ("lrc0"); nullptr if absent.
  RlsServer* Find(const std::string& name);

  std::vector<std::string> ServerNames() const;
  std::size_t size() const { return servers_.size(); }

  void StopAll();

 private:
  Topology() = default;
  std::map<std::string, std::unique_ptr<RlsServer>> servers_;
};

}  // namespace rls
