// Replica Location Index state.
//
// Two back ends, exactly as in RLS 2.0.9 (paper §3.1/§3.4):
//   * RliRelationalStore — used when the RLI receives full, uncompressed
//     soft-state updates. Holds {LN, LRC, updatetime} associations in the
//     three-table schema of Fig. 3 (right side). Soft state expires via
//     ExpireOlderThan, driven by the server's expire thread.
//   * RliBloomStore — used when the RLI receives Bloom-filter updates:
//     "no database is used ... all Bloom filters are stored in memory".
//     Queries hash the logical name once and probe every resident filter,
//     which is why query rates drop as the number of LRC filters grows
//     (paper Fig. 10).
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/clock.h"
#include "common/error.h"
#include "dbapi/pool.h"
#include "rls/types.h"

namespace rls {

class RliRelationalStore {
 public:
  static rlscommon::Status Create(dbapi::Environment& env, const std::string& dsn,
                                  std::unique_ptr<RliRelationalStore>* out);

  /// Registers/refreshes the association {lfn -> lrc_url} with timestamp
  /// `now_micros`. One transaction per call.
  rlscommon::Status Upsert(const std::string& lfn, const std::string& lrc_url,
                           int64_t now_micros);

  /// Chunk form: one transaction for the whole batch (what the server
  /// does per received update chunk).
  rlscommon::Status UpsertBatch(const std::vector<std::string>& lfns,
                                const std::string& lrc_url, int64_t now_micros);

  /// Drops the association (incremental update "removed" entries).
  rlscommon::Status Remove(const std::string& lfn, const std::string& lrc_url);

  /// LRC urls that may hold mappings for `lfn`.
  rlscommon::Status Query(const std::string& lfn, std::vector<std::string>* lrcs) const;

  /// Glob query over logical names -> {lfn, lrc} pairs. Supported here,
  /// impossible on the Bloom store.
  rlscommon::Status WildcardQuery(const std::string& pattern, uint32_t limit,
                                  std::vector<Mapping>* out) const;

  rlscommon::Status ListLrcs(std::vector<std::string>* out) const;

  /// Deletes associations with updatetime < cutoff (expire thread).
  /// Orphaned logical-name rows are garbage collected.
  rlscommon::Status ExpireOlderThan(int64_t cutoff_micros, uint64_t* removed);

  uint64_t AssociationCount() const;
  uint64_t LogicalNameCount() const;

  dbapi::ConnectionPool& pool() const { return pool_; }

 private:
  RliRelationalStore(dbapi::Environment& env, const std::string& dsn)
      : pool_(env, dsn) {}

  rlscommon::Status InitSchema();

  mutable dbapi::ConnectionPool pool_;
};

class RliBloomStore {
 public:
  explicit RliBloomStore(rlscommon::Clock* clock = rlscommon::SystemClock::Instance())
      : clock_(clock) {}

  /// Stores (replaces) the summary filter for one LRC.
  void StoreFilter(const std::string& lrc_url, bloom::BloomFilter filter);

  /// LRC urls whose filter claims `lfn` (false positives possible at the
  /// configured ~1% rate).
  rlscommon::Status Query(const std::string& lfn, std::vector<std::string>* lrcs) const;

  rlscommon::Status ListLrcs(std::vector<std::string>* out) const;

  /// Drops filters not refreshed since `max_age` ago; returns the number
  /// dropped.
  uint64_t ExpireOlderThan(rlscommon::Duration max_age);

  std::size_t filter_count() const;

  /// Total bits across resident filters (memory footprint reporting).
  uint64_t TotalFilterBits() const;

 private:
  struct Entry {
    bloom::BloomFilter filter;
    rlscommon::TimePoint received;
  };

  rlscommon::Clock* clock_;
  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> filters_;
};

}  // namespace rls
