#include "rls/protocol.h"

namespace rls {

using net::Reader;
using net::TruncatedMessage;
using net::Writer;
using rlscommon::Status;

std::string OpName(uint16_t opcode) {
  switch (opcode) {
    case kPing: return "ping";
    case kServerStats: return "server_stats";
    case kServerMetrics: return "server_metrics";
    case kServerGetStats: return "server_get_stats";
    case kServerGetTraces: return "server_get_traces";
    case kLrcCreate: return "lrc_create";
    case kLrcAdd: return "lrc_add";
    case kLrcDelete: return "lrc_delete";
    case kLrcBulkCreate: return "lrc_bulk_create";
    case kLrcBulkAdd: return "lrc_bulk_add";
    case kLrcBulkDelete: return "lrc_bulk_delete";
    case kLrcQueryLfn: return "lrc_query_lfn";
    case kLrcQueryPfn: return "lrc_query_pfn";
    case kLrcBulkQueryLfn: return "lrc_bulk_query_lfn";
    case kLrcWildcardQueryLfn: return "lrc_wildcard_query_lfn";
    case kLrcExists: return "lrc_exists";
    case kLrcAttrDefine: return "lrc_attr_define";
    case kLrcAttrAdd: return "lrc_attr_add";
    case kLrcAttrModify: return "lrc_attr_modify";
    case kLrcAttrDelete: return "lrc_attr_delete";
    case kLrcAttrQueryObj: return "lrc_attr_query_obj";
    case kLrcAttrSearch: return "lrc_attr_search";
    case kLrcBulkAttrAdd: return "lrc_bulk_attr_add";
    case kLrcBulkAttrDelete: return "lrc_bulk_attr_delete";
    case kLrcAttrUndefine: return "lrc_attr_undefine";
    case kLrcRliList: return "lrc_rli_list";
    case kLrcRliAdd: return "lrc_rli_add";
    case kLrcRliRemove: return "lrc_rli_remove";
    case kLrcForceUpdate: return "lrc_force_update";
    case kRliQueryLfn: return "rli_query_lfn";
    case kRliBulkQuery: return "rli_bulk_query";
    case kRliWildcardQuery: return "rli_wildcard_query";
    case kRliLrcList: return "rli_lrc_list";
    case kSsFullBegin: return "ss_full_begin";
    case kSsFullChunk: return "ss_full_chunk";
    case kSsFullEnd: return "ss_full_end";
    case kSsIncremental: return "ss_incremental";
    case kSsBloom: return "ss_bloom";
    default: return "op_" + std::to_string(opcode);
  }
}

void AttrValue::Encode(Writer* w) const {
  w->U8(static_cast<uint8_t>(type));
  switch (type) {
    case AttrType::kString:
      w->Str(string_value);
      break;
    case AttrType::kInt:
    case AttrType::kDate:
      w->I64(int_value);
      break;
    case AttrType::kFloat:
      w->F64(float_value);
      break;
  }
}

bool AttrValue::Decode(Reader* r, AttrValue* out) {
  uint8_t type = 0;
  if (!r->U8(&type) || type > static_cast<uint8_t>(AttrType::kDate)) return false;
  out->type = static_cast<AttrType>(type);
  switch (out->type) {
    case AttrType::kString:
      return r->Str(&out->string_value);
    case AttrType::kInt:
    case AttrType::kDate:
      return r->I64(&out->int_value);
    case AttrType::kFloat:
      return r->F64(&out->float_value);
  }
  return false;
}

std::string AttrValue::ToString() const {
  switch (type) {
    case AttrType::kString: return string_value;
    case AttrType::kInt: return std::to_string(int_value);
    case AttrType::kDate: return std::to_string(int_value) + "us";
    case AttrType::kFloat: return std::to_string(float_value);
  }
  return "?";
}

void MappingRequest::Encode(std::string* out) const {
  Writer w(out);
  w.U32(static_cast<uint32_t>(mappings.size()));
  for (const Mapping& m : mappings) {
    w.Str(m.logical);
    w.Str(m.target);
  }
}

Status MappingRequest::Decode(std::string_view data, MappingRequest* out) {
  Reader r(data);
  uint32_t count = 0;
  if (!r.U32(&count)) return TruncatedMessage("mapping count");
  if (static_cast<uint64_t>(count) * 8 > r.remaining()) {
    return TruncatedMessage("mapping list");
  }
  out->mappings.clear();
  out->mappings.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Mapping m;
    if (!r.Str(&m.logical) || !r.Str(&m.target)) return TruncatedMessage("mapping");
    out->mappings.push_back(std::move(m));
  }
  return Status::Ok();
}

void NameQueryRequest::Encode(std::string* out) const {
  Writer w(out);
  w.Str(name);
  w.U32(offset);
  w.U32(limit);
}

Status NameQueryRequest::Decode(std::string_view data, NameQueryRequest* out) {
  Reader r(data);
  if (!r.Str(&out->name) || !r.U32(&out->offset) || !r.U32(&out->limit)) {
    return TruncatedMessage("name query");
  }
  return Status::Ok();
}

void BulkQueryRequest::Encode(std::string* out) const {
  Writer w(out);
  w.StrVec(names);
}

Status BulkQueryRequest::Decode(std::string_view data, BulkQueryRequest* out) {
  Reader r(data);
  if (!r.StrVec(&out->names)) return TruncatedMessage("bulk query names");
  return Status::Ok();
}

void StringListResponse::Encode(std::string* out) const {
  Writer w(out);
  w.StrVec(values);
}

Status StringListResponse::Decode(std::string_view data, StringListResponse* out) {
  Reader r(data);
  if (!r.StrVec(&out->values)) return TruncatedMessage("string list");
  return Status::Ok();
}

void MappingListResponse::Encode(std::string* out) const {
  Writer w(out);
  w.U32(static_cast<uint32_t>(mappings.size()));
  for (const Mapping& m : mappings) {
    w.Str(m.logical);
    w.Str(m.target);
  }
}

Status MappingListResponse::Decode(std::string_view data, MappingListResponse* out) {
  Reader r(data);
  uint32_t count = 0;
  if (!r.U32(&count)) return TruncatedMessage("mapping list count");
  if (static_cast<uint64_t>(count) * 8 > r.remaining()) {
    return TruncatedMessage("mapping list");
  }
  out->mappings.clear();
  out->mappings.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Mapping m;
    if (!r.Str(&m.logical) || !r.Str(&m.target)) return TruncatedMessage("mapping");
    out->mappings.push_back(std::move(m));
  }
  return Status::Ok();
}

void BulkStatusResponse::Encode(std::string* out) const {
  Writer w(out);
  w.U32(succeeded);
  w.U32(static_cast<uint32_t>(failures.size()));
  for (const BulkResult& f : failures) {
    w.U32(f.index);
    w.U8(static_cast<uint8_t>(f.code));
  }
}

Status BulkStatusResponse::Decode(std::string_view data, BulkStatusResponse* out) {
  Reader r(data);
  uint32_t count = 0;
  if (!r.U32(&out->succeeded) || !r.U32(&count)) {
    return TruncatedMessage("bulk status header");
  }
  if (static_cast<uint64_t>(count) * 5 > r.remaining()) {
    return TruncatedMessage("bulk status list");
  }
  out->failures.clear();
  out->failures.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BulkResult f;
    uint8_t code = 0;
    if (!r.U32(&f.index) || !r.U8(&code)) return TruncatedMessage("bulk status");
    f.code = static_cast<rlscommon::ErrorCode>(code);
    out->failures.push_back(f);
  }
  return Status::Ok();
}

void AttrDefineRequest::Encode(std::string* out) const {
  Writer w(out);
  w.Str(name);
  w.U8(static_cast<uint8_t>(object));
  w.U8(static_cast<uint8_t>(type));
}

Status AttrDefineRequest::Decode(std::string_view data, AttrDefineRequest* out) {
  Reader r(data);
  uint8_t object = 0, type = 0;
  if (!r.Str(&out->name) || !r.U8(&object) || !r.U8(&type)) {
    return TruncatedMessage("attr define");
  }
  if (object > 1 || type > 3) return Status::Protocol("bad attr enum");
  out->object = static_cast<AttrObject>(object);
  out->type = static_cast<AttrType>(type);
  return Status::Ok();
}

void AttrValueRequest::Encode(std::string* out) const {
  Writer w(out);
  w.Str(object_name);
  w.Str(attr_name);
  w.U8(static_cast<uint8_t>(object));
  value.Encode(&w);
}

Status AttrValueRequest::Decode(std::string_view data, AttrValueRequest* out) {
  Reader r(data);
  uint8_t object = 0;
  if (!r.Str(&out->object_name) || !r.Str(&out->attr_name) || !r.U8(&object) ||
      object > 1 || !AttrValue::Decode(&r, &out->value)) {
    return TruncatedMessage("attr value request");
  }
  out->object = static_cast<AttrObject>(object);
  return Status::Ok();
}

void BulkAttrRequest::Encode(std::string* out) const {
  Writer w(out);
  w.U32(static_cast<uint32_t>(items.size()));
  for (const AttrValueRequest& item : items) item.Encode(out);
}

Status BulkAttrRequest::Decode(std::string_view data, BulkAttrRequest* out) {
  Reader r(data);
  uint32_t count = 0;
  if (!r.U32(&count)) return TruncatedMessage("bulk attr count");
  if (static_cast<uint64_t>(count) * 10 > r.remaining()) {
    return TruncatedMessage("bulk attr list");
  }
  out->items.clear();
  out->items.reserve(count);
  std::string_view rest = r.Rest();
  for (uint32_t i = 0; i < count; ++i) {
    // Decode one item by re-wrapping the remaining bytes.
    Reader item_reader(rest);
    AttrValueRequest item;
    uint8_t object = 0;
    if (!item_reader.Str(&item.object_name) || !item_reader.Str(&item.attr_name) ||
        !item_reader.U8(&object) || object > 1 ||
        !AttrValue::Decode(&item_reader, &item.value)) {
      return TruncatedMessage("bulk attr item");
    }
    item.object = static_cast<AttrObject>(object);
    out->items.push_back(std::move(item));
    rest = item_reader.Rest();
  }
  return Status::Ok();
}

void AttrSearchRequest::Encode(std::string* out) const {
  Writer w(out);
  w.Str(attr_name);
  w.U8(static_cast<uint8_t>(object));
  w.U8(static_cast<uint8_t>(cmp));
  value.Encode(&w);
}

Status AttrSearchRequest::Decode(std::string_view data, AttrSearchRequest* out) {
  Reader r(data);
  uint8_t object = 0, cmp = 0;
  if (!r.Str(&out->attr_name) || !r.U8(&object) || object > 1 || !r.U8(&cmp) ||
      cmp > 5 || !AttrValue::Decode(&r, &out->value)) {
    return TruncatedMessage("attr search");
  }
  out->object = static_cast<AttrObject>(object);
  out->cmp = static_cast<AttrCmp>(cmp);
  return Status::Ok();
}

void AttrListResponse::Encode(std::string* out) const {
  Writer w(out);
  w.U32(static_cast<uint32_t>(attributes.size()));
  for (const Attribute& a : attributes) {
    w.Str(a.name);
    w.U8(static_cast<uint8_t>(a.object));
    a.value.Encode(&w);
  }
}

Status AttrListResponse::Decode(std::string_view data, AttrListResponse* out) {
  Reader r(data);
  uint32_t count = 0;
  if (!r.U32(&count)) return TruncatedMessage("attr list count");
  if (static_cast<uint64_t>(count) * 6 > r.remaining()) {
    return TruncatedMessage("attr list");
  }
  out->attributes.clear();
  out->attributes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Attribute a;
    uint8_t object = 0;
    if (!r.Str(&a.name) || !r.U8(&object) || object > 1 ||
        !AttrValue::Decode(&r, &a.value)) {
      return TruncatedMessage("attr list item");
    }
    a.object = static_cast<AttrObject>(object);
    out->attributes.push_back(std::move(a));
  }
  return Status::Ok();
}

void FullUpdateBegin::Encode(std::string* out) const {
  Writer w(out);
  w.Str(lrc_url);
  w.U64(update_id);
  w.U64(total_names);
  w.I64(sent_micros);
}

Status FullUpdateBegin::Decode(std::string_view data, FullUpdateBegin* out) {
  Reader r(data);
  if (!r.Str(&out->lrc_url) || !r.U64(&out->update_id) ||
      !r.U64(&out->total_names) || !r.I64(&out->sent_micros)) {
    return TruncatedMessage("full update begin");
  }
  return Status::Ok();
}

void FullUpdateChunk::Encode(std::string* out) const {
  Writer w(out);
  w.Str(lrc_url);
  w.U64(update_id);
  w.StrVec(names);
}

Status FullUpdateChunk::Decode(std::string_view data, FullUpdateChunk* out) {
  Reader r(data);
  if (!r.Str(&out->lrc_url) || !r.U64(&out->update_id) || !r.StrVec(&out->names)) {
    return TruncatedMessage("full update chunk");
  }
  return Status::Ok();
}

void FullUpdateEnd::Encode(std::string* out) const {
  Writer w(out);
  w.Str(lrc_url);
  w.U64(update_id);
}

Status FullUpdateEnd::Decode(std::string_view data, FullUpdateEnd* out) {
  Reader r(data);
  if (!r.Str(&out->lrc_url) || !r.U64(&out->update_id)) {
    return TruncatedMessage("full update end");
  }
  return Status::Ok();
}

void IncrementalUpdate::Encode(std::string* out) const {
  Writer w(out);
  w.Str(lrc_url);
  w.StrVec(added);
  w.StrVec(removed);
  w.I64(sent_micros);
}

Status IncrementalUpdate::Decode(std::string_view data, IncrementalUpdate* out) {
  Reader r(data);
  if (!r.Str(&out->lrc_url) || !r.StrVec(&out->added) ||
      !r.StrVec(&out->removed) || !r.I64(&out->sent_micros)) {
    return TruncatedMessage("incremental update");
  }
  return Status::Ok();
}

void BloomUpdate::Encode(std::string* out) const {
  Writer w(out);
  w.Str(lrc_url);
  w.Str(filter_bytes);
  w.I64(sent_micros);
}

Status BloomUpdate::Decode(std::string_view data, BloomUpdate* out) {
  Reader r(data);
  if (!r.Str(&out->lrc_url) || !r.Str(&out->filter_bytes) ||
      !r.I64(&out->sent_micros)) {
    return TruncatedMessage("bloom update");
  }
  return Status::Ok();
}

void EncodeStats(const ServerStats& stats, std::string* out) {
  Writer w(out);
  w.U64(stats.lfn_count);
  w.U64(stats.mapping_count);
  w.U64(stats.requests_served);
  w.U64(stats.updates_received);
  w.U64(stats.updates_sent);
  w.U64(stats.bloom_filters);
  w.U64(stats.requests_shed);
}

void MetricsResponse::Encode(std::string* out) const {
  Writer w(out);
  w.U32(static_cast<uint32_t>(families.size()));
  for (const FamilyMetrics& f : families) {
    w.Str(f.family);
    w.U64(f.count);
    w.F64(f.mean_us);
    w.U64(f.p50_us);
    w.U64(f.p95_us);
    w.U64(f.p99_us);
    w.U64(f.p999_us);
    w.U64(f.max_us);
  }
}

Status MetricsResponse::Decode(std::string_view data, MetricsResponse* out) {
  Reader r(data);
  uint32_t count = 0;
  if (!r.U32(&count)) return TruncatedMessage("metrics count");
  if (static_cast<uint64_t>(count) * 60 > r.remaining()) {
    return TruncatedMessage("metrics list");
  }
  out->families.clear();
  out->families.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FamilyMetrics f;
    if (!r.Str(&f.family) || !r.U64(&f.count) || !r.F64(&f.mean_us) ||
        !r.U64(&f.p50_us) || !r.U64(&f.p95_us) || !r.U64(&f.p99_us) ||
        !r.U64(&f.p999_us) || !r.U64(&f.max_us)) {
      return TruncatedMessage("metrics family");
    }
    out->families.push_back(std::move(f));
  }
  return Status::Ok();
}

Status DecodeStats(std::string_view data, ServerStats* out) {
  Reader r(data);
  if (!r.U64(&out->lfn_count) || !r.U64(&out->mapping_count) ||
      !r.U64(&out->requests_served) || !r.U64(&out->updates_received) ||
      !r.U64(&out->updates_sent) || !r.U64(&out->bloom_filters) ||
      !r.U64(&out->requests_shed)) {
    return TruncatedMessage("server stats");
  }
  return Status::Ok();
}

void TargetStatus::Encode(Writer* w) const {
  w->Str(address);
  w->U64(updates_sent);
  w->F64(seconds_since_last);
  w->U8(healthy ? 1 : 0);
  w->U32(consecutive_failures);
  w->U64(full_resends);
}

bool TargetStatus::Decode(Reader* r, TargetStatus* out) {
  uint8_t healthy = 1;
  if (!(r->Str(&out->address) && r->U64(&out->updates_sent) &&
        r->F64(&out->seconds_since_last) && r->U8(&healthy) &&
        r->U32(&out->consecutive_failures) && r->U64(&out->full_resends))) {
    return false;
  }
  out->healthy = healthy != 0;
  return true;
}

void GetStatsResponse::Encode(std::string* out) const {
  Writer w(out);
  w.Str(role);
  w.F64(uptime_seconds);
  w.Str(build_flags);
  w.U64(vitals.lfn_count);
  w.U64(vitals.mapping_count);
  w.U64(vitals.requests_served);
  w.U64(vitals.updates_received);
  w.U64(vitals.updates_sent);
  w.U64(vitals.bloom_filters);
  w.U64(vitals.requests_shed);
  w.U64(last_update_trace_id);
  w.U64(trace_depth);
  w.U64(trace_dropped);
  w.U64(trace_capacity);
  w.U8(wal.enabled);
  w.U64(wal.recovered_txns);
  w.U64(wal.records_applied);
  w.U64(wal.snapshot_rows);
  w.U64(wal.torn_tail_bytes);
  w.U64(wal.checksum_failures);
  w.U64(wal.last_lsn);
  w.U64(wal.recover_micros);
  w.U8(wal.group_commit);
  w.U64(wal.commits);
  w.U64(wal.syncs);
  w.U64(wal.group_commits);
  w.U32(static_cast<uint32_t>(targets.size()));
  for (const TargetStatus& t : targets) t.Encode(&w);
  w.U32(static_cast<uint32_t>(metrics.size()));
  for (const MetricSample& m : metrics) {
    w.Str(m.name);
    w.Str(m.labels);
    w.U8(m.kind);
    w.F64(m.value);
    w.U64(m.count);
    w.F64(m.mean_us);
    w.U64(m.p50_us);
    w.U64(m.p95_us);
    w.U64(m.p99_us);
    w.U64(m.p999_us);
    w.U64(m.max_us);
    w.U64(m.exemplar_us);
    w.U64(m.exemplar_trace);
  }
}

Status GetStatsResponse::Decode(std::string_view data, GetStatsResponse* out) {
  Reader r(data);
  if (!r.Str(&out->role) || !r.F64(&out->uptime_seconds) ||
      !r.Str(&out->build_flags) ||
      !r.U64(&out->vitals.lfn_count) || !r.U64(&out->vitals.mapping_count) ||
      !r.U64(&out->vitals.requests_served) ||
      !r.U64(&out->vitals.updates_received) ||
      !r.U64(&out->vitals.updates_sent) || !r.U64(&out->vitals.bloom_filters) ||
      !r.U64(&out->vitals.requests_shed) ||
      !r.U64(&out->last_update_trace_id) || !r.U64(&out->trace_depth) ||
      !r.U64(&out->trace_dropped) || !r.U64(&out->trace_capacity)) {
    return TruncatedMessage("get stats header");
  }
  if (!r.U8(&out->wal.enabled) || !r.U64(&out->wal.recovered_txns) ||
      !r.U64(&out->wal.records_applied) || !r.U64(&out->wal.snapshot_rows) ||
      !r.U64(&out->wal.torn_tail_bytes) ||
      !r.U64(&out->wal.checksum_failures) || !r.U64(&out->wal.last_lsn) ||
      !r.U64(&out->wal.recover_micros) || !r.U8(&out->wal.group_commit) ||
      !r.U64(&out->wal.commits) || !r.U64(&out->wal.syncs) ||
      !r.U64(&out->wal.group_commits)) {
    return TruncatedMessage("get stats wal recovery status");
  }
  uint32_t target_count = 0;
  if (!r.U32(&target_count)) return TruncatedMessage("target count");
  if (static_cast<uint64_t>(target_count) * 33 > r.remaining()) {
    return TruncatedMessage("target list");
  }
  out->targets.clear();
  out->targets.reserve(target_count);
  for (uint32_t i = 0; i < target_count; ++i) {
    TargetStatus t;
    if (!TargetStatus::Decode(&r, &t)) return TruncatedMessage("target status");
    out->targets.push_back(std::move(t));
  }
  uint32_t metric_count = 0;
  if (!r.U32(&metric_count)) return TruncatedMessage("metric count");
  if (static_cast<uint64_t>(metric_count) * 89 > r.remaining()) {
    return TruncatedMessage("metric list");
  }
  out->metrics.clear();
  out->metrics.reserve(metric_count);
  for (uint32_t i = 0; i < metric_count; ++i) {
    MetricSample m;
    if (!r.Str(&m.name) || !r.Str(&m.labels) || !r.U8(&m.kind) ||
        !r.F64(&m.value) || !r.U64(&m.count) || !r.F64(&m.mean_us) ||
        !r.U64(&m.p50_us) || !r.U64(&m.p95_us) || !r.U64(&m.p99_us) ||
        !r.U64(&m.p999_us) || !r.U64(&m.max_us) || !r.U64(&m.exemplar_us) ||
        !r.U64(&m.exemplar_trace)) {
      return TruncatedMessage("metric sample");
    }
    out->metrics.push_back(std::move(m));
  }
  return Status::Ok();
}

void GetTracesRequest::Encode(std::string* out) const {
  Writer w(out);
  w.U64(trace_id);
  w.Str(method);
  w.Str(component);
  w.U64(min_duration_us);
  w.U32(limit);
  w.U8(source);
}

Status GetTracesRequest::Decode(std::string_view data, GetTracesRequest* out) {
  Reader r(data);
  if (!r.U64(&out->trace_id) || !r.Str(&out->method) ||
      !r.Str(&out->component) || !r.U64(&out->min_duration_us) ||
      !r.U32(&out->limit) || !r.U8(&out->source)) {
    return TruncatedMessage("get traces request");
  }
  return Status::Ok();
}

void GetTracesResponse::Encode(std::string* out) const {
  Writer w(out);
  w.U64(depth);
  w.U64(dropped);
  w.U64(capacity);
  w.U32(static_cast<uint32_t>(spans.size()));
  for (const TraceSpan& s : spans) {
    w.Str(s.component);
    w.Str(s.name);
    w.U64(s.trace_id);
    w.U64(s.span_id);
    w.U32(s.tid);
    w.I64(s.start_us);
    w.U64(s.duration_us);
    w.U32(static_cast<uint32_t>(s.hops.size()));
    for (const TraceHop& h : s.hops) {
      w.Str(h.name);
      w.U64(h.offset_us);
    }
  }
}

Status GetTracesResponse::Decode(std::string_view data, GetTracesResponse* out) {
  Reader r(data);
  if (!r.U64(&out->depth) || !r.U64(&out->dropped) || !r.U64(&out->capacity)) {
    return TruncatedMessage("get traces header");
  }
  uint32_t span_count = 0;
  if (!r.U32(&span_count)) return TruncatedMessage("span count");
  // Each span is at least 44 bytes (4+4 string lengths, 3x u64, u32,
  // i64, u32 hop count); reject counts the payload cannot hold.
  if (static_cast<uint64_t>(span_count) * 44 > r.remaining()) {
    return TruncatedMessage("span list");
  }
  out->spans.clear();
  out->spans.reserve(span_count);
  for (uint32_t i = 0; i < span_count; ++i) {
    TraceSpan s;
    uint32_t hop_count = 0;
    if (!r.Str(&s.component) || !r.Str(&s.name) || !r.U64(&s.trace_id) ||
        !r.U64(&s.span_id) || !r.U32(&s.tid) || !r.I64(&s.start_us) ||
        !r.U64(&s.duration_us) || !r.U32(&hop_count)) {
      return TruncatedMessage("trace span");
    }
    if (static_cast<uint64_t>(hop_count) * 12 > r.remaining()) {
      return TruncatedMessage("hop list");
    }
    s.hops.reserve(hop_count);
    for (uint32_t h = 0; h < hop_count; ++h) {
      TraceHop hop;
      if (!r.Str(&hop.name) || !r.U64(&hop.offset_us)) {
        return TruncatedMessage("trace hop");
      }
      s.hops.push_back(std::move(hop));
    }
    out->spans.push_back(std::move(s));
  }
  return Status::Ok();
}

}  // namespace rls
