// ReplicaLocator: the client-side discovery pattern the paper requires
// of applications (§3.2): query RLIs for candidate LRCs, then treat the
// LRCs as authoritative — soft state may be stale and Bloom-mode RLIs
// answer with ~1% false positives, so "an application program must be
// sufficiently robust to recover from this situation and query for
// another replica of the logical name."
//
// The locator fans a lookup across its configured RLIs, resolves every
// candidate LRC, drops false positives and stale pointers, and returns
// the union of confirmed replicas. Connections are cached and reopened
// on failure.
//
// Not thread-safe: use one locator per thread (it wraps per-connection
// clients).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "rls/client.h"

namespace rls {

class ReplicaLocator {
 public:
  /// `rli_addresses`: the RLIs to consult, in preference order.
  ReplicaLocator(net::Transport* network, std::vector<std::string> rli_addresses,
                 ClientConfig client_config = {});

  /// Finds confirmed replicas of `logical`: the union over every LRC any
  /// RLI points at, excluding stale/false-positive answers. NotFound if
  /// no LRC confirms the name.
  rlscommon::Status Locate(const std::string& logical,
                           std::vector<std::string>* replicas);

  /// Bulk form: resolves many names with one bulk query per RLI and one
  /// bulk query per implicated LRC. Names with no confirmed replica are
  /// absent from `out`.
  rlscommon::Status LocateBulk(const std::vector<std::string>& logicals,
                               std::map<std::string, std::vector<std::string>>* out);

  /// Diagnostic counters.
  struct Counters {
    uint64_t rli_queries = 0;
    uint64_t lrc_queries = 0;
    uint64_t stale_pointers = 0;   // LRC did not confirm an RLI answer
    uint64_t reconnects = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  /// Cached-or-fresh clients; reset on call failure so the next use
  /// reconnects.
  rlscommon::Status RliFor(const std::string& address, RliClient** out);
  rlscommon::Status LrcFor(const std::string& address, LrcClient** out);

  net::Transport* network_;
  std::vector<std::string> rli_addresses_;
  ClientConfig client_config_;
  std::map<std::string, std::unique_ptr<RliClient>> rlis_;
  std::map<std::string, std::unique_ptr<LrcClient>> lrcs_;
  Counters counters_;
};

}  // namespace rls
