// Local Replica Catalog store: the relational back end of an LRC,
// implementing the exact table structure of the paper's Fig. 3 over the
// dbapi/sql/rdb stack.
//
// Thread-safe: every operation leases a connection from an internal pool
// and runs its statements in a transaction.
//
// Semantics follow the Globus RLS client API:
//   * CreateMapping registers a NEW logical name with its first target;
//     it fails with AlreadyExists if the name is registered.
//   * AddMapping adds another target to an EXISTING logical name.
//   * DeleteMapping removes one {logical, target} association; when a
//     name's last mapping goes away the name itself is deleted.
// A change observer is notified when a logical name appears/disappears —
// this feeds the soft-state machinery (incremental updates, Bloom filter
// maintenance).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "dbapi/pool.h"
#include "rls/protocol.h"
#include "rls/types.h"

namespace rls {

class LrcStore {
 public:
  /// Creates the Fig. 3 schema on the database behind `dsn` (which must
  /// already be registered in `env`).
  static rlscommon::Status Create(dbapi::Environment& env, const std::string& dsn,
                                  std::unique_ptr<LrcStore>* out);

  // --- mapping management ---
  rlscommon::Status CreateMapping(const std::string& logical, const std::string& target);
  rlscommon::Status AddMapping(const std::string& logical, const std::string& target);
  rlscommon::Status DeleteMapping(const std::string& logical, const std::string& target);

  // --- batched mapping management ---
  /// Applies the whole batch in ONE multi-row WAL transaction: one log
  /// append and one (possibly group) sync instead of a commit per item —
  /// the paper's bulk-operation path (§3.3, Fig. 11). A failed item rolls
  /// back to its savepoint and is reported in `result->failures`; the
  /// surviving items commit together. A non-OK return means the batch's
  /// commit itself failed and nothing is durable.
  rlscommon::Status CreateMappings(const std::vector<Mapping>& mappings,
                                   BulkStatusResponse* result);
  rlscommon::Status AddMappings(const std::vector<Mapping>& mappings,
                                BulkStatusResponse* result);
  rlscommon::Status DeleteMappings(const std::vector<Mapping>& mappings,
                                   BulkStatusResponse* result);

  // --- queries ---
  /// `offset`/`limit` page large result sets (the original client's
  /// offset/reslimit arguments); limit 0 = unlimited.
  rlscommon::Status QueryLogical(const std::string& logical,
                                 std::vector<std::string>* targets,
                                 uint32_t offset = 0, uint32_t limit = 0) const;
  rlscommon::Status QueryTarget(const std::string& target,
                                std::vector<std::string>* logicals,
                                uint32_t offset = 0, uint32_t limit = 0) const;
  /// Glob pattern ('*'/'?') over logical names.
  rlscommon::Status WildcardQuery(const std::string& pattern, uint32_t limit,
                                  std::vector<Mapping>* out,
                                  uint32_t offset = 0) const;
  bool LogicalExists(const std::string& logical) const;

  // --- attribute management ---
  rlscommon::Status DefineAttribute(const std::string& name, AttrObject object,
                                    AttrType type);
  rlscommon::Status UndefineAttribute(const std::string& name, AttrObject object);
  rlscommon::Status AddAttribute(const AttrValueRequest& request);
  rlscommon::Status ModifyAttribute(const AttrValueRequest& request);
  rlscommon::Status DeleteAttribute(const std::string& object_name,
                                    const std::string& attr_name, AttrObject object);
  rlscommon::Status QueryObjectAttributes(const std::string& object_name,
                                          AttrObject object,
                                          std::vector<Attribute>* out) const;
  /// Objects whose attribute `attr_name` compares `cmp` against `value`.
  rlscommon::Status SearchAttribute(const AttrSearchRequest& request,
                                    std::vector<std::pair<std::string, AttrValue>>* out) const;

  // --- RLI update-list management (t_rli / t_rlipartition) ---
  rlscommon::Status AddRli(const std::string& rli_url, int64_t flags = 0);
  rlscommon::Status RemoveRli(const std::string& rli_url);
  rlscommon::Status ListRlis(std::vector<std::string>* out) const;
  rlscommon::Status AddPartition(const std::string& rli_url, const std::string& pattern);
  rlscommon::Status ListPartitions(
      std::vector<std::pair<std::string, std::string>>* out) const;

  /// Fast initialization path: loads `count` mappings produced by `make`
  /// in batched transactions, bypassing existence checks and the change
  /// observer. This is the paper's "large numbers of mappings are loaded
  /// into an LRC server at once, for example, during initialization of a
  /// new server" case (§3.3) — a full soft-state update should follow.
  /// Names must be fresh (duplicates fail the batch).
  rlscommon::Status BulkLoad(uint64_t count,
                             const std::function<Mapping(uint64_t)>& make,
                             std::size_t batch_size = 1000);

  // --- soft-state support ---
  /// Streams every registered logical name in chunks of `chunk_size`.
  rlscommon::Status ForEachLogicalName(
      std::size_t chunk_size,
      const std::function<void(const std::vector<std::string>&)>& fn) const;

  uint64_t LogicalNameCount() const;
  uint64_t MappingCount() const;

  /// Observer invoked (outside transactions) when a logical name gains
  /// its first mapping (`added`=true) or loses its last (`added`=false).
  /// Set once before concurrent use.
  void SetChangeObserver(std::function<void(const std::string&, bool added)> observer) {
    observer_ = std::move(observer);
  }

  dbapi::ConnectionPool& pool() const { return pool_; }

  /// The database behind the pool's DSN (recovery stats, WAL metrics).
  rdb::Database* database() const { return db_; }

 private:
  LrcStore(dbapi::Environment& env, const std::string& dsn) : pool_(env, dsn) {}

  rlscommon::Status InitSchema();

  /// Looks up id of a name row; 0 if absent.
  static rlscommon::Status LookupId(dbapi::Connection& conn, const char* table,
                                    const std::string& name, int64_t* id);

  /// Looks up an attribute definition by (name, objtype).
  static rlscommon::Status LookupAttribute(dbapi::Connection& conn,
                                           const std::string& name, AttrObject object,
                                           int64_t* attr_id, AttrType* type);

  /// Removes all attribute values attached to a deleted object row.
  static rlscommon::Status DeleteObjectAttributes(dbapi::Connection& conn,
                                                  int64_t obj_id, AttrObject object);

  /// Shared implementation of Create/Add.
  rlscommon::Status InsertMapping(const std::string& logical, const std::string& target,
                                  bool create_new);

  /// Transaction bodies shared by the single and batched write paths.
  /// Both run inside an already-open transaction on `conn` and report
  /// soft-state events through the out-flags instead of firing the
  /// change observer themselves.
  static rlscommon::Status InsertMappingTx(dbapi::Connection& conn,
                                           const std::string& logical,
                                           const std::string& target,
                                           bool create_new, bool* lfn_added);
  static rlscommon::Status DeleteMappingTx(dbapi::Connection& conn,
                                           const std::string& logical,
                                           const std::string& target,
                                           bool* lfn_removed);

  enum class MappingOp { kCreate, kAdd, kDelete };
  rlscommon::Status MutateMappings(const std::vector<Mapping>& mappings,
                                   MappingOp op, BulkStatusResponse* result);

  mutable dbapi::ConnectionPool pool_;
  rdb::Database* db_ = nullptr;  // set by Create after recovery
  /// Serializes mutating transactions. The SQL engine locks per
  /// statement, so multi-statement read-modify-write sequences (shared
  /// target-name reference counts) need store-level serialization —
  /// faithful to MySQL 4.0's MyISAM table locks, which serialized the
  /// 2004 RLS's writers the same way. Queries never take this.
  std::mutex write_mu_;
  std::function<void(const std::string&, bool)> observer_;
};

/// Converts a glob pattern ('*'/'?') to a SQL LIKE pattern ('%'/'_').
std::string GlobToLike(std::string_view glob);

}  // namespace rls
