// RLS wire protocol: opcodes and request/response codecs.
//
// Every client operation of Table 1 has an opcode; soft-state updates
// (uncompressed full, incremental/immediate, Bloom-compressed) have their
// own opcode family. Full updates stream in chunks so the link model
// charges realistic per-message costs for large catalogs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "net/serialize.h"
#include "rls/types.h"

namespace rls {

enum Op : uint16_t {
  kPing = 1,
  kServerStats = 2,
  kServerMetrics = 3,   // per-operation-family latency histograms
  kServerGetStats = 4,  // full introspection snapshot (requires kStats)
  kServerGetTraces = 5, // flight-recorder dump (requires kStats)

  // --- LRC mapping management (Table 1) ---
  kLrcCreate = 10,      // create lfn and its first mapping
  kLrcAdd = 11,         // add another target to an existing lfn
  kLrcDelete = 12,      // delete one {lfn, target} mapping
  kLrcBulkCreate = 13,
  kLrcBulkAdd = 14,
  kLrcBulkDelete = 15,

  // --- LRC queries ---
  kLrcQueryLfn = 20,          // targets for a logical name
  kLrcQueryPfn = 21,          // logical names for a target
  kLrcBulkQueryLfn = 22,
  kLrcWildcardQueryLfn = 23,  // glob over logical names
  kLrcExists = 24,

  // --- LRC attribute management ---
  kLrcAttrDefine = 30,
  kLrcAttrAdd = 31,
  kLrcAttrModify = 32,
  kLrcAttrDelete = 33,
  kLrcAttrQueryObj = 34,   // all attributes of one object
  kLrcAttrSearch = 35,     // objects whose attribute compares to a value
  kLrcBulkAttrAdd = 36,
  kLrcBulkAttrDelete = 37,
  kLrcAttrUndefine = 38,

  // --- LRC management ---
  kLrcRliList = 40,     // RLIs updated by this LRC
  kLrcRliAdd = 41,
  kLrcRliRemove = 42,
  kLrcForceUpdate = 43, // trigger an immediate soft-state update round

  // --- RLI queries ---
  kRliQueryLfn = 50,       // LRC urls holding mappings for an lfn
  kRliBulkQuery = 51,
  kRliWildcardQuery = 52,  // unsupported on Bloom RLIs (paper §5.4)
  kRliLrcList = 53,        // LRCs updating this RLI

  // --- soft-state updates (LRC -> RLI, and RLI -> RLI hierarchy) ---
  kSsFullBegin = 60,
  kSsFullChunk = 61,
  kSsFullEnd = 62,
  kSsIncremental = 63,
  kSsBloom = 64,
};

/// Human-readable opcode name ("lrc_add", "rli_query_lfn"...); used as
/// the `method` metric label. Unknown opcodes render as "op_<n>".
std::string OpName(uint16_t opcode);

// ---------------------------------------------------------------------
// Request/response structs. Encode appends to a payload string; Decode
// returns a Protocol status on malformed input.
// ---------------------------------------------------------------------

/// {lfn, target} pair list — used by create/add/delete and their bulk
/// forms (single ops send one pair).
struct MappingRequest {
  std::vector<Mapping> mappings;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, MappingRequest* out);
};

/// Name + flags — queries by logical or target name.
struct NameQueryRequest {
  std::string name;
  uint32_t offset = 0;  // paging for large result sets
  uint32_t limit = 0;   // 0 = unlimited

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, NameQueryRequest* out);
};

/// Bulk query: many names at once.
struct BulkQueryRequest {
  std::vector<std::string> names;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, BulkQueryRequest* out);
};

/// List of strings (targets, LRC urls, lfns...).
struct StringListResponse {
  std::vector<std::string> values;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, StringListResponse* out);
};

/// Mapping list (bulk query results, wildcard results).
struct MappingListResponse {
  std::vector<Mapping> mappings;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, MappingListResponse* out);
};

/// Per-item outcomes of a bulk mutation.
struct BulkStatusResponse {
  std::vector<BulkResult> failures;  // items not listed succeeded
  uint32_t succeeded = 0;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, BulkStatusResponse* out);
};

/// Attribute definition (kLrcAttrDefine / kLrcAttrUndefine).
struct AttrDefineRequest {
  std::string name;
  AttrObject object = AttrObject::kLogical;
  AttrType type = AttrType::kString;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, AttrDefineRequest* out);
};

/// Attribute value ops: attach/modify/delete a value on an object.
struct AttrValueRequest {
  std::string object_name;  // lfn or target name
  std::string attr_name;
  AttrObject object = AttrObject::kLogical;
  AttrValue value;          // ignored for delete

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, AttrValueRequest* out);
};

/// Bulk attribute add/delete.
struct BulkAttrRequest {
  std::vector<AttrValueRequest> items;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, BulkAttrRequest* out);
};

/// Attribute search: objects where attr <cmp> value.
struct AttrSearchRequest {
  std::string attr_name;
  AttrObject object = AttrObject::kLogical;
  AttrCmp cmp = AttrCmp::kEq;
  AttrValue value;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, AttrSearchRequest* out);
};

/// Attributes of one object (kLrcAttrQueryObj response).
struct AttrListResponse {
  std::vector<Attribute> attributes;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, AttrListResponse* out);
};

/// Soft-state full update framing. `sent_micros` is the sender's
/// monotonic send timestamp, letting the receiver histogram the
/// summarize->receive lag of each update mode.
struct FullUpdateBegin {
  std::string lrc_url;
  uint64_t update_id = 0;
  uint64_t total_names = 0;
  int64_t sent_micros = 0;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, FullUpdateBegin* out);
};

struct FullUpdateChunk {
  std::string lrc_url;
  uint64_t update_id = 0;
  std::vector<std::string> names;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, FullUpdateChunk* out);
};

struct FullUpdateEnd {
  std::string lrc_url;
  uint64_t update_id = 0;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, FullUpdateEnd* out);
};

/// Immediate-mode incremental update: recent adds and deletes.
struct IncrementalUpdate {
  std::string lrc_url;
  std::vector<std::string> added;
  std::vector<std::string> removed;
  int64_t sent_micros = 0;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, IncrementalUpdate* out);
};

/// Bloom-compressed update: the serialized filter summarizing the LRC.
struct BloomUpdate {
  std::string lrc_url;
  std::string filter_bytes;  // bloom::BloomFilter::Serialize output
  int64_t sent_micros = 0;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, BloomUpdate* out);
};

/// Server stats codec.
void EncodeStats(const ServerStats& stats, std::string* out);
rlscommon::Status DecodeStats(std::string_view data, ServerStats* out);

/// One operation family's latency summary (kServerMetrics).
struct FamilyMetrics {
  std::string family;   // "lrc_read", "lrc_write", "rli_query", "soft_state"
  uint64_t count = 0;
  double mean_us = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  uint64_t max_us = 0;
};

struct MetricsResponse {
  std::vector<FamilyMetrics> families;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, MetricsResponse* out);
};

// ---------------------------------------------------------------------
// Introspection (kServerGetStats). Wire form of one obs::Registry sample
// plus server vitals; requires the kStats privilege.
// ---------------------------------------------------------------------

/// One registry instrument. `kind` mirrors obs::MetricKind (0=counter,
/// 1=gauge, 2=histogram); histogram kinds carry the summary fields.
struct MetricSample {
  std::string name;
  std::string labels;  // rendered label list, e.g. method="lrc_add"
  uint8_t kind = 0;
  double value = 0;
  uint64_t count = 0;
  double mean_us = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  uint64_t max_us = 0;
  // Histogram exemplar: trace id of the slowest sample (0 = none) —
  // feed it to GetTraces to pull the matching span from the recorder.
  uint64_t exemplar_us = 0;
  uint64_t exemplar_trace = 0;
};

/// Per-RLI-target soft-state freshness (LRC/combined servers only).
struct TargetStatus {
  std::string address;
  uint64_t updates_sent = 0;
  double seconds_since_last = -1;  // <0 = never updated
  bool healthy = true;
  uint32_t consecutive_failures = 0;
  uint64_t full_resends = 0;  // recovery resends after failures

  void Encode(net::Writer* w) const;
  static bool Decode(net::Reader* r, TargetStatus* out);
};

/// Full introspection snapshot: vitals + per-target freshness + every
/// registry instrument.
/// What open-time WAL replay did on the server's LRC database. All-zero
/// with enabled=0 when the server runs the legacy bytes-only WAL profile.
struct WalRecoveryStatus {
  uint8_t enabled = 0;           // crash-safe WAL profile active
  uint64_t recovered_txns = 0;   // committed transactions replayed at open
  uint64_t records_applied = 0;  // row mutations reapplied
  uint64_t snapshot_rows = 0;    // rows restored from the checkpoint sidecar
  uint64_t torn_tail_bytes = 0;  // bytes dropped at the torn/corrupt tail
  uint64_t checksum_failures = 0;
  uint64_t last_lsn = 0;         // highest LSN seen (replayed or committed)
  uint64_t recover_micros = 0;   // wall time of open-time replay
  // Commit-scheduling vitals (live, not replay): with group commit on,
  // syncs stays far below commits — the batching the durability-ceiling
  // experiment measures.
  uint8_t group_commit = 0;      // leader/follower group commit active
  uint64_t commits = 0;          // transactions committed since open
  uint64_t syncs = 0;            // fdatasyncs issued
  uint64_t group_commits = 0;    // batches written by group leaders
};

struct GetStatsResponse {
  std::string role;  // "lrc", "rli", "lrc+rli"
  double uptime_seconds = 0;
  /// Compile-time build description ("release", "debug+tsan", ...) so a
  /// reader knows whether the numbers came from a sanitizer build.
  std::string build_flags;
  ServerStats vitals;
  uint64_t last_update_trace_id = 0;  // trace of last soft-state update received
  // Span-recorder vitals (process-global flight recorder). Dropped spans
  // are surfaced here so wrap-around losses are visible, never silent.
  uint64_t trace_depth = 0;
  uint64_t trace_dropped = 0;
  uint64_t trace_capacity = 0;
  WalRecoveryStatus wal;
  std::vector<TargetStatus> targets;
  std::vector<MetricSample> metrics;

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, GetStatsResponse* out);
};

// ---------------------------------------------------------------------
// Flight recorder (kServerGetTraces). Wire form of the span recorder's
// query interface; requires the kStats privilege.
// ---------------------------------------------------------------------

/// GetTracesRequest::source values.
inline constexpr uint8_t kTraceSourceRing = 0;
inline constexpr uint8_t kTraceSourceSlowLog = 1;

/// Filter for the flight-recorder dump; zero/empty fields match all.
struct GetTracesRequest {
  uint64_t trace_id = 0;        // exact trace id (0 = any)
  std::string method;           // exact span name, e.g. "lrc_add"
  std::string component;        // exact component, e.g. "rpc", "update"
  uint64_t min_duration_us = 0;
  uint32_t limit = 0;           // 0 = unlimited
  uint8_t source = 0;           // 0 = ring buffer, 1 = top-K slow log

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, GetTracesRequest* out);
};

/// One named hop: offset from the span start, microseconds.
struct TraceHop {
  std::string name;
  uint64_t offset_us = 0;
};

/// One recorded span with its stage decomposition.
struct TraceSpan {
  std::string component;
  std::string name;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint32_t tid = 0;
  int64_t start_us = 0;
  uint64_t duration_us = 0;
  std::vector<TraceHop> hops;
};

struct GetTracesResponse {
  uint64_t depth = 0;     // spans held in the recorder
  uint64_t dropped = 0;   // spans lost to wrap-around
  uint64_t capacity = 0;  // 0 = recorder never enabled
  std::vector<TraceSpan> spans;  // newest first (slowest first for slow log)

  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view data, GetTracesResponse* out);
};

}  // namespace rls
