// Soft-state update machinery on the LRC side (paper §3.2–3.5).
//
// Four update types, selectable per LRC:
//   * kFull        — periodic uncompressed updates listing every logical
//                    name in the LRC.
//   * kImmediate   — infrequent full updates plus frequent incremental
//                    updates carrying recent changes, sent after a short
//                    interval (default 30 s) or after a configurable
//                    number of pending changes (§3.3).
//   * kBloom       — Bloom-filter-compressed updates (§3.4): the LRC
//                    maintains a counting filter so deletions can unset
//                    bits, and ships the plain bitmap.
//   * kPartitioned — uncompressed updates partitioned by glob patterns on
//                    the logical namespace; each RLI receives only its
//                    subset (§3.5).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/trace_context.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "rls/lrc_store.h"

namespace rls {

enum class UpdateMode { kNone, kFull, kImmediate, kBloom, kPartitioned };

std::string_view UpdateModeName(UpdateMode mode);

/// One RLI this LRC updates.
struct UpdateTarget {
  std::string address;                        // transport listen address
  net::LinkModel link = net::LinkModel::Loopback();
  std::vector<std::string> patterns;          // partitioned mode: globs
};

struct UpdateConfig {
  UpdateMode mode = UpdateMode::kNone;
  std::vector<UpdateTarget> targets;

  /// Full updates are resent every `full_interval` (0 = manual only).
  std::chrono::milliseconds full_interval{0};
  /// Immediate mode: incremental update after this long with pending
  /// changes (paper default: 30 seconds)...
  std::chrono::milliseconds immediate_interval{30000};
  /// ...or as soon as this many changes are pending.
  std::size_t immediate_max_pending = 100;

  /// Names per kSsFullChunk message.
  std::size_t chunk_size = 10000;

  /// Sizing hint for the Bloom filter (10 bits/entry policy). 0 = size
  /// from the store's current count at first build.
  uint64_t bloom_expected_entries = 0;

  /// Credential presented to RLIs.
  gsi::Credential credential;

  // --- failure handling (soft-state through server failure, §4/§6) ---

  /// Consecutive send failures before a target is marked unhealthy.
  uint32_t unhealthy_after_failures = 3;

  /// After a failed send the target's schedule backs off exponentially
  /// between these bounds; the next (recovery) attempt waits it out.
  std::chrono::milliseconds target_backoff_initial{100};
  std::chrono::milliseconds target_backoff_max{2000};

  /// Per-RPC deadline for update sends; zero = wait forever. Without a
  /// deadline a blacked-out RLI would hang the update thread.
  std::chrono::milliseconds rpc_timeout{5000};

  /// Per-RPC retry policy for update sends (default: no retry — the
  /// manager's own health/backoff layer handles persistence).
  net::RetryPolicy rpc_retry;

  /// Seed for retry-backoff jitter (deterministic chaos tests).
  uint64_t retry_seed = 0xd1ce;
};

/// Statistics for EXPERIMENTS.md tables (Table 3 columns).
struct UpdateStats {
  uint64_t full_updates_sent = 0;
  uint64_t incremental_updates_sent = 0;
  uint64_t bloom_updates_sent = 0;
  uint64_t names_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t send_failures = 0;            // failed update RPCs (any kind)
  uint64_t full_resends = 0;             // recovery resends after failure
  double last_update_seconds = 0;        // paper: "measured from the LRC's perspective"
  double last_bloom_generate_seconds = 0;
};

/// Per-target soft-state freshness (introspection / kServerGetStats).
struct TargetFreshness {
  std::string address;
  uint64_t updates_sent = 0;
  double seconds_since_last = -1;  // <0 = never updated
  bool healthy = true;
  uint32_t consecutive_failures = 0;
  uint64_t full_resends = 0;
};

class UpdateManager {
 public:
  UpdateManager(net::Transport* network, LrcStore* store, std::string lrc_url,
                UpdateConfig config,
                rlscommon::Clock* clock = rlscommon::SystemClock::Instance());
  ~UpdateManager();

  UpdateManager(const UpdateManager&) = delete;
  UpdateManager& operator=(const UpdateManager&) = delete;

  /// Starts the background scheduler (periodic full + immediate flushes).
  void Start();
  void Stop();

  /// Store observer hook: a logical name appeared or disappeared.
  void OnMappingChange(const std::string& lfn, bool added);

  /// Adds/removes an update target at runtime (the kLrcRliAdd/Remove
  /// management operations).
  void AddTarget(UpdateTarget target);
  void RemoveTarget(const std::string& address);

  /// Sends one full update round now (mode-dependent payload). Blocks
  /// until every target acknowledged; the elapsed time lands in stats.
  rlscommon::Status ForceFullUpdate();

  /// Sends pending incremental changes now (immediate/bloom bookkeeping
  /// is flushed too). No-op when nothing is pending.
  rlscommon::Status FlushImmediate();

  /// (Re)builds the Bloom filter from the store — the one-time cost the
  /// paper reports in Table 3 column 3.
  rlscommon::Status RebuildBloomFilter();

  UpdateStats stats() const;

  /// Registers this manager's instruments in `registry`:
  /// ss_updates_sent_total{mode=...}, ss_names_sent_total,
  /// ss_bytes_sent_total, ss_bloom_bits_set, ss_update_duration_us.
  /// The registry must outlive the manager; call before Start().
  void BindMetrics(obs::Registry* registry);

  /// Per-target freshness snapshot for introspection.
  std::vector<TargetFreshness> TargetStatuses() const;

  const std::string& lrc_url() const { return lrc_url_; }
  UpdateMode mode() const { return config_.mode; }

 private:
  struct TargetState {
    explicit TargetState(UpdateTarget t) : target(std::move(t)) {}

    const UpdateTarget target;

    /// Serializes RPCs to this target; held across sends so a slow or
    /// failing target never blocks introspection of the others.
    std::mutex send_mu;
    std::unique_ptr<net::RpcClient> client;  // guarded by send_mu

    /// Guards the bookkeeping below (held briefly, never across RPCs).
    mutable std::mutex mu;
    uint64_t updates_sent = 0;
    rlscommon::TimePoint last_update;
    bool ever_updated = false;
    // Health state machine: consecutive failures trip `healthy`; every
    // failure schedules an exponentially backed-off recovery attempt and
    // marks the target for a full resend (a lost delta means the RLI can
    // only reconverge from a complete update).
    bool healthy = true;
    uint32_t consecutive_failures = 0;
    bool needs_full_resend = false;
    rlscommon::TimePoint backoff_until{};
    rlscommon::Duration backoff{};
    uint64_t full_resends = 0;
  };

  using TargetPtr = std::shared_ptr<TargetState>;

  /// Lazily connects to a target (caller holds state->send_mu).
  rlscommon::Status ClientFor(TargetState* state, net::RpcClient** out);

  rlscommon::Status SendFullUncompressed(TargetState* state,
                                         const std::vector<std::string>* patterns);
  rlscommon::Status SendBloom(TargetState* state);
  rlscommon::Status SendIncremental(TargetState* state,
                                    const std::vector<std::string>& added,
                                    const std::vector<std::string>& removed);

  /// One mode-appropriate complete update (full listing or whole Bloom
  /// filter) to one target, with health bookkeeping. `recovery` marks
  /// the send as a post-failure resend for stats/metrics.
  rlscommon::Status SendCompleteUpdate(TargetState* state, bool recovery);

  /// Snapshot of the target list (for iteration without targets_mu_).
  std::vector<TargetPtr> SnapshotTargets() const;

  void RecordSendSuccess(TargetState* state, bool complete_update);
  void RecordSendFailure(TargetState* state);

  /// Retries complete updates to targets whose backoff expired.
  void RecoveryPass();

  void SchedulerLoop();

  net::Transport* network_;
  LrcStore* store_;
  std::string lrc_url_;
  UpdateConfig config_;
  rlscommon::Clock* clock_;

  mutable std::mutex targets_mu_;  // guards the vector, not the states
  std::vector<TargetPtr> targets_;

  // Pending incremental changes; +1 = added, -1 = removed, 0 = cancelled.
  std::mutex pending_mu_;
  std::unordered_map<std::string, int> pending_;
  std::size_t pending_count_ = 0;
  // Trace of the mutation that made the batch non-empty, restored when
  // the async flusher ships it (so the flush carries a client's trace).
  rlscommon::TraceContext pending_trace_;  // guarded by pending_mu_

  // Counting Bloom filter mirroring the store (bloom mode).
  std::mutex bloom_mu_;
  bloom::CountingBloomFilter counting_;
  bool bloom_built_ = false;

  mutable std::mutex stats_mu_;
  UpdateStats stats_;
  std::atomic<uint64_t> next_update_id_{1};

  // Optional instruments (owned by the bound registry); null = unbound.
  obs::Registry* metrics_registry_ = nullptr;
  obs::Counter* metric_full_sent_ = nullptr;
  obs::Counter* metric_incremental_sent_ = nullptr;
  obs::Counter* metric_bloom_sent_ = nullptr;
  obs::Counter* metric_names_sent_ = nullptr;
  obs::Counter* metric_bytes_sent_ = nullptr;
  obs::Gauge* metric_bloom_bits_set_ = nullptr;
  obs::Histogram* metric_update_duration_ = nullptr;
  obs::Counter* metric_send_failures_ = nullptr;
  obs::Counter* metric_target_unhealthy_ = nullptr;
  obs::Counter* metric_target_recovered_ = nullptr;
  obs::Counter* metric_full_resends_ = nullptr;
  obs::Gauge* metric_unhealthy_targets_ = nullptr;

  std::mutex scheduler_mu_;
  std::condition_variable scheduler_cv_;
  std::thread scheduler_;
  bool running_ = false;
};

}  // namespace rls
