#include "rls/bootstrap.h"

#include <cstdlib>

#include "common/strings.h"
#include "dbapi/dbapi.h"
#include "rdb/profile.h"

namespace rls {

using rlscommon::Config;
using rlscommon::Status;

namespace {

Status ParseUpdateMode(const std::string& text, UpdateMode* out) {
  if (text == "none") *out = UpdateMode::kNone;
  else if (text == "full") *out = UpdateMode::kFull;
  else if (text == "immediate") *out = UpdateMode::kImmediate;
  else if (text == "bloom") *out = UpdateMode::kBloom;
  else if (text == "partitioned") *out = UpdateMode::kPartitioned;
  else return Status::InvalidArgument("unknown update_mode '" + text + "'");
  return Status::Ok();
}

/// "rls://rli [pattern ...]" -> UpdateTarget.
UpdateTarget ParseTarget(const std::string& value) {
  UpdateTarget target;
  bool first = true;
  for (const std::string& field : rlscommon::Split(value, ' ')) {
    std::string token(rlscommon::Trim(field));
    if (token.empty()) continue;
    if (first) {
      target.address = token;
      first = false;
    } else {
      target.patterns.push_back(token);
    }
  }
  return target;
}

}  // namespace

Status MakeTransportFromConfig(const Config& config,
                               std::unique_ptr<net::Transport>* out) {
  std::string uri = config.GetString("transport", "");
  if (uri.empty()) {
    const char* env = std::getenv("RLS_TRANSPORT");
    if (env) uri = env;
  }
  std::unique_ptr<net::Transport> transport = net::MakeTransport(uri);
  if (!transport) {
    return Status::Protocol("unknown transport scheme: " + uri);
  }
  *out = std::move(transport);
  return Status::Ok();
}

Status ConfigureServer(const Config& config, RlsServerConfig* out) {
  *out = RlsServerConfig{};
  auto address = config.Get("address");
  if (!address) return Status::InvalidArgument("server config needs 'address'");
  out->address = *address;
  out->url = config.GetString("url", *address);

  out->lrc.enabled = config.GetBool("lrc_server", false);
  out->rli.enabled = config.GetBool("rli_server", false);
  if (!out->lrc.enabled && !out->rli.enabled) {
    return Status::InvalidArgument("server " + out->address +
                                   ": enable lrc_server and/or rli_server");
  }

  if (out->lrc.enabled) {
    out->lrc.dsn = config.GetString("lrc_dsn", "");
    if (out->lrc.dsn.empty()) {
      return Status::InvalidArgument("lrc_server needs lrc_dsn");
    }
    out->lrc.wal_recovery = config.GetBool("wal_recovery", false);
    out->lrc.wal_group_commit = config.GetBool("wal_group_commit", false);
    out->lrc.wal_group_max_commits =
        static_cast<std::size_t>(config.GetInt("wal_group_max_commits", 0));
    out->lrc.wal_group_max_wait =
        std::chrono::microseconds(config.GetInt("wal_group_max_wait_us", 0));
    UpdateConfig& update = out->lrc.update;
    Status s = ParseUpdateMode(config.GetString("update_mode", "none"), &update.mode);
    if (!s.ok()) return s;
    for (const std::string& value : config.GetAll("update_rli")) {
      update.targets.push_back(ParseTarget(value));
    }
    if (update.mode != UpdateMode::kNone && update.targets.empty()) {
      return Status::InvalidArgument("update_mode set but no update_rli entries");
    }
    update.full_interval =
        std::chrono::milliseconds(config.GetInt("update_full_interval_ms", 0));
    update.immediate_interval = std::chrono::milliseconds(
        config.GetInt("update_immediate_interval_ms", 30000));
    update.immediate_max_pending =
        static_cast<std::size_t>(config.GetInt("update_buffer_count", 100));
    update.chunk_size = static_cast<std::size_t>(config.GetInt("update_chunk_size", 10000));
    update.bloom_expected_entries =
        static_cast<uint64_t>(config.GetInt("update_bloom_expected_entries", 0));
  }

  if (out->rli.enabled) {
    out->rli.dsn = config.GetString("rli_dsn", "");
    out->rli.accept_bloom = config.GetBool("rli_bloomfilter", true);
    if (out->rli.dsn.empty() && !out->rli.accept_bloom) {
      return Status::InvalidArgument(
          "rli_server needs rli_dsn and/or rli_bloomfilter true");
    }
    out->rli.timeout = std::chrono::seconds(config.GetInt("rli_timeout_s", 0));
    out->rli.expire_poll =
        std::chrono::milliseconds(config.GetInt("rli_expire_poll_ms", 500));
    for (const std::string& value : config.GetAll("rli_parent")) {
      out->rli.parents.push_back(ParseTarget(value));
    }
  }

  if (config.GetBool("authentication", false)) {
    gsi::Gridmap gridmap;
    for (const std::string& line : config.GetAll("gridmap")) {
      Status s = gsi::Gridmap::Parse(line, &gridmap);
      if (!s.ok()) return s;
    }
    gsi::Acl acl;
    for (const std::string& line : config.GetAll("acl")) {
      Status s = acl.AddEntryFromString(line);
      if (!s.ok()) return s;
    }
    if (acl.size() == 0) {
      return Status::InvalidArgument(
          "authentication enabled but no acl entries grant anything");
    }
    out->auth = gsi::AuthManager::Secured(
        std::move(gridmap), std::move(acl),
        std::chrono::microseconds(config.GetInt("auth_handshake_us", 1500)));
  }
  return Status::Ok();
}

Status EnsureDatabases(const RlsServerConfig& config, dbapi::Environment& env,
                       const std::string& wal_dir) {
  auto ensure = [&](const std::string& dsn, bool custom_profile) -> Status {
    if (dsn.empty() || env.Find(dsn)) return Status::Ok();
    std::string wal;
    if (!wal_dir.empty()) {
      std::string file = dsn;
      for (char& c : file) {
        if (c == '/' || c == ':') c = '_';
      }
      wal = wal_dir + "/" + file + ".wal";
    }
    if (!custom_profile) return env.CreateDatabase(dsn, wal);
    // Custom WAL profile: crash-safe framed log (wal_recovery) and/or
    // group commit.
    rdb::BackendKind kind;
    std::string name;
    Status s = dbapi::ParseDsn(dsn, &kind, &name);
    if (!s.ok()) return s;
    rdb::BackendProfile profile = kind == rdb::BackendKind::kPostgreSQL
                                      ? rdb::BackendProfile::PostgreSQL()
                                      : rdb::BackendProfile::MySQL();
    profile.wal_recovery = config.lrc.wal_recovery;
    profile.wal_group_commit = config.lrc.wal_group_commit;
    profile.wal_group_max_commits = config.lrc.wal_group_max_commits;
    profile.wal_group_max_wait = config.lrc.wal_group_max_wait;
    return env.CreateDatabaseWithProfile(dsn, profile, wal);
  };
  Status s = ensure(config.lrc.enabled ? config.lrc.dsn : "",
                    config.lrc.wal_recovery || config.lrc.wal_group_commit);
  if (!s.ok()) return s;
  // RLI relational state is soft state (rebuilt by LRC updates): legacy
  // WAL profile always.
  return ensure(config.rli.enabled ? config.rli.dsn : "", false);
}

Status Topology::Create(const Config& config, net::Transport* network,
                        dbapi::Environment* env, std::unique_ptr<Topology>* out) {
  // Group server.<name>.<key> entries into per-server configs. Names are
  // declared up front by the 'servers' key; per-server keys come from the
  // fixed vocabulary below.
  std::map<std::string, Config> per_server;
  std::vector<std::string> order;  // declaration order = start order
  static const char* kKeys[] = {
      "address", "url", "lrc_server", "rli_server", "lrc_dsn", "rli_dsn",
      "wal_recovery", "wal_group_commit", "wal_group_max_commits",
      "wal_group_max_wait_us",
      "rli_bloomfilter", "rli_timeout_s", "rli_expire_poll_ms", "rli_parent",
      "update_mode", "update_rli", "update_full_interval_ms",
      "update_immediate_interval_ms", "update_buffer_count", "update_chunk_size",
      "update_bloom_expected_entries", "authentication", "gridmap", "acl",
      "auth_handshake_us"};
  auto servers_line = config.Get("servers");
  if (!servers_line) {
    return Status::InvalidArgument(
        "topology config needs 'servers <name> <name> ...'");
  }
  for (const std::string& field : rlscommon::Split(*servers_line, ' ')) {
    std::string name(rlscommon::Trim(field));
    if (name.empty()) continue;
    order.push_back(name);
    Config sub;
    for (const char* key : kKeys) {
      for (const std::string& value :
           config.GetAll("server." + name + "." + key)) {
        sub.Set(key, value);
      }
    }
    per_server.emplace(name, std::move(sub));
  }
  if (order.empty()) return Status::InvalidArgument("'servers' lists no names");

  std::unique_ptr<Topology> topology(new Topology());
  for (const std::string& name : order) {
    RlsServerConfig server_config;
    Status s = ConfigureServer(per_server.at(name), &server_config);
    if (!s.ok()) {
      topology->StopAll();
      return Status::InvalidArgument("server '" + name + "': " + s.message());
    }
    s = EnsureDatabases(server_config, *env);
    if (!s.ok()) {
      topology->StopAll();
      return s;
    }
    auto server = std::make_unique<RlsServer>(network, server_config, env);
    s = server->Start();
    if (!s.ok()) {
      topology->StopAll();
      return Status::Internal("server '" + name + "' failed to start: " + s.message());
    }
    topology->servers_.emplace(name, std::move(server));
  }
  *out = std::move(topology);
  return Status::Ok();
}

Topology::~Topology() { StopAll(); }

RlsServer* Topology::Find(const std::string& name) {
  auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Topology::ServerNames() const {
  std::vector<std::string> names;
  names.reserve(servers_.size());
  for (const auto& [name, server] : servers_) names.push_back(name);
  return names;
}

void Topology::StopAll() {
  for (auto& [name, server] : servers_) server->Stop();
}

}  // namespace rls
