// Overload protection for the RLS server (roadmap: traffic realism).
//
// The paper's server melts the usual way when offered load exceeds
// capacity: every request is accepted, queues grow without bound, and
// p99 latency explodes for everyone — including the soft-state updates
// that keep RLI indices alive. This layer gives the server an explicit
// admission policy instead:
//
//   * per-DN token buckets: each authenticated identity gets a refill
//     rate and burst, with operation costs keyed by the gsi::Privilege
//     class the operation requires (writes cost more than reads, like
//     the paper's measured update-vs-query service times);
//   * a protected priority lane: soft-state updates, admin operations
//     and monitoring probes bypass the buckets and are routed to the
//     RPC server's priority queue, so one tenant's query storm cannot
//     starve the RLI update stream or blind operators;
//   * shed-with-hint: rejected requests fail UNAVAILABLE with a
//     retry-after hint that net::RetryPolicy honors as a backoff floor.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "gsi/gsi.h"
#include "net/rpc.h"
#include "obs/metrics.h"

namespace rls {

/// Overload-protection knobs for an RlsServer. All zero (the default)
/// disables the layer entirely — the pre-overload behavior.
struct ServerLimits {
  /// Worker threads executing admitted requests (net::ServerOptions::
  /// workers). 0 = legacy inline execution on connection threads.
  int workers = 0;

  /// Normal-lane run-queue bound; a full lane sheds. 0 = unbounded.
  std::size_t queue_depth = 0;

  /// Priority-lane bound; 0 = unbounded (the lane carries low-volume
  /// soft-state/admin traffic, so unbounded is the sane default).
  std::size_t priority_queue_depth = 0;

  /// Per-DN token refill rate (tokens/second). 0 = no rate limiting.
  double per_dn_rate = 0;

  /// Per-DN bucket capacity (burst). 0 = one second's worth of tokens.
  double per_dn_burst = 0;

  /// Token cost per request, indexed by the gsi::Privilege class the
  /// operation requires. Writes default to twice the cost of reads —
  /// the paper measures adds/deletes at roughly twice query service
  /// time (Figs. 4 vs 6).
  std::array<double, 6> privilege_cost{1, 2, 1, 1, 1, 1};

  /// Retry-after hint attached to sheds (also the queue-full hint via
  /// net::ServerOptions::shed_retry_after). The rate limiter raises it
  /// to the actual token-deficit refill time when that is longer.
  std::chrono::milliseconds retry_after{50};

  bool Enabled() const {
    return workers > 0 || queue_depth > 0 || per_dn_rate > 0;
  }
};

/// The admission policy behind net::ServerOptions::admission: routes
/// protected traffic to the priority lane and charges everything else
/// against per-DN token buckets. Thread-safe; one instance per server.
class AdmissionController {
 public:
  AdmissionController(const ServerLimits& limits, rlscommon::Clock* clock,
                      obs::Registry* registry);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// The admission decision for one authenticated request.
  net::AdmitDecision Admit(const gsi::AuthContext& context, uint16_t opcode,
                           const std::string& request);

  /// Requests this controller rejected (rate-limit sheds).
  uint64_t shed_total() const { return shed_.load(std::memory_order_relaxed); }

 private:
  struct Bucket {
    double tokens = 0;
    rlscommon::TimePoint last{};
    obs::Counter* requests = nullptr;  // admission_dn_requests_total{dn=}
    obs::Counter* shed = nullptr;      // admission_dn_shed_total{dn=}
  };

  ServerLimits limits_;
  rlscommon::Clock* clock_;
  obs::Registry* registry_;  // nullable

  obs::Counter* admitted_normal_ = nullptr;
  obs::Counter* admitted_priority_ = nullptr;
  obs::Counter* shed_rate_limit_ = nullptr;

  std::atomic<uint64_t> shed_{0};
  std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace rls
