#include "rls/rli_store.h"

#include <algorithm>

#include "rls/lrc_store.h"  // GlobToLike

namespace rls {

using dbapi::Connection;
using rlscommon::Status;
using sql::ResultSet;

namespace {

Status WithTxn(Connection& conn, const std::function<Status()>& body) {
  Status s = conn.Begin();
  if (!s.ok()) return s;
  s = body();
  if (!s.ok()) {
    (void)conn.Rollback();
    return s;
  }
  return conn.Commit();
}

/// Finds or creates a name row in t_lfn / t_lrc; returns its id.
Status GetOrCreateId(Connection& conn, const char* table, const std::string& name,
                     int64_t* id) {
  ResultSet rs;
  Status s = conn.Execute(std::string("SELECT id FROM ") + table + " WHERE name = ?",
                          {rdb::Value::String(name)}, &rs);
  if (!s.ok()) return s;
  if (!rs.empty()) {
    *id = rs.at(0, 0).AsInt();
    return Status::Ok();
  }
  s = conn.Execute(std::string("INSERT INTO ") + table + " (name, ref) VALUES (?, 0)",
                   {rdb::Value::String(name)}, &rs);
  if (!s.ok()) return s;
  *id = rs.last_insert_id;
  return Status::Ok();
}

/// Refreshes or inserts one {lfn_id, lrc_id} association.
Status UpsertOne(Connection& conn, int64_t lfn_id, int64_t lrc_id, int64_t now_micros) {
  ResultSet rs;
  Status s = conn.Execute(
      "UPDATE t_map SET updatetime = ? WHERE lfn_id = ? AND lrc_id = ?",
      {rdb::Value::Timestamp(now_micros), rdb::Value::Int(lfn_id),
       rdb::Value::Int(lrc_id)},
      &rs);
  if (!s.ok()) return s;
  if (rs.affected > 0) return Status::Ok();
  return conn.Execute(
      "INSERT INTO t_map (lfn_id, lrc_id, updatetime) VALUES (?, ?, ?)",
      {rdb::Value::Int(lfn_id), rdb::Value::Int(lrc_id),
       rdb::Value::Timestamp(now_micros)},
      &rs);
}

/// Deletes the lfn row if no associations reference it anymore.
Status CollectLfnIfOrphan(Connection& conn, int64_t lfn_id) {
  ResultSet rs;
  Status s = conn.Execute("SELECT COUNT(*) FROM t_map WHERE lfn_id = ?",
                          {rdb::Value::Int(lfn_id)}, &rs);
  if (!s.ok()) return s;
  if (rs.at(0, 0).AsInt() > 0) return Status::Ok();
  return conn.Execute("DELETE FROM t_lfn WHERE id = ?", {rdb::Value::Int(lfn_id)}, &rs);
}

}  // namespace

Status RliRelationalStore::Create(dbapi::Environment& env, const std::string& dsn,
                                  std::unique_ptr<RliRelationalStore>* out) {
  std::unique_ptr<RliRelationalStore> store(new RliRelationalStore(env, dsn));
  Status s = store->InitSchema();
  if (!s.ok()) return s;
  *out = std::move(store);
  return Status::Ok();
}

Status RliRelationalStore::InitSchema() {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  // Fig. 3 of the paper, RLI database (right side).
  static constexpr const char* kSchema[] = {
      "CREATE TABLE t_lfn (id INT AUTO_INCREMENT PRIMARY KEY,"
      " name VARCHAR(250) NOT NULL, ref INT)",
      "CREATE UNIQUE INDEX idx_rli_lfn_name ON t_lfn (name)",
      "CREATE TABLE t_lrc (id INT AUTO_INCREMENT PRIMARY KEY,"
      " name VARCHAR(250) NOT NULL, ref INT)",
      "CREATE UNIQUE INDEX idx_rli_lrc_name ON t_lrc (name)",
      "CREATE TABLE t_map (lfn_id INT NOT NULL, lrc_id INT NOT NULL,"
      " updatetime TIMESTAMP)",
      "CREATE INDEX idx_rli_map_lfn ON t_map (lfn_id)",
      "CREATE INDEX idx_rli_map_lrc ON t_map (lrc_id)",
      "CREATE ORDERED INDEX idx_rli_map_time ON t_map (updatetime)",
  };
  for (const char* ddl : kSchema) {
    ResultSet rs;
    s = conn->Execute(ddl, &rs);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status RliRelationalStore::Upsert(const std::string& lfn, const std::string& lrc_url,
                                  int64_t now_micros) {
  return UpsertBatch({lfn}, lrc_url, now_micros);
}

Status RliRelationalStore::UpsertBatch(const std::vector<std::string>& lfns,
                                       const std::string& lrc_url, int64_t now_micros) {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  return WithTxn(*conn, [&]() -> Status {
    int64_t lrc_id = 0;
    Status st = GetOrCreateId(*conn, "t_lrc", lrc_url, &lrc_id);
    if (!st.ok()) return st;
    for (const std::string& lfn : lfns) {
      int64_t lfn_id = 0;
      st = GetOrCreateId(*conn, "t_lfn", lfn, &lfn_id);
      if (!st.ok()) return st;
      st = UpsertOne(*conn, lfn_id, lrc_id, now_micros);
      if (!st.ok()) return st;
    }
    return Status::Ok();
  });
}

Status RliRelationalStore::Remove(const std::string& lfn, const std::string& lrc_url) {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  return WithTxn(*conn, [&]() -> Status {
    ResultSet rs;
    Status st = conn->Execute("SELECT id FROM t_lfn WHERE name = ?",
                              {rdb::Value::String(lfn)}, &rs);
    if (!st.ok()) return st;
    if (rs.empty()) return Status::Ok();  // already gone — removal is idempotent
    const int64_t lfn_id = rs.at(0, 0).AsInt();
    st = conn->Execute("SELECT id FROM t_lrc WHERE name = ?",
                       {rdb::Value::String(lrc_url)}, &rs);
    if (!st.ok()) return st;
    if (rs.empty()) return Status::Ok();
    const int64_t lrc_id = rs.at(0, 0).AsInt();
    st = conn->Execute("DELETE FROM t_map WHERE lfn_id = ? AND lrc_id = ?",
                       {rdb::Value::Int(lfn_id), rdb::Value::Int(lrc_id)}, &rs);
    if (!st.ok()) return st;
    return CollectLfnIfOrphan(*conn, lfn_id);
  });
}

Status RliRelationalStore::Query(const std::string& lfn,
                                 std::vector<std::string>* lrcs) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  ResultSet rs;
  s = conn->Execute(
      "SELECT t_lrc.name FROM t_lfn"
      " JOIN t_map ON t_lfn.id = t_map.lfn_id"
      " JOIN t_lrc ON t_map.lrc_id = t_lrc.id"
      " WHERE t_lfn.name = ?",
      {rdb::Value::String(lfn)}, &rs);
  if (!s.ok()) return s;
  if (rs.empty()) return Status::NotFound("no LRC holds mappings for: " + lfn);
  lrcs->clear();
  lrcs->reserve(rs.size());
  for (const rdb::Row& row : rs.rows) lrcs->push_back(row[0].AsString());
  return Status::Ok();
}

Status RliRelationalStore::WildcardQuery(const std::string& pattern, uint32_t limit,
                                         std::vector<Mapping>* out) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  std::string sql =
      "SELECT t_lfn.name, t_lrc.name FROM t_lfn"
      " JOIN t_map ON t_lfn.id = t_map.lfn_id"
      " JOIN t_lrc ON t_map.lrc_id = t_lrc.id"
      " WHERE t_lfn.name LIKE ?";
  if (limit > 0) sql += " LIMIT " + std::to_string(limit);
  ResultSet rs;
  s = conn->Execute(sql, {rdb::Value::String(GlobToLike(pattern))}, &rs);
  if (!s.ok()) return s;
  out->clear();
  for (const rdb::Row& row : rs.rows) {
    out->push_back(Mapping{row[0].AsString(), row[1].AsString()});
  }
  return Status::Ok();
}

Status RliRelationalStore::ListLrcs(std::vector<std::string>* out) const {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  ResultSet rs;
  s = conn->Execute("SELECT name FROM t_lrc", &rs);
  if (!s.ok()) return s;
  out->clear();
  for (const rdb::Row& row : rs.rows) out->push_back(row[0].AsString());
  return Status::Ok();
}

Status RliRelationalStore::ExpireOlderThan(int64_t cutoff_micros, uint64_t* removed) {
  dbapi::ConnectionPool::Lease conn;
  Status s = pool_.Acquire(&conn);
  if (!s.ok()) return s;
  if (removed) *removed = 0;
  return WithTxn(*conn, [&]() -> Status {
    // Find affected logical names first, then delete and collect orphans.
    ResultSet rs;
    Status st = conn->Execute("SELECT lfn_id FROM t_map WHERE updatetime < ?",
                              {rdb::Value::Timestamp(cutoff_micros)}, &rs);
    if (!st.ok()) return st;
    std::vector<int64_t> lfn_ids;
    lfn_ids.reserve(rs.size());
    for (const rdb::Row& row : rs.rows) lfn_ids.push_back(row[0].AsInt());
    std::sort(lfn_ids.begin(), lfn_ids.end());
    lfn_ids.erase(std::unique(lfn_ids.begin(), lfn_ids.end()), lfn_ids.end());

    st = conn->Execute("DELETE FROM t_map WHERE updatetime < ?",
                       {rdb::Value::Timestamp(cutoff_micros)}, &rs);
    if (!st.ok()) return st;
    if (removed) *removed = rs.affected;

    for (int64_t lfn_id : lfn_ids) {
      st = CollectLfnIfOrphan(*conn, lfn_id);
      if (!st.ok()) return st;
    }
    return Status::Ok();
  });
}

uint64_t RliRelationalStore::AssociationCount() const {
  dbapi::ConnectionPool::Lease conn;
  if (!pool_.Acquire(&conn).ok()) return 0;
  ResultSet rs;
  if (!conn->Execute("SELECT COUNT(*) FROM t_map", &rs).ok()) return 0;
  return static_cast<uint64_t>(rs.at(0, 0).AsInt());
}

uint64_t RliRelationalStore::LogicalNameCount() const {
  dbapi::ConnectionPool::Lease conn;
  if (!pool_.Acquire(&conn).ok()) return 0;
  ResultSet rs;
  if (!conn->Execute("SELECT COUNT(*) FROM t_lfn", &rs).ok()) return 0;
  return static_cast<uint64_t>(rs.at(0, 0).AsInt());
}

void RliBloomStore::StoreFilter(const std::string& lrc_url, bloom::BloomFilter filter) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  filters_[lrc_url] = Entry{std::move(filter), clock_->Now()};
}

Status RliBloomStore::Query(const std::string& lfn,
                            std::vector<std::string>* lrcs) const {
  // Hash once, probe every filter (paper: query cost grows with the
  // number of Bloom filters at the RLI, Fig. 10).
  const bloom::HashPair hash = bloom::HashKey(lfn);
  lrcs->clear();
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [url, entry] : filters_) {
    if (entry.filter.ContainsHashed(hash)) lrcs->push_back(url);
  }
  if (lrcs->empty()) return Status::NotFound("no LRC claims: " + lfn);
  return Status::Ok();
}

Status RliBloomStore::ListLrcs(std::vector<std::string>* out) const {
  out->clear();
  std::shared_lock<std::shared_mutex> lock(mu_);
  out->reserve(filters_.size());
  for (const auto& [url, entry] : filters_) out->push_back(url);
  return Status::Ok();
}

uint64_t RliBloomStore::ExpireOlderThan(rlscommon::Duration max_age) {
  const rlscommon::TimePoint cutoff = clock_->Now() - max_age;
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint64_t dropped = 0;
  for (auto it = filters_.begin(); it != filters_.end();) {
    if (it->second.received < cutoff) {
      it = filters_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t RliBloomStore::filter_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return filters_.size();
}

uint64_t RliBloomStore::TotalFilterBits() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [url, entry] : filters_) total += entry.filter.num_bits();
  return total;
}

}  // namespace rls
