// RLS client API (paper §3.7, Table 1).
//
// LrcClient and RliClient wrap one RPC connection each; like the original
// C client, a client object is not thread-safe — the multi-threaded load
// drivers in bench/ create one client per thread.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "net/rpc.h"
#include "rls/protocol.h"
#include "rls/types.h"

namespace rls {

/// Options shared by both clients.
struct ClientConfig {
  gsi::Credential credential;                      // empty = anonymous
  net::LinkModel link = net::LinkModel::Loopback();

  /// Endpoint identity on the fabric (fault-injection targeting).
  std::string identity = "client";

  /// Per-call deadline; zero = wait forever.
  std::chrono::milliseconds call_timeout{0};

  /// Retry policy for UNAVAILABLE/TIMEOUT failures (default: no retry).
  net::RetryPolicy retry;

  /// Seed for retry-backoff jitter (deterministic chaos tests).
  uint64_t retry_seed = 0x5ca1ab1e;

  /// Optional client-side metrics sink (retries/timeouts/reconnects).
  obs::Registry* metrics = nullptr;
};

/// Client for a server's LRC role — every LRC operation of Table 1.
class LrcClient {
 public:
  static rlscommon::Status Connect(net::Transport* network, const std::string& address,
                                   const ClientConfig& config,
                                   std::unique_ptr<LrcClient>* out);

  // --- mapping management ---
  rlscommon::Status Create(const std::string& logical, const std::string& target);
  rlscommon::Status Add(const std::string& logical, const std::string& target);
  rlscommon::Status Delete(const std::string& logical, const std::string& target);
  rlscommon::Status BulkCreate(const std::vector<Mapping>& mappings,
                               BulkStatusResponse* result);
  rlscommon::Status BulkAdd(const std::vector<Mapping>& mappings,
                            BulkStatusResponse* result);
  rlscommon::Status BulkDelete(const std::vector<Mapping>& mappings,
                               BulkStatusResponse* result);

  // --- queries ---
  /// `offset`/`limit` page large result sets (limit 0 = unlimited).
  rlscommon::Status Query(const std::string& logical, std::vector<std::string>* targets,
                          uint32_t offset = 0, uint32_t limit = 0);
  rlscommon::Status QueryTarget(const std::string& target,
                                std::vector<std::string>* logicals,
                                uint32_t offset = 0, uint32_t limit = 0);
  rlscommon::Status BulkQuery(const std::vector<std::string>& logicals,
                              std::vector<Mapping>* mappings);
  /// Glob pattern over logical names ('*' / '?').
  rlscommon::Status WildcardQuery(const std::string& pattern, uint32_t limit,
                                  std::vector<Mapping>* mappings,
                                  uint32_t offset = 0);
  rlscommon::Status Exists(const std::string& logical);

  // --- attribute management ---
  rlscommon::Status AttributeDefine(const std::string& name, AttrObject object,
                                    AttrType type);
  rlscommon::Status AttributeUndefine(const std::string& name, AttrObject object);
  rlscommon::Status AttributeAdd(const std::string& object_name,
                                 const std::string& attr_name, AttrObject object,
                                 const AttrValue& value);
  rlscommon::Status AttributeModify(const std::string& object_name,
                                    const std::string& attr_name, AttrObject object,
                                    const AttrValue& value);
  rlscommon::Status AttributeDelete(const std::string& object_name,
                                    const std::string& attr_name, AttrObject object);
  rlscommon::Status AttributeQuery(const std::string& object_name, AttrObject object,
                                   std::vector<Attribute>* attributes);
  /// Objects whose `attr_name` compares `cmp` against `value`; results
  /// pair object names with the matching attribute values.
  rlscommon::Status AttributeSearch(const std::string& attr_name, AttrObject object,
                                    AttrCmp cmp, const AttrValue& value,
                                    std::vector<Attribute>* results);
  rlscommon::Status BulkAttributeAdd(const std::vector<AttrValueRequest>& items,
                                     BulkStatusResponse* result);
  rlscommon::Status BulkAttributeDelete(const std::vector<AttrValueRequest>& items,
                                        BulkStatusResponse* result);

  // --- LRC management ---
  rlscommon::Status RliList(std::vector<std::string>* rlis);
  rlscommon::Status RliAdd(const std::string& rli_address);
  rlscommon::Status RliRemove(const std::string& rli_address);
  /// Triggers an immediate soft-state update round.
  rlscommon::Status ForceUpdate();

  rlscommon::Status Ping();
  rlscommon::Status Stats(ServerStats* stats);
  /// Per-operation-family latency histograms (monitoring).
  rlscommon::Status Metrics(MetricsResponse* metrics);
  /// Full introspection snapshot (requires the kStats privilege).
  rlscommon::Status GetStats(GetStatsResponse* stats);
  /// Flight-recorder dump (requires the kStats privilege).
  rlscommon::Status GetTraces(const GetTracesRequest& filter,
                              GetTracesResponse* traces);

 private:
  explicit LrcClient(std::unique_ptr<net::RpcClient> rpc) : rpc_(std::move(rpc)) {}

  rlscommon::Status MappingOp(uint16_t opcode, const std::string& logical,
                              const std::string& target);
  rlscommon::Status BulkMappingOp(uint16_t opcode, const std::vector<Mapping>& mappings,
                                  BulkStatusResponse* result);
  rlscommon::Status AttrValueOp(uint16_t opcode, const std::string& object_name,
                                const std::string& attr_name, AttrObject object,
                                const AttrValue& value);
  rlscommon::Status BulkAttrOp(uint16_t opcode, const std::vector<AttrValueRequest>& items,
                               BulkStatusResponse* result);

  std::unique_ptr<net::RpcClient> rpc_;
};

/// Client for a server's RLI role.
class RliClient {
 public:
  static rlscommon::Status Connect(net::Transport* network, const std::string& address,
                                   const ClientConfig& config,
                                   std::unique_ptr<RliClient>* out);

  /// LRC urls that (may) hold mappings for this logical name. Bloom-mode
  /// RLIs answer with ~1% false positives (paper §3.4).
  rlscommon::Status Query(const std::string& logical, std::vector<std::string>* lrcs);
  rlscommon::Status BulkQuery(const std::vector<std::string>& logicals,
                              std::vector<Mapping>* results);
  /// Glob query; Unsupported on Bloom-filter RLIs (paper §5.4).
  rlscommon::Status WildcardQuery(const std::string& pattern, uint32_t limit,
                                  std::vector<Mapping>* results);
  /// LRCs that update this RLI.
  rlscommon::Status LrcList(std::vector<std::string>* lrcs);

  rlscommon::Status Ping();
  rlscommon::Status Stats(ServerStats* stats);
  /// Full introspection snapshot (requires the kStats privilege).
  rlscommon::Status GetStats(GetStatsResponse* stats);
  /// Flight-recorder dump (requires the kStats privilege).
  rlscommon::Status GetTraces(const GetTracesRequest& filter,
                              GetTracesResponse* traces);

 private:
  explicit RliClient(std::unique_ptr<net::RpcClient> rpc) : rpc_(std::move(rpc)) {}

  std::unique_ptr<net::RpcClient> rpc_;
};

}  // namespace rls
