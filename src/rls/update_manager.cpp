#include "rls/update_manager.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "rls/protocol.h"

namespace rls {

using rlscommon::Status;

namespace {
int64_t MonoMicros(rlscommon::Clock* clock) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             clock->Now().time_since_epoch())
      .count();
}
}  // namespace

std::string_view UpdateModeName(UpdateMode mode) {
  switch (mode) {
    case UpdateMode::kNone: return "none";
    case UpdateMode::kFull: return "full";
    case UpdateMode::kImmediate: return "immediate";
    case UpdateMode::kBloom: return "bloom";
    case UpdateMode::kPartitioned: return "partitioned";
  }
  return "?";
}

UpdateManager::UpdateManager(net::Transport* network, LrcStore* store,
                             std::string lrc_url, UpdateConfig config,
                             rlscommon::Clock* clock)
    : network_(network),
      store_(store),
      lrc_url_(std::move(lrc_url)),
      config_(std::move(config)),
      clock_(clock) {
  for (const UpdateTarget& target : config_.targets) {
    targets_.push_back(std::make_shared<TargetState>(target));
  }
}

UpdateManager::~UpdateManager() { Stop(); }

void UpdateManager::Start() {
  std::lock_guard<std::mutex> lock(scheduler_mu_);
  if (running_ || config_.mode == UpdateMode::kNone) return;
  running_ = true;
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

void UpdateManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(scheduler_mu_);
    if (!running_) return;
    running_ = false;
  }
  scheduler_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

void UpdateManager::BindMetrics(obs::Registry* registry) {
  metrics_registry_ = registry;
  metric_full_sent_ =
      registry->GetCounter("ss_updates_sent_total", obs::Label("mode", "full"));
  metric_incremental_sent_ = registry->GetCounter(
      "ss_updates_sent_total", obs::Label("mode", "incremental"));
  metric_bloom_sent_ =
      registry->GetCounter("ss_updates_sent_total", obs::Label("mode", "bloom"));
  metric_names_sent_ = registry->GetCounter("ss_names_sent_total");
  metric_bytes_sent_ = registry->GetCounter("ss_bytes_sent_total");
  metric_bloom_bits_set_ = registry->GetGauge("ss_bloom_bits_set");
  metric_update_duration_ = registry->GetHistogram("ss_update_duration_us");
  metric_send_failures_ = registry->GetCounter("ss_send_failures_total");
  metric_target_unhealthy_ = registry->GetCounter("ss_target_unhealthy_total");
  metric_target_recovered_ = registry->GetCounter("ss_target_recovered_total");
  metric_full_resends_ = registry->GetCounter("ss_full_resends_total");
  metric_unhealthy_targets_ = registry->GetGauge("ss_unhealthy_targets");
}

std::vector<UpdateManager::TargetPtr> UpdateManager::SnapshotTargets() const {
  std::lock_guard<std::mutex> lock(targets_mu_);
  return targets_;
}

std::vector<TargetFreshness> UpdateManager::TargetStatuses() const {
  const rlscommon::TimePoint now = clock_->Now();
  std::vector<TargetFreshness> out;
  for (const TargetPtr& state : SnapshotTargets()) {
    TargetFreshness f;
    f.address = state->target.address;
    std::lock_guard<std::mutex> lock(state->mu);
    f.updates_sent = state->updates_sent;
    if (state->ever_updated) {
      f.seconds_since_last =
          std::chrono::duration<double>(now - state->last_update).count();
    }
    f.healthy = state->healthy;
    f.consecutive_failures = state->consecutive_failures;
    f.full_resends = state->full_resends;
    out.push_back(std::move(f));
  }
  return out;
}

void UpdateManager::RecordSendSuccess(TargetState* state, bool complete_update) {
  bool recovered = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->updates_sent;
    state->last_update = clock_->Now();
    state->ever_updated = true;
    state->consecutive_failures = 0;
    state->backoff = {};
    state->backoff_until = {};
    if (complete_update) state->needs_full_resend = false;
    if (!state->healthy) {
      state->healthy = true;
      recovered = true;
    }
  }
  if (recovered) {
    RLS_INFO("update") << lrc_url_ << " target " << state->target.address
                       << " recovered";
    if (metric_target_recovered_) metric_target_recovered_->Increment();
    if (metric_unhealthy_targets_) metric_unhealthy_targets_->Add(-1);
  }
}

void UpdateManager::RecordSendFailure(TargetState* state) {
  bool went_unhealthy = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->consecutive_failures;
    // Whatever this send carried is lost; only a complete update can
    // reconverge the target.
    state->needs_full_resend = true;
    state->backoff =
        state->backoff.count() == 0
            ? std::chrono::duration_cast<rlscommon::Duration>(
                  config_.target_backoff_initial)
            : std::min(state->backoff * 2,
                       std::chrono::duration_cast<rlscommon::Duration>(
                           config_.target_backoff_max));
    state->backoff_until = clock_->Now() + state->backoff;
    if (state->healthy &&
        state->consecutive_failures >= config_.unhealthy_after_failures) {
      state->healthy = false;
      went_unhealthy = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.send_failures;
  }
  if (metric_send_failures_) metric_send_failures_->Increment();
  if (went_unhealthy) {
    RLS_WARN("update") << lrc_url_ << " target " << state->target.address
                       << " marked unhealthy";
    if (metric_target_unhealthy_) metric_target_unhealthy_->Increment();
    if (metric_unhealthy_targets_) metric_unhealthy_targets_->Add(1);
  }
}

void UpdateManager::OnMappingChange(const std::string& lfn, bool added) {
  if (config_.mode == UpdateMode::kNone) return;

  if (config_.mode == UpdateMode::kBloom) {
    std::lock_guard<std::mutex> lock(bloom_mu_);
    if (bloom_built_) {
      // "subsequent updates to LRC mappings can be reflected by setting
      // or unsetting the corresponding bits" (paper §5.5) — sound here
      // because the LRC keeps counters.
      if (added) {
        counting_.Insert(lfn);
      } else {
        counting_.Remove(lfn);
      }
    }
    return;
  }

  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    int& state = pending_[lfn];
    state += added ? 1 : -1;
    if (state == 0) {
      pending_.erase(lfn);
      if (pending_count_ > 0) --pending_count_;
    } else {
      ++pending_count_;
    }
    // Remember the trace of the mutation that opened this batch so an
    // async flush can re-stamp it on the outgoing update.
    const rlscommon::TraceContext trace = rlscommon::CurrentTrace();
    if (trace.valid() && !pending_trace_.valid()) pending_trace_ = trace;
    flush = config_.mode == UpdateMode::kImmediate &&
            pending_count_ >= config_.immediate_max_pending;
  }
  if (flush) scheduler_cv_.notify_all();
}

void UpdateManager::AddTarget(UpdateTarget target) {
  std::lock_guard<std::mutex> lock(targets_mu_);
  for (const TargetPtr& state : targets_) {
    if (state->target.address == target.address) return;
  }
  targets_.push_back(std::make_shared<TargetState>(std::move(target)));
}

void UpdateManager::RemoveTarget(const std::string& address) {
  TargetPtr removed;
  {
    std::lock_guard<std::mutex> lock(targets_mu_);
    for (auto it = targets_.begin(); it != targets_.end(); ++it) {
      if ((*it)->target.address == address) {
        removed = *it;
        targets_.erase(it);
        break;
      }
    }
  }
  if (removed && metric_unhealthy_targets_) {
    std::lock_guard<std::mutex> lock(removed->mu);
    if (!removed->healthy) metric_unhealthy_targets_->Add(-1);
  }
}

Status UpdateManager::ClientFor(TargetState* state, net::RpcClient** out) {
  if (!state->client) {
    net::ClientOptions options;
    options.credential = config_.credential;
    options.link = state->target.link;
    options.identity = lrc_url_;
    options.call_timeout = config_.rpc_timeout;
    options.retry = config_.rpc_retry;
    options.retry_seed = config_.retry_seed;
    options.metrics = metrics_registry_;
    Status s = net::RpcClient::Connect(network_, state->target.address, options,
                                       &state->client);
    if (!s.ok()) return s;
  }
  *out = state->client.get();
  return Status::Ok();
}

Status UpdateManager::SendCompleteUpdate(TargetState* state, bool recovery) {
  Status s;
  {
    std::lock_guard<std::mutex> lock(state->send_mu);
    switch (config_.mode) {
      case UpdateMode::kNone:
        return Status::InvalidArgument("LRC has no update mode configured");
      case UpdateMode::kBloom:
        s = SendBloom(state);
        break;
      case UpdateMode::kPartitioned:
        s = SendFullUncompressed(state, state->target.patterns.empty()
                                            ? nullptr
                                            : &state->target.patterns);
        break;
      case UpdateMode::kFull:
      case UpdateMode::kImmediate:
        s = SendFullUncompressed(state, nullptr);
        break;
    }
  }
  if (s.ok()) {
    RecordSendSuccess(state, /*complete_update=*/true);
    if (recovery) {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->full_resends;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.full_resends;
      }
      if (metric_full_resends_) metric_full_resends_->Increment();
    }
  } else {
    RecordSendFailure(state);
  }
  return s;
}

Status UpdateManager::ForceFullUpdate() {
  if (config_.mode == UpdateMode::kNone) {
    return Status::InvalidArgument("LRC has no update mode configured");
  }
  rlscommon::Stopwatch watch(clock_);
  Status status = Status::Ok();
  for (const TargetPtr& state : SnapshotTargets()) {
    Status s = SendCompleteUpdate(state.get(), /*recovery=*/false);
    if (!s.ok() && status.ok()) status = s;
  }
  if (metric_update_duration_) metric_update_duration_->Record(watch.Elapsed());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.last_update_seconds = watch.ElapsedSeconds();
  }
  // A full update supersedes any pending incremental state.
  if (config_.mode != UpdateMode::kBloom) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.clear();
    pending_count_ = 0;
  }
  return status;
}

Status UpdateManager::FlushImmediate() {
  if (config_.mode == UpdateMode::kBloom) {
    // Bloom mode's "incremental" flush is simply resending the filter.
    return ForceFullUpdate();
  }
  std::vector<std::string> added, removed;
  rlscommon::TraceContext batch_trace;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (const auto& [lfn, state] : pending_) {
      if (state > 0) {
        added.push_back(lfn);
      } else if (state < 0) {
        removed.push_back(lfn);
      }
    }
    pending_.clear();
    pending_count_ = 0;
    batch_trace = pending_trace_;
    pending_trace_ = {};
  }
  if (added.empty() && removed.empty()) return Status::Ok();

  // When flushed from the scheduler thread there is no ambient trace;
  // restore the trace of the mutation that opened the batch so the
  // update hop is attributable to the client operation.
  std::optional<obs::ScopedTrace> scope;
  if (!rlscommon::CurrentTrace().valid() && batch_trace.valid()) {
    scope.emplace(batch_trace);
  }

  Status status = Status::Ok();
  for (const TargetPtr& state : SnapshotTargets()) {
    {
      // An unhealthy or stale target is skipped — its RLI can only
      // reconverge from the complete resend the recovery pass owes it,
      // so spending a timeout on a doomed incremental just slows the
      // healthy targets down.
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->healthy || state->needs_full_resend) continue;
    }
    std::vector<std::string> target_added = added;
    std::vector<std::string> target_removed = removed;
    if (!state->target.patterns.empty()) {
      auto matches = [&](const std::string& name) {
        for (const std::string& pattern : state->target.patterns) {
          if (rlscommon::WildcardMatch(pattern, name)) return true;
        }
        return false;
      };
      std::erase_if(target_added, [&](const std::string& n) { return !matches(n); });
      std::erase_if(target_removed, [&](const std::string& n) { return !matches(n); });
      if (target_added.empty() && target_removed.empty()) continue;
    }
    Status s;
    {
      std::lock_guard<std::mutex> lock(state->send_mu);
      s = SendIncremental(state.get(), target_added, target_removed);
    }
    if (s.ok()) {
      RecordSendSuccess(state.get(), /*complete_update=*/false);
    } else {
      RecordSendFailure(state.get());
      if (status.ok()) status = s;
    }
  }
  return status;
}

Status UpdateManager::RebuildBloomFilter() {
  rlscommon::Stopwatch watch(clock_);
  uint64_t expected = config_.bloom_expected_entries;
  if (expected == 0) expected = std::max<uint64_t>(store_->LogicalNameCount(), 1024);
  bloom::CountingBloomFilter fresh =
      bloom::CountingBloomFilter::ForEntries(expected);
  Status s = store_->ForEachLogicalName(
      config_.chunk_size, [&](const std::vector<std::string>& names) {
        for (const std::string& name : names) fresh.Insert(name);
      });
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lock(bloom_mu_);
    counting_ = std::move(fresh);
    bloom_built_ = true;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.last_bloom_generate_seconds = watch.ElapsedSeconds();
  return Status::Ok();
}

Status UpdateManager::SendFullUncompressed(TargetState* state,
                                           const std::vector<std::string>* patterns) {
  net::RpcClient* client = nullptr;
  Status s = ClientFor(state, &client);
  if (!s.ok()) return s;

  const uint64_t update_id = next_update_id_.fetch_add(1);
  const uint64_t total = store_->LogicalNameCount();
  const uint64_t bytes_before = client->bytes_sent();

  obs::Span span("update", "full_update");
  std::string payload, response;
  FullUpdateBegin begin{lrc_url_, update_id, total, MonoMicros(clock_)};
  begin.Encode(&payload);
  s = client->Call(kSsFullBegin, payload, &response);
  if (!s.ok()) return s;
  span.Hop("begin");

  uint64_t names_sent = 0;
  Status send_status = Status::Ok();
  s = store_->ForEachLogicalName(
      config_.chunk_size, [&](const std::vector<std::string>& names) {
        if (!send_status.ok()) return;
        FullUpdateChunk chunk;
        chunk.lrc_url = lrc_url_;
        chunk.update_id = update_id;
        if (patterns) {
          for (const std::string& name : names) {
            for (const std::string& pattern : *patterns) {
              if (rlscommon::WildcardMatch(pattern, name)) {
                chunk.names.push_back(name);
                break;
              }
            }
          }
          if (chunk.names.empty()) return;
        } else {
          chunk.names = names;
        }
        std::string chunk_payload, chunk_response;
        chunk.Encode(&chunk_payload);
        send_status = client->Call(kSsFullChunk, chunk_payload, &chunk_response);
        names_sent += chunk.names.size();
      });
  if (!s.ok()) return s;
  if (!send_status.ok()) return send_status;
  span.Hop("chunks");

  payload.clear();
  FullUpdateEnd end{lrc_url_, update_id};
  end.Encode(&payload);
  s = client->Call(kSsFullEnd, payload, &response);
  if (!s.ok()) return s;

  if (metric_full_sent_) metric_full_sent_->Increment();
  if (metric_names_sent_) metric_names_sent_->Increment(names_sent);
  if (metric_bytes_sent_) {
    metric_bytes_sent_->Increment(client->bytes_sent() - bytes_before);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.full_updates_sent;
  stats_.names_sent += names_sent;
  stats_.bytes_sent = client->bytes_sent();
  return Status::Ok();
}

Status UpdateManager::SendBloom(TargetState* state) {
  bool needs_build;
  {
    std::lock_guard<std::mutex> lock(bloom_mu_);
    needs_build = !bloom_built_;
  }
  if (needs_build) {
    // The first update pays the one-time filter generation cost the paper
    // reports in Table 3 column 3.
    Status s = RebuildBloomFilter();
    if (!s.ok()) return s;
  }

  obs::Span span("update", "bloom_update");
  BloomUpdate update;
  update.lrc_url = lrc_url_;
  update.sent_micros = MonoMicros(clock_);
  {
    std::lock_guard<std::mutex> lock(bloom_mu_);
    bloom::BloomFilter snapshot = counting_.ToBloomFilter();
    snapshot.Serialize(&update.filter_bytes);
    if (metric_bloom_bits_set_) {
      metric_bloom_bits_set_->Set(
          static_cast<int64_t>(snapshot.CountSetBits()));
    }
  }

  net::RpcClient* client = nullptr;
  Status s = ClientFor(state, &client);
  if (!s.ok()) return s;
  span.Hop("serialize");
  const uint64_t bytes_before = client->bytes_sent();
  std::string payload, response;
  update.Encode(&payload);
  s = client->Call(kSsBloom, payload, &response);
  if (!s.ok()) return s;

  if (metric_bloom_sent_) metric_bloom_sent_->Increment();
  if (metric_bytes_sent_) {
    metric_bytes_sent_->Increment(client->bytes_sent() - bytes_before);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.bloom_updates_sent;
  stats_.bytes_sent = client->bytes_sent();
  return Status::Ok();
}

Status UpdateManager::SendIncremental(TargetState* state,
                                      const std::vector<std::string>& added,
                                      const std::vector<std::string>& removed) {
  net::RpcClient* client = nullptr;
  Status s = ClientFor(state, &client);
  if (!s.ok()) return s;
  obs::Span span("update", "incremental_update");
  IncrementalUpdate update;
  update.lrc_url = lrc_url_;
  update.added = added;
  update.removed = removed;
  update.sent_micros = MonoMicros(clock_);
  const uint64_t bytes_before = client->bytes_sent();
  std::string payload, response;
  update.Encode(&payload);
  s = client->Call(kSsIncremental, payload, &response);
  if (!s.ok()) return s;
  if (metric_incremental_sent_) metric_incremental_sent_->Increment();
  if (metric_names_sent_) {
    metric_names_sent_->Increment(added.size() + removed.size());
  }
  if (metric_bytes_sent_) {
    metric_bytes_sent_->Increment(client->bytes_sent() - bytes_before);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.incremental_updates_sent;
  stats_.names_sent += added.size() + removed.size();
  stats_.bytes_sent = client->bytes_sent();
  return Status::Ok();
}

UpdateStats UpdateManager::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void UpdateManager::RecoveryPass() {
  const rlscommon::TimePoint now = clock_->Now();
  for (const TargetPtr& state : SnapshotTargets()) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      const bool owed = !state->healthy || state->needs_full_resend;
      if (!owed || now < state->backoff_until) continue;
    }
    Status s = SendCompleteUpdate(state.get(), /*recovery=*/true);
    if (!s.ok()) {
      RLS_WARN("update") << lrc_url_ << " recovery resend to "
                         << state->target.address << " failed: " << s.ToString();
    }
  }
}

void UpdateManager::SchedulerLoop() {
  auto last_full = std::chrono::steady_clock::now();
  auto last_immediate = last_full;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(scheduler_mu_);
      scheduler_cv_.wait_for(lock, std::chrono::milliseconds(50),
                             [this] { return !running_; });
      if (!running_) return;
    }
    const auto now = std::chrono::steady_clock::now();

    if (config_.full_interval.count() > 0 && now - last_full >= config_.full_interval) {
      last_full = now;
      Status s = ForceFullUpdate();
      if (!s.ok()) RLS_WARN("update") << lrc_url_ << " full update failed: " << s.ToString();
    }

    if (config_.mode == UpdateMode::kImmediate) {
      bool due;
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        due = pending_count_ >= config_.immediate_max_pending ||
              (pending_count_ > 0 &&
               now - last_immediate >= config_.immediate_interval);
      }
      if (due) {
        last_immediate = now;
        Status s = FlushImmediate();
        if (!s.ok()) {
          RLS_WARN("update") << lrc_url_ << " incremental update failed: " << s.ToString();
        }
      }
    }

    // Targets that failed a send owe the RLI a complete resend once
    // their backoff expires — the paper's reconvergence-after-restart
    // behavior, with no manual intervention.
    RecoveryPass();
  }
}

}  // namespace rls
