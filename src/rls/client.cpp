#include "rls/client.h"

namespace rls {

using rlscommon::Status;

namespace {

net::ClientOptions ToRpcOptions(const ClientConfig& config) {
  net::ClientOptions options;
  options.credential = config.credential;
  options.link = config.link;
  options.identity = config.identity;
  options.call_timeout = config.call_timeout;
  options.retry = config.retry;
  options.retry_seed = config.retry_seed;
  options.metrics = config.metrics;
  return options;
}

}  // namespace

Status LrcClient::Connect(net::Transport* network, const std::string& address,
                          const ClientConfig& config, std::unique_ptr<LrcClient>* out) {
  std::unique_ptr<net::RpcClient> rpc;
  Status s = net::RpcClient::Connect(network, address, ToRpcOptions(config), &rpc);
  if (!s.ok()) return s;
  out->reset(new LrcClient(std::move(rpc)));
  return Status::Ok();
}

Status LrcClient::MappingOp(uint16_t opcode, const std::string& logical,
                            const std::string& target) {
  MappingRequest req;
  req.mappings.push_back(Mapping{logical, target});
  std::string payload, response;
  req.Encode(&payload);
  return rpc_->Call(opcode, payload, &response);
}

Status LrcClient::Create(const std::string& logical, const std::string& target) {
  return MappingOp(kLrcCreate, logical, target);
}

Status LrcClient::Add(const std::string& logical, const std::string& target) {
  return MappingOp(kLrcAdd, logical, target);
}

Status LrcClient::Delete(const std::string& logical, const std::string& target) {
  return MappingOp(kLrcDelete, logical, target);
}

Status LrcClient::BulkMappingOp(uint16_t opcode, const std::vector<Mapping>& mappings,
                                BulkStatusResponse* result) {
  MappingRequest req;
  req.mappings = mappings;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(opcode, payload, &response);
  if (!s.ok()) return s;
  return BulkStatusResponse::Decode(response, result);
}

Status LrcClient::BulkCreate(const std::vector<Mapping>& mappings,
                             BulkStatusResponse* result) {
  return BulkMappingOp(kLrcBulkCreate, mappings, result);
}

Status LrcClient::BulkAdd(const std::vector<Mapping>& mappings,
                          BulkStatusResponse* result) {
  return BulkMappingOp(kLrcBulkAdd, mappings, result);
}

Status LrcClient::BulkDelete(const std::vector<Mapping>& mappings,
                             BulkStatusResponse* result) {
  return BulkMappingOp(kLrcBulkDelete, mappings, result);
}

Status LrcClient::Query(const std::string& logical, std::vector<std::string>* targets,
                        uint32_t offset, uint32_t limit) {
  NameQueryRequest req;
  req.name = logical;
  req.offset = offset;
  req.limit = limit;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(kLrcQueryLfn, payload, &response);
  if (!s.ok()) return s;
  StringListResponse result;
  s = StringListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *targets = std::move(result.values);
  return Status::Ok();
}

Status LrcClient::QueryTarget(const std::string& target,
                              std::vector<std::string>* logicals, uint32_t offset,
                              uint32_t limit) {
  NameQueryRequest req;
  req.name = target;
  req.offset = offset;
  req.limit = limit;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(kLrcQueryPfn, payload, &response);
  if (!s.ok()) return s;
  StringListResponse result;
  s = StringListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *logicals = std::move(result.values);
  return Status::Ok();
}

Status LrcClient::BulkQuery(const std::vector<std::string>& logicals,
                            std::vector<Mapping>* mappings) {
  BulkQueryRequest req;
  req.names = logicals;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(kLrcBulkQueryLfn, payload, &response);
  if (!s.ok()) return s;
  MappingListResponse result;
  s = MappingListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *mappings = std::move(result.mappings);
  return Status::Ok();
}

Status LrcClient::WildcardQuery(const std::string& pattern, uint32_t limit,
                                std::vector<Mapping>* mappings, uint32_t offset) {
  NameQueryRequest req;
  req.name = pattern;
  req.offset = offset;
  req.limit = limit;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(kLrcWildcardQueryLfn, payload, &response);
  if (!s.ok()) return s;
  MappingListResponse result;
  s = MappingListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *mappings = std::move(result.mappings);
  return Status::Ok();
}

Status LrcClient::Exists(const std::string& logical) {
  NameQueryRequest req;
  req.name = logical;
  std::string payload, response;
  req.Encode(&payload);
  return rpc_->Call(kLrcExists, payload, &response);
}

Status LrcClient::AttributeDefine(const std::string& name, AttrObject object,
                                  AttrType type) {
  AttrDefineRequest req{name, object, type};
  std::string payload, response;
  req.Encode(&payload);
  return rpc_->Call(kLrcAttrDefine, payload, &response);
}

Status LrcClient::AttributeUndefine(const std::string& name, AttrObject object) {
  AttrDefineRequest req{name, object, AttrType::kString};
  std::string payload, response;
  req.Encode(&payload);
  return rpc_->Call(kLrcAttrUndefine, payload, &response);
}

Status LrcClient::AttrValueOp(uint16_t opcode, const std::string& object_name,
                              const std::string& attr_name, AttrObject object,
                              const AttrValue& value) {
  AttrValueRequest req;
  req.object_name = object_name;
  req.attr_name = attr_name;
  req.object = object;
  req.value = value;
  std::string payload, response;
  req.Encode(&payload);
  return rpc_->Call(opcode, payload, &response);
}

Status LrcClient::AttributeAdd(const std::string& object_name,
                               const std::string& attr_name, AttrObject object,
                               const AttrValue& value) {
  return AttrValueOp(kLrcAttrAdd, object_name, attr_name, object, value);
}

Status LrcClient::AttributeModify(const std::string& object_name,
                                  const std::string& attr_name, AttrObject object,
                                  const AttrValue& value) {
  return AttrValueOp(kLrcAttrModify, object_name, attr_name, object, value);
}

Status LrcClient::AttributeDelete(const std::string& object_name,
                                  const std::string& attr_name, AttrObject object) {
  return AttrValueOp(kLrcAttrDelete, object_name, attr_name, object, AttrValue());
}

Status LrcClient::AttributeQuery(const std::string& object_name, AttrObject object,
                                 std::vector<Attribute>* attributes) {
  AttrValueRequest req;
  req.object_name = object_name;
  req.object = object;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(kLrcAttrQueryObj, payload, &response);
  if (!s.ok()) return s;
  AttrListResponse result;
  s = AttrListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *attributes = std::move(result.attributes);
  return Status::Ok();
}

Status LrcClient::AttributeSearch(const std::string& attr_name, AttrObject object,
                                  AttrCmp cmp, const AttrValue& value,
                                  std::vector<Attribute>* results) {
  AttrSearchRequest req;
  req.attr_name = attr_name;
  req.object = object;
  req.cmp = cmp;
  req.value = value;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(kLrcAttrSearch, payload, &response);
  if (!s.ok()) return s;
  AttrListResponse result;
  s = AttrListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *results = std::move(result.attributes);
  return Status::Ok();
}

Status LrcClient::BulkAttrOp(uint16_t opcode, const std::vector<AttrValueRequest>& items,
                             BulkStatusResponse* result) {
  BulkAttrRequest req;
  req.items = items;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(opcode, payload, &response);
  if (!s.ok()) return s;
  return BulkStatusResponse::Decode(response, result);
}

Status LrcClient::BulkAttributeAdd(const std::vector<AttrValueRequest>& items,
                                   BulkStatusResponse* result) {
  return BulkAttrOp(kLrcBulkAttrAdd, items, result);
}

Status LrcClient::BulkAttributeDelete(const std::vector<AttrValueRequest>& items,
                                      BulkStatusResponse* result) {
  return BulkAttrOp(kLrcBulkAttrDelete, items, result);
}

Status LrcClient::RliList(std::vector<std::string>* rlis) {
  std::string response;
  Status s = rpc_->Call(kLrcRliList, "", &response);
  if (!s.ok()) return s;
  StringListResponse result;
  s = StringListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *rlis = std::move(result.values);
  return Status::Ok();
}

Status LrcClient::RliAdd(const std::string& rli_address) {
  NameQueryRequest req;
  req.name = rli_address;
  std::string payload, response;
  req.Encode(&payload);
  return rpc_->Call(kLrcRliAdd, payload, &response);
}

Status LrcClient::RliRemove(const std::string& rli_address) {
  NameQueryRequest req;
  req.name = rli_address;
  std::string payload, response;
  req.Encode(&payload);
  return rpc_->Call(kLrcRliRemove, payload, &response);
}

Status LrcClient::ForceUpdate() {
  std::string response;
  return rpc_->Call(kLrcForceUpdate, "", &response);
}

Status LrcClient::Ping() {
  std::string response;
  return rpc_->Call(kPing, "", &response);
}

Status LrcClient::Stats(ServerStats* stats) {
  std::string response;
  Status s = rpc_->Call(kServerStats, "", &response);
  if (!s.ok()) return s;
  return DecodeStats(response, stats);
}

Status LrcClient::Metrics(MetricsResponse* metrics) {
  std::string response;
  Status s = rpc_->Call(kServerMetrics, "", &response);
  if (!s.ok()) return s;
  return MetricsResponse::Decode(response, metrics);
}

Status LrcClient::GetStats(GetStatsResponse* stats) {
  std::string response;
  Status s = rpc_->Call(kServerGetStats, "", &response);
  if (!s.ok()) return s;
  return GetStatsResponse::Decode(response, stats);
}

Status LrcClient::GetTraces(const GetTracesRequest& filter,
                            GetTracesResponse* traces) {
  std::string request, response;
  filter.Encode(&request);
  Status s = rpc_->Call(kServerGetTraces, request, &response);
  if (!s.ok()) return s;
  return GetTracesResponse::Decode(response, traces);
}

Status RliClient::Connect(net::Transport* network, const std::string& address,
                          const ClientConfig& config, std::unique_ptr<RliClient>* out) {
  std::unique_ptr<net::RpcClient> rpc;
  Status s = net::RpcClient::Connect(network, address, ToRpcOptions(config), &rpc);
  if (!s.ok()) return s;
  out->reset(new RliClient(std::move(rpc)));
  return Status::Ok();
}

Status RliClient::Query(const std::string& logical, std::vector<std::string>* lrcs) {
  NameQueryRequest req;
  req.name = logical;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(kRliQueryLfn, payload, &response);
  if (!s.ok()) return s;
  StringListResponse result;
  s = StringListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *lrcs = std::move(result.values);
  return Status::Ok();
}

Status RliClient::BulkQuery(const std::vector<std::string>& logicals,
                            std::vector<Mapping>* results) {
  BulkQueryRequest req;
  req.names = logicals;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(kRliBulkQuery, payload, &response);
  if (!s.ok()) return s;
  MappingListResponse result;
  s = MappingListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *results = std::move(result.mappings);
  return Status::Ok();
}

Status RliClient::WildcardQuery(const std::string& pattern, uint32_t limit,
                                std::vector<Mapping>* results) {
  NameQueryRequest req;
  req.name = pattern;
  req.limit = limit;
  std::string payload, response;
  req.Encode(&payload);
  Status s = rpc_->Call(kRliWildcardQuery, payload, &response);
  if (!s.ok()) return s;
  MappingListResponse result;
  s = MappingListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *results = std::move(result.mappings);
  return Status::Ok();
}

Status RliClient::LrcList(std::vector<std::string>* lrcs) {
  std::string response;
  Status s = rpc_->Call(kRliLrcList, "", &response);
  if (!s.ok()) return s;
  StringListResponse result;
  s = StringListResponse::Decode(response, &result);
  if (!s.ok()) return s;
  *lrcs = std::move(result.values);
  return Status::Ok();
}

Status RliClient::Ping() {
  std::string response;
  return rpc_->Call(kPing, "", &response);
}

Status RliClient::Stats(ServerStats* stats) {
  std::string response;
  Status s = rpc_->Call(kServerStats, "", &response);
  if (!s.ok()) return s;
  return DecodeStats(response, stats);
}

Status RliClient::GetStats(GetStatsResponse* stats) {
  std::string response;
  Status s = rpc_->Call(kServerGetStats, "", &response);
  if (!s.ok()) return s;
  return GetStatsResponse::Decode(response, stats);
}

Status RliClient::GetTraces(const GetTracesRequest& filter,
                            GetTracesResponse* traces) {
  std::string request, response;
  filter.Encode(&request);
  Status s = rpc_->Call(kServerGetTraces, request, &response);
  if (!s.ok()) return s;
  return GetTracesResponse::Decode(response, traces);
}

}  // namespace rls
