#include "rls/locator.h"

#include <algorithm>
#include <set>

namespace rls {

using rlscommon::ErrorCode;
using rlscommon::Status;

ReplicaLocator::ReplicaLocator(net::Transport* network,
                               std::vector<std::string> rli_addresses,
                               ClientConfig client_config)
    : network_(network),
      rli_addresses_(std::move(rli_addresses)),
      client_config_(std::move(client_config)) {}

Status ReplicaLocator::RliFor(const std::string& address, RliClient** out) {
  auto it = rlis_.find(address);
  if (it == rlis_.end()) {
    std::unique_ptr<RliClient> client;
    Status s = RliClient::Connect(network_, address, client_config_, &client);
    if (!s.ok()) return s;
    ++counters_.reconnects;
    it = rlis_.emplace(address, std::move(client)).first;
  }
  *out = it->second.get();
  return Status::Ok();
}

Status ReplicaLocator::LrcFor(const std::string& address, LrcClient** out) {
  auto it = lrcs_.find(address);
  if (it == lrcs_.end()) {
    std::unique_ptr<LrcClient> client;
    Status s = LrcClient::Connect(network_, address, client_config_, &client);
    if (!s.ok()) return s;
    ++counters_.reconnects;
    it = lrcs_.emplace(address, std::move(client)).first;
  }
  *out = it->second.get();
  return Status::Ok();
}

Status ReplicaLocator::Locate(const std::string& logical,
                              std::vector<std::string>* replicas) {
  replicas->clear();
  std::set<std::string> candidate_lrcs;
  for (const std::string& address : rli_addresses_) {
    RliClient* rli = nullptr;
    if (!RliFor(address, &rli).ok()) continue;  // RLI down: try the next
    std::vector<std::string> owners;
    ++counters_.rli_queries;
    Status s = rli->Query(logical, &owners);
    if (s.ok()) {
      candidate_lrcs.insert(owners.begin(), owners.end());
    } else if (s.code() == ErrorCode::kUnavailable) {
      rlis_.erase(address);  // reconnect next time
    }
  }
  if (candidate_lrcs.empty()) {
    return Status::NotFound("no RLI knows logical name: " + logical);
  }

  // The LRCs are authoritative: confirm or drop every candidate.
  std::set<std::string> confirmed;
  for (const std::string& address : candidate_lrcs) {
    LrcClient* lrc = nullptr;
    if (!LrcFor(address, &lrc).ok()) continue;
    std::vector<std::string> targets;
    ++counters_.lrc_queries;
    Status s = lrc->Query(logical, &targets);
    if (s.ok()) {
      confirmed.insert(targets.begin(), targets.end());
    } else if (s.code() == ErrorCode::kNotFound) {
      ++counters_.stale_pointers;  // stale soft state or Bloom FP
    } else if (s.code() == ErrorCode::kUnavailable) {
      lrcs_.erase(address);
    }
  }
  if (confirmed.empty()) {
    return Status::NotFound("no LRC confirms replicas for: " + logical);
  }
  replicas->assign(confirmed.begin(), confirmed.end());
  return Status::Ok();
}

Status ReplicaLocator::LocateBulk(
    const std::vector<std::string>& logicals,
    std::map<std::string, std::vector<std::string>>* out) {
  out->clear();
  // Pass 1: candidate LRC sets per name, via bulk RLI queries.
  std::map<std::string, std::set<std::string>> candidates;
  for (const std::string& address : rli_addresses_) {
    RliClient* rli = nullptr;
    if (!RliFor(address, &rli).ok()) continue;
    std::vector<Mapping> results;
    ++counters_.rli_queries;
    Status s = rli->BulkQuery(logicals, &results);
    if (!s.ok()) {
      if (s.code() == ErrorCode::kUnavailable) rlis_.erase(address);
      continue;
    }
    for (const Mapping& m : results) candidates[m.logical].insert(m.target);
  }

  // Pass 2: group names by LRC and confirm with bulk LRC queries.
  std::map<std::string, std::vector<std::string>> per_lrc;
  for (const auto& [logical, lrc_set] : candidates) {
    for (const std::string& lrc : lrc_set) per_lrc[lrc].push_back(logical);
  }
  for (const auto& [address, names] : per_lrc) {
    LrcClient* lrc = nullptr;
    if (!LrcFor(address, &lrc).ok()) continue;
    std::vector<Mapping> mappings;
    ++counters_.lrc_queries;
    Status s = lrc->BulkQuery(names, &mappings);
    if (!s.ok()) {
      if (s.code() == ErrorCode::kUnavailable) lrcs_.erase(address);
      continue;
    }
    std::set<std::string> answered;
    for (const Mapping& m : mappings) {
      std::vector<std::string>& replicas = (*out)[m.logical];
      if (std::find(replicas.begin(), replicas.end(), m.target) == replicas.end()) {
        replicas.push_back(m.target);
      }
      answered.insert(m.logical);
    }
    counters_.stale_pointers += names.size() - answered.size();
  }
  return Status::Ok();
}

}  // namespace rls
