// The common LRC/RLI server (paper §3.1: "our implementation consists of
// a common server that can be configured as an LRC, an RLI or both").
//
// The server owns:
//   * an LrcStore (LRC role) over the configured DSN, plus an
//     UpdateManager sending soft-state updates to its RLIs;
//   * an RliRelationalStore (RLI role, uncompressed updates) and/or an
//     RliBloomStore (RLI role, compressed updates) plus an expire thread
//     discarding soft state older than the timeout (§3.2);
//   * a gsi::AuthManager enforcing per-operation ACLs (§3.1);
//   * optional parent RLIs for hierarchical RLI->RLI forwarding (the
//     "hierarchy of RLI servers" of §7, Ongoing Work).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "common/histogram.h"
#include "common/thread_pool.h"
#include "dbapi/dbapi.h"
#include "gsi/gsi.h"
#include "net/rpc.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "rls/admission.h"
#include "rls/lrc_store.h"
#include "rls/protocol.h"
#include "rls/rli_store.h"
#include "rls/update_manager.h"

namespace rls {

struct RliRoleConfig {
  bool enabled = false;
  /// DSN of the relational store for uncompressed updates. Empty =
  /// Bloom-only RLI (no database — paper §3.4).
  std::string dsn;
  /// Accept Bloom updates into the in-memory store.
  bool accept_bloom = true;
  /// Soft state older than this is discarded (0 = never expires).
  std::chrono::seconds timeout{0};
  /// Expire thread wake-up period.
  std::chrono::milliseconds expire_poll{500};
  /// Parent RLIs to forward received updates to (hierarchical mode).
  std::vector<UpdateTarget> parents;
};

struct LrcRoleConfig {
  bool enabled = false;
  std::string dsn;
  UpdateConfig update;
  /// Crash-safe WAL profile for the LRC database: framed checksummed
  /// records, checkpoint-at-wrap, open-time replay (config key
  /// `wal_recovery`). Off = the legacy bytes-only flush model.
  bool wal_recovery = false;
  /// WAL group commit (config key `wal_group_commit`): concurrent
  /// committers share one fdatasync + one modeled-disk penalty per
  /// batch instead of paying one each. Orthogonal to wal_recovery.
  bool wal_group_commit = false;
  /// Batch-size cap for group commit; 0 = engine default (64).
  std::size_t wal_group_max_commits = 0;
  /// Leader linger for the batch to fill (config key
  /// `wal_group_max_wait_us`); 0 = sync as soon as the leader drains.
  std::chrono::microseconds wal_group_max_wait{0};
};

struct ObsConfig {
  /// JSONL metrics export target; empty = exporter disabled.
  std::string export_path;
  std::chrono::milliseconds export_period{1000};
  /// Spans slower than this log at WARN with hop timing (0 = disabled).
  /// Process-wide setting, applied at Start().
  std::chrono::microseconds slow_span_threshold{0};
  /// Capacity of the process-wide span recorder ring (flight recorder).
  /// 0 = leave the recorder in its current state (off by default).
  /// Process-wide setting, applied at Start().
  std::size_t trace_capacity = 0;
};

struct RlsServerConfig {
  std::string address;        // transport listen address
  std::string url;            // identity in soft-state updates; default address
  LrcRoleConfig lrc;
  RliRoleConfig rli;
  ObsConfig obs;
  gsi::AuthManager auth = gsi::AuthManager::Open();

  /// Overload protection (admission, rate limits, bounded queues).
  /// Default-constructed = disabled, the pre-overload behavior.
  ServerLimits limits;
};

class RlsServer {
 public:
  RlsServer(net::Transport* network, RlsServerConfig config,
            dbapi::Environment* env = &dbapi::Environment::Global(),
            rlscommon::Clock* clock = rlscommon::SystemClock::Instance());
  ~RlsServer();

  RlsServer(const RlsServer&) = delete;
  RlsServer& operator=(const RlsServer&) = delete;

  /// Creates stores (the DSNs must already be registered in the
  /// environment), starts the RPC server and background threads.
  rlscommon::Status Start();
  void Stop();

  const std::string& url() const { return config_.url; }
  const std::string& address() const { return config_.address; }

  /// Direct access for tests, benches and the update machinery.
  LrcStore* lrc_store() { return lrc_store_.get(); }
  RliRelationalStore* rli_relational() { return rli_relational_.get(); }
  RliBloomStore* rli_bloom() { return rli_bloom_.get(); }
  UpdateManager* update_manager() { return update_manager_.get(); }

  ServerStats Stats() const;

  /// Per-operation-family latency histograms (monitoring).
  MetricsResponse Metrics() const;

  /// Full introspection snapshot (what kServerGetStats serves).
  GetStatsResponse GetStatsSnapshot() const;

  /// The server's metrics registry (tests, exporters).
  obs::Registry* metrics_registry() { return &registry_; }

  /// Role string for introspection ("lrc", "rli", "lrc+rli").
  std::string role() const;

  /// Runs one expiration round immediately (tests drive this instead of
  /// waiting for the expire thread).
  void ExpireNow();

 private:
  rlscommon::Status Handle(const gsi::AuthContext& auth, uint16_t opcode,
                           const std::string& request, std::string* response);
  rlscommon::Status Dispatch(const gsi::AuthContext& auth, uint16_t opcode,
                             const std::string& request, std::string* response);

  rlscommon::Status HandleLrc(const gsi::AuthContext& auth, uint16_t opcode,
                              const std::string& request, std::string* response);
  rlscommon::Status HandleRli(const gsi::AuthContext& auth, uint16_t opcode,
                              const std::string& request, std::string* response);
  rlscommon::Status HandleSoftState(const gsi::AuthContext& auth, uint16_t opcode,
                                    const std::string& request, std::string* response);

  void ForwardToParents(uint16_t opcode, const std::string& request);
  void ExpireLoop();
  std::string RenderStatsJson() const;
  void RegisterGauges();
  void UnregisterGauges();

  // Declared first so it outlives every component holding instrument
  // pointers into it (members destroy in reverse declaration order).
  obs::Registry registry_;

  net::Transport* network_;
  RlsServerConfig config_;
  dbapi::Environment* env_;
  rlscommon::Clock* clock_;

  std::unique_ptr<LrcStore> lrc_store_;
  std::unique_ptr<RliRelationalStore> rli_relational_;
  std::unique_ptr<RliBloomStore> rli_bloom_;
  std::unique_ptr<UpdateManager> update_manager_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<net::RpcServer> rpc_server_;

  // Small worker pool for monitoring-side tasks (JSONL export); its
  // instruments are bound into the registry.
  std::unique_ptr<rlscommon::ThreadPool> worker_pool_;
  std::unique_ptr<obs::JsonlExporter> exporter_;

  // Parent forwarding clients (hierarchical RLI).
  std::mutex parents_mu_;
  std::vector<std::pair<UpdateTarget, std::unique_ptr<net::RpcClient>>> parents_;

  // Registry instruments (owned by registry_).
  obs::Counter* rli_updates_received_ = nullptr;
  obs::Counter* rli_expired_entries_ = nullptr;
  obs::Histogram* ss_receive_lag_ = nullptr;

  // Trace id of the last soft-state update this server received.
  std::atomic<uint64_t> last_update_trace_id_{0};
  rlscommon::TimePoint start_time_{};

  // Service-time histograms per operation family (registry-owned).
  obs::Histogram* lrc_read_latency_ = nullptr;
  obs::Histogram* lrc_write_latency_ = nullptr;
  obs::Histogram* rli_query_latency_ = nullptr;
  obs::Histogram* soft_state_latency_ = nullptr;

  std::mutex expire_mu_;
  std::condition_variable expire_cv_;
  std::thread expire_thread_;
  bool running_ = false;
};

}  // namespace rls
