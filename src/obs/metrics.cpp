#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace obs {

std::string Label(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(key.size() + value.size() + 3);
  out.append(key);
  out.append("=\"");
  out.append(value);
  out.append("\"");
  return out;
}

Counter* Registry::GetCounter(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[{name, labels}];
  if (!inst.counter) {
    inst.kind = MetricKind::kCounter;
    inst.counter = std::make_unique<Counter>();
  }
  return inst.counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[{name, labels}];
  if (!inst.gauge) {
    inst.kind = MetricKind::kGauge;
    inst.gauge = std::make_unique<Gauge>();
  }
  return inst.gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[{name, labels}];
  if (!inst.histogram) {
    inst.kind = MetricKind::kHistogram;
    inst.histogram = std::make_unique<Histogram>();
  }
  return inst.histogram.get();
}

void Registry::RegisterCallback(const std::string& name, const std::string& labels,
                                std::function<double()> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = instruments_[{name, labels}];
  inst.kind = MetricKind::kGauge;
  inst.callback = std::move(callback);
}

void Registry::UnregisterCallback(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find({name, labels});
  if (it != instruments_.end() && it->second.callback) instruments_.erase(it);
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.samples.reserve(instruments_.size());
  for (const auto& [key, inst] : instruments_) {
    Sample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.kind = inst.kind;
    if (inst.callback) {
      sample.value = inst.callback();
    } else if (inst.counter) {
      sample.value = static_cast<double>(inst.counter->Value());
    } else if (inst.gauge) {
      sample.value = static_cast<double>(inst.gauge->Value());
    } else if (inst.histogram) {
      sample.hist = inst.histogram->GetSnapshot();
      sample.exemplar_us = inst.histogram->exemplar_us();
      sample.exemplar_trace = inst.histogram->exemplar_trace();
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

namespace {

/// %g-style rendering without trailing noise; integral values print
/// without a fractional part so golden outputs are stable.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string Series(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

}  // namespace

std::string Registry::RenderPrometheus() const {
  Snapshot snapshot = TakeSnapshot();
  std::string out;
  for (const Sample& s : snapshot.samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += Series(s.name, s.labels) + " " + FormatValue(s.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        const auto& h = s.hist;
        out += Series(s.name + "_count", s.labels) + " " +
               std::to_string(h.count) + "\n";
        out += Series(s.name + "_mean", s.labels) + " " + FormatValue(h.mean_us) + "\n";
        out += Series(s.name + "_p50", s.labels) + " " + std::to_string(h.p50_us) + "\n";
        out += Series(s.name + "_p95", s.labels) + " " + std::to_string(h.p95_us) + "\n";
        out += Series(s.name + "_p99", s.labels) + " " + std::to_string(h.p99_us) + "\n";
        out += Series(s.name + "_p999", s.labels) + " " + std::to_string(h.p999_us) + "\n";
        out += Series(s.name + "_max", s.labels) + " " + std::to_string(h.max_us) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::RenderJson(const std::string& extra) const {
  Snapshot snapshot = TakeSnapshot();
  std::string out = "{";
  if (!extra.empty()) {
    out += extra;
    out += ", ";
  }
  out += "\"metrics\": [";
  bool first = true;
  for (const Sample& s : snapshot.samples) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + s.name + "\"";
    if (!s.labels.empty()) {
      std::string escaped;
      for (char c : s.labels) {
        if (c == '"') escaped += '\\';
        escaped += c;
      }
      out += ", \"labels\": \"" + escaped + "\"";
    }
    if (s.kind == MetricKind::kHistogram) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ", \"count\": %" PRIu64 ", \"mean_us\": %g, \"p50_us\": %" PRIu64
                    ", \"p95_us\": %" PRIu64 ", \"p99_us\": %" PRIu64
                    ", \"p999_us\": %" PRIu64 ", \"max_us\": %" PRIu64,
                    s.hist.count, s.hist.mean_us, s.hist.p50_us, s.hist.p95_us,
                    s.hist.p99_us, s.hist.p999_us, s.hist.max_us);
      out += buf;
      // Exemplar of the slowest sample, when one was offered — the
      // trace id a reader feeds to GetTraces. Histogram JSON only; the
      // Prometheus exposition is unchanged.
      if (s.exemplar_trace != 0) {
        std::snprintf(buf, sizeof(buf),
                      ", \"exemplar_us\": %" PRIu64
                      ", \"exemplar_trace\": \"%016" PRIx64 "\"",
                      s.exemplar_us, s.exemplar_trace);
        out += buf;
      }
      out += "}";
    } else {
      out += ", \"value\": " + FormatValue(s.value) + "}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace obs
