// Periodic JSONL snapshot exporter (tentpole part 3, exporter half).
//
// Appends one JSON line per period to a configured path so the bench
// harness (and any external tooling) can record server-side metrics
// alongside client-side rates. The render callback produces the line;
// when a ThreadPool is supplied the write runs as a pool task, so the
// pool's queue/latency instruments see real traffic.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/thread_pool.h"

namespace obs {

class JsonlExporter {
 public:
  struct Options {
    std::string path;                          // empty = exporter disabled
    std::chrono::milliseconds period{1000};
  };

  /// `render_line` is called once per period (and once on Stop) from the
  /// exporter thread or `pool`; its result is appended as one line.
  JsonlExporter(Options options, std::function<std::string()> render_line,
                rlscommon::ThreadPool* pool = nullptr);
  ~JsonlExporter();

  JsonlExporter(const JsonlExporter&) = delete;
  JsonlExporter& operator=(const JsonlExporter&) = delete;

  /// No-op (Ok) when no path is configured.
  rlscommon::Status Start();

  /// Writes one final snapshot, then joins the exporter thread.
  void Stop();

  /// Renders and appends one line immediately (also used by tests).
  rlscommon::Status ExportNow();

  uint64_t lines_written() const { return lines_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  rlscommon::Status Append(const std::string& line);

  Options options_;
  std::function<std::string()> render_line_;
  rlscommon::ThreadPool* pool_;

  std::atomic<uint64_t> lines_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace obs
