// Flight recorder for completed spans.
//
// A bounded per-process ring buffer capturing every completed obs::Span:
// component, name, trace/span ids, thread, start time, duration, and the
// named hop timestamps that decompose the span into stages. When the
// ring wraps, the oldest span is overwritten and a dropped counter
// ticks — drops are visible, never silent. A per-(component, name)
// top-K slow log survives wrap-around so the worst requests of a storm
// can still be fetched minutes later.
//
// The recorder is process-global (SpanRecorder::Global()) because spans
// complete on arbitrary threads deep inside layers that have no handle
// to a server. Disabled (the default), a completed span costs one
// relaxed atomic load. Enabled, a global sequence counter assigns each
// span a slot round-robin across kShards independently-locked sub-rings,
// so concurrent workers almost never contend on the same mutex; because
// the shard is seq % kShards and every shard has the same capacity, the
// sharded ring evicts in exactly global FIFO order and Query() can
// reconstruct newest-first order from the stored sequence numbers.
// Query() and ExportChromeTrace() lock all shards — monitoring paths,
// not hot ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"

namespace obs {

/// One finished span as the recorder stores it. Hop times are offsets
/// from the span start, in microseconds, in stamp order.
struct CompletedSpan {
  std::string component;
  std::string name;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint32_t tid = 0;
  int64_t start_us = 0;  // process steady clock, microseconds
  uint64_t duration_us = 0;
  std::vector<std::pair<std::string, uint64_t>> hops;
};

/// Query filter; zero/empty fields match everything.
struct TraceFilter {
  uint64_t trace_id = 0;
  std::string name;       // exact span name, e.g. the rpc method
  std::string component;  // exact component, e.g. "rpc", "update"
  uint64_t min_duration_us = 0;
  uint32_t limit = 0;     // 0 = unlimited
  bool slow_log = false;  // query the top-K slow log instead of the ring
};

class SpanRecorder {
 public:
  /// The process-wide recorder all spans report to.
  static SpanRecorder& Global();

  SpanRecorder() = default;
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Starts capturing with a ring of `capacity` spans (clamped to >= 8
  /// and rounded up to a multiple of kShards). Re-enabling with a
  /// different capacity resizes and clears the ring.
  void Enable(std::size_t capacity);

  /// Stops capturing; the captured spans stay queryable.
  void Disable();

  /// Drops all captured spans and counters (tests; keeps enabled state).
  void Clear();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one completed span; overwrites the oldest when full.
  /// No-op while disabled.
  void Record(CompletedSpan span);

  /// Matching spans, newest first.
  std::vector<CompletedSpan> Query(const TraceFilter& filter) const;

  struct Stats {
    uint64_t depth = 0;     // spans currently held in the ring
    uint64_t capacity = 0;  // ring capacity
    uint64_t recorded = 0;  // spans recorded since Enable/Clear
    uint64_t dropped = 0;   // spans overwritten by wrap-around
  };
  Stats GetStats() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}): one complete
  /// ("X") event per span plus one child slice per stage (the interval
  /// between consecutive hops), loadable in Perfetto / chrome://tracing.
  std::string RenderChromeTrace() const;

  /// RenderChromeTrace() to a file (truncates).
  rlscommon::Status ExportChromeTrace(const std::string& path) const;

  /// Spans kept per (component, name) slow-log bucket.
  static constexpr std::size_t kSlowLogPerKey = 8;

  /// Independently-locked sub-rings the capacity is split across.
  static constexpr std::size_t kShards = 8;

 private:
  /// Sentinel for a ring slot that has never been written.
  static constexpr uint64_t kEmptySlot = ~uint64_t{0};

  struct Shard {
    mutable std::mutex mu;
    std::vector<CompletedSpan> ring;  // slot = (seq / kShards) % ring.size()
    std::vector<uint64_t> seqs;       // global sequence per slot, kEmptySlot if none
    uint64_t written = 0;             // spans written since Enable/Clear
    uint64_t dropped = 0;             // spans this shard overwrote
    // Top-K slowest per "component:name", sorted slowest-first. Kept per
    // shard so Record() never takes a global lock; Query() re-merges.
    std::map<std::string, std::vector<CompletedSpan>> slow_log;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_{0};  // global sequence; shard = seq % kShards
  Shard shards_[kShards];
};

}  // namespace obs
