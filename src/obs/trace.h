// RPC trace propagation (tentpole part 2).
//
// A 64-bit trace id is generated at the client edge (net::RpcClient
// stamps one on every call that has no ambient context), carried in the
// RPC frame header, and installed as the thread-local context while a
// server handles the request. Every log line emitted under a context
// carries "trace=<id>", and soft-state update hops re-stamp the same id,
// so one LRC add can be followed through WAL write, update batching and
// RLI ingest.
//
// Span measures one hop; hops within a span record named intermediate
// timestamps. A span slower than the configured threshold logs at WARN
// with its full hop timing.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/trace_context.h"

namespace obs {

using rlscommon::CurrentTrace;
using rlscommon::SetCurrentTrace;
using rlscommon::TraceContext;

/// Process-unique, well-mixed 64-bit id (never 0).
uint64_t NewTraceId();

/// Formats an id the way log lines and tools render it (16 hex digits).
std::string TraceIdToString(uint64_t id);

/// Installs a context on the calling thread, restoring the previous one
/// on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceContext context) : saved_(CurrentTrace()) {
    SetCurrentTrace(context);
  }
  /// Starts a fresh root trace.
  ScopedTrace() : ScopedTrace(TraceContext{NewTraceId(), NewTraceId()}) {}
  ~ScopedTrace() { SetCurrentTrace(saved_); }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceContext saved_;
};

/// Spans slower than this log at WARN with their hop timing
/// (0 disables). Process-wide; default 0.
void SetSlowSpanThreshold(std::chrono::microseconds threshold);
std::chrono::microseconds GetSlowSpanThreshold();

/// One timed hop under the current trace context. Cheap when below the
/// slow threshold: two clock reads and (if any) a small vector.
class Span {
 public:
  /// `component` and `name` appear in the WARN line ("rli", "ss_bloom").
  Span(std::string_view component, std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Records a named intermediate timestamp ("wal_write", "db_commit").
  void Hop(std::string_view what);

  std::chrono::nanoseconds Elapsed() const;

 private:
  std::string component_;
  std::string name_;
  TraceContext context_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::chrono::nanoseconds>> hops_;
};

}  // namespace obs
