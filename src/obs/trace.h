// RPC trace propagation (tentpole part 2).
//
// A 64-bit trace id is generated at the client edge (net::RpcClient
// stamps one on every call that has no ambient context), carried in the
// RPC frame header, and installed as the thread-local context while a
// server handles the request. Every log line emitted under a context
// carries "trace=<id>", and soft-state update hops re-stamp the same id,
// so one LRC add can be followed through WAL write, update batching and
// RLI ingest.
//
// Span measures one hop; hops within a span record named intermediate
// timestamps. A span slower than the configured threshold logs at WARN
// with its full hop timing.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/trace_context.h"

namespace obs {

using rlscommon::CurrentTrace;
using rlscommon::SetCurrentTrace;
using rlscommon::TraceContext;

/// Process-unique, well-mixed 64-bit id (never 0).
uint64_t NewTraceId();

/// Formats an id the way log lines and tools render it (16 hex digits).
std::string TraceIdToString(uint64_t id);

/// Installs a context on the calling thread, restoring the previous one
/// on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceContext context) : saved_(CurrentTrace()) {
    SetCurrentTrace(context);
  }
  /// Starts a fresh root trace.
  ScopedTrace() : ScopedTrace(TraceContext{NewTraceId(), NewTraceId()}) {}
  ~ScopedTrace() { SetCurrentTrace(saved_); }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceContext saved_;
};

/// Spans slower than this log at WARN with their hop timing
/// (0 disables). Process-wide; default 0.
void SetSlowSpanThreshold(std::chrono::microseconds threshold);
std::chrono::microseconds GetSlowSpanThreshold();

/// True when completed spans go somewhere: the flight recorder is
/// enabled or the slow-span WARN threshold is set. Callers on hot paths
/// gate span construction on this (two relaxed atomic loads).
bool TracingActive();

/// One timed hop under the current trace context. On destruction the
/// span reports to the SpanRecorder (when enabled) and logs at WARN
/// (rate-limited) when slower than the slow-span threshold. While alive
/// it is the thread's ambient hop sink: rlscommon::StampHop() from any
/// lower layer stamps a named stage timestamp onto the innermost span.
class Span {
 public:
  /// `component` and `name` appear in the WARN line ("rli", "ss_bloom").
  Span(std::string_view component, std::string_view name);
  /// Starts the span at an earlier, already-recorded instant (e.g. the
  /// transport receive time) instead of now.
  Span(std::string_view component, std::string_view name,
       std::chrono::steady_clock::time_point start);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Records a named intermediate timestamp ("wal_write", "db_commit").
  void Hop(std::string_view what);
  /// Records a hop at an explicit instant (>= start; pre-recorded
  /// timestamps like the admission decision time).
  void Hop(std::string_view what, std::chrono::steady_clock::time_point at);
  /// Stamps a final hop and freezes the span's duration at that same
  /// instant: bookkeeping between End() and destruction (stage metric
  /// updates, a preemption after the reply was sent) is not billed to
  /// the request, so the stage slices tile the whole reported span.
  void End(std::string_view what);

  std::chrono::nanoseconds Elapsed() const;

  const std::vector<std::pair<std::string, std::chrono::nanoseconds>>& hops() const {
    return hops_;
  }

  /// Ambient hops (StampHop) beyond this many merge into the previous
  /// same-named hop or are dropped, so a bulk operation stamping per
  /// statement cannot grow a span without bound.
  static constexpr std::size_t kMaxAmbientHops = 64;

 private:
  static void AmbientStamp(void* span, std::string_view what);

  std::string component_;
  std::string name_;
  TraceContext context_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point end_{};  // epoch = still open
  std::vector<std::pair<std::string, std::chrono::nanoseconds>> hops_;
  rlscommon::HopSlot saved_slot_;
};

}  // namespace obs
