// Metrics registry: named, labeled counters, gauges and histograms.
//
// The paper's evaluation (§4–§6) measures the RLS from the outside; this
// registry gives every server an internal monitoring surface in the
// style of the Qserv replication registry and MDS2 (Zhang et al.): each
// component registers instruments once (under a mutex), then updates
// them on the hot path with plain atomic operations — no lock is ever
// taken on a counter increment. Snapshot() renders the whole registry as
// a structured list; RenderPrometheus() emits the text exposition format
// for scraping, and RenderJson() one JSON object for the JSONL exporter.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace obs {

/// Monotonically increasing count (requests served, bytes sent...).
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// Underlying atomic, for components (ThreadPool) that update raw
  /// atomics to stay independent of this module.
  std::atomic<uint64_t>* raw() { return &value_; }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (queue depth, resident filters...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency distribution; thin wrapper over the lock-free log-bucket
/// histogram so registry instruments share one implementation.
///
/// A histogram can carry one exemplar: the trace id of the slowest
/// sample offered so far, so a reader staring at a bad p999 has a trace
/// to pull from the flight recorder. Lock-free, racy by design (a tie
/// may keep either sample) — that is fine for an exemplar.
class Histogram {
 public:
  void Record(std::chrono::nanoseconds latency) { hist_.Record(latency); }
  void RecordMicros(uint64_t micros) { hist_.RecordMicros(micros); }
  rlscommon::LatencyHistogram::Snapshot GetSnapshot() const {
    return hist_.GetSnapshot();
  }

  /// Attaches `trace_id` as the exemplar if `micros` is the slowest
  /// sample offered so far. Does not record into the distribution.
  void OfferExemplar(uint64_t micros, uint64_t trace_id) {
    if (trace_id == 0) return;
    if (micros < exemplar_us_.load(std::memory_order_relaxed)) return;
    exemplar_us_.store(micros, std::memory_order_relaxed);
    exemplar_trace_.store(trace_id, std::memory_order_relaxed);
  }

  uint64_t exemplar_us() const {
    return exemplar_us_.load(std::memory_order_relaxed);
  }
  uint64_t exemplar_trace() const {
    return exemplar_trace_.load(std::memory_order_relaxed);
  }

  /// Underlying histogram, for components instrumented with raw
  /// LatencyHistogram pointers (ThreadPool).
  rlscommon::LatencyHistogram* raw() { return &hist_; }

 private:
  rlscommon::LatencyHistogram hist_;
  std::atomic<uint64_t> exemplar_us_{0};
  std::atomic<uint64_t> exemplar_trace_{0};
};

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One rendered instrument in a registry snapshot.
struct Sample {
  std::string name;
  std::string labels;  // rendered label list, e.g. method="lrc_add" (may be empty)
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  // counter / gauge value
  rlscommon::LatencyHistogram::Snapshot hist;  // histogram kind only
  uint64_t exemplar_us = 0;     // histogram kind only; 0 = no exemplar
  uint64_t exemplar_trace = 0;  // trace id of the slowest sample
};

struct Snapshot {
  std::vector<Sample> samples;
};

/// Renders one label pair for instrument registration: Label("method",
/// "lrc_add") -> method="lrc_add".
std::string Label(std::string_view key, std::string_view value);

/// Instrument registry. Registration (Get*/RegisterCallback) takes a
/// mutex and returns a stable pointer; repeated Get* with the same
/// name+labels returns the same instrument. Updates through the returned
/// pointers are lock-free. Snapshots iterate the instrument map under
/// the registration mutex (monitoring path, not hot).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name, const std::string& labels = "");

  /// Gauge whose value is computed at snapshot time (store sizes, queue
  /// depths). The callback must stay valid for the registry's lifetime
  /// or until UnregisterCallback(name, labels).
  void RegisterCallback(const std::string& name, const std::string& labels,
                        std::function<double()> callback);
  void UnregisterCallback(const std::string& name, const std::string& labels);

  /// All instruments, sorted by (name, labels) — deterministic.
  Snapshot TakeSnapshot() const;

  /// Prometheus text exposition of TakeSnapshot(). Histograms render
  /// their summary as _count/_mean/_p50/_p95/_p99/_max series.
  std::string RenderPrometheus() const;

  /// One JSON object {"metrics": [...]}; extra top-level fields from
  /// `extra` (pre-rendered "key": value fragments) are spliced in front.
  std::string RenderJson(const std::string& extra = "") const;

  /// Number of registered instruments (callbacks included).
  std::size_t size() const;

 private:
  struct Instrument {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;  // callback gauges
  };

  using Key = std::pair<std::string, std::string>;  // {name, labels}

  mutable std::mutex mu_;
  std::map<Key, Instrument> instruments_;
};

}  // namespace obs
