#include "obs/exporter.h"

#include <cstdio>

#include "common/logging.h"

namespace obs {

using rlscommon::Status;

JsonlExporter::JsonlExporter(Options options, std::function<std::string()> render_line,
                             rlscommon::ThreadPool* pool)
    : options_(std::move(options)), render_line_(std::move(render_line)), pool_(pool) {}

JsonlExporter::~JsonlExporter() { Stop(); }

Status JsonlExporter::Start() {
  if (options_.path.empty()) return Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::Ok();
    running_ = true;
  }
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void JsonlExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final snapshot so short-lived servers still leave a record.
  (void)ExportNow();
}

Status JsonlExporter::ExportNow() {
  if (options_.path.empty()) return Status::Ok();
  if (pool_) {
    // Route the render+write through the worker pool (and wait), so the
    // pool's instruments account for exporter traffic.
    return pool_->SubmitWithResult([this] { return Append(render_line_()); }).get();
  }
  return Append(render_line_());
}

Status JsonlExporter::Append(const std::string& line) {
  std::FILE* f = std::fopen(options_.path.c_str(), "a");
  if (!f) {
    return Status::Internal("exporter cannot open " + options_.path);
  }
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
  lines_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void JsonlExporter::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, options_.period, [this] { return !running_; });
      if (!running_) return;
    }
    Status s = ExportNow();
    if (!s.ok()) {
      RLS_WARN("obs") << "metrics export failed: " << s.ToString();
    }
  }
}

}  // namespace obs
