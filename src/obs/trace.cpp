#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/span_recorder.h"

namespace obs {

uint64_t NewTraceId() {
  // A global counter pushed through SplitMix64: process-unique, well
  // mixed, and cheaper than a per-thread PRNG for an id-per-RPC rate.
  static std::atomic<uint64_t> next{0x9e3779b97f4a7c15ULL};
  uint64_t state = next.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  uint64_t id = rlscommon::SplitMix64(state);
  return id != 0 ? id : 1;
}

std::string TraceIdToString(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

namespace {
std::atomic<int64_t> g_slow_span_us{0};
}  // namespace

void SetSlowSpanThreshold(std::chrono::microseconds threshold) {
  g_slow_span_us.store(threshold.count(), std::memory_order_relaxed);
}

std::chrono::microseconds GetSlowSpanThreshold() {
  return std::chrono::microseconds(g_slow_span_us.load(std::memory_order_relaxed));
}

bool TracingActive() {
  return SpanRecorder::Global().enabled() ||
         g_slow_span_us.load(std::memory_order_relaxed) > 0;
}

Span::Span(std::string_view component, std::string_view name)
    : Span(component, name, std::chrono::steady_clock::now()) {}

Span::Span(std::string_view component, std::string_view name,
           std::chrono::steady_clock::time_point start)
    : component_(component),
      name_(name),
      context_(CurrentTrace()),
      start_(start),
      saved_slot_(rlscommon::MutableCurrentHopSlot()) {
  hops_.reserve(8);  // the full RPC lifecycle fits; no mid-request growth
  rlscommon::MutableCurrentHopSlot() = {this, &Span::AmbientStamp};
}

std::chrono::nanoseconds Span::Elapsed() const {
  return std::chrono::steady_clock::now() - start_;
}

void Span::Hop(std::string_view what) {
  hops_.emplace_back(std::string(what), Elapsed());
}

void Span::Hop(std::string_view what, std::chrono::steady_clock::time_point at) {
  auto offset = at - start_;
  if (offset < std::chrono::nanoseconds::zero()) {
    offset = std::chrono::nanoseconds::zero();
  }
  hops_.emplace_back(std::string(what), offset);
}

void Span::End(std::string_view what) {
  end_ = std::chrono::steady_clock::now();
  hops_.emplace_back(std::string(what), end_ - start_);
}

void Span::AmbientStamp(void* span, std::string_view what) {
  Span* self = static_cast<Span*>(span);
  const auto now = self->Elapsed();
  // Bound ambient growth: past the cap, refresh the previous same-named
  // hop (a bulk op's trailing db_txn/wal_sync stamps collapse) and drop
  // the rest. Explicit Hop() calls are not subject to the cap.
  if (self->hops_.size() >= kMaxAmbientHops) {
    if (!self->hops_.empty() && self->hops_.back().first == what) {
      self->hops_.back().second = now;
    }
    return;
  }
  self->hops_.emplace_back(std::string(what), now);
}

Span::~Span() {
  // Restore the outer span (or none) as the thread's ambient hop sink.
  rlscommon::MutableCurrentHopSlot() = saved_slot_;

  SpanRecorder& recorder = SpanRecorder::Global();
  const bool record = recorder.enabled();
  const int64_t threshold_us = g_slow_span_us.load(std::memory_order_relaxed);
  if (!record && threshold_us <= 0) return;

  const auto elapsed =
      end_ != std::chrono::steady_clock::time_point{} ? end_ - start_ : Elapsed();
  const int64_t elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();

  if (record) {
    CompletedSpan done;
    done.component = component_;
    done.name = name_;
    done.trace_id = context_.trace_id;
    done.span_id = context_.span_id;
    done.tid = rlscommon::DenseThreadId();
    done.start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        start_.time_since_epoch())
                        .count();
    done.duration_us = elapsed_us >= 0 ? static_cast<uint64_t>(elapsed_us) : 0;
    done.hops.reserve(hops_.size());
    for (const auto& [what, at] : hops_) {
      const int64_t off =
          std::chrono::duration_cast<std::chrono::microseconds>(at).count();
      done.hops.emplace_back(what, off >= 0 ? static_cast<uint64_t>(off) : 0);
    }
    recorder.Record(std::move(done));
  }

  if (threshold_us <= 0 || elapsed_us < threshold_us) return;
  if (!RLS_LOG_ENABLED(rlscommon::LogLevel::kWarn)) return;
  // An overload storm makes every span slow; without a bucket the WARN
  // path would turn the tracer into a log flood aimed at ourselves.
  static rlscommon::LogRateLimiter limiter(/*per_second=*/10, /*burst=*/20);
  // The destructor may run after ScopedTrace restored the caller's
  // context; reinstall the span's own context so the line carries it.
  ScopedTrace scope(context_);
  std::string msg = "slow span " + name_ + " took " + std::to_string(elapsed_us) +
                    "us (threshold " + std::to_string(threshold_us) + "us)";
  for (const auto& [what, at] : hops_) {
    msg += " " + what + "=+" +
           std::to_string(
               std::chrono::duration_cast<std::chrono::microseconds>(at).count()) +
           "us";
  }
  RLS_WARN_RATELIMITED(component_, limiter) << msg;
}

}  // namespace obs
