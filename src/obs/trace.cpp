#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"

namespace obs {

uint64_t NewTraceId() {
  // A global counter pushed through SplitMix64: process-unique, well
  // mixed, and cheaper than a per-thread PRNG for an id-per-RPC rate.
  static std::atomic<uint64_t> next{0x9e3779b97f4a7c15ULL};
  uint64_t state = next.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  uint64_t id = rlscommon::SplitMix64(state);
  return id != 0 ? id : 1;
}

std::string TraceIdToString(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

namespace {
std::atomic<int64_t> g_slow_span_us{0};
}  // namespace

void SetSlowSpanThreshold(std::chrono::microseconds threshold) {
  g_slow_span_us.store(threshold.count(), std::memory_order_relaxed);
}

std::chrono::microseconds GetSlowSpanThreshold() {
  return std::chrono::microseconds(g_slow_span_us.load(std::memory_order_relaxed));
}

Span::Span(std::string_view component, std::string_view name)
    : component_(component),
      name_(name),
      context_(CurrentTrace()),
      start_(std::chrono::steady_clock::now()) {}

std::chrono::nanoseconds Span::Elapsed() const {
  return std::chrono::steady_clock::now() - start_;
}

void Span::Hop(std::string_view what) {
  hops_.emplace_back(std::string(what), Elapsed());
}

Span::~Span() {
  const int64_t threshold_us = g_slow_span_us.load(std::memory_order_relaxed);
  if (threshold_us <= 0) return;
  const auto elapsed = Elapsed();
  const int64_t elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  if (elapsed_us < threshold_us) return;
  if (!RLS_LOG_ENABLED(rlscommon::LogLevel::kWarn)) return;
  // The destructor may run after ScopedTrace restored the caller's
  // context; reinstall the span's own context so the line carries it.
  ScopedTrace scope(context_);
  rlscommon::internal::LogMessage line(rlscommon::LogLevel::kWarn, component_);
  line << "slow span " << name_ << " took " << elapsed_us << "us (threshold "
       << threshold_us << "us)";
  for (const auto& [what, at] : hops_) {
    line << " " << what << "=+"
         << std::chrono::duration_cast<std::chrono::microseconds>(at).count() << "us";
  }
}

}  // namespace obs
