#include "obs/span_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace obs {

SpanRecorder& SpanRecorder::Global() {
  static SpanRecorder* recorder = new SpanRecorder();  // never destroyed
  return *recorder;
}

void SpanRecorder::Enable(std::size_t capacity) {
  capacity = std::max<std::size_t>(capacity, 8);
  // Every shard must hold the same slot count or round-robin placement
  // would no longer evict in global FIFO order.
  const std::size_t per_shard = (capacity + kShards - 1) / kShards;
  // Lock all shards in index order (Record only ever takes one).
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (Shard& shard : shards_) locks.emplace_back(shard.mu);
  if (shards_[0].ring.size() != per_shard) {
    for (Shard& shard : shards_) {
      shard.ring.clear();
      shard.ring.resize(per_shard);
      shard.seqs.assign(per_shard, kEmptySlot);
      shard.written = 0;
      shard.dropped = 0;
      shard.slow_log.clear();
    }
    next_.store(0, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void SpanRecorder::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void SpanRecorder::Clear() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (Shard& shard : shards_) locks.emplace_back(shard.mu);
  for (Shard& shard : shards_) {
    for (CompletedSpan& slot : shard.ring) slot = CompletedSpan{};
    std::fill(shard.seqs.begin(), shard.seqs.end(), kEmptySlot);
    shard.written = 0;
    shard.dropped = 0;
    shard.slow_log.clear();
  }
}

void SpanRecorder::Record(CompletedSpan span) {
  if (!enabled()) return;
  // Everything expensive happens before the shard lock: the slow-log key
  // and the sequence fetch. The critical section is a map probe plus two
  // moves, and concurrent recorders take different shard mutexes.
  std::string key = span.component + ":" + span.name;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[seq % kShards];
  CompletedSpan evicted;  // freed after the lock is released
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.ring.empty()) return;  // enabled raced with a Disable+reset
    // Slow log first: find this span's bucket and insert if it beats the
    // current K-th slowest (buckets are sorted slowest-first).
    std::vector<CompletedSpan>& bucket = shard.slow_log[key];
    if (bucket.size() < kSlowLogPerKey ||
        span.duration_us > bucket.back().duration_us) {
      auto pos = std::upper_bound(
          bucket.begin(), bucket.end(), span.duration_us,
          [](uint64_t d, const CompletedSpan& s) { return d > s.duration_us; });
      bucket.insert(pos, span);
      if (bucket.size() > kSlowLogPerKey) bucket.pop_back();
    }
    const std::size_t slot = (seq / kShards) % shard.ring.size();
    if (shard.seqs[slot] != kEmptySlot) ++shard.dropped;
    evicted = std::move(shard.ring[slot]);
    shard.ring[slot] = std::move(span);
    shard.seqs[slot] = seq;
    ++shard.written;
  }
}

std::vector<CompletedSpan> SpanRecorder::Query(const TraceFilter& filter) const {
  auto matches = [&](const CompletedSpan& s) {
    if (s.span_id == 0 && s.trace_id == 0 && s.name.empty()) return false;
    if (filter.trace_id != 0 && s.trace_id != filter.trace_id) return false;
    if (!filter.name.empty() && s.name != filter.name) return false;
    if (!filter.component.empty() && s.component != filter.component) return false;
    return s.duration_us >= filter.min_duration_us;
  };
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (const Shard& shard : shards_) locks.emplace_back(shard.mu);
  std::vector<CompletedSpan> out;
  if (filter.slow_log) {
    // Re-merge the per-shard top-K buckets so each (component, name) key
    // still surfaces at most kSlowLogPerKey spans overall.
    std::map<std::string, std::vector<CompletedSpan>> merged;
    for (const Shard& shard : shards_) {
      for (const auto& [key, bucket] : shard.slow_log) {
        std::vector<CompletedSpan>& into = merged[key];
        for (const CompletedSpan& s : bucket) {
          if (matches(s)) into.push_back(s);
        }
      }
    }
    for (auto& [key, bucket] : merged) {
      std::sort(bucket.begin(), bucket.end(),
                [](const CompletedSpan& a, const CompletedSpan& b) {
                  return a.duration_us > b.duration_us;
                });
      if (bucket.size() > kSlowLogPerKey) bucket.resize(kSlowLogPerKey);
      for (CompletedSpan& s : bucket) out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const CompletedSpan& a, const CompletedSpan& b) {
                return a.duration_us > b.duration_us;
              });
    if (filter.limit > 0 && out.size() > filter.limit) out.resize(filter.limit);
    return out;
  }
  // Gather matches with their global sequence, then sort newest first.
  std::vector<std::pair<uint64_t, const CompletedSpan*>> held;
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < shard.ring.size(); ++i) {
      if (shard.seqs[i] == kEmptySlot) continue;
      if (!matches(shard.ring[i])) continue;
      held.emplace_back(shard.seqs[i], &shard.ring[i]);
    }
  }
  std::sort(held.begin(), held.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (filter.limit > 0 && held.size() > filter.limit) held.resize(filter.limit);
  out.reserve(held.size());
  for (const auto& [seq, span] : held) out.push_back(*span);
  return out;
}

SpanRecorder::Stats SpanRecorder::GetStats() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (const Shard& shard : shards_) locks.emplace_back(shard.mu);
  Stats stats;
  for (const Shard& shard : shards_) {
    stats.capacity += shard.ring.size();
    stats.depth += std::min<uint64_t>(shard.written, shard.ring.size());
    stats.recorded += shard.written;
    stats.dropped += shard.dropped;
  }
  return stats;
}

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out->push_back(c);
  }
}

/// One Chrome trace-event "X" (complete) slice.
void AppendEvent(std::string* out, bool* first, const std::string& name,
                 const std::string& cat, int64_t ts_us, uint64_t dur_us,
                 uint32_t tid, uint64_t trace_id, uint64_t span_id) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += "{\"name\": \"";
  AppendJsonEscaped(out, name);
  *out += "\", \"cat\": \"";
  AppendJsonEscaped(out, cat);
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\", \"ph\": \"X\", \"ts\": %" PRId64 ", \"dur\": %" PRIu64
                ", \"pid\": 1, \"tid\": %" PRIu32
                ", \"args\": {\"trace\": \"%016" PRIx64
                "\", \"span\": \"%016" PRIx64 "\"}}",
                ts_us, dur_us, tid, trace_id, span_id);
  *out += buf;
}

}  // namespace

std::string SpanRecorder::RenderChromeTrace() const {
  TraceFilter all;
  std::vector<CompletedSpan> spans = Query(all);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const CompletedSpan& s : spans) {
    AppendEvent(&out, &first, s.name, s.component, s.start_us, s.duration_us,
                s.tid, s.trace_id, s.span_id);
    // Stage slices: the interval between consecutive hops (the first
    // covers [start, hop0]). Same tid => the viewer nests them under the
    // span by containment; args.span ties them back for tooling.
    uint64_t prev = 0;
    for (const auto& [what, offset_us] : s.hops) {
      const uint64_t begin = std::min(prev, offset_us);
      AppendEvent(&out, &first, what, "stage", s.start_us + static_cast<int64_t>(begin),
                  offset_us - begin, s.tid, s.trace_id, s.span_id);
      prev = offset_us;
    }
  }
  out += "\n]}\n";
  return out;
}

rlscommon::Status SpanRecorder::ExportChromeTrace(const std::string& path) const {
  const std::string body = RenderChromeTrace();
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return rlscommon::Status::Internal("cannot open trace file " + path);
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return rlscommon::Status::Internal("short write to trace file " + path);
  }
  return rlscommon::Status::Ok();
}

}  // namespace obs
