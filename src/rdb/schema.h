// Table schemas and rows.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "rdb/value.h"

namespace rdb {

/// A row is a vector of values ordered by column position.
using Row = std::vector<Value>;

/// Column definition.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
  bool nullable = true;
  bool auto_increment = false;  // only valid on INT columns
  uint32_t max_length = 0;      // VARCHAR length cap, 0 = unlimited
};

/// Table schema: column list plus declared unique constraints (enforced
/// through unique indexes created by the catalog).
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  std::size_t num_columns() const { return columns_.size(); }

  /// Index of a column by name, or nullopt.
  std::optional<std::size_t> FindColumn(std::string_view column_name) const;

  /// Index of the auto-increment column, if any.
  std::optional<std::size_t> AutoIncrementColumn() const;

  /// Validates a full row against the schema (arity, types, NOT NULL,
  /// VARCHAR length).
  rlscommon::Status ValidateRow(const Row& row) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

/// Serializes a row with the compact value encoding (page payload).
void EncodeRow(const Row& row, std::string* out);
rlscommon::Status DecodeRow(std::string_view data, std::size_t num_columns, Row* out);

}  // namespace rdb
