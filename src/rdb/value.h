// SQL value type for the rdb storage engine.
//
// The RLS schema (paper Fig. 3) needs: int(11), varchar(250), float,
// timestamp(14). We store INT/TIMESTAMP as int64, FLOAT as double,
// VARCHAR as std::string, plus NULL.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/error.h"

namespace rdb {

/// Column/value types supported by the engine.
enum class ColumnType : uint8_t {
  kInt = 0,        // 64-bit signed (covers the paper's int(11))
  kDouble = 1,     // float attribute values
  kVarchar = 2,    // names, patterns
  kTimestamp = 3,  // microseconds since epoch (timestamp(14))
};

std::string_view ColumnTypeName(ColumnType type);

/// A single SQL value (possibly NULL). Comparison follows SQL semantics
/// except that NULL compares equal to NULL (simplifies index handling;
/// the RLS schema never relies on NULL != NULL).
class Value {
 public:
  Value() : data_(std::monostate{}) {}  // NULL
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Storage(v)); }
  static Value Double(double v) { return Value(Storage(v)); }
  static Value String(std::string v) { return Value(Storage(std::move(v))); }
  static Value Timestamp(int64_t micros) {
    Value v = Int(micros);
    v.is_timestamp_ = true;
    return v;
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_) && !is_timestamp_; }
  bool is_timestamp() const { return std::holds_alternative<int64_t>(data_) && is_timestamp_; }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  /// Accessors; behaviour is undefined if the type does not match
  /// (checked in debug builds via std::get).
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric coercion: ints widen to double.
  double NumericValue() const;

  /// True if this value can be stored in a column of `type`.
  bool TypeMatches(ColumnType type) const;

  /// Total ordering used by indexes and ORDER BY: NULL < numbers < strings;
  /// numbers compare numerically across int/double.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash consistent with Compare (equal values hash equally).
  uint64_t Hash() const;

  /// SQL-literal-ish rendering for logs and result dumps.
  std::string ToString() const;

  /// Compact binary encoding used by the page layer.
  void Encode(std::string* out) const;
  static rlscommon::Status Decode(std::string_view* data, Value* out);

 private:
  using Storage = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Storage s) : data_(std::move(s)) {}

  Storage data_;
  bool is_timestamp_ = false;
};

}  // namespace rdb
