#include "rdb/database.h"

#include <chrono>
#include <shared_mutex>

#include "common/logging.h"
#include "common/trace_context.h"
#include "rdb/wal_record.h"

namespace rdb {

using rlscommon::Status;

namespace {

WalOptions MakeWalOptions(const BackendProfile& profile,
                          StorageFaultInjector* fault) {
  WalOptions options;
  options.recycle_bytes =
      profile.wal_recycle_bytes ? profile.wal_recycle_bytes : Wal::kRecycleBytes;
  options.recovery = profile.wal_recovery;
  options.fault = fault;
  options.group_commit = profile.wal_group_commit;
  if (profile.wal_group_max_commits > 0) {
    options.group_max_commits = profile.wal_group_max_commits;
  }
  if (profile.wal_group_max_bytes > 0) {
    options.group_max_bytes = profile.wal_group_max_bytes;
  }
  options.group_max_wait = profile.wal_group_max_wait;
  return options;
}

}  // namespace

Database::Database(std::string name, BackendProfile profile,
                   std::string wal_path, StorageFaultInjector* fault)
    : name_(std::move(name)),
      profile_(profile),
      wal_(std::move(wal_path), MakeWalOptions(profile, fault)) {
  if (profile_.wal_recovery) {
    wal_.SetCheckpointWriter(
        [this](uint64_t* rows) { return SerializeSnapshot(rows); });
  }
}

Status Database::CreateTable(TableSchema schema) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  const std::string table = schema.name();  // copy: schema is moved below
  if (tables_.count(table)) {
    return Status::AlreadyExists("table " + table + " already exists");
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("table " + table + " has no columns");
  }
  tables_.emplace(table, std::make_unique<Table>(std::move(schema), &profile_));
  return Status::Ok();
}

Status Database::DropTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  tables_.erase(it);
  return Status::Ok();
}

Table* Database::GetTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& table) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Status Database::Vacuum(const std::string& table) {
  Table* t = GetTable(table);
  if (!t) return Status::NotFound("no table " + table);
  std::unique_lock<std::shared_mutex> lock(t->mutex());
  t->Vacuum();
  return Status::Ok();
}

void Database::VacuumAll() {
  for (const std::string& name : TableNames()) {
    (void)Vacuum(name);
  }
}

std::string Database::SerializeSnapshot(uint64_t* snapshot_rows) {
  // Lock order matches the rest of the engine: catalog, then tables.
  // The checkpoint writer runs under the WAL commit lock with no table
  // locks held (Commit is called after the statement's TableLocks are
  // released), so taking them here cannot deadlock.
  std::lock_guard<std::mutex> catalog_lock(catalog_mu_);
  std::vector<TableSnapshot> tables;
  tables.reserve(tables_.size());
  uint64_t total_rows = 0;
  for (const auto& [name, table] : tables_) {
    std::shared_lock<std::shared_mutex> table_lock(table->mutex());
    TableSnapshot snap;
    snap.table = name;
    snap.rows.reserve(table->live_rows());
    table->Scan([&](Rid rid, SlotState st) {
      if (st != SlotState::kLive) return true;
      Row row;
      if (table->ReadRow(rid, &row).ok()) snap.rows.push_back(std::move(row));
      return true;
    });
    total_rows += snap.rows.size();
    tables.push_back(std::move(snap));
  }
  std::string out;
  EncodeSnapshot(tables, &out);
  if (snapshot_rows) *snapshot_rows = total_rows;
  return out;
}

Status Database::ApplyTxnPayload(std::string_view payload,
                                 uint64_t* records_applied) {
  std::vector<WalRecord> records;
  Status s = DecodeWalRecords(payload, &records);
  if (!s.ok()) return s;
  for (const WalRecord& rec : records) {
    Table* table = GetTable(rec.table);
    if (!table) {
      return Status::DataLoss("WAL replay references unknown table " +
                              rec.table + " (schema not initialized?)");
    }
    std::unique_lock<std::shared_mutex> lock(table->mutex());
    switch (rec.type) {
      case WalRecordType::kInsert:
        s = table->Insert(rec.row, nullptr, nullptr);
        break;
      case WalRecordType::kDelete:
        s = table->DeleteByValue(rec.old_row);
        break;
      case WalRecordType::kUpdate:
        s = table->DeleteByValue(rec.old_row);
        if (s.ok()) s = table->Insert(rec.row, nullptr, nullptr);
        break;
    }
    if (!s.ok()) {
      return Status::DataLoss("WAL replay failed on table " + rec.table + ": " +
                              s.ToString());
    }
    if (records_applied) ++*records_applied;
  }
  return Status::Ok();
}

Status Database::Recover() {
  std::lock_guard<std::mutex> recover_lock(recover_mu_);
  recovery_stats_.enabled = profile_.wal_recovery;
  if (!profile_.wal_recovery || wal_.path().empty()) return Status::Ok();
  if (recovery_stats_.ran) return Status::Ok();  // exactly-once per process
  const auto start = std::chrono::steady_clock::now();

  RecoveryStats stats;
  stats.enabled = true;

  // 1. Checkpoint snapshot, if a recycle-wrap ever happened: its LSN is
  //    the replay base; frames at or below it were discarded with the
  //    pre-wrap log.
  std::string snapshot;
  uint64_t base_lsn = 0;
  bool have_snapshot = false;
  Status s = wal_.ReadCheckpointSidecar(&snapshot, &base_lsn, &have_snapshot);
  if (!s.ok()) return s;  // corrupt sidecar: fail stop, operator decides
  if (have_snapshot) {
    std::vector<TableSnapshot> tables;
    s = DecodeSnapshot(snapshot, &tables);
    if (!s.ok()) return s;
    for (const TableSnapshot& snap : tables) {
      Table* table = GetTable(snap.table);
      if (!table) {
        return Status::DataLoss("checkpoint snapshot references unknown table " +
                                snap.table + " (schema not initialized?)");
      }
      std::unique_lock<std::shared_mutex> lock(table->mutex());
      for (const Row& row : snap.rows) {
        Status ins = table->Insert(row, nullptr, nullptr);
        if (!ins.ok()) {
          return Status::DataLoss("checkpoint snapshot replay failed on " +
                                  snap.table + ": " + ins.ToString());
        }
        ++stats.snapshot_rows;
      }
    }
  }

  // 2. Replay the committed frames beyond the snapshot.
  WalRecoverResult wal_result;
  s = wal_.Recover(
      base_lsn,
      [&](uint64_t, std::string_view payload) {
        return ApplyTxnPayload(payload, &stats.records_applied);
      },
      &wal_result);
  if (!s.ok()) return s;
  stats.recovered_txns = wal_result.frames_applied;
  stats.torn_tail_bytes = wal_result.torn_tail_bytes;
  stats.checksum_failures = wal_result.checksum_failures;
  stats.last_lsn = wal_result.last_lsn;
  stats.recover_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  stats.ran = true;
  recovery_stats_ = stats;
  // Stage stamp on the ambient span (server startup traces show what
  // replay cost).
  rlscommon::StampHop("db_recover");
  if (stats.recovered_txns > 0 || stats.snapshot_rows > 0 ||
      stats.torn_tail_bytes > 0) {
    RLS_INFO("rdb") << "recovered " << name_ << ": " << stats.recovered_txns
                    << " txns, " << stats.records_applied << " records, "
                    << stats.snapshot_rows << " snapshot rows, "
                    << stats.torn_tail_bytes << " torn bytes dropped, last lsn "
                    << stats.last_lsn << " in " << stats.recover_micros << "us";
  }
  return Status::Ok();
}

}  // namespace rdb
