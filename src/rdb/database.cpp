#include "rdb/database.h"

namespace rdb {

using rlscommon::Status;

Database::Database(std::string name, BackendProfile profile, std::string wal_path)
    : name_(std::move(name)), profile_(profile), wal_(std::move(wal_path)) {}

Status Database::CreateTable(TableSchema schema) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  const std::string table = schema.name();  // copy: schema is moved below
  if (tables_.count(table)) {
    return Status::AlreadyExists("table " + table + " already exists");
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("table " + table + " has no columns");
  }
  tables_.emplace(table, std::make_unique<Table>(std::move(schema), &profile_));
  return Status::Ok();
}

Status Database::DropTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  tables_.erase(it);
  return Status::Ok();
}

Table* Database::GetTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& table) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Status Database::Vacuum(const std::string& table) {
  Table* t = GetTable(table);
  if (!t) return Status::NotFound("no table " + table);
  std::unique_lock<std::shared_mutex> lock(t->mutex());
  t->Vacuum();
  return Status::Ok();
}

void Database::VacuumAll() {
  for (const std::string& name : TableNames()) {
    (void)Vacuum(name);
  }
}

}  // namespace rdb
