// Table: heap storage + indexes + profile-dependent delete behaviour.
//
// Concurrency: every table carries a shared_mutex; the SQL executor takes
// it shared for reads and exclusive for writes (and for VACUUM, which
// "may require exclusive access to the database, preventing other
// requests from executing" — paper §5.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "rdb/heap.h"
#include "rdb/index.h"
#include "rdb/profile.h"
#include "rdb/schema.h"

namespace rdb {

/// Kind of secondary index.
enum class IndexKind { kHash, kOrdered };

/// Table-level statistics for tests, the vacuum policy and benchmarks.
struct TableStats {
  uint64_t inserts = 0;   // guarded by the table's exclusive lock
  uint64_t deletes = 0;
  uint64_t updates = 0;
  /// Rows visited by sequential scans; atomic because scans run under the
  /// shared lock from many threads.
  std::atomic<uint64_t> seq_scan_rows{0};
};

class Table {
 public:
  Table(TableSchema schema, const BackendProfile* profile);

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// Creates a secondary index on one column. All rows already in the
  /// table are indexed. Fails if an index with `index_name` exists.
  rlscommon::Status CreateIndex(const std::string& index_name,
                                const std::string& column, IndexKind kind,
                                bool unique);

  /// Inserts a row (values ordered per schema; the auto-increment column
  /// may be NULL to be assigned). On success returns the Rid and, if the
  /// table has an auto-increment column, its assigned value via
  /// `auto_id`. Duplicate unique-key insertion returns AlreadyExists.
  rlscommon::Status Insert(Row row, Rid* rid_out, int64_t* auto_id);

  /// Deletes the row at `rid` (profile decides dead-tuple vs free).
  rlscommon::Status Delete(Rid rid);

  /// Deletes one live row whose values equal `image`, located through a
  /// unique hash index when one exists (scan fallback otherwise). Used
  /// by transaction undo and by WAL replay, which both identify rows by
  /// value, not rid. The caller holds the exclusive lock.
  rlscommon::Status DeleteByValue(const Row& image);

  /// Replaces the row at `rid`; returns the new rid via `new_rid`.
  rlscommon::Status Update(Rid rid, Row new_row, Rid* new_rid);

  /// Decodes the row at `rid` (live or dead).
  rlscommon::Status ReadRow(Rid rid, Row* out) const;

  bool IsLive(Rid rid) const { return heap_.state(rid) == SlotState::kLive; }

  /// Index lookup helpers used by the planner. Return nullptr when the
  /// column has no index of that kind.
  const HashIndex* FindHashIndex(const std::string& column) const;
  const OrderedIndex* FindOrderedIndex(const std::string& column) const;

  /// Sequential scan over live + dead rows (the executor checks state);
  /// counts visited rows in stats.
  void Scan(const std::function<bool(Rid, SlotState)>& fn) const;

  /// VACUUM: rebuilds heap and all indexes keeping only live rows.
  /// Requires the caller to hold the exclusive lock.
  void Vacuum();

  /// Full rebuild used by Vacuum and by ROLLBACK-heavy tests.
  std::size_t live_rows() const { return heap_.live_count(); }
  std::size_t dead_rows() const { return heap_.dead_count(); }
  std::size_t heap_pages() const { return heap_.num_pages(); }
  const TableStats& stats() const { return stats_; }
  int64_t auto_increment_next() const { return auto_counter_ + 1; }

  std::shared_mutex& mutex() const { return mu_; }

  /// Names of indexes (diagnostics).
  std::vector<std::string> IndexNames() const;

 private:
  struct IndexEntry {
    std::string name;
    std::size_t column = 0;
    IndexKind kind = IndexKind::kHash;
    bool unique = false;
    std::unique_ptr<HashIndex> hash;
    std::unique_ptr<OrderedIndex> ordered;
  };

  rlscommon::Status InsertIntoIndexes(const Row& row, Rid rid);
  void EraseFromIndexes(const Row& row, Rid rid);

  TableSchema schema_;
  const BackendProfile* profile_;
  HeapFile heap_;
  std::vector<IndexEntry> indexes_;
  int64_t auto_counter_ = 0;
  mutable TableStats stats_;  // scan counters update under shared lock
  mutable std::shared_mutex mu_;
};

}  // namespace rdb
