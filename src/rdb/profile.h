// Back-end behaviour profiles.
//
// The paper evaluates the RLS over two relational back ends whose
// *differences* drive several results:
//   * MySQL 4.0.14 — deletes reclaim space immediately; the important
//     knob is whether transactions flush durably to disk (Fig. 4/5:
//     ~84 adds/s flush-enabled vs ~700/s flush-disabled).
//   * PostgreSQL 7.2.4 — deletes leave dead tuples in heap and indexes
//     until a VACUUM; add rates decay under churn and recover after
//     vacuum (Fig. 8 saw-tooth).
//
// BackendProfile captures exactly those mechanisms so the same engine
// reproduces both behaviours.
#pragma once

#include <chrono>
#include <string>

#include "rdb/index.h"

namespace rdb {

enum class BackendKind { kMySQL, kPostgreSQL };

struct BackendProfile {
  BackendKind kind = BackendKind::kMySQL;

  /// When true, every commit is written through to the WAL file and
  /// synced (plus `durable_flush_penalty`). The paper calls this the
  /// database "flush"; disabling it trades durability for speed
  /// ("loose consistency ... at some risk of database corruption", §5.1).
  bool durable_flush = false;

  /// Modeled seek+sync latency of the 2004-era disk in the paper's
  /// testbed, charged per durable commit on top of the real fsync. The
  /// container's NVMe would otherwise make "flush enabled" nearly free
  /// and hide the effect the paper measures.
  std::chrono::microseconds durable_flush_penalty{8000};

  /// When true the WAL is a real recovery log: checksummed LSN-stamped
  /// frames, a checkpoint snapshot at recycle-wrap, and Database
  /// open-time replay via Recover(). When false (default) the WAL stays
  /// the legacy cost-and-bytes model the paper's Fig. 4 flush curves
  /// reproduce against.
  bool wal_recovery = false;

  /// Overrides the WAL recycle threshold; 0 = the Wal default (256 MB).
  /// Tests use tiny values to drive the checkpoint-wrap boundary.
  uint64_t wal_recycle_bytes = 0;

  /// When true, durable commits use WAL group commit: concurrent
  /// committers share one write + one fdatasync + ONE modeled
  /// `durable_flush_penalty` per batch, so durable throughput scales
  /// with client count. When false (default), every commit pays its own
  /// serialized sync — the 2004 cost model behind the paper's flat
  /// Fig. 4 flush-enabled curve.
  bool wal_group_commit = false;

  /// Group-commit batch caps; 0 = the Wal defaults (64 commits, 1 MB).
  std::size_t wal_group_max_commits = 0;
  std::size_t wal_group_max_bytes = 0;

  /// >0 = a group-commit leader lingers up to this long for the batch
  /// to fill before syncing (low-load latency floor).
  std::chrono::microseconds wal_group_max_wait{0};

  IndexDeleteMode index_delete_mode() const {
    return kind == BackendKind::kPostgreSQL ? IndexDeleteMode::kTombstone
                                            : IndexDeleteMode::kErase;
  }

  /// PostgreSQL keeps deleted rows as dead tuples until VACUUM.
  bool heap_dead_tuples() const { return kind == BackendKind::kPostgreSQL; }

  std::string Name() const {
    return kind == BackendKind::kPostgreSQL ? "postgresql" : "mysql";
  }

  static BackendProfile MySQL() {
    BackendProfile p;
    p.kind = BackendKind::kMySQL;
    return p;
  }

  static BackendProfile PostgreSQL() {
    BackendProfile p;
    p.kind = BackendKind::kPostgreSQL;
    return p;
  }
};

}  // namespace rdb
