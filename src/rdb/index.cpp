#include "rdb/index.h"

namespace rdb {
namespace {

std::size_t NextPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

HashIndex::HashIndex(IndexDeleteMode mode, bool unique, std::size_t initial_buckets)
    : mode_(mode), unique_(unique) {
  buckets_.resize(NextPow2(initial_buckets < 16 ? 16 : initial_buckets));
}

bool HashIndex::Insert(const Value& key, Rid rid) {
  const uint64_t hash = key.Hash();
  auto& bucket = buckets_[BucketFor(hash)];
  if (unique_) {
    for (const Entry& e : bucket) {
      stats_.probe_steps.fetch_add(1, std::memory_order_relaxed);
      if (!e.dead && e.hash == hash && e.key == key) return false;
    }
  }
  bucket.push_back(Entry{hash, key, rid, /*dead=*/false});
  ++stats_.live_entries;
  MaybeGrow();
  return true;
}

void HashIndex::Erase(const Value& key, Rid rid) {
  const uint64_t hash = key.Hash();
  auto& bucket = buckets_[BucketFor(hash)];
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    stats_.probe_steps.fetch_add(1, std::memory_order_relaxed);
    Entry& e = bucket[i];
    if (e.dead || e.hash != hash || !(e.rid == rid) || !(e.key == key)) continue;
    if (mode_ == IndexDeleteMode::kErase) {
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
    } else {
      e.dead = true;
      ++stats_.tombstones;
    }
    --stats_.live_entries;
    return;
  }
}

void HashIndex::Lookup(const Value& key, std::vector<Rid>* out) const {
  const uint64_t hash = key.Hash();
  const auto& bucket = buckets_[BucketFor(hash)];
  stats_.probes.fetch_add(1, std::memory_order_relaxed);
  uint64_t steps = 0;
  for (const Entry& e : bucket) {
    ++steps;
    if (e.hash != hash || !(e.key == key)) continue;
    // Tombstone mode returns dead entries too: like a PostgreSQL index,
    // visibility is only decided by fetching the heap tuple — the caller
    // pays that fetch, which is what makes un-vacuumed churn expensive
    // (paper Fig. 8).
    if (!e.dead || mode_ == IndexDeleteMode::kTombstone) out->push_back(e.rid);
  }
  stats_.probe_steps.fetch_add(steps, std::memory_order_relaxed);
}

bool HashIndex::ContainsKey(const Value& key) const {
  const uint64_t hash = key.Hash();
  const auto& bucket = buckets_[BucketFor(hash)];
  stats_.probes.fetch_add(1, std::memory_order_relaxed);
  uint64_t steps = 0;
  bool found = false;
  for (const Entry& e : bucket) {
    ++steps;
    if (!e.dead && e.hash == hash && e.key == key) {
      found = true;
      break;
    }
  }
  stats_.probe_steps.fetch_add(steps, std::memory_order_relaxed);
  return found;
}

void HashIndex::Clear() {
  const std::size_t buckets = buckets_.size();
  buckets_.clear();
  buckets_.resize(buckets);
  stats_.live_entries = 0;
  stats_.tombstones = 0;
}

void HashIndex::MaybeGrow() {
  // Growth is triggered by LIVE entries only. Under the tombstone mode
  // this is deliberate: accumulated tombstones lengthen chains without
  // triggering a rebuild, exactly like un-vacuumed PostgreSQL index bloat.
  if (stats_.live_entries <= buckets_.size() * 2) return;
  std::vector<std::vector<Entry>> old = std::move(buckets_);
  buckets_.clear();
  buckets_.resize(old.size() * 2);
  for (auto& bucket : old) {
    for (Entry& e : bucket) {
      buckets_[BucketFor(e.hash)].push_back(std::move(e));
    }
  }
}

void OrderedIndex::Insert(const Value& key, Rid rid) {
  entries_.emplace(key, rid);
}

void OrderedIndex::Erase(const Value& key, Rid rid) {
  auto [begin, end] = entries_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == rid) {
      entries_.erase(it);
      return;
    }
  }
}

void OrderedIndex::LookupLess(const Value& bound, std::vector<Rid>* out) const {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first.Compare(bound) >= 0) break;
    out->push_back(it->second);
  }
}

void OrderedIndex::LookupRange(const Value& lo, const Value& hi,
                               std::vector<Rid>* out) const {
  for (auto it = entries_.lower_bound(lo); it != entries_.end(); ++it) {
    if (it->first.Compare(hi) > 0) break;
    out->push_back(it->second);
  }
}

void OrderedIndex::Lookup(const Value& key, std::vector<Rid>* out) const {
  auto [begin, end] = entries_.equal_range(key);
  for (auto it = begin; it != end; ++it) out->push_back(it->second);
}

}  // namespace rdb
