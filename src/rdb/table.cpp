#include "rdb/table.h"

#include <algorithm>

namespace rdb {

using rlscommon::Status;

Table::Table(TableSchema schema, const BackendProfile* profile)
    : schema_(std::move(schema)), profile_(profile) {}

Status Table::CreateIndex(const std::string& index_name, const std::string& column,
                          IndexKind kind, bool unique) {
  for (const IndexEntry& e : indexes_) {
    if (e.name == index_name) {
      return Status::AlreadyExists("index " + index_name + " already exists");
    }
  }
  auto col = schema_.FindColumn(column);
  if (!col) {
    return Status::InvalidArgument("no column " + column + " in table " + name());
  }
  IndexEntry entry;
  entry.name = index_name;
  entry.column = *col;
  entry.kind = kind;
  entry.unique = unique;
  if (kind == IndexKind::kHash) {
    entry.hash = std::make_unique<HashIndex>(profile_->index_delete_mode(), unique);
  } else {
    entry.ordered = std::make_unique<OrderedIndex>();
  }
  // Index existing live rows.
  Status status = Status::Ok();
  heap_.Scan([&](Rid rid, std::string_view bytes, SlotState st) {
    if (st != SlotState::kLive) return true;
    Row row;
    status = DecodeRow(bytes, schema_.num_columns(), &row);
    if (!status.ok()) return false;
    if (entry.kind == IndexKind::kHash) {
      if (!entry.hash->Insert(row[entry.column], rid)) {
        status = Status::AlreadyExists("duplicate key building unique index " + index_name);
        return false;
      }
    } else {
      entry.ordered->Insert(row[entry.column], rid);
    }
    return true;
  });
  if (!status.ok()) return status;
  indexes_.push_back(std::move(entry));
  return Status::Ok();
}

Status Table::Insert(Row row, Rid* rid_out, int64_t* auto_id) {
  // Assign the auto-increment id first so NOT NULL validation sees it.
  if (auto auto_col = schema_.AutoIncrementColumn()) {
    Value& v = row[*auto_col];
    if (v.is_null()) {
      v = Value::Int(++auto_counter_);
    } else {
      auto_counter_ = std::max(auto_counter_, v.AsInt());
    }
    if (auto_id) *auto_id = v.AsInt();
  } else if (auto_id) {
    *auto_id = 0;
  }

  Status valid = schema_.ValidateRow(row);
  if (!valid.ok()) return valid;

  // Check unique constraints before touching anything. Index lookups may
  // return dead rids (tombstone mode); each costs a heap fetch to decide
  // visibility — the PostgreSQL dead-tuple tax of paper Fig. 8.
  for (const IndexEntry& e : indexes_) {
    if (!e.unique || e.kind != IndexKind::kHash) continue;
    std::vector<Rid> rids;
    e.hash->Lookup(row[e.column], &rids);
    for (Rid rid : rids) {
      if (heap_.state(rid) == SlotState::kLive) {
        return Status::AlreadyExists("duplicate key '" + row[e.column].ToString() +
                                     "' for unique index " + e.name);
      }
      Row scratch;  // visibility check: decode the dead tuple
      (void)DecodeRow(heap_.Read(rid), schema_.num_columns(), &scratch);
    }
  }

  std::string bytes;
  EncodeRow(row, &bytes);
  Rid rid = heap_.Insert(bytes);
  Status idx = InsertIntoIndexes(row, rid);
  if (!idx.ok()) {
    heap_.MarkFree(rid);
    return idx;
  }
  ++stats_.inserts;
  if (rid_out) *rid_out = rid;
  return Status::Ok();
}

Status Table::Delete(Rid rid) {
  if (heap_.state(rid) != SlotState::kLive) {
    return Status::NotFound("row is not live");
  }
  Row row;
  Status status = ReadRow(rid, &row);
  if (!status.ok()) return status;
  EraseFromIndexes(row, rid);
  if (profile_->heap_dead_tuples()) {
    heap_.MarkDead(rid);
  } else {
    heap_.MarkFree(rid);
  }
  ++stats_.deletes;
  return Status::Ok();
}

Status Table::DeleteByValue(const Row& image) {
  if (image.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row image arity mismatch for " + name());
  }
  // Prefer a unique hash index: one probe instead of a scan.
  for (const IndexEntry& e : indexes_) {
    if (e.kind != IndexKind::kHash || !e.unique || !e.hash) continue;
    std::vector<Rid> rids;
    e.hash->Lookup(image[e.column], &rids);
    for (Rid rid : rids) {
      Row row;
      if (heap_.state(rid) == SlotState::kLive && ReadRow(rid, &row).ok() &&
          row == image) {
        return Delete(rid);
      }
    }
    return Status::NotFound("row not found by unique index in " + name());
  }
  // Scan fallback.
  Rid found;
  bool have = false;
  Scan([&](Rid rid, SlotState st) {
    if (st != SlotState::kLive) return true;
    Row row;
    if (ReadRow(rid, &row).ok() && row == image) {
      found = rid;
      have = true;
      return false;
    }
    return true;
  });
  if (!have) return Status::NotFound("row not found by scan in " + name());
  return Delete(found);
}

Status Table::Update(Rid rid, Row new_row, Rid* new_rid) {
  Status valid = schema_.ValidateRow(new_row);
  if (!valid.ok()) return valid;
  if (heap_.state(rid) != SlotState::kLive) {
    return Status::NotFound("row is not live");
  }
  Row old_row;
  Status status = ReadRow(rid, &old_row);
  if (!status.ok()) return status;

  // Unique checks, ignoring the row being replaced.
  for (const IndexEntry& e : indexes_) {
    if (!e.unique || e.kind != IndexKind::kHash) continue;
    if (new_row[e.column] == old_row[e.column]) continue;
    if (e.hash->ContainsKey(new_row[e.column])) {
      return Status::AlreadyExists("duplicate key on update for index " + e.name);
    }
  }

  EraseFromIndexes(old_row, rid);
  if (profile_->heap_dead_tuples()) {
    heap_.MarkDead(rid);  // PostgreSQL: update = delete + insert
  } else {
    heap_.MarkFree(rid);
  }
  std::string bytes;
  EncodeRow(new_row, &bytes);
  Rid fresh = heap_.Insert(bytes);
  Status idx = InsertIntoIndexes(new_row, fresh);
  if (!idx.ok()) return idx;
  ++stats_.updates;
  if (new_rid) *new_rid = fresh;
  return Status::Ok();
}

Status Table::ReadRow(Rid rid, Row* out) const {
  return DecodeRow(heap_.Read(rid), schema_.num_columns(), out);
}

const HashIndex* Table::FindHashIndex(const std::string& column) const {
  auto col = schema_.FindColumn(column);
  if (!col) return nullptr;
  for (const IndexEntry& e : indexes_) {
    if (e.kind == IndexKind::kHash && e.column == *col) return e.hash.get();
  }
  return nullptr;
}

const OrderedIndex* Table::FindOrderedIndex(const std::string& column) const {
  auto col = schema_.FindColumn(column);
  if (!col) return nullptr;
  for (const IndexEntry& e : indexes_) {
    if (e.kind == IndexKind::kOrdered && e.column == *col) return e.ordered.get();
  }
  return nullptr;
}

void Table::Scan(const std::function<bool(Rid, SlotState)>& fn) const {
  heap_.Scan([&](Rid rid, std::string_view, SlotState st) {
    stats_.seq_scan_rows.fetch_add(1, std::memory_order_relaxed);
    return fn(rid, st);
  });
}

void Table::Vacuum() {
  // Collect live rows, rebuild the heap compactly, rebuild every index.
  std::vector<Row> live;
  live.reserve(heap_.live_count());
  heap_.Scan([&](Rid, std::string_view bytes, SlotState st) {
    if (st != SlotState::kLive) return true;
    Row row;
    if (DecodeRow(bytes, schema_.num_columns(), &row).ok()) {
      live.push_back(std::move(row));
    }
    return true;
  });
  heap_.Clear();
  for (IndexEntry& e : indexes_) {
    if (e.kind == IndexKind::kHash) {
      e.hash->Clear();
    } else {
      e.ordered->Clear();
    }
  }
  for (Row& row : live) {
    std::string bytes;
    EncodeRow(row, &bytes);
    Rid rid = heap_.Insert(bytes);
    for (IndexEntry& e : indexes_) {
      if (e.kind == IndexKind::kHash) {
        e.hash->Insert(row[e.column], rid);
      } else {
        e.ordered->Insert(row[e.column], rid);
      }
    }
  }
}

std::vector<std::string> Table::IndexNames() const {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const IndexEntry& e : indexes_) names.push_back(e.name);
  return names;
}

Status Table::InsertIntoIndexes(const Row& row, Rid rid) {
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    IndexEntry& e = indexes_[i];
    bool ok = true;
    if (e.kind == IndexKind::kHash) {
      ok = e.hash->Insert(row[e.column], rid);
    } else {
      e.ordered->Insert(row[e.column], rid);
    }
    if (!ok) {
      // Undo the partial index inserts (unique race cannot happen — the
      // caller checked — but stay safe).
      for (std::size_t j = 0; j < i; ++j) {
        IndexEntry& u = indexes_[j];
        if (u.kind == IndexKind::kHash) {
          u.hash->Erase(row[u.column], rid);
        } else {
          u.ordered->Erase(row[u.column], rid);
        }
      }
      return Status::AlreadyExists("duplicate key for unique index " + e.name);
    }
  }
  return Status::Ok();
}

void Table::EraseFromIndexes(const Row& row, Rid rid) {
  for (IndexEntry& e : indexes_) {
    if (e.kind == IndexKind::kHash) {
      e.hash->Erase(row[e.column], rid);
    } else {
      e.ordered->Erase(row[e.column], rid);
    }
  }
}

}  // namespace rdb
