// Secondary indexes for the rdb engine.
//
// HashIndex is the workhorse (equality lookups on names and ids). Its
// delete behaviour is profile-dependent, mirroring the back ends in the
// paper:
//   * erase-on-delete (MySQL profile): entries are removed immediately;
//     lookup cost stays flat under add/delete churn.
//   * tombstone-on-delete (PostgreSQL profile): deleted entries stay in
//     the bucket chains and are skipped on every probe until VACUUM
//     rebuilds the index. Probe cost therefore grows with accumulated
//     deletions — the mechanism behind the Fig. 8 saw-tooth.
//
// OrderedIndex supports range predicates; the RLI uses it on
// t_map.updatetime so the expire thread can discard stale soft state
// without a full scan.
//
// Writes are not thread-safe (the owning engine takes an exclusive
// statement lock); concurrent Lookup/ContainsKey calls under a shared
// lock are safe — the probe counters they maintain are relaxed atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rdb/heap.h"
#include "rdb/value.h"

namespace rdb {

/// Delete behaviour, selected by the database BackendProfile.
enum class IndexDeleteMode {
  kErase,      // MySQL profile
  kTombstone,  // PostgreSQL profile
};

/// Statistics used by tests and the vacuum policy. The probe counters
/// are updated from const read paths that run concurrently under the
/// engine's shared statement lock, so they are relaxed atomics; the
/// entry counters only change under the exclusive (write) lock.
struct IndexStats {
  uint64_t live_entries = 0;
  uint64_t tombstones = 0;
  std::atomic<uint64_t> probes{0};       // lookups performed
  std::atomic<uint64_t> probe_steps{0};  // chain entries visited across all probes
};

/// Chained hash index mapping Value keys to Rids (multimap semantics —
/// non-unique indexes like t_map.lfn_id hold many rids per key).
class HashIndex {
 public:
  explicit HashIndex(IndexDeleteMode mode, bool unique = false,
                     std::size_t initial_buckets = 64);

  /// Inserts key->rid. For unique indexes, returns false if a live entry
  /// with an equal key exists (caller reports duplicate-key error).
  bool Insert(const Value& key, Rid rid);

  /// Removes (or tombstones) the entry for (key, rid). Missing entries are
  /// ignored.
  void Erase(const Value& key, Rid rid);

  /// Appends all live rids for `key` to `out`.
  void Lookup(const Value& key, std::vector<Rid>* out) const;

  /// True if a live entry with this key exists.
  bool ContainsKey(const Value& key) const;

  /// Drops all entries (vacuum rebuild path).
  void Clear();

  bool unique() const { return unique_; }
  IndexDeleteMode delete_mode() const { return mode_; }
  const IndexStats& stats() const { return stats_; }
  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  struct Entry {
    uint64_t hash;
    Value key;
    Rid rid;
    bool dead;
  };

  void MaybeGrow();
  std::size_t BucketFor(uint64_t hash) const { return hash & (buckets_.size() - 1); }

  IndexDeleteMode mode_;
  bool unique_;
  std::vector<std::vector<Entry>> buckets_;
  mutable IndexStats stats_;
};

/// Ordered index over one column supporting range scans.
class OrderedIndex {
 public:
  OrderedIndex() = default;

  void Insert(const Value& key, Rid rid);
  void Erase(const Value& key, Rid rid);

  /// Appends rids with key < bound (used by soft-state expiration:
  /// "discard entries older than the timeout").
  void LookupLess(const Value& bound, std::vector<Rid>* out) const;

  /// Appends rids with lo <= key <= hi.
  void LookupRange(const Value& lo, const Value& hi, std::vector<Rid>* out) const;

  void Lookup(const Value& key, std::vector<Rid>* out) const;

  void Clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

 private:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const { return a.Compare(b) < 0; }
  };
  std::multimap<Value, Rid, ValueLess> entries_;
};

}  // namespace rdb
