#include "rdb/value.h"

#include <cstring>

#include "bloom/hashing.h"

namespace rdb {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt: return "INT";
    case ColumnType::kDouble: return "DOUBLE";
    case ColumnType::kVarchar: return "VARCHAR";
    case ColumnType::kTimestamp: return "TIMESTAMP";
  }
  return "?";
}

double Value::NumericValue() const {
  if (std::holds_alternative<int64_t>(data_)) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  if (std::holds_alternative<double>(data_)) return std::get<double>(data_);
  return 0.0;
}

bool Value::TypeMatches(ColumnType type) const {
  if (is_null()) return true;
  switch (type) {
    case ColumnType::kInt:
    case ColumnType::kTimestamp:
      return std::holds_alternative<int64_t>(data_);
    case ColumnType::kDouble:
      return std::holds_alternative<double>(data_) ||
             std::holds_alternative<int64_t>(data_);
    case ColumnType::kVarchar:
      return std::holds_alternative<std::string>(data_);
  }
  return false;
}

int Value::Compare(const Value& other) const {
  const bool lnull = is_null(), rnull = other.is_null();
  if (lnull || rnull) return (lnull ? 0 : 1) - (rnull ? 0 : 1);
  const bool lstr = is_string(), rstr = other.is_string();
  if (lstr != rstr) return lstr ? 1 : -1;  // numbers < strings
  if (lstr) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  const double l = NumericValue(), r = other.NumericValue();
  if (l < r) return -1;
  if (l > r) return 1;
  return 0;
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x6e756c6cULL;
  if (is_string()) return bloom::Mix64(AsString(), 0x5472ULL);
  // Hash numerics through their double image so Int(3) == Double(3.0)
  // hash identically (consistent with Compare).
  double d = NumericValue();
  char buf[8];
  std::memcpy(buf, &d, 8);
  return bloom::Mix64(std::string_view(buf, 8), 0x4e554dULL);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_string()) return "'" + AsString() + "'";
  if (is_double()) return std::to_string(AsDouble());
  return std::to_string(AsInt());
}

namespace {
enum Tag : uint8_t { kTagNull = 0, kTagInt = 1, kTagDouble = 2, kTagString = 3, kTagTimestamp = 4 };
}

void Value::Encode(std::string* out) const {
  if (is_null()) {
    out->push_back(static_cast<char>(kTagNull));
  } else if (is_string()) {
    out->push_back(static_cast<char>(kTagString));
    uint32_t len = static_cast<uint32_t>(AsString().size());
    out->append(reinterpret_cast<const char*>(&len), 4);
    out->append(AsString());
  } else if (is_double()) {
    out->push_back(static_cast<char>(kTagDouble));
    double d = AsDouble();
    out->append(reinterpret_cast<const char*>(&d), 8);
  } else {
    out->push_back(static_cast<char>(is_timestamp_ ? kTagTimestamp : kTagInt));
    int64_t v = AsInt();
    out->append(reinterpret_cast<const char*>(&v), 8);
  }
}

rlscommon::Status Value::Decode(std::string_view* data, Value* out) {
  using rlscommon::Status;
  if (data->empty()) return Status::Protocol("truncated value");
  uint8_t tag = static_cast<uint8_t>((*data)[0]);
  data->remove_prefix(1);
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return Status::Ok();
    case kTagInt:
    case kTagTimestamp: {
      if (data->size() < 8) return Status::Protocol("truncated int value");
      int64_t v;
      std::memcpy(&v, data->data(), 8);
      data->remove_prefix(8);
      *out = (tag == kTagTimestamp) ? Value::Timestamp(v) : Value::Int(v);
      return Status::Ok();
    }
    case kTagDouble: {
      if (data->size() < 8) return Status::Protocol("truncated double value");
      double v;
      std::memcpy(&v, data->data(), 8);
      data->remove_prefix(8);
      *out = Value::Double(v);
      return Status::Ok();
    }
    case kTagString: {
      if (data->size() < 4) return Status::Protocol("truncated string length");
      uint32_t len;
      std::memcpy(&len, data->data(), 4);
      data->remove_prefix(4);
      if (data->size() < len) return Status::Protocol("truncated string value");
      *out = Value::String(std::string(data->substr(0, len)));
      data->remove_prefix(len);
      return Status::Ok();
    }
    default:
      return Status::Protocol("unknown value tag");
  }
}

}  // namespace rdb
