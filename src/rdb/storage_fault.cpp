#include "rdb/storage_fault.h"

#include <cerrno>

namespace rdb {

std::string_view StorageFaultKindName(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kShortWrite: return "short_write";
    case StorageFaultKind::kWriteError: return "write_error";
    case StorageFaultKind::kSyncError: return "sync_error";
    case StorageFaultKind::kCrash: return "crash";
  }
  return "unknown";
}

void StorageFaultInjector::CrashAtByte(uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_armed_ = true;
  crash_at_ = offset;
}

void StorageFaultInjector::FailWriteAtByte(uint64_t offset, int error) {
  std::lock_guard<std::mutex> lock(mu_);
  write_fault_armed_ = true;
  write_fault_at_ = offset;
  write_fault_error_ = error ? error : ENOSPC;
}

void StorageFaultInjector::FailNthSync(uint64_t n, int error) {
  std::lock_guard<std::mutex> lock(mu_);
  syncs_seen_ = 0;
  fail_sync_at_ = n;
  sync_error_ = error ? error : EIO;
}

void StorageFaultInjector::SetWriteErrorProbability(double p, int error) {
  std::lock_guard<std::mutex> lock(mu_);
  write_error_probability_ = p;
  random_write_error_ = error ? error : EIO;
}

StorageFaultInjector::WriteVerdict StorageFaultInjector::OnWrite(
    uint64_t offset, std::size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  WriteVerdict v;
  if (crashed_) {
    v.kind = WriteVerdict::Kind::kError;
    v.error = EIO;
    return v;
  }
  if (crash_armed_ && offset + len > crash_at_) {
    crashed_ = true;
    v.kind = WriteVerdict::Kind::kShort;
    v.allowed = crash_at_ > offset ? static_cast<std::size_t>(crash_at_ - offset) : 0;
    v.error = EIO;
    ++short_writes_;
    RecordLocked(StorageFaultKind::kCrash, offset, v.error);
    return v;
  }
  if (write_fault_armed_ && offset <= write_fault_at_ &&
      offset + len > write_fault_at_) {
    write_fault_armed_ = false;
    v.kind = WriteVerdict::Kind::kShort;
    v.allowed = static_cast<std::size_t>(write_fault_at_ - offset);
    v.error = write_fault_error_;
    ++short_writes_;
    RecordLocked(StorageFaultKind::kShortWrite, offset, v.error);
    return v;
  }
  if (write_error_probability_ > 0.0 &&
      rng_.NextDouble() < write_error_probability_) {
    v.kind = WriteVerdict::Kind::kError;
    v.error = random_write_error_;
    ++write_errors_;
    RecordLocked(StorageFaultKind::kWriteError, offset, v.error);
    return v;
  }
  return v;
}

int StorageFaultInjector::OnSync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return EIO;
  if (fail_sync_at_ > 0 && ++syncs_seen_ == fail_sync_at_) {
    fail_sync_at_ = 0;
    ++sync_errors_;
    RecordLocked(StorageFaultKind::kSyncError, 0, sync_error_);
    return sync_error_;
  }
  return 0;
}

bool StorageFaultInjector::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

std::vector<StorageFaultEvent> StorageFaultInjector::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t StorageFaultInjector::short_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return short_writes_;
}

uint64_t StorageFaultInjector::write_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_errors_;
}

uint64_t StorageFaultInjector::sync_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_errors_;
}

void StorageFaultInjector::RecordLocked(StorageFaultKind kind, uint64_t offset,
                                        int error) {
  events_.push_back(StorageFaultEvent{next_seq_++, kind, offset, error});
}

}  // namespace rdb
