// Storage fault injection for the WAL (sibling of net::FaultInjector).
//
// The crash-safety claim of the recovery log is only worth something if
// it is exercised against the ways disks actually fail. The injector sits
// on the Wal's two decision points:
//
//   * OnWrite(offset, len) — called before each frame write with the file
//     offset the write starts at. The verdict can let the write through,
//     truncate it after N bytes (a torn write: power loss or ENOSPC
//     mid-frame), or fail it outright with an errno.
//   * OnSync() — called before each fdatasync. A failure verdict models
//     fsyncgate: the kernel may have dropped the dirty pages, so the Wal
//     treats a failed sync as fail-stop and never retries it.
//
// Plans:
//   * CrashAtByte(n): persistence stops at absolute file offset n — the
//     write that crosses n is truncated there and every later operation
//     fails, leaving exactly the torn frame a power cut would. The crash
//     matrix uses this to place intra-record cut points.
//   * FailWriteAtByte(n, err): one-shot partial write + errno at offset n
//     (disk error mid-write, without the process "dying").
//   * FailNthSync(n, err): the n-th sync (1-based) fails.
//   * SetWriteErrorProbability(p, err): seeded random write errors.
//
// Probabilistic decisions draw from one seeded xoshiro256** stream and
// every injected fault lands in an event log, so a single-threaded
// driver replays the identical fault sequence for a given seed.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace rdb {

/// What the injector did to one storage operation.
enum class StorageFaultKind : uint8_t {
  kShortWrite = 0,  // write truncated after `bytes` bytes, then errno
  kWriteError = 1,  // write failed outright with errno
  kSyncError = 2,   // fdatasync failed with errno
  kCrash = 3,       // CrashAtByte tripped: persistence stopped here
};

std::string_view StorageFaultKindName(StorageFaultKind kind);

/// One entry of the injector's event log. `seq` is the decision order;
/// for a fixed seed and deterministic driver the log replays identically.
struct StorageFaultEvent {
  uint64_t seq = 0;
  StorageFaultKind kind = StorageFaultKind::kWriteError;
  uint64_t offset = 0;  // file offset the operation started at (0 for sync)
  int error = 0;        // errno delivered to the Wal

  bool operator==(const StorageFaultEvent& other) const {
    return seq == other.seq && kind == other.kind && offset == other.offset &&
           error == other.error;
  }
};

class StorageFaultInjector {
 public:
  explicit StorageFaultInjector(uint64_t seed = 0) : rng_(seed) {}

  StorageFaultInjector(const StorageFaultInjector&) = delete;
  StorageFaultInjector& operator=(const StorageFaultInjector&) = delete;

  // --- scenario configuration ---

  /// Simulated power cut: bytes at file offsets >= `offset` never reach
  /// the disk. The write crossing the boundary is truncated there; every
  /// later write/sync fails (the process is "dead" to the log).
  void CrashAtByte(uint64_t offset);

  /// One-shot disk error: the write covering file offset `offset` is cut
  /// short at that offset and fails with `error` (default ENOSPC).
  void FailWriteAtByte(uint64_t offset, int error);

  /// The `n`-th OnSync call (1-based, counted from now) fails with
  /// `error` (default EIO).
  void FailNthSync(uint64_t n, int error);

  /// Each write independently fails with probability `p` (seeded stream).
  void SetWriteErrorProbability(double p, int error);

  // --- decision points (called by the Wal) ---

  struct WriteVerdict {
    enum class Kind { kOk, kShort, kError } kind = Kind::kOk;
    std::size_t allowed = 0;  // bytes to persist before failing (kShort)
    int error = 0;
  };

  /// Verdict for one contiguous frame write starting at file `offset`.
  WriteVerdict OnWrite(uint64_t offset, std::size_t len);

  /// 0 = sync proceeds; otherwise the errno the sync fails with.
  int OnSync();

  // --- introspection ---

  /// True once CrashAtByte tripped: the simulated machine is down and
  /// the torn tail must stay on disk (the Wal must not repair it).
  bool crashed() const;

  std::vector<StorageFaultEvent> Events() const;
  uint64_t short_writes() const;
  uint64_t write_errors() const;
  uint64_t sync_errors() const;

 private:
  void RecordLocked(StorageFaultKind kind, uint64_t offset, int error);

  mutable std::mutex mu_;
  rlscommon::Xoshiro256 rng_;
  bool crash_armed_ = false;
  uint64_t crash_at_ = 0;
  bool crashed_ = false;
  bool write_fault_armed_ = false;
  uint64_t write_fault_at_ = 0;
  int write_fault_error_ = 0;
  uint64_t syncs_seen_ = 0;
  uint64_t fail_sync_at_ = 0;  // 0 = disarmed; counts from arming
  int sync_error_ = 0;
  double write_error_probability_ = 0.0;
  int random_write_error_ = 0;
  std::vector<StorageFaultEvent> events_;
  uint64_t next_seq_ = 0;
  uint64_t short_writes_ = 0;
  uint64_t write_errors_ = 0;
  uint64_t sync_errors_ = 0;
};

}  // namespace rdb
