// Write-ahead log.
//
// Transactions buffer their records (in sql::Session) and hand the
// concatenated payload to Commit. When durable flush is enabled the
// bytes are written and fsynced — plus the profile's modeled 2004-disk
// penalty — before Commit returns. With flush disabled the bytes are
// written without syncing: the OS flushes them eventually, which is the
// "loose consistency ... at some risk of database corruption" mode the
// paper recommends enabling for RLS deployments (§5.1).
//
// The log runs in one of two modes:
//
//   * Legacy (default): a cost-and-bytes model that makes the
//     flush-enabled/disabled experiments honest. The file is truncated
//     on open, recycled by seeking back to 0 past the threshold, and
//     unlinked on close. No recovery — this is the profile the paper's
//     Fig. 4 flush curves reproduce against.
//
//   * Recovery (WalOptions::recovery): a real recovery log. Every commit
//     becomes a self-describing frame —
//
//       u32 crc32c   over everything after this field
//       u64 lsn      monotonic, 1-based
//       u8  type     1 = transaction, 2 = checkpoint
//       u32 len      payload length
//       payload      logical record stream (rdb/wal_record.h)
//
//     The file persists across close/reopen. When a commit pushes the
//     file past the recycle threshold, the Wal (after appending that
//     commit's frame — the engine applies mutations before logging, so
//     the snapshot must include the frame's LSN) invokes the checkpoint
//     writer (Database serializes a snapshot of all live rows),
//     persists it atomically to a sidecar file (path + ".ckpt": tmp +
//     fsync + rename), truncates the log to zero and writes a
//     checkpoint frame carrying the pre-wrap LSN — so replay cost stays
//     bounded and `file_bytes()` agrees with replay across the wrap. Recover() scans the log, verifies checksums,
//     truncates the first torn/corrupt frame and everything after it,
//     and hands committed payloads to the caller in LSN order.
//
// Failure policy (both modes): a write error or injected short write is
// a typed non-retryable DATA_LOSS error; in recovery mode the partially
// written frame is truncated away so the log stays consistent. A failed
// fdatasync poisons the log permanently — after fsync fails, the kernel
// may already have dropped the dirty pages, so retrying the sync would
// silently report durability that does not exist (the "fsyncgate"
// semantics); every later Commit fails fast with DATA_LOSS.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/error.h"
#include "rdb/storage_fault.h"

namespace rdb {

/// WAL frame types (recovery mode).
inline constexpr uint8_t kWalFrameTxn = 1;
inline constexpr uint8_t kWalFrameCheckpoint = 2;

/// Frame header bytes: crc(4) + lsn(8) + type(1) + len(4).
inline constexpr std::size_t kWalFrameHeaderBytes = 17;

/// Construction-time options beyond the path.
struct WalOptions {
  uint64_t recycle_bytes = 256ull << 20;
  /// True = framed, persistent, replayable log; false = legacy
  /// cost-and-bytes model.
  bool recovery = false;
  /// Optional fault injector consulted before log writes and syncs.
  StorageFaultInjector* fault = nullptr;
};

/// What Recover() found in the log.
struct WalRecoverResult {
  uint64_t frames_applied = 0;    // txn frames handed to the applier
  uint64_t last_lsn = 0;          // highest LSN seen (commits continue after)
  uint64_t torn_tail_bytes = 0;   // bytes truncated at the torn/corrupt tail
  uint64_t checksum_failures = 0; // frames rejected by CRC (0 or 1 per scan)
  uint64_t checkpoint_lsn = 0;    // LSN of a checkpoint frame, 0 = none
};

class Wal {
 public:
  /// Default recycle threshold: the log wraps (legacy) or checkpoints
  /// (recovery) rather than growing without bound.
  static constexpr uint64_t kRecycleBytes = 256ull << 20;

  /// `path` empty = account bytes but keep no file (in-memory database).
  /// `recycle_bytes` overrides the wrap threshold (tests use tiny
  /// values to exercise the boundary without writing 256 MB).
  explicit Wal(std::string path, uint64_t recycle_bytes = kRecycleBytes);
  Wal(std::string path, WalOptions options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Writes one transaction's records. When `durable`, the write is
  /// synced and `penalty` of modeled disk time is charged before
  /// returning. Thread-safe; concurrent commits serialize (no group
  /// commit, matching the flat add-rate-vs-threads curve of Fig. 4).
  /// Fails with DATA_LOSS on a storage error; permanently after a
  /// failed sync (see the failure policy above).
  rlscommon::Status Commit(std::string_view payload, bool durable,
                           std::chrono::microseconds penalty);

  /// Recovery-mode scan: verifies every frame's checksum, truncates the
  /// log at the first torn or corrupt frame, and calls `apply` for each
  /// committed transaction payload with LSN > `base_lsn` (the snapshot
  /// LSN), in order. Leaves the write position at the end of the last
  /// valid frame so new commits continue the LSN sequence. Idempotent:
  /// a second scan over the repaired log yields the same frames.
  rlscommon::Status Recover(
      uint64_t base_lsn,
      const std::function<rlscommon::Status(uint64_t lsn,
                                            std::string_view payload)>& apply,
      WalRecoverResult* result);

  /// Reads the checkpoint sidecar (path + ".ckpt") if one exists.
  /// `*present` = false (and OK) when there is none; DATA_LOSS when the
  /// sidecar exists but fails its checksum (it is then ignored).
  rlscommon::Status ReadCheckpointSidecar(std::string* payload, uint64_t* lsn,
                                          bool* present) const;

  /// Installs the snapshot producer invoked at recycle-wrap (recovery
  /// mode). Returns the serialized table snapshot; `snapshot_rows`
  /// receives the row count for metrics. Called under the commit lock
  /// with no table locks held, so the writer may take them.
  void SetCheckpointWriter(
      std::function<std::string(uint64_t* snapshot_rows)> writer) {
    checkpoint_writer_ = std::move(writer);
  }

  uint64_t bytes_logged() const { return bytes_logged_.load(std::memory_order_relaxed); }
  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  uint64_t checkpoints() const { return checkpoints_.load(std::memory_order_relaxed); }
  uint64_t torn_tail_bytes() const { return torn_tail_bytes_.load(std::memory_order_relaxed); }
  uint64_t checksum_failures() const { return checksum_failures_.load(std::memory_order_relaxed); }
  const std::string& path() const { return path_; }
  bool recovery_enabled() const { return options_.recovery; }

  /// True once a storage failure made the log unusable (failed sync, or
  /// an unrepairable write error). All further commits fail DATA_LOSS.
  bool poisoned() const;

  /// Current write offset in the file (post-wrap position). Bounded by
  /// recycle_bytes + the largest single commit.
  uint64_t file_bytes() const;

  /// Highest LSN assigned (recovery mode).
  uint64_t last_lsn() const;

  uint64_t recycle_bytes() const { return options_.recycle_bytes; }

 private:
  /// Appends one frame at file_bytes_ (recovery mode, lock held).
  rlscommon::Status WriteFrameLocked(uint8_t type, uint64_t lsn,
                                     std::string_view payload);
  /// fdatasync with fail-stop semantics (lock held).
  rlscommon::Status SyncLocked();
  /// Snapshot + sidecar + truncate + checkpoint frame (lock held).
  rlscommon::Status CheckpointLocked();

  std::string path_;
  WalOptions options_;
  int fd_ = -1;
  mutable std::mutex commit_mu_;
  std::atomic<uint64_t> bytes_logged_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> torn_tail_bytes_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  uint64_t file_bytes_ = 0;  // guarded by commit_mu_
  uint64_t last_lsn_ = 0;    // guarded by commit_mu_
  bool poisoned_ = false;    // guarded by commit_mu_
  std::function<std::string(uint64_t*)> checkpoint_writer_;
};

}  // namespace rdb
