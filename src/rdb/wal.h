// Write-ahead log.
//
// Transactions buffer their records (in sql::Session) and hand the
// concatenated payload to Commit. When durable flush is enabled the
// bytes are written and fsynced — plus the profile's modeled 2004-disk
// penalty — before Commit returns. With flush disabled the bytes are
// written without syncing: the OS flushes them eventually, which is the
// "loose consistency ... at some risk of database corruption" mode the
// paper recommends enabling for RLS deployments (§5.1).
//
// The log is a cost-and-bytes model: it makes the flush-enabled/disabled
// experiments honest. Crash-recovery replay is intentionally out of scope
// (RLI state is soft and reconstructable via soft-state updates; LRCs are
// repopulated by the external publishing service — paper §2/§3.2).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/error.h"

namespace rdb {

class Wal {
 public:
  /// Default recycle threshold: the log wraps rather than growing
  /// without bound (checkpointing stand-in).
  static constexpr uint64_t kRecycleBytes = 256ull << 20;

  /// `path` empty = account bytes but keep no file (in-memory database).
  /// `recycle_bytes` overrides the wrap threshold (tests use tiny
  /// values to exercise the boundary without writing 256 MB).
  explicit Wal(std::string path, uint64_t recycle_bytes = kRecycleBytes);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Writes one transaction's records. When `durable`, the write is
  /// synced and `penalty` of modeled disk time is charged before
  /// returning. Thread-safe; concurrent commits serialize (no group
  /// commit, matching the flat add-rate-vs-threads curve of Fig. 4).
  rlscommon::Status Commit(std::string_view payload, bool durable,
                           std::chrono::microseconds penalty);

  uint64_t bytes_logged() const { return bytes_logged_.load(std::memory_order_relaxed); }
  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  const std::string& path() const { return path_; }

  /// Current write offset in the file (post-wrap position). Bounded by
  /// recycle_bytes + the largest single commit.
  uint64_t file_bytes() const;

  uint64_t recycle_bytes() const { return recycle_bytes_; }

 private:
  std::string path_;
  uint64_t recycle_bytes_;
  int fd_ = -1;
  mutable std::mutex commit_mu_;
  std::atomic<uint64_t> bytes_logged_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> syncs_{0};
  uint64_t file_bytes_ = 0;  // guarded by commit_mu_
};

}  // namespace rdb
