// Write-ahead log.
//
// Transactions buffer their records (in sql::Session) and hand the
// concatenated payload to Commit. When durable flush is enabled the
// bytes are written and fsynced — plus the profile's modeled 2004-disk
// penalty — before Commit returns. With flush disabled the bytes are
// written without syncing: the OS flushes them eventually, which is the
// "loose consistency ... at some risk of database corruption" mode the
// paper recommends enabling for RLS deployments (§5.1).
//
// The log runs in one of two modes:
//
//   * Legacy (default): a cost-and-bytes model that makes the
//     flush-enabled/disabled experiments honest. The file is truncated
//     on open, recycled by seeking back to 0 past the threshold, and
//     unlinked on close. No recovery — this is the profile the paper's
//     Fig. 4 flush curves reproduce against.
//
//   * Recovery (WalOptions::recovery): a real recovery log. Every commit
//     becomes a self-describing frame —
//
//       u32 crc32c   over everything after this field
//       u64 lsn      monotonic, 1-based
//       u8  type     1 = transaction, 2 = checkpoint
//       u32 len      payload length
//       payload      logical record stream (rdb/wal_record.h)
//
//     The file persists across close/reopen. When a commit pushes the
//     file past the recycle threshold, the Wal (after appending that
//     commit's frame — the engine applies mutations before logging, so
//     the snapshot must include the frame's LSN) invokes the checkpoint
//     writer (Database serializes a snapshot of all live rows),
//     persists it atomically to a sidecar file (path + ".ckpt": tmp +
//     fsync + rename), truncates the log to zero and writes a
//     checkpoint frame carrying the pre-wrap LSN — so replay cost stays
//     bounded and `file_bytes()` agrees with replay across the wrap. Recover() scans the log, verifies checksums,
//     truncates the first torn/corrupt frame and everything after it,
//     and hands committed payloads to the caller in LSN order.
//
// Commit scheduling also has two modes:
//
//   * Per-transaction flush (default): concurrent commits serialize on
//     the commit lock and each durable commit pays its own sync plus
//     the full modeled penalty — reproducing the flat
//     add-rate-vs-threads curve of the paper's Fig. 4.
//
//   * Group commit (WalOptions::group_commit): committers enqueue their
//     pre-framed payloads under the group lock (reserving LSNs in
//     queue order) and park on a condition variable. The first parked
//     committer becomes the leader: it drains up to group_max_commits /
//     group_max_bytes of the queue, issues ONE contiguous append for
//     the whole batch, pays ONE fdatasync and ONE modeled-disk penalty
//     (the max of the batch members'), then wakes the group with a
//     shared status. Durable throughput then scales with the number of
//     concurrent committers instead of pinning at 1/sync-latency.
//     `group_max_wait` > 0 lets a leader linger for the batch to fill
//     at low load (latency floor traded for bigger groups). The split
//     CommitBegin/CommitFinish API additionally lets a caller reserve
//     its LSN while holding its own ordering lock and park for the
//     group sync after releasing it.
//
// Failure policy (both modes): a write error or injected short write is
// a typed non-retryable DATA_LOSS error; in recovery mode the partially
// written frame (or batch) is truncated away so the log stays
// consistent. A failed fdatasync poisons the log permanently — after
// fsync fails, the kernel may already have dropped the dirty pages, so
// retrying the sync would silently report durability that does not
// exist (the "fsyncgate" semantics); every later Commit fails fast with
// DATA_LOSS. A failed group sync poisons once and fails every parked
// committer of that batch with DATA_LOSS.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "rdb/storage_fault.h"

namespace rdb {

/// WAL frame types (recovery mode).
inline constexpr uint8_t kWalFrameTxn = 1;
inline constexpr uint8_t kWalFrameCheckpoint = 2;

/// Frame header bytes: crc(4) + lsn(8) + type(1) + len(4).
inline constexpr std::size_t kWalFrameHeaderBytes = 17;

/// One parked group committer (owned by its CommitTicket; queued by
/// pointer). Defined in wal.cpp.
struct WalGroupWaiter;

/// Construction-time options beyond the path.
struct WalOptions {
  uint64_t recycle_bytes = 256ull << 20;
  /// True = framed, persistent, replayable log; false = legacy
  /// cost-and-bytes model.
  bool recovery = false;
  /// Optional fault injector consulted before log writes and syncs.
  StorageFaultInjector* fault = nullptr;
  /// True = leader/follower group commit (one sync per batch); false =
  /// per-transaction flush matching the paper's Fig. 4 cost model.
  bool group_commit = false;
  /// Most commits a leader drains into one batch.
  std::size_t group_max_commits = 64;
  /// Byte cap on a batch (the first frame always fits).
  std::size_t group_max_bytes = 1u << 20;
  /// >0 = a leader lingers up to this long waiting for the batch to
  /// fill before syncing (low-load latency floor for bigger groups).
  std::chrono::microseconds group_max_wait{0};
};

/// Metric hooks fired by the Wal. Plain std::function so rdb keeps no
/// dependency on the obs registry; unset members are skipped.
struct WalObserver {
  /// One call per group batch written: member count + batch bytes.
  std::function<void(uint64_t frames, uint64_t bytes)> group_commit;
  /// One call per group committer as it unparks: wall time spent
  /// waiting for the leader's write+sync, plus the committer's ambient
  /// trace id (0 = none) for exemplars.
  std::function<void(uint64_t wait_us, uint64_t trace_id)> sync_wait;
};

/// What Recover() found in the log.
struct WalRecoverResult {
  uint64_t frames_applied = 0;    // txn frames handed to the applier
  uint64_t last_lsn = 0;          // highest LSN seen (commits continue after)
  uint64_t torn_tail_bytes = 0;   // bytes truncated at the torn/corrupt tail
  uint64_t checksum_failures = 0; // frames rejected by CRC (0 or 1 per scan)
  uint64_t checkpoint_lsn = 0;    // LSN of a checkpoint frame, 0 = none
};

class Wal {
 public:
  /// Default recycle threshold: the log wraps (legacy) or checkpoints
  /// (recovery) rather than growing without bound.
  static constexpr uint64_t kRecycleBytes = 256ull << 20;

  /// A commit split into its enqueue and wait halves. Begin reserves
  /// the LSN and enqueues (group mode) or performs the whole commit
  /// synchronously (per-txn mode); Finish parks for the group result.
  /// The destructor waits out a still-pending group commit so the
  /// queued waiter can never dangle.
  class CommitTicket {
   public:
    CommitTicket();  // out of line: WalGroupWaiter is incomplete here
    ~CommitTicket();
    CommitTicket(const CommitTicket&) = delete;
    CommitTicket& operator=(const CommitTicket&) = delete;

    /// True between a successful group CommitBegin and CommitFinish.
    bool pending() const { return pending_; }

   private:
    friend class Wal;
    Wal* wal_ = nullptr;
    std::unique_ptr<WalGroupWaiter> waiter_;
    rlscommon::Status immediate_;
    bool pending_ = false;
  };

  /// `path` empty = account bytes but keep no file (in-memory database).
  /// `recycle_bytes` overrides the wrap threshold (tests use tiny
  /// values to exercise the boundary without writing 256 MB).
  explicit Wal(std::string path, uint64_t recycle_bytes = kRecycleBytes);
  Wal(std::string path, WalOptions options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Writes one transaction's records. When `durable`, the write is
  /// synced — one sync per commit in per-txn mode, one per batch in
  /// group mode — and the modeled disk `penalty` is charged (per
  /// commit, or once per batch) before returning. Thread-safe.
  /// Fails with DATA_LOSS on a storage error; permanently after a
  /// failed sync (see the failure policy above).
  rlscommon::Status Commit(std::string_view payload, bool durable,
                           std::chrono::microseconds penalty);

  /// First half of Commit: in group mode, reserves the commit's LSN and
  /// enqueues the framed payload without blocking on any disk I/O (the
  /// caller may still hold its own ordering lock); in per-txn mode,
  /// performs the entire commit synchronously. The returned status is
  /// the enqueue verdict — the commit's final status comes from
  /// CommitFinish. `ticket` must outlive the matching CommitFinish.
  rlscommon::Status CommitBegin(std::string_view payload, bool durable,
                                std::chrono::microseconds penalty,
                                CommitTicket* ticket);

  /// Second half of Commit: parks until a leader (possibly this thread)
  /// has written + synced the ticket's batch, and returns the commit's
  /// final status. Safe to call after a failed CommitBegin (returns the
  /// same failure). Idempotent.
  rlscommon::Status CommitFinish(CommitTicket* ticket);

  /// Recovery-mode scan: verifies every frame's checksum, truncates the
  /// log at the first torn or corrupt frame, and calls `apply` for each
  /// committed transaction payload with LSN > `base_lsn` (the snapshot
  /// LSN), in order. Leaves the write position at the end of the last
  /// valid frame so new commits continue the LSN sequence. Idempotent:
  /// a second scan over the repaired log yields the same frames.
  rlscommon::Status Recover(
      uint64_t base_lsn,
      const std::function<rlscommon::Status(uint64_t lsn,
                                            std::string_view payload)>& apply,
      WalRecoverResult* result);

  /// Reads the checkpoint sidecar (path + ".ckpt") if one exists.
  /// `*present` = false (and OK) when there is none; DATA_LOSS when the
  /// sidecar exists but fails its checksum (it is then ignored).
  rlscommon::Status ReadCheckpointSidecar(std::string* payload, uint64_t* lsn,
                                          bool* present) const;

  /// Installs the snapshot producer invoked at recycle-wrap (recovery
  /// mode). Returns the serialized table snapshot; `snapshot_rows`
  /// receives the row count for metrics. Called under the commit lock
  /// with no table locks held, so the writer may take them.
  void SetCheckpointWriter(
      std::function<std::string(uint64_t* snapshot_rows)> writer) {
    checkpoint_writer_ = std::move(writer);
  }

  /// Installs (or clears, with default-constructed hooks) the metric
  /// observer. Call while no commits are in flight.
  void SetObserver(WalObserver observer);

  /// Runtime toggle between per-txn flush and group commit. Call only
  /// while no commits are in flight (benches flip it between phases).
  void SetGroupCommit(bool enabled);
  bool group_commit_enabled() const {
    return group_on_.load(std::memory_order_relaxed);
  }

  /// Group mode defers the checkpoint-at-wrap (a leader must not take
  /// table locks while committers are parked behind it): the batch that
  /// crosses the recycle threshold only marks the checkpoint pending,
  /// and the engine calls this from a context where no transaction is
  /// between applying its mutations and reserving its LSN
  /// (Database::MaybeCheckpoint holds the txn gate exclusively). The
  /// checkpoint LSN is then the highest *reserved* LSN, so queued
  /// frames that land after the wrap replay as no-ops.
  rlscommon::Status CheckpointIfPending();
  bool checkpoint_pending() const {
    return checkpoint_pending_.load(std::memory_order_acquire);
  }

  uint64_t bytes_logged() const { return bytes_logged_.load(std::memory_order_relaxed); }
  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  uint64_t checkpoints() const { return checkpoints_.load(std::memory_order_relaxed); }
  uint64_t torn_tail_bytes() const { return torn_tail_bytes_.load(std::memory_order_relaxed); }
  uint64_t checksum_failures() const { return checksum_failures_.load(std::memory_order_relaxed); }
  /// Batches written by group-commit leaders (one write+sync each).
  uint64_t group_commits() const { return group_commits_.load(std::memory_order_relaxed); }
  /// Total modeled-disk penalty charged, in microseconds. Per-txn mode
  /// charges each durable commit; group mode charges once per sync (the
  /// max of the batch members' penalties) — the cost-model invariant
  /// the penalty unit tests pin.
  uint64_t penalty_us_charged() const { return penalty_us_charged_.load(std::memory_order_relaxed); }
  const std::string& path() const { return path_; }
  bool recovery_enabled() const { return options_.recovery; }

  /// True once a storage failure made the log unusable (failed sync, or
  /// an unrepairable write error). All further commits fail DATA_LOSS.
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// Current write offset in the file (post-wrap position). Bounded by
  /// recycle_bytes + the largest single commit (or batch).
  uint64_t file_bytes() const;

  /// Highest LSN assigned to a frame on disk (recovery mode).
  uint64_t last_lsn() const;

  uint64_t recycle_bytes() const { return options_.recycle_bytes; }

 private:
  /// The per-txn (non-group) commit path: write + sync + penalty under
  /// the commit lock, exactly the paper's serialized cost model.
  rlscommon::Status CommitSync(std::string_view payload, bool durable,
                               std::chrono::microseconds penalty);
  /// Leader loop: drains batches until `own` is done. Called with
  /// group_mu_ held (released around the batch I/O).
  void LeadLocked(std::unique_lock<std::mutex>& lk, WalGroupWaiter* own);
  /// Writes one drained batch: single contiguous append, one sync, one
  /// penalty. Returns the shared status for every batch member.
  rlscommon::Status WriteGroupBatch(const std::vector<WalGroupWaiter*>& batch);
  /// Appends one frame at file_bytes_ (recovery mode, lock held).
  rlscommon::Status WriteFrameLocked(uint8_t type, uint64_t lsn,
                                     std::string_view payload);
  /// fdatasync with fail-stop semantics (lock held).
  rlscommon::Status SyncLocked();
  /// Snapshot + sidecar + truncate + checkpoint frame (lock held).
  /// `ckpt_lsn` is the LSN the sidecar covers: last_lsn_ inline
  /// (per-txn mode), the highest reserved LSN when deferred.
  rlscommon::Status CheckpointLocked(uint64_t ckpt_lsn);

  std::string path_;
  WalOptions options_;
  int fd_ = -1;
  mutable std::mutex commit_mu_;
  std::atomic<uint64_t> bytes_logged_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> torn_tail_bytes_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> group_commits_{0};
  std::atomic<uint64_t> penalty_us_charged_{0};
  std::atomic<bool> poisoned_{false};
  std::atomic<bool> checkpoint_pending_{false};
  uint64_t file_bytes_ = 0;  // guarded by commit_mu_
  uint64_t last_lsn_ = 0;    // guarded by commit_mu_
  std::function<std::string(uint64_t*)> checkpoint_writer_;

  // Group-commit state. Lock order: group_mu_ and commit_mu_ are never
  // held together (the leader releases group_mu_ around the batch I/O).
  std::atomic<bool> group_on_{false};
  mutable std::mutex group_mu_;
  std::condition_variable group_cv_;
  std::deque<WalGroupWaiter*> queue_;  // guarded by group_mu_
  bool leader_active_ = false;         // guarded by group_mu_
  /// Highest LSN handed out at enqueue; >= last_lsn_ (frames not yet
  /// written). Failed batches leave gaps, which replay tolerates.
  std::atomic<uint64_t> lsn_reserve_{0};
  mutable std::mutex observer_mu_;
  WalObserver observer_;  // guarded by observer_mu_
};

}  // namespace rdb
