// Database: a named catalog of tables sharing one WAL and one backend
// profile. This is the object a DSN ("mysql://lrc0") resolves to through
// the dbapi layer.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "rdb/profile.h"
#include "rdb/table.h"
#include "rdb/wal.h"

namespace rdb {

/// What open-time WAL replay did (profile.wal_recovery only). Filled by
/// Recover(); surfaced as wal_* metrics and in GetStats.
struct RecoveryStats {
  bool enabled = false;          // profile had wal_recovery set
  bool ran = false;              // Recover() completed
  uint64_t recovered_txns = 0;   // committed transactions replayed
  uint64_t records_applied = 0;  // row mutations reapplied
  uint64_t snapshot_rows = 0;    // rows restored from the checkpoint sidecar
  uint64_t torn_tail_bytes = 0;  // bytes dropped at the torn/corrupt tail
  uint64_t checksum_failures = 0;
  uint64_t last_lsn = 0;         // commits continue after this LSN
  uint64_t recover_micros = 0;   // wall time of the replay
};

class Database {
 public:
  /// `wal_path` empty = in-memory accounting only. `fault` (optional)
  /// injects storage failures into the WAL (tests; see storage_fault.h).
  Database(std::string name, BackendProfile profile, std::string wal_path = "",
           StorageFaultInjector* fault = nullptr);

  const std::string& name() const { return name_; }
  const BackendProfile& profile() const { return profile_; }
  Wal& wal() { return wal_; }

  /// Toggles the per-commit durable flush at runtime (the knob the paper
  /// flips between the "flush enabled" and "flush disabled" experiments).
  void SetDurableFlush(bool enabled) { profile_.durable_flush = enabled; }
  bool durable_flush() const { return profile_.durable_flush; }

  /// Toggles WAL group commit at runtime (benches flip it between the
  /// legacy flat-curve series and the scaling series). Call only while
  /// no transactions are in flight.
  void SetGroupCommit(bool enabled) {
    profile_.wal_group_commit = enabled;
    wal_.SetGroupCommit(enabled);
  }

  /// Transaction gate (profile.wal_recovery): the engine holds it
  /// shared from a transaction's first logged mutation until the WAL
  /// has reserved the transaction's LSN (CommitBegin). MaybeCheckpoint
  /// takes it exclusively, so the checkpoint snapshot never captures a
  /// mutation whose frame would replay on top of it (LSN above the
  /// checkpoint's).
  void LockTxnGateShared() { txn_gate_.lock_shared(); }
  void UnlockTxnGateShared() { txn_gate_.unlock_shared(); }

  /// Runs a WAL checkpoint deferred by a group-commit wrap, from a
  /// context where no transaction sits between applying its mutations
  /// and reserving its LSN. Cheap no-op when nothing is pending; the
  /// engine calls it after every commit.
  rlscommon::Status MaybeCheckpoint() {
    if (!wal_.checkpoint_pending()) return rlscommon::Status::Ok();
    std::unique_lock<std::shared_mutex> gate(txn_gate_);
    return wal_.CheckpointIfPending();
  }

  rlscommon::Status CreateTable(TableSchema schema);
  rlscommon::Status DropTable(const std::string& table);

  /// Looks up a table; nullptr if absent. Pointers stay valid until
  /// DropTable (tables are never reallocated).
  Table* GetTable(const std::string& table);
  const Table* GetTable(const std::string& table) const;

  std::vector<std::string> TableNames() const;

  /// VACUUMs one table (exclusive lock) — the PostgreSQL garbage
  /// collection the paper measures in §5.2. Works (as a no-op compaction)
  /// under the MySQL profile too.
  rlscommon::Status Vacuum(const std::string& table);

  /// VACUUMs every table.
  void VacuumAll();

  /// Open-time WAL replay (profile.wal_recovery): loads the checkpoint
  /// snapshot if one exists, then reapplies every committed transaction
  /// the log holds beyond it. Call once, after the schema has been
  /// recreated (DDL is not logged) and before serving traffic. A second
  /// call is a no-op — replay is exactly-once per process.
  rlscommon::Status Recover();

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

 private:
  /// Serializes every table's live rows (checkpoint writer; takes the
  /// catalog and per-table shared locks).
  std::string SerializeSnapshot(uint64_t* snapshot_rows);

  /// Reapplies one committed transaction payload during Recover().
  rlscommon::Status ApplyTxnPayload(std::string_view payload,
                                    uint64_t* records_applied);

  std::string name_;
  BackendProfile profile_;
  Wal wal_;
  mutable std::mutex catalog_mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::mutex recover_mu_;
  RecoveryStats recovery_stats_;
  /// See LockTxnGateShared(). Shared holders are short (one statement's
  /// apply + WAL enqueue), so writer starvation is not a concern here.
  std::shared_mutex txn_gate_;
};

}  // namespace rdb
