// Database: a named catalog of tables sharing one WAL and one backend
// profile. This is the object a DSN ("mysql://lrc0") resolves to through
// the dbapi layer.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "rdb/profile.h"
#include "rdb/table.h"
#include "rdb/wal.h"

namespace rdb {

class Database {
 public:
  /// `wal_path` empty = in-memory accounting only.
  Database(std::string name, BackendProfile profile, std::string wal_path = "");

  const std::string& name() const { return name_; }
  const BackendProfile& profile() const { return profile_; }
  Wal& wal() { return wal_; }

  /// Toggles the per-commit durable flush at runtime (the knob the paper
  /// flips between the "flush enabled" and "flush disabled" experiments).
  void SetDurableFlush(bool enabled) { profile_.durable_flush = enabled; }
  bool durable_flush() const { return profile_.durable_flush; }

  rlscommon::Status CreateTable(TableSchema schema);
  rlscommon::Status DropTable(const std::string& table);

  /// Looks up a table; nullptr if absent. Pointers stay valid until
  /// DropTable (tables are never reallocated).
  Table* GetTable(const std::string& table);
  const Table* GetTable(const std::string& table) const;

  std::vector<std::string> TableNames() const;

  /// VACUUMs one table (exclusive lock) — the PostgreSQL garbage
  /// collection the paper measures in §5.2. Works (as a no-op compaction)
  /// under the MySQL profile too.
  rlscommon::Status Vacuum(const std::string& table);

  /// VACUUMs every table.
  void VacuumAll();

 private:
  std::string name_;
  BackendProfile profile_;
  Wal wal_;
  mutable std::mutex catalog_mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace rdb
