// Logical WAL record codec.
//
// A committed transaction's WAL payload is a stream of self-describing
// row-mutation records (the mutations sql::Session buffers per
// statement). Each record carries everything replay needs:
//
//   u8  tag          'I' insert / 'U' update / 'D' delete
//   u16 table_len    + table name bytes
//   row image(s)     each as u16 column count + Value::Encode values
//
// Insert carries the stored row (auto-increment id already assigned, so
// replay re-inserts the same id). Delete carries the old image (replay
// deletes by value). Update carries BOTH images, old then new — the new
// image alone cannot locate the row to replace during replay.
//
// Lives in rdb (not sql) because Database::Recover must decode it and
// sql sits above rdb in the layering.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "rdb/schema.h"

namespace rdb {

enum class WalRecordType : uint8_t {
  kInsert = 'I',
  kUpdate = 'U',
  kDelete = 'D',
};

/// One decoded row mutation.
struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  std::string table;
  Row row;      // new image (insert, update)
  Row old_row;  // old image (update, delete)
};

/// Appenders used by the SQL executor while a transaction buffers its
/// mutations. The same byte stream serves the legacy bytes-only WAL
/// profile (where it is opaque cost accounting) and the recovery profile
/// (where Recover replays it).
void AppendInsertRecord(const std::string& table, const Row& row,
                        std::string* out);
void AppendUpdateRecord(const std::string& table, const Row& old_row,
                        const Row& new_row, std::string* out);
void AppendDeleteRecord(const std::string& table, const Row& old_row,
                        std::string* out);

/// Decodes a full transaction payload. Fails with Protocol on any
/// malformed or trailing bytes (a frame passed its CRC, so damage here
/// means a codec bug, not disk corruption).
rlscommon::Status DecodeWalRecords(std::string_view payload,
                                   std::vector<WalRecord>* out);

/// Checkpoint snapshot codec: the live rows of every table, written to
/// the WAL's sidecar at recycle-wrap and replayed before the remaining
/// log frames on recovery. Rows only — the schema is recreated by the
/// store's InitSchema before Recover runs, so DDL is never logged.
struct TableSnapshot {
  std::string table;
  std::vector<Row> rows;
};

void EncodeSnapshot(const std::vector<TableSnapshot>& tables, std::string* out);
rlscommon::Status DecodeSnapshot(std::string_view payload,
                                 std::vector<TableSnapshot>* out);

}  // namespace rdb
