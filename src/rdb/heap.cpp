#include "rdb/heap.h"

#include <cassert>

namespace rdb {

Page::Page() { data_.reserve(kPageSize); }

bool Page::CanFit(std::size_t len) const {
  if (slots_.size() >= 0xffff) return false;
  const std::size_t used = data_.size() - reclaimable_;
  return used + len + (slots_.size() + 1) * kSlotOverhead <= kPageSize;
}

uint16_t Page::Insert(std::string_view bytes) {
  if (data_.size() + bytes.size() + (slots_.size() + 1) * kSlotOverhead > kPageSize) {
    Compact();
  }
  Slot slot;
  slot.offset = static_cast<uint32_t>(data_.size());
  slot.length = static_cast<uint32_t>(bytes.size());
  slot.state = SlotState::kLive;
  data_.append(bytes);
  slots_.push_back(slot);
  ++live_;
  return static_cast<uint16_t>(slots_.size() - 1);
}

std::string_view Page::Read(uint16_t slot) const {
  const Slot& s = slots_[slot];
  return std::string_view(data_).substr(s.offset, s.length);
}

void Page::MarkDead(uint16_t slot) {
  Slot& s = slots_[slot];
  assert(s.state == SlotState::kLive);
  s.state = SlotState::kDead;
  --live_;
  ++dead_;
}

void Page::MarkFree(uint16_t slot) {
  Slot& s = slots_[slot];
  if (s.state == SlotState::kLive) {
    --live_;
  } else if (s.state == SlotState::kDead) {
    --dead_;
  }
  s.state = SlotState::kFree;
  reclaimable_ += s.length;
}

std::size_t Page::FreeBytes() const {
  const std::size_t used = data_.size() - reclaimable_ + slots_.size() * kSlotOverhead;
  return used >= kPageSize ? 0 : kPageSize - used;
}

void Page::Compact() {
  std::string fresh;
  fresh.reserve(kPageSize);
  for (Slot& s : slots_) {
    if (s.state == SlotState::kFree) {
      s.offset = 0;
      s.length = 0;
      continue;
    }
    const uint32_t new_offset = static_cast<uint32_t>(fresh.size());
    fresh.append(data_, s.offset, s.length);
    s.offset = new_offset;
  }
  data_ = std::move(fresh);
  reclaimable_ = 0;
}

Rid HeapFile::Insert(std::string_view bytes) {
  while (!pages_with_space_.empty()) {
    uint32_t page_id = pages_with_space_.back();
    Page& page = *pages_[page_id];
    if (page.CanFit(bytes.size())) {
      uint16_t slot = page.Insert(bytes);
      ++live_;
      if (page.FreeBytes() < 64) {
        pages_with_space_.pop_back();
        in_space_list_[page_id] = false;
      }
      return Rid{page_id, slot};
    }
    pages_with_space_.pop_back();
    in_space_list_[page_id] = false;
  }
  pages_.push_back(std::make_unique<Page>());
  const uint32_t page_id = static_cast<uint32_t>(pages_.size() - 1);
  pages_with_space_.push_back(page_id);
  in_space_list_.push_back(true);
  uint16_t slot = pages_[page_id]->Insert(bytes);
  ++live_;
  return Rid{page_id, slot};
}

std::string_view HeapFile::Read(Rid rid) const {
  return pages_[rid.page]->Read(rid.slot);
}

SlotState HeapFile::state(Rid rid) const { return pages_[rid.page]->state(rid.slot); }

void HeapFile::MarkDead(Rid rid) {
  pages_[rid.page]->MarkDead(rid.slot);
  --live_;
  ++dead_;
}

void HeapFile::MarkFree(Rid rid) {
  Page& page = *pages_[rid.page];
  const SlotState before = page.state(rid.slot);
  page.MarkFree(rid.slot);
  if (before == SlotState::kLive) {
    --live_;
  } else if (before == SlotState::kDead) {
    --dead_;
  }
  if (page.FreeBytes() >= 64 && !in_space_list_[rid.page]) {
    pages_with_space_.push_back(rid.page);
    in_space_list_[rid.page] = true;
  }
}

void HeapFile::Scan(
    const std::function<bool(Rid, std::string_view, SlotState)>& fn) const {
  for (uint32_t p = 0; p < pages_.size(); ++p) {
    const Page& page = *pages_[p];
    for (uint16_t s = 0; s < page.num_slots(); ++s) {
      const SlotState st = page.state(s);
      if (st == SlotState::kFree) continue;
      if (!fn(Rid{p, s}, page.Read(s), st)) return;
    }
  }
}

void HeapFile::Clear() {
  pages_.clear();
  pages_with_space_.clear();
  in_space_list_.clear();
  live_ = 0;
  dead_ = 0;
}

}  // namespace rdb
