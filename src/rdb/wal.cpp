#include "rdb/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "common/logging.h"
#include "common/trace_context.h"

namespace rdb {
namespace {

using rlscommon::Status;

constexpr uint32_t kSidecarMagic = 0x504B4352u;  // "RCKP" little-endian

void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const char* p) { uint32_t v; std::memcpy(&v, p, 4); return v; }
uint64_t GetU64(const char* p) { uint64_t v; std::memcpy(&v, p, 8); return v; }

/// Builds one frame: crc | lsn | type | len | payload. The CRC covers
/// everything after the CRC field.
std::string BuildFrame(uint8_t type, uint64_t lsn, std::string_view payload) {
  std::string frame(kWalFrameHeaderBytes, '\0');
  PutU64(&frame[4], lsn);
  frame[12] = static_cast<char>(type);
  PutU32(&frame[13], static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  const uint32_t crc = rlscommon::Crc32c(frame.data() + 4, frame.size() - 4);
  PutU32(&frame[0], crc);
  return frame;
}

/// Full positional write with EINTR/partial-write handling. Returns 0 on
/// success, errno on failure; `*written` reports bytes that landed.
int PWriteAll(int fd, const char* p, std::size_t n, uint64_t offset,
              std::size_t* written) {
  *written = 0;
  while (n > 0) {
    ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
    offset += static_cast<uint64_t>(w);
    *written += static_cast<std::size_t>(w);
  }
  return 0;
}

}  // namespace

Wal::Wal(std::string path, uint64_t recycle_bytes)
    : Wal(std::move(path), WalOptions{recycle_bytes, /*recovery=*/false,
                                      /*fault=*/nullptr}) {}

Wal::Wal(std::string path, WalOptions options)
    : path_(std::move(path)), options_(options) {
  if (path_.empty()) return;
  // Legacy mode truncates on open (the log is scratch space); recovery
  // mode must preserve whatever a previous incarnation left behind.
  const int flags =
      options_.recovery ? (O_CREAT | O_RDWR) : (O_CREAT | O_WRONLY | O_TRUNC);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    RLS_WARN("wal") << "cannot open WAL file " << path_ << ": "
                    << std::strerror(errno) << " — falling back to in-memory";
  } else if (options_.recovery) {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end > 0) file_bytes_ = static_cast<uint64_t>(end);
  }
}

Wal::~Wal() {
  if (fd_ >= 0) {
    ::close(fd_);
    // The legacy log is a cost model, not state: remove it. A recovery
    // log (and its checkpoint sidecar) must survive for replay.
    if (!options_.recovery) ::unlink(path_.c_str());
  }
}

Status Wal::WriteFrameLocked(uint8_t type, uint64_t lsn,
                             std::string_view payload) {
  const std::string frame = BuildFrame(type, lsn, payload);
  const uint64_t offset = file_bytes_;
  std::size_t to_write = frame.size();
  if (options_.fault) {
    const auto verdict = options_.fault->OnWrite(offset, frame.size());
    using Kind = StorageFaultInjector::WriteVerdict::Kind;
    if (verdict.kind == Kind::kError) {
      // Nothing reached the disk; the log is still consistent.
      return Status::DataLoss(std::string("WAL write: ") +
                              std::strerror(verdict.error));
    }
    if (verdict.kind == Kind::kShort) {
      std::size_t written = 0;
      (void)PWriteAll(fd_, frame.data(), verdict.allowed, offset, &written);
      if (options_.fault->crashed()) {
        // Simulated power cut: the torn frame stays on disk for recovery
        // to find, and this Wal is dead.
        poisoned_ = true;
        file_bytes_ = offset + written;
        return Status::DataLoss("WAL write: simulated crash after " +
                                std::to_string(written) + " bytes");
      }
      // Disk error mid-frame with the process alive: truncate the torn
      // frame away so the log stays a clean prefix of committed frames.
      if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
        poisoned_ = true;
        return Status::DataLoss(std::string("WAL short write; repair failed: ") +
                                std::strerror(errno));
      }
      return Status::DataLoss(std::string("WAL short write: ") +
                              std::strerror(verdict.error));
    }
    to_write = frame.size();
  }
  std::size_t written = 0;
  const int err = PWriteAll(fd_, frame.data(), to_write, offset, &written);
  if (err != 0) {
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
      poisoned_ = true;
      return Status::DataLoss(std::string("WAL write failed; repair failed: ") +
                              std::strerror(errno));
    }
    return Status::DataLoss(std::string("WAL write: ") + std::strerror(err));
  }
  file_bytes_ = offset + frame.size();
  return Status::Ok();
}

Status Wal::SyncLocked() {
  if (options_.fault) {
    const int err = options_.fault->OnSync();
    if (err != 0) {
      // fsyncgate: a failed sync may have dropped the dirty pages.
      // Retrying would claim durability that does not exist, so the log
      // fails stop.
      poisoned_ = true;
      return Status::DataLoss(std::string("WAL fsync: ") + std::strerror(err));
    }
  }
  if (fd_ >= 0 && ::fdatasync(fd_) != 0) {
    poisoned_ = true;
    return Status::DataLoss(std::string("WAL fsync: ") + std::strerror(errno));
  }
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Wal::CheckpointLocked() {
  // 1. Snapshot the committed state (the writer takes the table locks;
  //    Commit holds none).
  uint64_t snapshot_rows = 0;
  const std::string snapshot =
      checkpoint_writer_ ? checkpoint_writer_(&snapshot_rows) : std::string();
  const uint64_t ckpt_lsn = last_lsn_;

  // 2. Persist the snapshot atomically: tmp + fsync + rename. A crash
  //    before the rename leaves the old sidecar + the full log; after
  //    it, the new sidecar + (possibly still full) log — either way
  //    recovery sees a consistent pair, because frames with LSN <= the
  //    sidecar's are skipped during replay.
  const std::string ckpt_path = path_ + ".ckpt";
  const std::string tmp_path = ckpt_path + ".tmp";
  int cfd = ::open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (cfd < 0) {
    return Status::DataLoss(std::string("WAL checkpoint: open ") + tmp_path +
                            ": " + std::strerror(errno));
  }
  std::string blob(20, '\0');
  PutU32(&blob[0], kSidecarMagic);
  PutU64(&blob[8], ckpt_lsn);
  PutU32(&blob[16], static_cast<uint32_t>(snapshot.size()));
  blob.append(snapshot);
  const uint32_t crc = rlscommon::Crc32c(blob.data() + 8, blob.size() - 8);
  PutU32(&blob[4], crc);
  std::size_t written = 0;
  int err = PWriteAll(cfd, blob.data(), blob.size(), 0, &written);
  if (err == 0 && ::fsync(cfd) != 0) err = errno;
  ::close(cfd);
  if (err == 0 && ::rename(tmp_path.c_str(), ckpt_path.c_str()) != 0) {
    err = errno;
  }
  if (err != 0) {
    ::unlink(tmp_path.c_str());
    // The wrap is aborted but the log is intact; the next commit
    // retries the checkpoint.
    return Status::DataLoss(std::string("WAL checkpoint: ") +
                            std::strerror(err));
  }

  // 3. Recycle the log and stamp the pre-wrap LSN so file_bytes() and
  //    replay agree across the boundary.
  if (::ftruncate(fd_, 0) != 0) {
    poisoned_ = true;
    return Status::DataLoss(std::string("WAL checkpoint truncate: ") +
                            std::strerror(errno));
  }
  file_bytes_ = 0;
  Status s = WriteFrameLocked(kWalFrameCheckpoint, ckpt_lsn, {});
  if (!s.ok()) return s;
  s = SyncLocked();
  if (!s.ok()) return s;
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  RLS_INFO("wal") << "checkpoint at lsn " << ckpt_lsn << " (" << snapshot_rows
                  << " rows, " << snapshot.size() << " snapshot bytes) " << path_;
  return Status::Ok();
}

Status Wal::Commit(std::string_view payload, bool durable,
                   std::chrono::microseconds penalty) {
  commits_.fetch_add(1, std::memory_order_relaxed);
  bytes_logged_.fetch_add(payload.size(), std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(commit_mu_);
  if (poisoned_) {
    return Status::DataLoss("WAL is poisoned after an earlier sync/write "
                            "failure; restart and recover");
  }
  if (fd_ >= 0 && !payload.empty()) {
    if (options_.recovery) {
      Status s = WriteFrameLocked(kWalFrameTxn, last_lsn_ + 1, payload);
      if (!s.ok()) return s;
      ++last_lsn_;
      // Checkpoint AFTER appending this frame, never before: the engine
      // applies a transaction's mutations to the tables before it
      // commits here, so the snapshot below already contains this
      // transaction's effects. Taking it after the append makes the
      // sidecar LSN include this frame — replay skips it and nothing is
      // applied twice. (A pre-append checkpoint would capture the
      // effects under an LSN that excludes them: double-apply on
      // recovery.)
      if (file_bytes_ > options_.recycle_bytes) {
        s = CheckpointLocked();
        if (!s.ok()) return s;
      }
    } else {
      if (file_bytes_ > options_.recycle_bytes) {
        if (::lseek(fd_, 0, SEEK_SET) == 0) file_bytes_ = 0;
      }
      const char* p = payload.data();
      std::size_t n = payload.size();
      if (options_.fault) {
        const auto verdict = options_.fault->OnWrite(file_bytes_, n);
        using Kind = StorageFaultInjector::WriteVerdict::Kind;
        if (verdict.kind != Kind::kOk) {
          if (verdict.kind == Kind::kShort) {
            ssize_t w = ::write(fd_, p, verdict.allowed);
            if (w > 0) file_bytes_ += static_cast<uint64_t>(w);
            if (options_.fault->crashed()) poisoned_ = true;
          }
          return Status::DataLoss(std::string("WAL write: ") +
                                  std::strerror(verdict.error));
        }
      }
      while (n > 0) {
        ssize_t w = ::write(fd_, p, n);
        if (w < 0) {
          if (errno == EINTR) continue;
          return Status::DataLoss(std::string("WAL write: ") +
                                  std::strerror(errno));
        }
        p += w;
        n -= static_cast<std::size_t>(w);
        file_bytes_ += static_cast<uint64_t>(w);
      }
    }
  }
  if (durable) {
    if (fd_ >= 0) {
      Status s = SyncLocked();
      if (!s.ok()) return s;
    } else {
      syncs_.fetch_add(1, std::memory_order_relaxed);
    }
    if (penalty.count() > 0) std::this_thread::sleep_for(penalty);
    // Stage stamp on the ambient request span: everything since the
    // db_txn stamp (taken before this commit) was spent syncing.
    rlscommon::StampHop("wal_sync");
  }
  return Status::Ok();
}

Status Wal::Recover(
    uint64_t base_lsn,
    const std::function<Status(uint64_t lsn, std::string_view payload)>& apply,
    WalRecoverResult* result) {
  *result = WalRecoverResult{};
  if (!options_.recovery) {
    return Status::Unsupported("WAL recovery requires the recovery profile");
  }
  std::lock_guard<std::mutex> lock(commit_mu_);
  result->last_lsn = base_lsn;
  if (fd_ < 0) return Status::Ok();

  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    return Status::DataLoss(std::string("WAL recover: fstat: ") +
                            std::strerror(errno));
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  uint64_t offset = 0;
  uint64_t last_good = 0;
  char header[kWalFrameHeaderBytes];
  std::vector<char> payload;

  while (offset + kWalFrameHeaderBytes <= size) {
    ssize_t r = ::pread(fd_, header, kWalFrameHeaderBytes,
                        static_cast<off_t>(offset));
    if (r != static_cast<ssize_t>(kWalFrameHeaderBytes)) break;  // torn tail
    const uint32_t crc = GetU32(header);
    const uint64_t lsn = GetU64(header + 4);
    const uint8_t type = static_cast<uint8_t>(header[12]);
    const uint32_t len = GetU32(header + 13);
    if (offset + kWalFrameHeaderBytes + len > size) break;  // torn tail
    payload.resize(len);
    if (len > 0) {
      r = ::pread(fd_, payload.data(), len,
                  static_cast<off_t>(offset + kWalFrameHeaderBytes));
      if (r != static_cast<ssize_t>(len)) break;  // torn tail
    }
    uint32_t actual = rlscommon::Crc32cExtend(0, header + 4,
                                              kWalFrameHeaderBytes - 4);
    actual = rlscommon::Crc32cExtend(actual, payload.data(), len);
    if (actual != crc) {
      // Corrupt frame: count it and treat it (and everything after) as
      // the torn tail. A half-written final frame lands here too when
      // its length field survived but its payload did not.
      checksum_failures_.fetch_add(1, std::memory_order_relaxed);
      result->checksum_failures++;
      break;
    }
    if (type == kWalFrameCheckpoint) {
      result->checkpoint_lsn = lsn;
      if (lsn > result->last_lsn) result->last_lsn = lsn;
    } else if (type == kWalFrameTxn) {
      if (lsn > result->last_lsn) result->last_lsn = lsn;
      if (lsn > base_lsn && apply) {
        Status s = apply(lsn, len > 0 ? std::string_view(payload.data(), len)
                                      : std::string_view());
        if (!s.ok()) return s;
        result->frames_applied++;
      }
    } else {
      // Unknown frame type: corruption that happened to pass the CRC of
      // garbage is not possible (the CRC covers the type), so this is a
      // version skew; stop replay here.
      break;
    }
    offset += kWalFrameHeaderBytes + len;
    last_good = offset;
  }

  const uint64_t torn = size - last_good;
  if (torn > 0) {
    if (::ftruncate(fd_, static_cast<off_t>(last_good)) != 0) {
      return Status::DataLoss(std::string("WAL recover: truncate: ") +
                              std::strerror(errno));
    }
    torn_tail_bytes_.fetch_add(torn, std::memory_order_relaxed);
    result->torn_tail_bytes = torn;
  }
  file_bytes_ = last_good;
  last_lsn_ = result->last_lsn;
  return Status::Ok();
}

Status Wal::ReadCheckpointSidecar(std::string* payload, uint64_t* lsn,
                                  bool* present) const {
  *present = false;
  *lsn = 0;
  payload->clear();
  if (path_.empty()) return Status::Ok();
  const std::string ckpt_path = path_ + ".ckpt";
  int cfd = ::open(ckpt_path.c_str(), O_RDONLY);
  if (cfd < 0) return Status::Ok();  // no sidecar: nothing checkpointed yet
  struct stat st {};
  std::string blob;
  if (::fstat(cfd, &st) == 0 && st.st_size >= 20) {
    blob.resize(static_cast<std::size_t>(st.st_size));
    ssize_t r = ::pread(cfd, blob.data(), blob.size(), 0);
    if (r != static_cast<ssize_t>(blob.size())) blob.clear();
  }
  ::close(cfd);
  if (blob.size() < 20 || GetU32(blob.data()) != kSidecarMagic) {
    return Status::DataLoss("WAL checkpoint sidecar " + ckpt_path +
                            " is malformed; ignoring it");
  }
  const uint32_t crc = GetU32(blob.data() + 4);
  const uint64_t ckpt_lsn = GetU64(blob.data() + 8);
  const uint32_t len = GetU32(blob.data() + 16);
  if (blob.size() != 20u + len ||
      rlscommon::Crc32c(blob.data() + 8, blob.size() - 8) != crc) {
    return Status::DataLoss("WAL checkpoint sidecar " + ckpt_path +
                            " failed its checksum; ignoring it");
  }
  *present = true;
  *lsn = ckpt_lsn;
  payload->assign(blob, 20, len);
  return Status::Ok();
}

bool Wal::poisoned() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return poisoned_;
}

uint64_t Wal::file_bytes() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return file_bytes_;
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return last_lsn_;
}

}  // namespace rdb
