#include "rdb/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/trace_context.h"

namespace rdb {

Wal::Wal(std::string path, uint64_t recycle_bytes)
    : path_(std::move(path)), recycle_bytes_(recycle_bytes) {
  if (path_.empty()) return;
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd_ < 0) {
    RLS_WARN("wal") << "cannot open WAL file " << path_ << ": "
                    << std::strerror(errno) << " — falling back to in-memory";
  }
}

Wal::~Wal() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

rlscommon::Status Wal::Commit(std::string_view payload, bool durable,
                              std::chrono::microseconds penalty) {
  commits_.fetch_add(1, std::memory_order_relaxed);
  bytes_logged_.fetch_add(payload.size(), std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(commit_mu_);
  if (fd_ >= 0 && !payload.empty()) {
    if (file_bytes_ > recycle_bytes_) {
      if (::lseek(fd_, 0, SEEK_SET) == 0) file_bytes_ = 0;
    }
    const char* p = payload.data();
    std::size_t n = payload.size();
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return rlscommon::Status::Database(std::string("WAL write: ") +
                                           std::strerror(errno));
      }
      p += w;
      n -= static_cast<std::size_t>(w);
      file_bytes_ += static_cast<uint64_t>(w);
    }
  }
  if (durable) {
    if (fd_ >= 0) ::fdatasync(fd_);
    syncs_.fetch_add(1, std::memory_order_relaxed);
    if (penalty.count() > 0) std::this_thread::sleep_for(penalty);
    // Stage stamp on the ambient request span: everything since the
    // db_txn stamp (taken before this commit) was spent syncing.
    rlscommon::StampHop("wal_sync");
  }
  return rlscommon::Status::Ok();
}

uint64_t Wal::file_bytes() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return file_bytes_;
}

}  // namespace rdb
