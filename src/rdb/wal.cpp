#include "rdb/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "common/logging.h"
#include "common/trace_context.h"

namespace rdb {
namespace {

using rlscommon::Status;

constexpr uint32_t kSidecarMagic = 0x504B4352u;  // "RCKP" little-endian

void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const char* p) { uint32_t v; std::memcpy(&v, p, 4); return v; }
uint64_t GetU64(const char* p) { uint64_t v; std::memcpy(&v, p, 8); return v; }

/// Builds one frame: crc | lsn | type | len | payload. The CRC covers
/// everything after the CRC field.
std::string BuildFrame(uint8_t type, uint64_t lsn, std::string_view payload) {
  std::string frame(kWalFrameHeaderBytes, '\0');
  PutU64(&frame[4], lsn);
  frame[12] = static_cast<char>(type);
  PutU32(&frame[13], static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  const uint32_t crc = rlscommon::Crc32c(frame.data() + 4, frame.size() - 4);
  PutU32(&frame[0], crc);
  return frame;
}

/// Full positional write with EINTR/partial-write handling. Returns 0 on
/// success, errno on failure; `*written` reports bytes that landed.
int PWriteAll(int fd, const char* p, std::size_t n, uint64_t offset,
              std::size_t* written) {
  *written = 0;
  while (n > 0) {
    ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
    offset += static_cast<uint64_t>(w);
    *written += static_cast<std::size_t>(w);
  }
  return 0;
}

}  // namespace

/// One parked committer. The frame is fully built at enqueue time
/// (recovery mode: header+payload with the reserved LSN; legacy mode:
/// the raw payload bytes) so the leader's write is a plain
/// concatenation. `done`/`status` are guarded by the Wal's group_mu_.
struct WalGroupWaiter {
  std::string frame;
  bool durable = false;
  std::chrono::microseconds penalty{0};
  uint64_t lsn = 0;  // 0 = no frame (legacy mode or nothing to write)
  bool done = false;
  rlscommon::Status status;
};

Wal::CommitTicket::CommitTicket() = default;

Wal::CommitTicket::~CommitTicket() {
  // A queued waiter is referenced by the leader until it is marked
  // done; never let it die pending.
  if (pending_ && wal_) (void)wal_->CommitFinish(this);
}

Wal::Wal(std::string path, uint64_t recycle_bytes)
    : Wal(std::move(path), WalOptions{recycle_bytes, /*recovery=*/false,
                                      /*fault=*/nullptr}) {}

Wal::Wal(std::string path, WalOptions options)
    : path_(std::move(path)), options_(options) {
  group_on_.store(options_.group_commit, std::memory_order_relaxed);
  if (path_.empty()) return;
  // Legacy mode truncates on open (the log is scratch space); recovery
  // mode must preserve whatever a previous incarnation left behind.
  const int flags =
      options_.recovery ? (O_CREAT | O_RDWR) : (O_CREAT | O_WRONLY | O_TRUNC);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    RLS_WARN("wal") << "cannot open WAL file " << path_ << ": "
                    << std::strerror(errno) << " — falling back to in-memory";
  } else if (options_.recovery) {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end > 0) file_bytes_ = static_cast<uint64_t>(end);
  }
}

Wal::~Wal() {
  if (fd_ >= 0) {
    ::close(fd_);
    // The legacy log is a cost model, not state: remove it. A recovery
    // log (and its checkpoint sidecar) must survive for replay.
    if (!options_.recovery) ::unlink(path_.c_str());
  }
}

void Wal::SetObserver(WalObserver observer) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  observer_ = std::move(observer);
}

void Wal::SetGroupCommit(bool enabled) {
  // Taking both locks flushes out any in-flight commit on either path;
  // the queue must already be empty (callers toggle between phases).
  std::lock_guard<std::mutex> group_lock(group_mu_);
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  group_on_.store(enabled, std::memory_order_relaxed);
  // Reserved-but-unwritten LSNs from failed batches may be reused by
  // the synchronous path; frames carrying them never reached the disk.
  uint64_t reserve = lsn_reserve_.load(std::memory_order_relaxed);
  if (reserve < last_lsn_) lsn_reserve_.store(last_lsn_, std::memory_order_relaxed);
}

Status Wal::WriteFrameLocked(uint8_t type, uint64_t lsn,
                             std::string_view payload) {
  const std::string frame = BuildFrame(type, lsn, payload);
  const uint64_t offset = file_bytes_;
  std::size_t to_write = frame.size();
  if (options_.fault) {
    const auto verdict = options_.fault->OnWrite(offset, frame.size());
    using Kind = StorageFaultInjector::WriteVerdict::Kind;
    if (verdict.kind == Kind::kError) {
      // Nothing reached the disk; the log is still consistent.
      return Status::DataLoss(std::string("WAL write: ") +
                              std::strerror(verdict.error));
    }
    if (verdict.kind == Kind::kShort) {
      std::size_t written = 0;
      (void)PWriteAll(fd_, frame.data(), verdict.allowed, offset, &written);
      if (options_.fault->crashed()) {
        // Simulated power cut: the torn frame stays on disk for recovery
        // to find, and this Wal is dead.
        poisoned_.store(true, std::memory_order_release);
        file_bytes_ = offset + written;
        return Status::DataLoss("WAL write: simulated crash after " +
                                std::to_string(written) + " bytes");
      }
      // Disk error mid-frame with the process alive: truncate the torn
      // frame away so the log stays a clean prefix of committed frames.
      if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
        poisoned_.store(true, std::memory_order_release);
        return Status::DataLoss(std::string("WAL short write; repair failed: ") +
                                std::strerror(errno));
      }
      return Status::DataLoss(std::string("WAL short write: ") +
                              std::strerror(verdict.error));
    }
    to_write = frame.size();
  }
  std::size_t written = 0;
  const int err = PWriteAll(fd_, frame.data(), to_write, offset, &written);
  if (err != 0) {
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
      poisoned_.store(true, std::memory_order_release);
      return Status::DataLoss(std::string("WAL write failed; repair failed: ") +
                              std::strerror(errno));
    }
    return Status::DataLoss(std::string("WAL write: ") + std::strerror(err));
  }
  file_bytes_ = offset + frame.size();
  return Status::Ok();
}

Status Wal::SyncLocked() {
  if (options_.fault) {
    const int err = options_.fault->OnSync();
    if (err != 0) {
      // fsyncgate: a failed sync may have dropped the dirty pages.
      // Retrying would claim durability that does not exist, so the log
      // fails stop.
      poisoned_.store(true, std::memory_order_release);
      return Status::DataLoss(std::string("WAL fsync: ") + std::strerror(err));
    }
  }
  if (fd_ >= 0 && ::fdatasync(fd_) != 0) {
    poisoned_.store(true, std::memory_order_release);
    return Status::DataLoss(std::string("WAL fsync: ") + std::strerror(errno));
  }
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Wal::CheckpointLocked(uint64_t ckpt_lsn) {
  // 1. Snapshot the committed state (the writer takes the table locks;
  //    Commit holds none).
  uint64_t snapshot_rows = 0;
  const std::string snapshot =
      checkpoint_writer_ ? checkpoint_writer_(&snapshot_rows) : std::string();

  // 2. Persist the snapshot atomically: tmp + fsync + rename. A crash
  //    before the rename leaves the old sidecar + the full log; after
  //    it, the new sidecar + (possibly still full) log — either way
  //    recovery sees a consistent pair, because frames with LSN <= the
  //    sidecar's are skipped during replay.
  const std::string ckpt_path = path_ + ".ckpt";
  const std::string tmp_path = ckpt_path + ".tmp";
  int cfd = ::open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (cfd < 0) {
    return Status::DataLoss(std::string("WAL checkpoint: open ") + tmp_path +
                            ": " + std::strerror(errno));
  }
  std::string blob(20, '\0');
  PutU32(&blob[0], kSidecarMagic);
  PutU64(&blob[8], ckpt_lsn);
  PutU32(&blob[16], static_cast<uint32_t>(snapshot.size()));
  blob.append(snapshot);
  const uint32_t crc = rlscommon::Crc32c(blob.data() + 8, blob.size() - 8);
  PutU32(&blob[4], crc);
  std::size_t written = 0;
  int err = PWriteAll(cfd, blob.data(), blob.size(), 0, &written);
  if (err == 0 && ::fsync(cfd) != 0) err = errno;
  ::close(cfd);
  if (err == 0 && ::rename(tmp_path.c_str(), ckpt_path.c_str()) != 0) {
    err = errno;
  }
  if (err != 0) {
    ::unlink(tmp_path.c_str());
    // The wrap is aborted but the log is intact; the next commit
    // retries the checkpoint.
    return Status::DataLoss(std::string("WAL checkpoint: ") +
                            std::strerror(err));
  }

  // 3. Recycle the log and stamp the covered LSN so file_bytes() and
  //    replay agree across the boundary.
  if (::ftruncate(fd_, 0) != 0) {
    poisoned_.store(true, std::memory_order_release);
    return Status::DataLoss(std::string("WAL checkpoint truncate: ") +
                            std::strerror(errno));
  }
  file_bytes_ = 0;
  Status s = WriteFrameLocked(kWalFrameCheckpoint, ckpt_lsn, {});
  if (!s.ok()) return s;
  s = SyncLocked();
  if (!s.ok()) return s;
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  RLS_INFO("wal") << "checkpoint at lsn " << ckpt_lsn << " (" << snapshot_rows
                  << " rows, " << snapshot.size() << " snapshot bytes) " << path_;
  return Status::Ok();
}

Status Wal::CheckpointIfPending() {
  if (!checkpoint_pending_.load(std::memory_order_acquire)) return Status::Ok();
  // The caller (Database::MaybeCheckpoint) holds the txn gate
  // exclusively: every mutation applied to the tables belongs to a
  // transaction whose LSN is already reserved, so a snapshot stamped
  // with the highest reserved LSN skips exactly those frames at replay
  // — including ones still queued behind a leader.
  std::lock_guard<std::mutex> lock(commit_mu_);
  checkpoint_pending_.store(false, std::memory_order_release);
  if (poisoned_.load(std::memory_order_acquire) || !options_.recovery ||
      fd_ < 0 || file_bytes_ <= options_.recycle_bytes) {
    return Status::Ok();
  }
  const uint64_t ckpt_lsn =
      std::max(last_lsn_, lsn_reserve_.load(std::memory_order_relaxed));
  return CheckpointLocked(ckpt_lsn);
}

Status Wal::Commit(std::string_view payload, bool durable,
                   std::chrono::microseconds penalty) {
  CommitTicket ticket;
  Status s = CommitBegin(payload, durable, penalty, &ticket);
  if (!s.ok()) return s;
  return CommitFinish(&ticket);
}

Status Wal::CommitBegin(std::string_view payload, bool durable,
                        std::chrono::microseconds penalty,
                        CommitTicket* ticket) {
  ticket->wal_ = this;
  ticket->pending_ = false;
  if (!group_on_.load(std::memory_order_relaxed)) {
    ticket->immediate_ = CommitSync(payload, durable, penalty);
    return ticket->immediate_;
  }
  commits_.fetch_add(1, std::memory_order_relaxed);
  bytes_logged_.fetch_add(payload.size(), std::memory_order_relaxed);
  if (poisoned_.load(std::memory_order_acquire)) {
    ticket->immediate_ = Status::DataLoss(
        "WAL is poisoned after an earlier sync/write failure; restart and "
        "recover");
    return ticket->immediate_;
  }
  const bool writes = fd_ >= 0 && !payload.empty();
  if (!writes && !durable) {
    // Nothing to write and nothing to sync: the commit is complete.
    ticket->immediate_ = Status::Ok();
    return ticket->immediate_;
  }
  auto waiter = std::make_unique<WalGroupWaiter>();
  waiter->durable = durable;
  waiter->penalty = penalty;
  {
    std::lock_guard<std::mutex> lock(group_mu_);
    if (writes) {
      if (options_.recovery) {
        // LSNs are reserved in enqueue order under group_mu_, so the
        // FIFO queue keeps the on-disk frames LSN-sorted.
        waiter->lsn = lsn_reserve_.fetch_add(1, std::memory_order_relaxed) + 1;
        waiter->frame = BuildFrame(kWalFrameTxn, waiter->lsn, payload);
      } else {
        waiter->frame.assign(payload);
      }
    }
    queue_.push_back(waiter.get());
  }
  group_cv_.notify_all();  // wake a lingering leader
  ticket->waiter_ = std::move(waiter);
  ticket->pending_ = true;
  return Status::Ok();
}

Status Wal::CommitFinish(CommitTicket* ticket) {
  if (!ticket->pending_) return ticket->immediate_;
  WalGroupWaiter* own = ticket->waiter_.get();
  const auto start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(group_mu_);
    while (!own->done) {
      if (!leader_active_) {
        leader_active_ = true;
        LeadLocked(lock, own);
        leader_active_ = false;
        group_cv_.notify_all();  // hand leadership to a parked follower
      } else {
        group_cv_.wait(lock);
      }
    }
  }
  ticket->pending_ = false;
  const uint64_t wait_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  WalObserver observer;
  {
    std::lock_guard<std::mutex> lock(observer_mu_);
    observer = observer_;
  }
  if (observer.sync_wait) {
    observer.sync_wait(wait_us, rlscommon::CurrentTrace().trace_id);
  }
  // Stage stamp on the ambient request span: everything since the
  // db_txn stamp was spent queued behind + inside the group sync.
  if (own->durable) rlscommon::StampHop("wal_sync");
  return own->status;
}

void Wal::LeadLocked(std::unique_lock<std::mutex>& lock, WalGroupWaiter* own) {
  while (!own->done) {
    if (options_.group_max_wait.count() > 0 &&
        queue_.size() < options_.group_max_commits) {
      // Low-load linger: trade a bounded latency floor for a fuller
      // batch. New enqueues notify, so a full batch cuts this short.
      group_cv_.wait_for(lock, options_.group_max_wait, [this] {
        return queue_.size() >= options_.group_max_commits;
      });
    }
    std::vector<WalGroupWaiter*> batch;
    std::size_t bytes = 0;
    while (!queue_.empty() && batch.size() < options_.group_max_commits) {
      WalGroupWaiter* next = queue_.front();
      if (!batch.empty() && bytes + next->frame.size() > options_.group_max_bytes) {
        break;
      }
      queue_.pop_front();
      batch.push_back(next);
      bytes += next->frame.size();
    }
    if (batch.empty()) {
      // Unreachable while own is queued, but never spin on a surprise.
      group_cv_.wait(lock);
      continue;
    }
    lock.unlock();
    const Status s = WriteGroupBatch(batch);
    lock.lock();
    for (WalGroupWaiter* member : batch) {
      member->status = s;
      member->done = true;
    }
    group_cv_.notify_all();
  }
}

Status Wal::WriteGroupBatch(const std::vector<WalGroupWaiter*>& batch) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (poisoned_.load(std::memory_order_acquire)) {
    return Status::DataLoss(
        "WAL is poisoned after an earlier sync/write failure; restart and "
        "recover");
  }
  std::string buf;
  uint64_t max_lsn = 0;
  bool durable = false;
  std::chrono::microseconds penalty{0};
  for (const WalGroupWaiter* member : batch) {
    buf += member->frame;
    max_lsn = std::max(max_lsn, member->lsn);
    durable = durable || member->durable;
    penalty = std::max(penalty, member->penalty);
  }
  if (fd_ >= 0 && !buf.empty()) {
    if (options_.recovery) {
      // One contiguous append for the whole batch; the fault injector
      // sees it as a single write, so an injected cut can land inside
      // any member frame (recovery then replays the whole-frame
      // prefix).
      const uint64_t offset = file_bytes_;
      std::size_t to_write = buf.size();
      if (options_.fault) {
        const auto verdict = options_.fault->OnWrite(offset, buf.size());
        using Kind = StorageFaultInjector::WriteVerdict::Kind;
        if (verdict.kind == Kind::kError) {
          return Status::DataLoss(std::string("WAL batch write: ") +
                                  std::strerror(verdict.error));
        }
        if (verdict.kind == Kind::kShort) {
          std::size_t written = 0;
          (void)PWriteAll(fd_, buf.data(), verdict.allowed, offset, &written);
          if (options_.fault->crashed()) {
            poisoned_.store(true, std::memory_order_release);
            file_bytes_ = offset + written;
            return Status::DataLoss("WAL batch write: simulated crash after " +
                                    std::to_string(written) + " bytes");
          }
          if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
            poisoned_.store(true, std::memory_order_release);
            return Status::DataLoss(
                std::string("WAL batch short write; repair failed: ") +
                std::strerror(errno));
          }
          // The whole batch is rolled back; its reserved LSNs become a
          // gap, which replay tolerates (it only requires ascending
          // LSNs, not dense ones).
          return Status::DataLoss(std::string("WAL batch short write: ") +
                                  std::strerror(verdict.error));
        }
        to_write = buf.size();
      }
      std::size_t written = 0;
      const int err = PWriteAll(fd_, buf.data(), to_write, offset, &written);
      if (err != 0) {
        if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
          poisoned_.store(true, std::memory_order_release);
          return Status::DataLoss(
              std::string("WAL batch write failed; repair failed: ") +
              std::strerror(errno));
        }
        return Status::DataLoss(std::string("WAL batch write: ") +
                                std::strerror(err));
      }
      file_bytes_ = offset + buf.size();
      if (max_lsn > last_lsn_) last_lsn_ = max_lsn;
      if (file_bytes_ > options_.recycle_bytes) {
        // Defer the checkpoint: the snapshot writer takes table locks,
        // which must not happen while committers are parked behind this
        // leader (see CheckpointIfPending).
        checkpoint_pending_.store(true, std::memory_order_release);
      }
    } else {
      // Legacy cost model: recycle by seeking home, then stream the
      // batch through the same ::write path as the per-txn mode so the
      // kernel file offset stays in step with file_bytes_.
      if (file_bytes_ > options_.recycle_bytes) {
        if (::lseek(fd_, 0, SEEK_SET) == 0) file_bytes_ = 0;
      }
      const char* p = buf.data();
      std::size_t n = buf.size();
      if (options_.fault) {
        const auto verdict = options_.fault->OnWrite(file_bytes_, n);
        using Kind = StorageFaultInjector::WriteVerdict::Kind;
        if (verdict.kind != Kind::kOk) {
          if (verdict.kind == Kind::kShort) {
            ssize_t w = ::write(fd_, p, verdict.allowed);
            if (w > 0) file_bytes_ += static_cast<uint64_t>(w);
            if (options_.fault->crashed()) {
              poisoned_.store(true, std::memory_order_release);
            }
          }
          return Status::DataLoss(std::string("WAL batch write: ") +
                                  std::strerror(verdict.error));
        }
      }
      while (n > 0) {
        ssize_t w = ::write(fd_, p, n);
        if (w < 0) {
          if (errno == EINTR) continue;
          return Status::DataLoss(std::string("WAL batch write: ") +
                                  std::strerror(errno));
        }
        p += w;
        n -= static_cast<std::size_t>(w);
        file_bytes_ += static_cast<uint64_t>(w);
      }
    }
  }
  if (durable) {
    if (fd_ >= 0) {
      Status s = SyncLocked();
      if (!s.ok()) return s;
    } else {
      syncs_.fetch_add(1, std::memory_order_relaxed);
    }
    // ONE modeled-disk penalty per sync — the whole point of group
    // commit. The max of the members' penalties, as the slowest
    // modeled device bounds the batch.
    if (penalty.count() > 0) {
      std::this_thread::sleep_for(penalty);
      penalty_us_charged_.fetch_add(static_cast<uint64_t>(penalty.count()),
                                    std::memory_order_relaxed);
    }
  }
  group_commits_.fetch_add(1, std::memory_order_relaxed);
  WalObserver observer;
  {
    std::lock_guard<std::mutex> obs_lock(observer_mu_);
    observer = observer_;
  }
  if (observer.group_commit) {
    observer.group_commit(static_cast<uint64_t>(batch.size()),
                          static_cast<uint64_t>(buf.size()));
  }
  return Status::Ok();
}

Status Wal::CommitSync(std::string_view payload, bool durable,
                       std::chrono::microseconds penalty) {
  commits_.fetch_add(1, std::memory_order_relaxed);
  bytes_logged_.fetch_add(payload.size(), std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(commit_mu_);
  if (poisoned_.load(std::memory_order_acquire)) {
    return Status::DataLoss("WAL is poisoned after an earlier sync/write "
                            "failure; restart and recover");
  }
  if (fd_ >= 0 && !payload.empty()) {
    if (options_.recovery) {
      Status s = WriteFrameLocked(kWalFrameTxn, last_lsn_ + 1, payload);
      if (!s.ok()) return s;
      ++last_lsn_;
      if (lsn_reserve_.load(std::memory_order_relaxed) < last_lsn_) {
        lsn_reserve_.store(last_lsn_, std::memory_order_relaxed);
      }
      // Checkpoint AFTER appending this frame, never before: the engine
      // applies a transaction's mutations to the tables before it
      // commits here, so the snapshot below already contains this
      // transaction's effects. Taking it after the append makes the
      // sidecar LSN include this frame — replay skips it and nothing is
      // applied twice. (A pre-append checkpoint would capture the
      // effects under an LSN that excludes them: double-apply on
      // recovery.)
      if (file_bytes_ > options_.recycle_bytes) {
        s = CheckpointLocked(last_lsn_);
        if (!s.ok()) return s;
      }
    } else {
      if (file_bytes_ > options_.recycle_bytes) {
        if (::lseek(fd_, 0, SEEK_SET) == 0) file_bytes_ = 0;
      }
      const char* p = payload.data();
      std::size_t n = payload.size();
      if (options_.fault) {
        const auto verdict = options_.fault->OnWrite(file_bytes_, n);
        using Kind = StorageFaultInjector::WriteVerdict::Kind;
        if (verdict.kind != Kind::kOk) {
          if (verdict.kind == Kind::kShort) {
            ssize_t w = ::write(fd_, p, verdict.allowed);
            if (w > 0) file_bytes_ += static_cast<uint64_t>(w);
            if (options_.fault->crashed()) {
              poisoned_.store(true, std::memory_order_release);
            }
          }
          return Status::DataLoss(std::string("WAL write: ") +
                                  std::strerror(verdict.error));
        }
      }
      while (n > 0) {
        ssize_t w = ::write(fd_, p, n);
        if (w < 0) {
          if (errno == EINTR) continue;
          return Status::DataLoss(std::string("WAL write: ") +
                                  std::strerror(errno));
        }
        p += w;
        n -= static_cast<std::size_t>(w);
        file_bytes_ += static_cast<uint64_t>(w);
      }
    }
  }
  if (durable) {
    if (fd_ >= 0) {
      Status s = SyncLocked();
      if (!s.ok()) return s;
    } else {
      syncs_.fetch_add(1, std::memory_order_relaxed);
    }
    if (penalty.count() > 0) {
      std::this_thread::sleep_for(penalty);
      penalty_us_charged_.fetch_add(static_cast<uint64_t>(penalty.count()),
                                    std::memory_order_relaxed);
    }
    // Stage stamp on the ambient request span: everything since the
    // db_txn stamp (taken before this commit) was spent syncing.
    rlscommon::StampHop("wal_sync");
  }
  return Status::Ok();
}

Status Wal::Recover(
    uint64_t base_lsn,
    const std::function<Status(uint64_t lsn, std::string_view payload)>& apply,
    WalRecoverResult* result) {
  *result = WalRecoverResult{};
  if (!options_.recovery) {
    return Status::Unsupported("WAL recovery requires the recovery profile");
  }
  std::lock_guard<std::mutex> lock(commit_mu_);
  result->last_lsn = base_lsn;
  if (fd_ < 0) return Status::Ok();

  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    return Status::DataLoss(std::string("WAL recover: fstat: ") +
                            std::strerror(errno));
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  uint64_t offset = 0;
  uint64_t last_good = 0;
  char header[kWalFrameHeaderBytes];
  std::vector<char> payload;

  while (offset + kWalFrameHeaderBytes <= size) {
    ssize_t r = ::pread(fd_, header, kWalFrameHeaderBytes,
                        static_cast<off_t>(offset));
    if (r != static_cast<ssize_t>(kWalFrameHeaderBytes)) break;  // torn tail
    const uint32_t crc = GetU32(header);
    const uint64_t lsn = GetU64(header + 4);
    const uint8_t type = static_cast<uint8_t>(header[12]);
    const uint32_t len = GetU32(header + 13);
    if (offset + kWalFrameHeaderBytes + len > size) break;  // torn tail
    payload.resize(len);
    if (len > 0) {
      r = ::pread(fd_, payload.data(), len,
                  static_cast<off_t>(offset + kWalFrameHeaderBytes));
      if (r != static_cast<ssize_t>(len)) break;  // torn tail
    }
    uint32_t actual = rlscommon::Crc32cExtend(0, header + 4,
                                              kWalFrameHeaderBytes - 4);
    actual = rlscommon::Crc32cExtend(actual, payload.data(), len);
    if (actual != crc) {
      // Corrupt frame: count it and treat it (and everything after) as
      // the torn tail. A half-written final frame lands here too when
      // its length field survived but its payload did not.
      checksum_failures_.fetch_add(1, std::memory_order_relaxed);
      result->checksum_failures++;
      break;
    }
    if (type == kWalFrameCheckpoint) {
      result->checkpoint_lsn = lsn;
      if (lsn > result->last_lsn) result->last_lsn = lsn;
    } else if (type == kWalFrameTxn) {
      if (lsn > result->last_lsn) result->last_lsn = lsn;
      if (lsn > base_lsn && apply) {
        Status s = apply(lsn, len > 0 ? std::string_view(payload.data(), len)
                                      : std::string_view());
        if (!s.ok()) return s;
        result->frames_applied++;
      }
    } else {
      // Unknown frame type: corruption that happened to pass the CRC of
      // garbage is not possible (the CRC covers the type), so this is a
      // version skew; stop replay here.
      break;
    }
    offset += kWalFrameHeaderBytes + len;
    last_good = offset;
  }

  const uint64_t torn = size - last_good;
  if (torn > 0) {
    if (::ftruncate(fd_, static_cast<off_t>(last_good)) != 0) {
      return Status::DataLoss(std::string("WAL recover: truncate: ") +
                              std::strerror(errno));
    }
    torn_tail_bytes_.fetch_add(torn, std::memory_order_relaxed);
    result->torn_tail_bytes = torn;
  }
  file_bytes_ = last_good;
  last_lsn_ = result->last_lsn;
  if (lsn_reserve_.load(std::memory_order_relaxed) < last_lsn_) {
    lsn_reserve_.store(last_lsn_, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status Wal::ReadCheckpointSidecar(std::string* payload, uint64_t* lsn,
                                  bool* present) const {
  *present = false;
  *lsn = 0;
  payload->clear();
  if (path_.empty()) return Status::Ok();
  const std::string ckpt_path = path_ + ".ckpt";
  int cfd = ::open(ckpt_path.c_str(), O_RDONLY);
  if (cfd < 0) return Status::Ok();  // no sidecar: nothing checkpointed yet
  struct stat st {};
  std::string blob;
  if (::fstat(cfd, &st) == 0 && st.st_size >= 20) {
    blob.resize(static_cast<std::size_t>(st.st_size));
    ssize_t r = ::pread(cfd, blob.data(), blob.size(), 0);
    if (r != static_cast<ssize_t>(blob.size())) blob.clear();
  }
  ::close(cfd);
  if (blob.size() < 20 || GetU32(blob.data()) != kSidecarMagic) {
    return Status::DataLoss("WAL checkpoint sidecar " + ckpt_path +
                            " is malformed; ignoring it");
  }
  const uint32_t crc = GetU32(blob.data() + 4);
  const uint64_t ckpt_lsn = GetU64(blob.data() + 8);
  const uint32_t len = GetU32(blob.data() + 16);
  if (blob.size() != 20u + len ||
      rlscommon::Crc32c(blob.data() + 8, blob.size() - 8) != crc) {
    return Status::DataLoss("WAL checkpoint sidecar " + ckpt_path +
                            " failed its checksum; ignoring it");
  }
  *present = true;
  *lsn = ckpt_lsn;
  payload->assign(blob, 20, len);
  return Status::Ok();
}

uint64_t Wal::file_bytes() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return file_bytes_;
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return last_lsn_;
}

}  // namespace rdb
