// Slotted-page heap storage.
//
// Rows live in fixed-size pages with a slot directory, like the heaps
// under MySQL/PostgreSQL in the paper's testbed. The PostgreSQL profile
// marks deleted rows dead (they keep occupying page space and remain in
// the scan path until VACUUM — the mechanism behind the paper's Fig. 8
// saw-tooth); the MySQL profile frees slots so space is reclaimed by
// in-page compaction immediately.
//
// Not thread-safe: the owning Table serializes access.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rdb {

/// Row identifier: page number + slot within page. Stable until VACUUM
/// rebuilds the heap.
struct Rid {
  uint32_t page = 0;
  uint16_t slot = 0;

  bool operator==(const Rid&) const = default;
  bool operator<(const Rid& o) const {
    return page != o.page ? page < o.page : slot < o.slot;
  }
};

/// Slot state within a page.
enum class SlotState : uint8_t {
  kLive = 0,  // visible row
  kDead = 1,  // deleted but not vacuumed (PostgreSQL profile)
  kFree = 2,  // deleted and space reclaimable (MySQL profile)
};

/// One fixed-capacity page: an append-only data area plus a slot directory.
class Page {
 public:
  static constexpr std::size_t kPageSize = 8192;
  static constexpr std::size_t kSlotOverhead = 8;  // accounting per slot

  Page();

  /// True if a row of `len` bytes fits (possibly after compaction).
  bool CanFit(std::size_t len) const;

  /// Inserts row bytes; compacts first if fragmented space suffices.
  /// Caller must check CanFit. Returns the slot number.
  uint16_t Insert(std::string_view bytes);

  std::string_view Read(uint16_t slot) const;
  SlotState state(uint16_t slot) const { return slots_[slot].state; }

  /// PostgreSQL-style delete: space stays occupied.
  void MarkDead(uint16_t slot);
  /// MySQL-style delete: space becomes reclaimable.
  void MarkFree(uint16_t slot);

  uint16_t num_slots() const { return static_cast<uint16_t>(slots_.size()); }
  std::size_t live_count() const { return live_; }
  std::size_t dead_count() const { return dead_; }

  /// Bytes available for new rows, counting reclaimable fragments.
  std::size_t FreeBytes() const;

 private:
  /// Rewrites the data area dropping kFree slot payloads (slot numbers are
  /// preserved — Rids stay valid).
  void Compact();

  struct Slot {
    uint32_t offset = 0;
    uint32_t length = 0;
    SlotState state = SlotState::kLive;
  };

  std::string data_;            // append area, capacity kPageSize
  std::vector<Slot> slots_;
  std::size_t reclaimable_ = 0; // bytes in kFree slots
  std::size_t live_ = 0;
  std::size_t dead_ = 0;
};

/// Growable collection of pages with a free-space list.
class HeapFile {
 public:
  HeapFile() = default;

  /// Inserts a row, growing the heap as needed.
  Rid Insert(std::string_view bytes);

  /// Reads row bytes; valid for kLive and kDead slots.
  std::string_view Read(Rid rid) const;

  SlotState state(Rid rid) const;

  void MarkDead(Rid rid);
  void MarkFree(Rid rid);

  /// Visits every slot in heap order. The callback returns false to stop.
  /// Dead slots are visited (with state kDead) so scans can model the
  /// cost of skipping dead tuples; kFree slots are skipped.
  void Scan(const std::function<bool(Rid, std::string_view, SlotState)>& fn) const;

  /// Drops all pages (used by Table::Vacuum before re-inserting live rows).
  void Clear();

  std::size_t num_pages() const { return pages_.size(); }
  std::size_t live_count() const { return live_; }
  std::size_t dead_count() const { return dead_; }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<uint32_t> pages_with_space_;
  std::vector<bool> in_space_list_;  // parallel to pages_; avoids duplicates
  std::size_t live_ = 0;
  std::size_t dead_ = 0;
};

}  // namespace rdb
