#include "rdb/schema.h"

namespace rdb {

std::optional<std::size_t> TableSchema::FindColumn(std::string_view column_name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> TableSchema::AutoIncrementColumn() const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].auto_increment) return i;
  }
  return std::nullopt;
}

rlscommon::Status TableSchema::ValidateRow(const Row& row) const {
  using rlscommon::Status;
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " + std::to_string(columns_.size()) +
                                   " for table " + name_);
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in NOT NULL column " + col.name);
      }
      continue;
    }
    if (!v.TypeMatches(col.type)) {
      return Status::InvalidArgument("type mismatch for column " + col.name +
                                     ": got " + v.ToString());
    }
    if (col.type == ColumnType::kVarchar && col.max_length > 0 &&
        v.AsString().size() > col.max_length) {
      return Status::InvalidArgument("value too long for " + col.name + "(" +
                                     std::to_string(col.max_length) + ")");
    }
  }
  return Status::Ok();
}

void EncodeRow(const Row& row, std::string* out) {
  for (const Value& v : row) v.Encode(out);
}

rlscommon::Status DecodeRow(std::string_view data, std::size_t num_columns, Row* out) {
  out->clear();
  out->reserve(num_columns);
  for (std::size_t i = 0; i < num_columns; ++i) {
    Value v;
    auto status = Value::Decode(&data, &v);
    if (!status.ok()) return status;
    out->push_back(std::move(v));
  }
  if (!data.empty()) return rlscommon::Status::Protocol("trailing bytes after row");
  return rlscommon::Status::Ok();
}

}  // namespace rdb
