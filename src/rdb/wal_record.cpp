#include "rdb/wal_record.h"

#include <cstring>

#include "rdb/value.h"

namespace rdb {
namespace {

using rlscommon::Status;

void AppendU16(uint16_t v, std::string* out) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  out->append(buf, 2);
}

bool ReadU16(std::string_view* data, uint16_t* v) {
  if (data->size() < 2) return false;
  std::memcpy(v, data->data(), 2);
  data->remove_prefix(2);
  return true;
}

void AppendImage(const Row& row, std::string* out) {
  AppendU16(static_cast<uint16_t>(row.size()), out);
  for (const Value& v : row) v.Encode(out);
}

Status ReadImage(std::string_view* data, Row* out) {
  uint16_t columns = 0;
  if (!ReadU16(data, &columns)) {
    return Status::Protocol("WAL record: truncated column count");
  }
  out->clear();
  out->reserve(columns);
  for (uint16_t c = 0; c < columns; ++c) {
    Value v;
    Status s = Value::Decode(data, &v);
    if (!s.ok()) return s;
    out->push_back(std::move(v));
  }
  return Status::Ok();
}

void AppendHeader(WalRecordType type, const std::string& table,
                  std::string* out) {
  out->push_back(static_cast<char>(type));
  AppendU16(static_cast<uint16_t>(table.size()), out);
  out->append(table);
}

}  // namespace

void AppendInsertRecord(const std::string& table, const Row& row,
                        std::string* out) {
  AppendHeader(WalRecordType::kInsert, table, out);
  AppendImage(row, out);
}

void AppendUpdateRecord(const std::string& table, const Row& old_row,
                        const Row& new_row, std::string* out) {
  AppendHeader(WalRecordType::kUpdate, table, out);
  AppendImage(old_row, out);
  AppendImage(new_row, out);
}

void AppendDeleteRecord(const std::string& table, const Row& old_row,
                        std::string* out) {
  AppendHeader(WalRecordType::kDelete, table, out);
  AppendImage(old_row, out);
}

void EncodeSnapshot(const std::vector<TableSnapshot>& tables,
                    std::string* out) {
  char count[4];
  const uint32_t n = static_cast<uint32_t>(tables.size());
  std::memcpy(count, &n, 4);
  out->append(count, 4);
  for (const TableSnapshot& t : tables) {
    AppendU16(static_cast<uint16_t>(t.table.size()), out);
    out->append(t.table);
    char rows[8];
    const uint64_t r = t.rows.size();
    std::memcpy(rows, &r, 8);
    out->append(rows, 8);
    for (const Row& row : t.rows) AppendImage(row, out);
  }
}

Status DecodeSnapshot(std::string_view payload,
                      std::vector<TableSnapshot>* out) {
  out->clear();
  uint32_t table_count = 0;
  if (payload.size() < 4) return Status::Protocol("snapshot: truncated header");
  std::memcpy(&table_count, payload.data(), 4);
  payload.remove_prefix(4);
  out->reserve(table_count);
  for (uint32_t t = 0; t < table_count; ++t) {
    TableSnapshot snap;
    uint16_t name_len = 0;
    if (!ReadU16(&payload, &name_len) || payload.size() < name_len + 8u) {
      return Status::Protocol("snapshot: truncated table header");
    }
    snap.table.assign(payload.substr(0, name_len));
    payload.remove_prefix(name_len);
    uint64_t row_count = 0;
    std::memcpy(&row_count, payload.data(), 8);
    payload.remove_prefix(8);
    snap.rows.reserve(static_cast<std::size_t>(row_count));
    for (uint64_t r = 0; r < row_count; ++r) {
      Row row;
      Status s = ReadImage(&payload, &row);
      if (!s.ok()) return s;
      snap.rows.push_back(std::move(row));
    }
    out->push_back(std::move(snap));
  }
  if (!payload.empty()) return Status::Protocol("snapshot: trailing bytes");
  return Status::Ok();
}

Status DecodeWalRecords(std::string_view payload,
                        std::vector<WalRecord>* out) {
  out->clear();
  while (!payload.empty()) {
    WalRecord rec;
    const char tag = payload.front();
    payload.remove_prefix(1);
    uint16_t table_len = 0;
    if (!ReadU16(&payload, &table_len) || payload.size() < table_len) {
      return Status::Protocol("WAL record: truncated table name");
    }
    rec.table.assign(payload.substr(0, table_len));
    payload.remove_prefix(table_len);
    Status s;
    switch (tag) {
      case 'I':
        rec.type = WalRecordType::kInsert;
        s = ReadImage(&payload, &rec.row);
        break;
      case 'U':
        rec.type = WalRecordType::kUpdate;
        s = ReadImage(&payload, &rec.old_row);
        if (s.ok()) s = ReadImage(&payload, &rec.row);
        break;
      case 'D':
        rec.type = WalRecordType::kDelete;
        s = ReadImage(&payload, &rec.old_row);
        break;
      default:
        return Status::Protocol(std::string("WAL record: unknown tag '") + tag +
                                "'");
    }
    if (!s.ok()) return s;
    out->push_back(std::move(rec));
  }
  return Status::Ok();
}

}  // namespace rdb
