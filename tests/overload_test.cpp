// Overload protection acceptance tests: under sustained storm load the
// server sheds with UNAVAILABLE + retry-after instead of collapsing its
// queues, admitted requests keep a bounded tail, per-DN rate limits
// isolate tenants, and the priority lane keeps soft-state and
// monitoring traffic flowing through a client storm.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "net/rpc.h"
#include "obs/span_recorder.h"
#include "rls/admission.h"
#include "rls/client.h"
#include "rls/protocol.h"
#include "rls/rls_server.h"

namespace rls {
namespace {

using rlscommon::ErrorCode;
using rlscommon::Status;

net::ClientOptions NoRetryClient(const std::string& dn = "") {
  net::ClientOptions options;
  options.credential.dn = dn;
  options.retry.max_attempts = 1;
  return options;
}

TEST(OverloadTest, QueueFullShedsWithRetryAfter) {
  net::Network network;
  net::ServerOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  options.shed_retry_after = std::chrono::milliseconds(25);
  net::RpcServer server(&network, "srv:shed", options,
                        [](const gsi::AuthContext&, uint16_t,
                           const std::string&, std::string*) {
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(20));
                          return Status::Ok();
                        });
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> ok{0}, shed{0}, hinted{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      std::unique_ptr<net::RpcClient> rpc;
      ASSERT_TRUE(
          net::RpcClient::Connect(&network, "srv:shed", NoRetryClient(), &rpc)
              .ok());
      for (int i = 0; i < 5; ++i) {
        Status s = rpc->Call(77, "", nullptr);
        if (s.ok()) {
          ok.fetch_add(1);
        } else {
          ASSERT_EQ(s.code(), ErrorCode::kUnavailable) << s.ToString();
          shed.fetch_add(1);
          if (s.retry_after() >= std::chrono::milliseconds(25)) {
            hinted.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // 8 clients against 1 worker + 1 queue slot: work got done AND load
  // got shed, and every shed carried the configured retry-after hint.
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(shed.load(), 0);
  EXPECT_EQ(hinted.load(), shed.load());
  EXPECT_EQ(server.requests_shed(), static_cast<uint64_t>(shed.load()));
  server.Stop();
}

TEST(OverloadTest, AdmittedTailStaysBounded) {
  net::Network network;
  net::ServerOptions options;
  options.workers = 2;
  options.queue_depth = 2;
  net::RpcServer server(&network, "srv:tail", options,
                        [](const gsi::AuthContext&, uint16_t,
                           const std::string&, std::string*) {
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(2));
                          return Status::Ok();
                        });
  ASSERT_TRUE(server.Start().ok());

  // Unloaded baseline: one client, no contention.
  rlscommon::LatencyHistogram unloaded;
  {
    std::unique_ptr<net::RpcClient> rpc;
    ASSERT_TRUE(
        net::RpcClient::Connect(&network, "srv:tail", NoRetryClient(), &rpc)
            .ok());
    for (int i = 0; i < 20; ++i) {
      rlscommon::Stopwatch timer;
      ASSERT_TRUE(rpc->Call(77, "", nullptr).ok());
      unloaded.Record(timer.Elapsed());
    }
  }

  // Storm: 12 clients versus 2 workers + 2 queue slots. Rejected calls
  // don't count — the promise is about the requests the server chose
  // to admit.
  rlscommon::LatencyHistogram admitted;
  std::mutex admitted_mu;
  std::atomic<int> shed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 12; ++c) {
    clients.emplace_back([&] {
      std::unique_ptr<net::RpcClient> rpc;
      ASSERT_TRUE(
          net::RpcClient::Connect(&network, "srv:tail", NoRetryClient(), &rpc)
              .ok());
      for (int i = 0; i < 25; ++i) {
        rlscommon::Stopwatch timer;
        Status s = rpc->Call(77, "", nullptr);
        if (s.ok()) {
          std::lock_guard<std::mutex> lock(admitted_mu);
          admitted.Record(timer.Elapsed());
        } else {
          shed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_GT(shed.load(), 0);  // the storm did exceed capacity
  const auto base = unloaded.GetSnapshot();
  const auto storm = admitted.GetSnapshot();
  ASSERT_GT(storm.count, 0u);
  // Acceptance: admitted p99 within 5x of the unloaded p99. An admitted
  // request waits for at most queue_depth/workers service times, so the
  // bound holds structurally; the baseline is floored at one 4096us
  // histogram bucket to keep an unrealistically fast unloaded
  // measurement from turning scheduler noise into a flake.
  const uint64_t baseline_p99 = std::max<uint64_t>(base.p99_us, 4096);
  EXPECT_LE(storm.p99_us, 5 * baseline_p99)
      << "unloaded " << unloaded.ToString() << " vs admitted "
      << admitted.ToString();
}

TEST(OverloadTest, PerDnRateLimitIsolatesTenants) {
  net::Network network;
  dbapi::Environment env;
  RlsServerConfig config;
  config.address = "rls:ratelimit";
  config.lrc.enabled = true;
  config.lrc.dsn = "mysql://ratelimit_lrc";
  ASSERT_TRUE(env.CreateDatabase(config.lrc.dsn).ok());
  config.limits.workers = 2;
  config.limits.queue_depth = 256;  // ample: only the buckets shed here
  config.limits.per_dn_rate = 50;
  config.limits.per_dn_burst = 10;
  config.limits.retry_after = std::chrono::milliseconds(10);
  RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());

  std::string query;
  NameQueryRequest req;
  req.name = "nosuch";
  req.Encode(&query);

  // The heavy tenant burns through its burst; most of its traffic sheds
  // with a usable retry-after hint.
  std::unique_ptr<net::RpcClient> heavy;
  ASSERT_TRUE(net::RpcClient::Connect(&network, config.address,
                                      NoRetryClient("/CN=heavy"), &heavy)
                  .ok());
  int heavy_shed = 0;
  for (int i = 0; i < 100; ++i) {
    std::string response;
    Status s = heavy->Call(kLrcExists, query, &response);
    if (s.code() == ErrorCode::kUnavailable) {
      EXPECT_GT(s.retry_after().count(), 0);
      ++heavy_shed;
    }
  }
  EXPECT_GT(heavy_shed, 50);

  // A different DN has its own untouched bucket: the heavy tenant's
  // storm must not cost the light tenant a single request.
  std::unique_ptr<net::RpcClient> light;
  ASSERT_TRUE(net::RpcClient::Connect(&network, config.address,
                                      NoRetryClient("/CN=light"), &light)
                  .ok());
  for (int i = 0; i < 5; ++i) {
    std::string response;
    Status s = light->Call(kLrcExists, query, &response);
    EXPECT_NE(s.code(), ErrorCode::kUnavailable) << s.ToString();
  }

  // Sheds are visible to operators through server stats.
  EXPECT_GE(server.Stats().requests_shed, static_cast<uint64_t>(heavy_shed));
  server.Stop();
}

TEST(OverloadTest, PriorityLaneSurvivesClientStorm) {
  net::Network network;
  dbapi::Environment env;
  RlsServerConfig config;
  config.address = "rls:storm";
  config.rli.enabled = true;
  config.rli.dsn = "mysql://storm_rli";
  ASSERT_TRUE(env.CreateDatabase(config.rli.dsn).ok());
  config.limits.workers = 2;
  config.limits.queue_depth = 2;  // normal lane sheds under the storm
  RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());

  std::string query;
  NameQueryRequest req;
  req.name = "stormed";
  req.Encode(&query);

  std::atomic<bool> stop{false};
  std::vector<std::thread> storm;
  for (int c = 0; c < 8; ++c) {
    storm.emplace_back([&] {
      std::unique_ptr<net::RpcClient> rpc;
      ASSERT_TRUE(net::RpcClient::Connect(&network, config.address,
                                          NoRetryClient("/CN=storm"), &rpc)
                      .ok());
      while (!stop.load()) {
        std::string response;
        (void)rpc->Call(kRliQueryLfn, query, &response);
      }
    });
  }

  // While the storm runs: soft-state updates and monitoring probes ride
  // the priority lane and must never be shed.
  std::unique_ptr<net::RpcClient> lrc;
  ASSERT_TRUE(net::RpcClient::Connect(&network, config.address,
                                      NoRetryClient("/CN=lrc"), &lrc)
                  .ok());
  std::unique_ptr<net::RpcClient> probe;
  ASSERT_TRUE(net::RpcClient::Connect(&network, config.address,
                                      NoRetryClient("/CN=monitor"), &probe)
                  .ok());
  GetStatsResponse snapshot;
  for (int i = 0; i < 30; ++i) {
    IncrementalUpdate update;
    update.lrc_url = "lrc:storm-source";
    update.added.push_back("ss-name-" + std::to_string(i));
    std::string payload;
    update.Encode(&payload);
    ASSERT_TRUE(lrc->Call(kSsIncremental, payload, nullptr).ok())
        << "soft-state update " << i << " was shed";

    std::string stats_payload;
    ASSERT_TRUE(probe->Call(kServerGetStats, "", &stats_payload).ok())
        << "GetStats probe " << i << " was shed";
    ASSERT_TRUE(GetStatsResponse::Decode(stats_payload, &snapshot).ok());
  }
  stop.store(true);
  for (auto& t : storm) t.join();

  // Every soft-state update landed in the index despite the storm.
  std::vector<std::string> lrcs;
  ASSERT_TRUE(server.rli_relational()->Query("ss-name-29", &lrcs).ok());
  ASSERT_EQ(lrcs.size(), 1u);
  EXPECT_EQ(lrcs[0], "lrc:storm-source");
  // And the shed counter made it into the introspection snapshot.
  EXPECT_GT(snapshot.vitals.requests_shed, 0u);
  server.Stop();
}

TEST(OverloadTest, FlightRecorderShowsQueueWaitDominatingUnderStorm) {
  // The flight recorder is process-global; start clean and leave clean.
  obs::SpanRecorder::Global().Enable(4096);
  obs::SpanRecorder::Global().Clear();

  net::Network network;
  dbapi::Environment env;
  RlsServerConfig config;
  config.address = "rls:tracedstorm";
  config.lrc.enabled = true;
  config.lrc.dsn = "mysql://tracedstorm_lrc";
  ASSERT_TRUE(env.CreateDatabase(config.lrc.dsn).ok());
  // One worker, a deep queue, no shedding: every admitted request of the
  // storm spends most of its life waiting for the single worker.
  config.limits.workers = 1;
  config.limits.queue_depth = 256;
  config.obs.trace_capacity = 4096;
  RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());

  std::string query;
  NameQueryRequest req;
  req.name = "stormed";
  req.Encode(&query);

  std::vector<std::thread> storm;
  for (int c = 0; c < 8; ++c) {
    storm.emplace_back([&] {
      std::unique_ptr<net::RpcClient> rpc;
      ASSERT_TRUE(net::RpcClient::Connect(&network, config.address,
                                          NoRetryClient("/CN=storm"), &rpc)
                      .ok());
      for (int i = 0; i < 40; ++i) {
        std::string response;
        (void)rpc->Call(kLrcExists, query, &response);
      }
    });
  }
  for (auto& t : storm) t.join();

  // Post-mortem, over the wire: fetch the storm's slowest lrc_exists
  // traces from the flight recorder's slow log.
  std::unique_ptr<LrcClient> admin;
  ASSERT_TRUE(
      LrcClient::Connect(&network, config.address, {}, &admin).ok());
  GetTracesRequest filter;
  filter.method = "lrc_exists";
  filter.source = kTraceSourceSlowLog;
  GetTracesResponse traces;
  ASSERT_TRUE(admin->GetTraces(filter, &traces).ok());
  ASSERT_FALSE(traces.spans.empty());

  // The stage breakdown must tell the overload story: among the slowest
  // storm-era traces, queue_wait (exec start minus admission) dominates
  // the wall time of at least one. Scanning the returned slow log — not
  // just the single slowest span — keeps the assertion meaningful on an
  // oversubscribed CI box, where the very slowest request can owe its
  // rank to a preemption gap in some other stage.
  uint64_t best_queue_wait_us = 0, best_duration_us = 0;
  bool saw_queue_wait = false;
  for (const TraceSpan& span : traces.spans) {
    uint64_t admission_us = 0, queue_wait_us = 0;
    for (const TraceHop& hop : span.hops) {
      if (hop.name == "admission") admission_us = hop.offset_us;
      if (hop.name == "queue_wait") {
        queue_wait_us = hop.offset_us - admission_us;
        saw_queue_wait = true;
      }
    }
    if (span.duration_us > 0 &&
        queue_wait_us * best_duration_us >= best_queue_wait_us * span.duration_us) {
      best_queue_wait_us = queue_wait_us;
      best_duration_us = span.duration_us;
    }
  }
  ASSERT_TRUE(saw_queue_wait);
  ASSERT_GT(best_duration_us, 0u);
  EXPECT_GE(best_queue_wait_us * 2, best_duration_us)
      << "best queue_wait fraction: " << best_queue_wait_us << "us of "
      << best_duration_us << "us total";

  server.Stop();
  obs::SpanRecorder::Global().Disable();
  obs::SpanRecorder::Global().Clear();
}

}  // namespace
}  // namespace rls
