// UpdateManager behaviour beyond the happy path: unreachable targets,
// runtime target management, partitioned immediate mode, stats.
#include <gtest/gtest.h>

#include <atomic>

#include "rls/client.h"
#include "rls/rls_server.h"

namespace rls {
namespace {

using rlscommon::ErrorCode;

class UpdateManagerTest : public ::testing::Test {
 protected:
  static std::string Unique(const std::string& base) {
    static std::atomic<int> counter{0};
    return base + std::to_string(counter.fetch_add(1));
  }

  RlsServer* StartLrc(UpdateConfig update) {
    RlsServerConfig config;
    config.address = Unique("um-lrc:");
    config.lrc.enabled = true;
    config.lrc.dsn = "mysql://" + Unique("um_lrc");
    config.lrc.update = std::move(update);
    EXPECT_TRUE(env_.CreateDatabase(config.lrc.dsn).ok());
    servers_.push_back(std::make_unique<RlsServer>(&network_, config, &env_));
    EXPECT_TRUE(servers_.back()->Start().ok());
    return servers_.back().get();
  }

  RlsServer* StartRli(const std::string& address) {
    RlsServerConfig config;
    config.address = address;
    config.rli.enabled = true;
    config.rli.dsn = "mysql://" + Unique("um_rli");
    EXPECT_TRUE(env_.CreateDatabase(config.rli.dsn).ok());
    servers_.push_back(std::make_unique<RlsServer>(&network_, config, &env_));
    EXPECT_TRUE(servers_.back()->Start().ok());
    return servers_.back().get();
  }

  net::Network network_;
  dbapi::Environment env_;
  std::vector<std::unique_ptr<RlsServer>> servers_;
};

TEST_F(UpdateManagerTest, UnreachableTargetReportsAndRecovers) {
  UpdateConfig update;
  update.mode = UpdateMode::kFull;
  update.targets.push_back(UpdateTarget{"um-rli:late"});
  RlsServer* lrc = StartLrc(update);
  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("x", "p").ok());

  // RLI not up yet: the update fails cleanly with the retryable
  // transport code (the server may come up later).
  EXPECT_EQ(lrc->update_manager()->ForceFullUpdate().code(),
            ErrorCode::kUnavailable);

  // ...and succeeds once the RLI appears (lazy reconnect).
  RlsServer* rli = StartRli("um-rli:late");
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());
  std::vector<std::string> owners;
  EXPECT_TRUE(rli->rli_relational()->Query("x", &owners).ok());
}

TEST_F(UpdateManagerTest, AddAndRemoveTargetsAtRuntime) {
  UpdateConfig update;
  update.mode = UpdateMode::kFull;
  RlsServer* lrc = StartLrc(update);
  RlsServer* rli_a = StartRli("um-rli:a");
  RlsServer* rli_b = StartRli("um-rli:b");
  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("y", "p").ok());

  lrc->update_manager()->AddTarget(UpdateTarget{"um-rli:a"});
  lrc->update_manager()->AddTarget(UpdateTarget{"um-rli:a"});  // dedup
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());
  std::vector<std::string> owners;
  EXPECT_TRUE(rli_a->rli_relational()->Query("y", &owners).ok());
  EXPECT_FALSE(rli_b->rli_relational()->Query("y", &owners).ok());
  EXPECT_EQ(lrc->update_manager()->stats().full_updates_sent, 1u);

  lrc->update_manager()->RemoveTarget("um-rli:a");
  lrc->update_manager()->AddTarget(UpdateTarget{"um-rli:b"});
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());
  EXPECT_TRUE(rli_b->rli_relational()->Query("y", &owners).ok());
}

TEST_F(UpdateManagerTest, RliAddThroughClientWiresUpdates) {
  UpdateConfig update;
  update.mode = UpdateMode::kImmediate;
  RlsServer* lrc = StartLrc(update);
  RlsServer* rli = StartRli("um-rli:viaclient");

  std::unique_ptr<LrcClient> client;
  ASSERT_TRUE(LrcClient::Connect(&network_, lrc->address(), {}, &client).ok());
  ASSERT_TRUE(client->RliAdd("um-rli:viaclient").ok());
  ASSERT_TRUE(client->Create("wired", "p").ok());
  ASSERT_TRUE(client->ForceUpdate().ok());
  std::vector<std::string> owners;
  EXPECT_TRUE(rli->rli_relational()->Query("wired", &owners).ok());

  // Removing the RLI stops future updates to it.
  ASSERT_TRUE(client->RliRemove("um-rli:viaclient").ok());
  ASSERT_TRUE(client->Create("unwired", "p").ok());
  ASSERT_TRUE(client->ForceUpdate().ok());
  EXPECT_FALSE(rli->rli_relational()->Query("unwired", &owners).ok());
}

TEST_F(UpdateManagerTest, PartitionedImmediateModeFiltersIncrementals) {
  RlsServer* rli_a = StartRli("um-rli:pa");
  RlsServer* rli_b = StartRli("um-rli:pb");
  UpdateConfig update;
  update.mode = UpdateMode::kImmediate;
  update.targets.push_back(
      UpdateTarget{"um-rli:pa", net::LinkModel::Loopback(), {"lfn://a/*"}});
  update.targets.push_back(
      UpdateTarget{"um-rli:pb", net::LinkModel::Loopback(), {"lfn://b/*"}});
  RlsServer* lrc = StartLrc(update);

  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("lfn://a/1", "p1").ok());
  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("lfn://b/1", "p2").ok());
  ASSERT_TRUE(lrc->update_manager()->FlushImmediate().ok());

  std::vector<std::string> owners;
  EXPECT_TRUE(rli_a->rli_relational()->Query("lfn://a/1", &owners).ok());
  EXPECT_FALSE(rli_a->rli_relational()->Query("lfn://b/1", &owners).ok());
  EXPECT_TRUE(rli_b->rli_relational()->Query("lfn://b/1", &owners).ok());
}

TEST_F(UpdateManagerTest, StatsAccumulate) {
  RlsServer* rli = StartRli("um-rli:stats");
  (void)rli;
  UpdateConfig update;
  update.mode = UpdateMode::kImmediate;
  update.targets.push_back(UpdateTarget{"um-rli:stats"});
  RlsServer* lrc = StartLrc(update);

  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("s1", "p").ok());
  ASSERT_TRUE(lrc->update_manager()->FlushImmediate().ok());
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());
  UpdateStats stats = lrc->update_manager()->stats();
  EXPECT_EQ(stats.incremental_updates_sent, 1u);
  EXPECT_EQ(stats.full_updates_sent, 1u);
  EXPECT_GE(stats.names_sent, 2u);  // 1 incremental + 1 full
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GE(stats.last_update_seconds, 0.0);
}

TEST_F(UpdateManagerTest, ForceUpdateWithoutModeFails) {
  UpdateConfig update;  // kNone
  RlsServer* lrc = StartLrc(update);
  EXPECT_EQ(lrc->update_manager()->ForceFullUpdate().code(),
            ErrorCode::kInvalidArgument);
  // Immediate flush is a no-op without pending changes.
  EXPECT_TRUE(lrc->update_manager()->FlushImmediate().ok());
}

}  // namespace
}  // namespace rls
