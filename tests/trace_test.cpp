// Request-lifecycle tracing: span recorder ring/wrap-around/filters,
// the per-(component,name) slow log, ambient hop stamping, Chrome-trace
// export, the rate-limited logging helper, histogram exemplars, and the
// kServerGetTraces flight-recorder RPC end to end.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/trace_context.h"
#include "obs/metrics.h"
#include "obs/span_recorder.h"
#include "obs/trace.h"
#include "rls/client.h"
#include "rls/protocol.h"
#include "rls/rls_server.h"

namespace obs {
namespace {

/// The recorder is process-global; every test that enables it restores
/// the disabled, empty default so tests stay order-independent.
class RecorderGuard {
 public:
  explicit RecorderGuard(std::size_t capacity) {
    SpanRecorder::Global().Enable(capacity);
    SpanRecorder::Global().Clear();
  }
  ~RecorderGuard() {
    SpanRecorder::Global().Disable();
    SpanRecorder::Global().Clear();
  }
};

CompletedSpan MakeSpan(std::string name, uint64_t trace_id, uint64_t duration_us,
                       std::string component = "test") {
  CompletedSpan span;
  span.component = std::move(component);
  span.name = std::move(name);
  span.trace_id = trace_id;
  span.span_id = trace_id + 1;
  span.duration_us = duration_us;
  return span;
}

TEST(SpanRecorderTest, RecordsAndQueriesNewestFirst) {
  RecorderGuard guard(16);
  SpanRecorder& recorder = SpanRecorder::Global();
  recorder.Record(MakeSpan("add", 1, 100));
  recorder.Record(MakeSpan("query", 2, 200));
  recorder.Record(MakeSpan("add", 3, 300));

  std::vector<CompletedSpan> all = recorder.Query(TraceFilter{});
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].trace_id, 3u);  // newest first
  EXPECT_EQ(all[2].trace_id, 1u);

  TraceFilter by_name;
  by_name.name = "add";
  EXPECT_EQ(recorder.Query(by_name).size(), 2u);

  TraceFilter by_trace;
  by_trace.trace_id = 2;
  std::vector<CompletedSpan> one = recorder.Query(by_trace);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].name, "query");

  TraceFilter by_duration;
  by_duration.min_duration_us = 200;
  EXPECT_EQ(recorder.Query(by_duration).size(), 2u);

  TraceFilter by_component;
  by_component.component = "nosuch";
  EXPECT_TRUE(recorder.Query(by_component).empty());

  TraceFilter limited;
  limited.limit = 2;
  std::vector<CompletedSpan> top = recorder.Query(limited);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].trace_id, 3u);
}

TEST(SpanRecorderTest, WrapAroundKeepsNewestAndCountsDrops) {
  RecorderGuard guard(8);
  SpanRecorder& recorder = SpanRecorder::Global();
  for (uint64_t i = 1; i <= 20; ++i) {
    recorder.Record(MakeSpan("op", i, i));
  }
  const SpanRecorder::Stats stats = recorder.GetStats();
  EXPECT_EQ(stats.capacity, 8u);
  EXPECT_EQ(stats.depth, 8u);
  EXPECT_EQ(stats.recorded, 20u);
  EXPECT_EQ(stats.dropped, 12u);  // drops are visible, never silent

  std::vector<CompletedSpan> kept = recorder.Query(TraceFilter{});
  ASSERT_EQ(kept.size(), 8u);
  EXPECT_EQ(kept.front().trace_id, 20u);  // newest survives
  EXPECT_EQ(kept.back().trace_id, 13u);   // oldest 12 overwritten
}

TEST(SpanRecorderTest, SlowLogSurvivesWrapAround) {
  RecorderGuard guard(8);
  SpanRecorder& recorder = SpanRecorder::Global();
  // One storm-era outlier, then a flood of fast spans that wraps the
  // ring many times over.
  recorder.Record(MakeSpan("op", 42, 900000));
  for (uint64_t i = 1; i <= 100; ++i) {
    recorder.Record(MakeSpan("op", 1000 + i, 10 + i));
  }
  // Gone from the ring...
  TraceFilter ring;
  ring.trace_id = 42;
  EXPECT_TRUE(recorder.Query(ring).empty());
  // ...but still in the top-K slow log, slowest first.
  TraceFilter slow;
  slow.slow_log = true;
  std::vector<CompletedSpan> slowest = recorder.Query(slow);
  ASSERT_FALSE(slowest.empty());
  EXPECT_EQ(slowest[0].trace_id, 42u);
  EXPECT_EQ(slowest[0].duration_us, 900000u);
  // The slow log is bounded per (component, name).
  TraceFilter slow_op = slow;
  slow_op.name = "op";
  EXPECT_LE(recorder.Query(slow_op).size(), SpanRecorder::kSlowLogPerKey);
}

TEST(SpanRecorderTest, ConcurrentRecordAndQueryIsSafe) {
  RecorderGuard guard(64);
  SpanRecorder& recorder = SpanRecorder::Global();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(
            MakeSpan("stress", static_cast<uint64_t>(t) * kPerThread + i + 1,
                     static_cast<uint64_t>(i)));
      }
    });
  }
  // Readers race the writers: Query and GetStats must stay consistent
  // under TSan while the ring wraps.
  std::thread reader([&recorder] {
    for (int i = 0; i < 200; ++i) {
      TraceFilter slow;
      slow.slow_log = true;
      (void)recorder.Query(slow);
      (void)recorder.Query(TraceFilter{});
      (void)recorder.GetStats();
    }
  });
  for (auto& thread : threads) thread.join();
  reader.join();
  const SpanRecorder::Stats stats = recorder.GetStats();
  EXPECT_EQ(stats.recorded, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.depth, 64u);
  EXPECT_EQ(stats.dropped, stats.recorded - stats.depth);
}

TEST(SpanTest, RecordsHopsAndAmbientStamps) {
  RecorderGuard guard(16);
  {
    ScopedTrace trace(TraceContext{7001, 7002});
    Span span("rpc", "lrc_add");
    span.Hop("admission");
    rlscommon::StampHop("db_txn");   // a lower layer, no obs dependency
    rlscommon::StampHop("wal_sync");
    span.Hop("handler");
  }
  std::vector<CompletedSpan> spans = SpanRecorder::Global().Query(TraceFilter{});
  ASSERT_EQ(spans.size(), 1u);
  const CompletedSpan& span = spans[0];
  EXPECT_EQ(span.component, "rpc");
  EXPECT_EQ(span.name, "lrc_add");
  EXPECT_EQ(span.trace_id, 7001u);
  ASSERT_EQ(span.hops.size(), 4u);
  EXPECT_EQ(span.hops[0].first, "admission");
  EXPECT_EQ(span.hops[1].first, "db_txn");
  EXPECT_EQ(span.hops[2].first, "wal_sync");
  EXPECT_EQ(span.hops[3].first, "handler");
  // Hop offsets are monotonic within the span.
  for (std::size_t i = 1; i < span.hops.size(); ++i) {
    EXPECT_GE(span.hops[i].second, span.hops[i - 1].second);
  }
}

TEST(SpanTest, NestedSpansRestoreTheAmbientSink) {
  RecorderGuard guard(16);
  {
    Span outer("rpc", "outer");
    {
      Span inner("update", "inner");
      rlscommon::StampHop("inner_work");  // lands on the innermost span
    }
    rlscommon::StampHop("outer_work");  // sink restored to the outer span
  }
  TraceFilter inner_filter;
  inner_filter.name = "inner";
  std::vector<CompletedSpan> inner = SpanRecorder::Global().Query(inner_filter);
  ASSERT_EQ(inner.size(), 1u);
  ASSERT_EQ(inner[0].hops.size(), 1u);
  EXPECT_EQ(inner[0].hops[0].first, "inner_work");

  TraceFilter outer_filter;
  outer_filter.name = "outer";
  std::vector<CompletedSpan> outer = SpanRecorder::Global().Query(outer_filter);
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(outer[0].hops.size(), 1u);
  EXPECT_EQ(outer[0].hops[0].first, "outer_work");
}

TEST(SpanTest, StampHopWithoutASpanIsANoOp) {
  RecorderGuard guard(16);
  rlscommon::StampHop("orphan");  // must not crash or record anything
  EXPECT_TRUE(SpanRecorder::Global().Query(TraceFilter{}).empty());
}

TEST(SpanTest, AmbientHopsAreBoundedExplicitHopsAreNot) {
  RecorderGuard guard(16);
  {
    Span span("rpc", "bulk");
    for (int i = 0; i < 500; ++i) rlscommon::StampHop("db_txn");
    span.Hop("handler");  // explicit hops bypass the cap
  }
  std::vector<CompletedSpan> spans = SpanRecorder::Global().Query(TraceFilter{});
  ASSERT_EQ(spans.size(), 1u);
  // 64 ambient stamps kept (the last one refreshed in place), + handler.
  EXPECT_EQ(spans[0].hops.size(), Span::kMaxAmbientHops + 1);
  EXPECT_EQ(spans[0].hops.back().first, "handler");
}

TEST(SpanTest, ExplicitTimestampHopsClampToSpanStart) {
  RecorderGuard guard(16);
  const auto now = std::chrono::steady_clock::now();
  {
    Span span("rpc", "clamp", now);
    // A receive timestamp recorded before the span start clamps to 0
    // instead of going negative.
    span.Hop("before", now - std::chrono::milliseconds(5));
    span.Hop("after", now + std::chrono::microseconds(250));
  }
  std::vector<CompletedSpan> spans = SpanRecorder::Global().Query(TraceFilter{});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].hops[0].second, 0u);
  EXPECT_GE(spans[0].hops[1].second, 250u);
}

TEST(SpanTest, DisabledRecorderCapturesNothing) {
  SpanRecorder::Global().Disable();
  SpanRecorder::Global().Clear();
  EXPECT_FALSE(TracingActive());
  { Span span("rpc", "invisible"); }
  EXPECT_TRUE(SpanRecorder::Global().Query(TraceFilter{}).empty());
  EXPECT_EQ(SpanRecorder::Global().GetStats().recorded, 0u);
}

TEST(ChromeTraceTest, ExportsValidTraceEventJson) {
  RecorderGuard guard(16);
  {
    ScopedTrace trace(TraceContext{0xabc, 0xdef});
    Span span("rpc", "lrc_add");
    span.Hop("admission");
    span.Hop("handler");
    span.Hop("reply");
  }
  const std::string json = SpanRecorder::Global().RenderChromeTrace();
  // Chrome trace-event envelope plus the complete event and its stage
  // slices (the intervals between consecutive hops).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"lrc_add\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"admission\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"handler\""), std::string::npos);
  EXPECT_NE(json.find("0000000000000abc"), std::string::npos);  // trace id

  const std::string path =
      "/tmp/rls_trace_test_" + std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(SpanRecorder::Global().ExportChromeTrace(path).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(LogRateLimiterTest, TokenBucketSuppressesAndHandsOffCount) {
  rlscommon::LogRateLimiter limiter(/*per_second=*/1.0, /*burst=*/2.0);
  const int64_t t0 = 1000000;
  uint64_t suppressed = 0;
  // The burst passes...
  EXPECT_TRUE(limiter.AllowAt(t0, &suppressed));
  EXPECT_TRUE(limiter.AllowAt(t0, &suppressed));
  EXPECT_EQ(suppressed, 0u);
  // ...then the bucket is dry.
  EXPECT_FALSE(limiter.AllowAt(t0, &suppressed));
  EXPECT_FALSE(limiter.AllowAt(t0, &suppressed));
  EXPECT_FALSE(limiter.AllowAt(t0, &suppressed));
  // One second later one token refilled; the pass reports how many
  // similar lines were swallowed since the last pass.
  EXPECT_TRUE(limiter.AllowAt(t0 + 1000000, &suppressed));
  EXPECT_EQ(suppressed, 3u);
  EXPECT_EQ(limiter.total_suppressed(), 3u);
  // The handoff resets: the next pass reports only new suppressions.
  suppressed = 0;
  EXPECT_FALSE(limiter.AllowAt(t0 + 1000000, &suppressed));
  EXPECT_TRUE(limiter.AllowAt(t0 + 2000000, &suppressed));
  EXPECT_EQ(suppressed, 1u);
  EXPECT_EQ(limiter.total_suppressed(), 4u);
}

TEST(ExemplarTest, HistogramKeepsTheSlowestTrace) {
  Registry registry;
  Histogram* hist = registry.GetHistogram("op_latency_us");
  hist->RecordMicros(100);
  hist->OfferExemplar(100, 11);
  hist->RecordMicros(5000);
  hist->OfferExemplar(5000, 22);
  hist->RecordMicros(300);
  hist->OfferExemplar(300, 33);  // slower exemplar wins
  EXPECT_EQ(hist->exemplar_us(), 5000u);
  EXPECT_EQ(hist->exemplar_trace(), 22u);
  // A zero trace id never replaces a real exemplar.
  hist->OfferExemplar(9000, 0);
  EXPECT_EQ(hist->exemplar_trace(), 22u);

  Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.samples.size(), 1u);
  EXPECT_EQ(snapshot.samples[0].exemplar_us, 5000u);
  EXPECT_EQ(snapshot.samples[0].exemplar_trace, 22u);
  // The exemplar reaches the JSON rendering (hex, like log lines).
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"exemplar_trace\": \"0000000000000016\""),
            std::string::npos);
}

TEST(GetTracesRpcTest, FlightRecorderIsQueryableOverTheWire) {
  RecorderGuard guard(1024);
  net::Network network;
  dbapi::Environment env;
  rls::RlsServerConfig config;
  config.address = "rls:traced";
  config.lrc.enabled = true;
  config.lrc.dsn = "mysql://traced_lrc";
  ASSERT_TRUE(env.CreateDatabase(config.lrc.dsn).ok());
  rls::RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<rls::LrcClient> client;
  ASSERT_TRUE(
      rls::LrcClient::Connect(&network, config.address, {}, &client).ok());
  ASSERT_TRUE(client->Create("lfn-traced", "pfn://host/traced").ok());
  std::vector<std::string> targets;
  ASSERT_TRUE(client->Query("lfn-traced", &targets).ok());

  // The full ring, then filtered by method.
  rls::GetTracesResponse all;
  ASSERT_TRUE(client->GetTraces(rls::GetTracesRequest{}, &all).ok());
  EXPECT_EQ(all.capacity, 1024u);
  ASSERT_GE(all.spans.size(), 2u);

  rls::GetTracesRequest by_method;
  by_method.method = "lrc_create";
  rls::GetTracesResponse adds;
  ASSERT_TRUE(client->GetTraces(by_method, &adds).ok());
  ASSERT_EQ(adds.spans.size(), 1u);
  const rls::TraceSpan& span = adds.spans[0];
  EXPECT_EQ(span.component, "rpc");
  EXPECT_EQ(span.name, "lrc_create");
  EXPECT_NE(span.trace_id, 0u);
  // The lifecycle decomposition made it across the wire: admission,
  // queue_wait, auth, the db hops, handler residue and the reply.
  std::vector<std::string> names;
  for (const rls::TraceHop& hop : span.hops) names.push_back(hop.name);
  EXPECT_EQ(names.front(), "admission");
  EXPECT_NE(std::find(names.begin(), names.end(), "queue_wait"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "auth"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "db_txn"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "handler"), names.end());
  EXPECT_EQ(names.back(), "reply");
  // The reply hop closes the span: the stage slices cover (almost) the
  // whole request wall time.
  EXPECT_GE(span.hops.back().offset_us * 10, span.duration_us * 9);

  // The slow log answers too, slowest first.
  rls::GetTracesRequest slow;
  slow.source = rls::kTraceSourceSlowLog;
  rls::GetTracesResponse slowest;
  ASSERT_TRUE(client->GetTraces(slow, &slowest).ok());
  ASSERT_GE(slowest.spans.size(), 2u);
  EXPECT_GE(slowest.spans[0].duration_us, slowest.spans[1].duration_us);

  // GetStats surfaces the recorder vitals and the build description.
  rls::GetStatsResponse stats;
  ASSERT_TRUE(client->GetStats(&stats).ok());
  EXPECT_EQ(stats.trace_capacity, 1024u);
  EXPECT_GT(stats.trace_depth, 0u);
  EXPECT_FALSE(stats.build_flags.empty());
  // The per-stage histograms carry exemplar trace ids for slow buckets.
  bool saw_stage_metric = false;
  for (const rls::MetricSample& m : stats.metrics) {
    if (m.name == "rpc_stage_latency_us") saw_stage_metric = true;
  }
  EXPECT_TRUE(saw_stage_metric);
  server.Stop();
}

}  // namespace
}  // namespace obs
