// WAL tests.
//
// Legacy mode: recycle-wrap boundary behavior (the log wraps to offset 0
// once a commit pushes the file past the recycle threshold), driven with
// a tiny threshold instead of the production 256 MB.
//
// Recovery mode: framed commits, torn-tail truncation, checksum
// rejection, checkpoint-at-wrap, and the fail-stop storage failure
// policy, driven through the seeded StorageFaultInjector.
#include "rdb/wal.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rdb/storage_fault.h"

namespace rdb {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/rls_" + name + "_" +
         std::to_string(::getpid()) + ".log";
}

uint64_t FileSize(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

/// Recovery-mode logs persist on close by design; tests clean up.
void RemoveWalFiles(const std::string& path) {
  ::unlink(path.c_str());
  ::unlink((path + ".ckpt").c_str());
  ::unlink((path + ".ckpt.tmp").c_str());
}

WalOptions RecoveryOptions(uint64_t recycle_bytes,
                           StorageFaultInjector* fault = nullptr) {
  WalOptions options;
  options.recycle_bytes = recycle_bytes;
  options.recovery = true;
  options.fault = fault;
  return options;
}

/// Runs a recovery scan collecting (lsn, payload) pairs.
std::vector<std::pair<uint64_t, std::string>> Replay(Wal* wal,
                                                     uint64_t base_lsn,
                                                     WalRecoverResult* result) {
  std::vector<std::pair<uint64_t, std::string>> frames;
  EXPECT_TRUE(wal->Recover(base_lsn,
                           [&](uint64_t lsn, std::string_view payload) {
                             frames.emplace_back(lsn, std::string(payload));
                             return rlscommon::Status::Ok();
                           },
                           result)
                  .ok());
  return frames;
}

TEST(WalRecycleTest, WrapsPastThreshold) {
  const std::string path = TestPath("wal_wrap");
  Wal wal(path, /*recycle_bytes=*/64);
  const std::string record(10, 'x');
  // 6 commits = 60 bytes: still below the threshold, no wrap yet.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  }
  EXPECT_EQ(wal.file_bytes(), 60u);
  // 7th commit crosses 64; the *next* commit observes file_bytes_ >
  // threshold and rewinds to offset 0 before writing.
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 70u);
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 10u);  // wrapped: first record after rewind
  // Accounting is monotonic even though the file position wrapped.
  EXPECT_EQ(wal.commits(), 8u);
  EXPECT_EQ(wal.bytes_logged(), 80u);
}

TEST(WalRecycleTest, FileSizeStaysBounded) {
  const std::string path = TestPath("wal_bounded");
  const uint64_t threshold = 256;
  const std::string record(64, 'y');
  Wal wal(path, threshold);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  }
  // 6400 bytes logged, but the file never grows past threshold + one
  // record (the commit that crosses the threshold before wrapping).
  EXPECT_EQ(wal.bytes_logged(), 6400u);
  EXPECT_LE(FileSize(path), threshold + record.size());
  EXPECT_LE(wal.file_bytes(), threshold + record.size());
}

TEST(WalRecycleTest, ExactBoundaryDoesNotWrapEarly) {
  // Landing exactly on the threshold is not "past" it: the wrap
  // condition is strictly greater-than.
  const std::string path = TestPath("wal_exact");
  Wal wal(path, /*recycle_bytes=*/40);
  const std::string record(20, 'z');
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 40u);
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 60u);  // 40 == threshold: no wrap yet
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 20u);  // 60 > threshold: wrapped
}

TEST(WalRecycleTest, InMemoryWalIgnoresThreshold) {
  // Path-less WAL keeps accounting without a file; the wrap logic must
  // not disturb the counters.
  Wal wal("", /*recycle_bytes=*/8);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal.Commit("abcdef", false, {}).ok());
  }
  EXPECT_EQ(wal.bytes_logged(), 60u);
  EXPECT_EQ(wal.file_bytes(), 0u);
}

TEST(WalRecycleTest, DefaultThresholdIsProductionSized) {
  Wal wal("");
  EXPECT_EQ(wal.recycle_bytes(), Wal::kRecycleBytes);
  EXPECT_EQ(Wal::kRecycleBytes, 256ull << 20);
}

// --------------------------------------------------------------------
// Recovery mode
// --------------------------------------------------------------------

TEST(WalRecoveryTest, FramedCommitsReplayAfterReopen) {
  const std::string path = TestPath("wal_rec_roundtrip");
  RemoveWalFiles(path);
  {
    Wal wal(path, RecoveryOptions(1 << 20));
    ASSERT_TRUE(wal.Commit("alpha", true, {}).ok());
    ASSERT_TRUE(wal.Commit("bravo", true, {}).ok());
    ASSERT_TRUE(wal.Commit("charlie", true, {}).ok());
    EXPECT_EQ(wal.last_lsn(), 3u);
  }  // close; a recovery log persists
  Wal wal(path, RecoveryOptions(1 << 20));
  WalRecoverResult result;
  const auto frames = Replay(&wal, 0, &result);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], (std::pair<uint64_t, std::string>{1, "alpha"}));
  EXPECT_EQ(frames[1], (std::pair<uint64_t, std::string>{2, "bravo"}));
  EXPECT_EQ(frames[2], (std::pair<uint64_t, std::string>{3, "charlie"}));
  EXPECT_EQ(result.last_lsn, 3u);
  EXPECT_EQ(result.torn_tail_bytes, 0u);
  EXPECT_EQ(result.checksum_failures, 0u);
  // New commits continue the LSN sequence after the replayed prefix.
  ASSERT_TRUE(wal.Commit("delta", true, {}).ok());
  EXPECT_EQ(wal.last_lsn(), 4u);
  RemoveWalFiles(path);
}

TEST(WalRecoveryTest, TornTailIsTruncatedAndReplayIsIdempotent) {
  const std::string path = TestPath("wal_rec_torn");
  RemoveWalFiles(path);
  const std::string payload(16, 'p');  // frame = 17 + 16 = 33 bytes
  {
    Wal wal(path, RecoveryOptions(1 << 20));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal.Commit(payload, true, {}).ok());
    }
  }
  ASSERT_EQ(FileSize(path), 99u);
  // Cut into the third frame's payload: a torn final write.
  ASSERT_EQ(::truncate(path.c_str(), 80), 0);
  Wal wal(path, RecoveryOptions(1 << 20));
  WalRecoverResult result;
  auto frames = Replay(&wal, 0, &result);
  EXPECT_EQ(frames.size(), 2u);
  EXPECT_EQ(result.last_lsn, 2u);
  EXPECT_EQ(result.torn_tail_bytes, 14u);  // 80 - 66
  EXPECT_EQ(FileSize(path), 66u);          // repaired to the good prefix
  // Second scan over the repaired log: same frames, no new torn tail.
  WalRecoverResult again;
  frames = Replay(&wal, 0, &again);
  EXPECT_EQ(frames.size(), 2u);
  EXPECT_EQ(again.torn_tail_bytes, 0u);
  RemoveWalFiles(path);
}

TEST(WalRecoveryTest, ChecksumFailureStopsReplay) {
  const std::string path = TestPath("wal_rec_crc");
  RemoveWalFiles(path);
  const std::string payload(16, 'q');
  {
    Wal wal(path, RecoveryOptions(1 << 20));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal.Commit(payload, true, {}).ok());
    }
  }
  {  // Flip one payload byte inside the second frame.
    int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    const char bad = 'X';
    ASSERT_EQ(::pwrite(fd, &bad, 1, 33 + 17 + 4), 1);
    ::close(fd);
  }
  Wal wal(path, RecoveryOptions(1 << 20));
  WalRecoverResult result;
  const auto frames = Replay(&wal, 0, &result);
  ASSERT_EQ(frames.size(), 1u);  // frame 1 good; 2 corrupt; 3 unreachable
  EXPECT_EQ(frames[0].first, 1u);
  EXPECT_EQ(result.checksum_failures, 1u);
  EXPECT_EQ(result.torn_tail_bytes, 66u);  // frames 2 and 3 dropped
  EXPECT_EQ(wal.checksum_failures(), 1u);
  EXPECT_EQ(result.last_lsn, 1u);
  RemoveWalFiles(path);
}

TEST(WalRecoveryTest, CheckpointAtWrapCarriesPreWrapLsn) {
  const std::string path = TestPath("wal_rec_wrap");
  RemoveWalFiles(path);
  const std::string payload(16, 'w');  // frame = 33 bytes
  {
    Wal wal(path, RecoveryOptions(/*recycle_bytes=*/64));
    wal.SetCheckpointWriter([](uint64_t* rows) {
      *rows = 7;
      return std::string("SNAPSHOT");
    });
    ASSERT_TRUE(wal.Commit(payload, true, {}).ok());  // file: 33
    ASSERT_TRUE(wal.Commit(payload, true, {}).ok());  // file: 66 > 64
    // This commit first checkpoints (sidecar at LSN 2, log truncated,
    // checkpoint frame), then appends LSN 3.
    ASSERT_TRUE(wal.Commit(payload, true, {}).ok());
    EXPECT_EQ(wal.checkpoints(), 1u);
    EXPECT_EQ(wal.file_bytes(), 17u + 33u);  // checkpoint frame + txn frame
    EXPECT_EQ(wal.last_lsn(), 3u);
  }
  // Reopen: the sidecar holds the pre-wrap state, the log the rest.
  Wal wal(path, RecoveryOptions(/*recycle_bytes=*/64));
  std::string snapshot;
  uint64_t snapshot_lsn = 0;
  bool present = false;
  ASSERT_TRUE(wal.ReadCheckpointSidecar(&snapshot, &snapshot_lsn, &present).ok());
  ASSERT_TRUE(present);
  EXPECT_EQ(snapshot, "SNAPSHOT");
  EXPECT_EQ(snapshot_lsn, 2u);
  WalRecoverResult result;
  const auto frames = Replay(&wal, snapshot_lsn, &result);
  ASSERT_EQ(frames.size(), 1u);  // only LSN 3 is beyond the snapshot
  EXPECT_EQ(frames[0].first, 3u);
  EXPECT_EQ(result.checkpoint_lsn, 2u);
  EXPECT_EQ(result.last_lsn, 3u);
  RemoveWalFiles(path);
}

TEST(WalRecoveryTest, CorruptSidecarIsReportedAsDataLoss) {
  const std::string path = TestPath("wal_rec_badckpt");
  RemoveWalFiles(path);
  const std::string payload(16, 's');
  {
    Wal wal(path, RecoveryOptions(/*recycle_bytes=*/64));
    wal.SetCheckpointWriter([](uint64_t*) { return std::string("STATE"); });
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal.Commit(payload, true, {}).ok());
    }
    ASSERT_EQ(wal.checkpoints(), 1u);
  }
  {  // Corrupt one snapshot byte; the sidecar CRC must catch it.
    int fd = ::open((path + ".ckpt").c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    const char bad = '!';
    ASSERT_EQ(::pwrite(fd, &bad, 1, 21), 1);
    ::close(fd);
  }
  Wal wal(path, RecoveryOptions(/*recycle_bytes=*/64));
  std::string snapshot;
  uint64_t lsn = 0;
  bool present = false;
  rlscommon::Status s = wal.ReadCheckpointSidecar(&snapshot, &lsn, &present);
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
  RemoveWalFiles(path);
}

// --------------------------------------------------------------------
// Storage failure policy (satellite of the crash-safety tentpole):
// write errors are typed, non-retryable DATA_LOSS; a failed sync
// poisons the log permanently in BOTH modes.
// --------------------------------------------------------------------

TEST(WalFaultTest, FailedSyncPoisonsRecoveryModeWal) {
  const std::string path = TestPath("wal_fault_sync_rec");
  RemoveWalFiles(path);
  StorageFaultInjector fault(/*seed=*/1);
  fault.FailNthSync(1, EIO);
  Wal wal(path, RecoveryOptions(1 << 20, &fault));
  rlscommon::Status s = wal.Commit("payload", /*durable=*/true, {});
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
  EXPECT_TRUE(wal.poisoned());
  // fsyncgate: never retry a failed sync — all later commits fail fast.
  s = wal.Commit("payload", /*durable=*/true, {});
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
  s = wal.Commit("payload", /*durable=*/false, {});
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
  EXPECT_EQ(fault.sync_errors(), 1u);
  RemoveWalFiles(path);
}

TEST(WalFaultTest, FailedSyncPoisonsLegacyModeWal) {
  const std::string path = TestPath("wal_fault_sync_legacy");
  StorageFaultInjector fault(/*seed=*/1);
  fault.FailNthSync(1, EIO);
  WalOptions options;
  options.fault = &fault;  // legacy mode (recovery=false) with injection
  Wal wal(path, options);
  rlscommon::Status s = wal.Commit("payload", /*durable=*/true, {});
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
  EXPECT_TRUE(wal.poisoned());
  s = wal.Commit("payload", /*durable=*/true, {});
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
}

TEST(WalFaultTest, ShortWriteIsRepairedAndNotRetryable) {
  const std::string path = TestPath("wal_fault_short");
  RemoveWalFiles(path);
  StorageFaultInjector fault(/*seed=*/2);
  Wal wal(path, RecoveryOptions(1 << 20, &fault));
  ASSERT_TRUE(wal.Commit("first", true, {}).ok());
  const uint64_t good = wal.file_bytes();
  // Disk error 5 bytes into the second frame; the process stays alive,
  // so the Wal truncates the torn frame away.
  fault.FailWriteAtByte(good + 5, ENOSPC);
  rlscommon::Status s = wal.Commit("second", true, {});
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
  EXPECT_FALSE(rlscommon::IsRetryableError(s.code()));
  EXPECT_FALSE(wal.poisoned());
  EXPECT_EQ(wal.file_bytes(), good);
  EXPECT_EQ(FileSize(path), good);
  // The log still works: the failed commit left no partial frame behind.
  ASSERT_TRUE(wal.Commit("third", true, {}).ok());
  WalRecoverResult result;
  Wal reopened(path, RecoveryOptions(1 << 20));
  const auto frames = Replay(&reopened, 0, &result);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].second, "first");
  EXPECT_EQ(frames[1].second, "third");
  RemoveWalFiles(path);
}

TEST(WalFaultTest, LegacyWriteErrorIsDataLoss) {
  const std::string path = TestPath("wal_fault_legacy_write");
  StorageFaultInjector fault(/*seed=*/3);
  fault.FailWriteAtByte(0, EIO);
  WalOptions options;
  options.fault = &fault;
  Wal wal(path, options);
  rlscommon::Status s = wal.Commit("payload", /*durable=*/false, {});
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
  EXPECT_FALSE(rlscommon::IsRetryableError(s.code()));
}

TEST(WalFaultTest, CrashLeavesTornFrameForRecovery) {
  const std::string path = TestPath("wal_fault_crash");
  RemoveWalFiles(path);
  StorageFaultInjector fault(/*seed=*/4);
  uint64_t good = 0;
  {
    Wal wal(path, RecoveryOptions(1 << 20, &fault));
    ASSERT_TRUE(wal.Commit("committed", true, {}).ok());
    good = wal.file_bytes();
    // Power cut 9 bytes into the next frame: the torn bytes stay on
    // disk (no repair — the machine is "dead") and the Wal poisons.
    fault.CrashAtByte(good + 9);
    rlscommon::Status s = wal.Commit("lost-transaction", true, {});
    EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
    EXPECT_TRUE(fault.crashed());
    EXPECT_TRUE(wal.poisoned());
    s = wal.Commit("after-crash", true, {});
    EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
  }
  ASSERT_EQ(FileSize(path), good + 9);  // torn frame present on disk
  // "Reboot": recovery finds the committed prefix, drops the torn tail.
  Wal wal(path, RecoveryOptions(1 << 20));
  WalRecoverResult result;
  const auto frames = Replay(&wal, 0, &result);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].second, "committed");
  EXPECT_EQ(result.torn_tail_bytes, 9u);
  EXPECT_EQ(FileSize(path), good);
  RemoveWalFiles(path);
}

// --------------------------------------------------------------------
// Group commit: leader/follower batching (one write + one sync + one
// modeled penalty per batch), LSN ordering, and the failure policy for
// grouped frames.
// --------------------------------------------------------------------

/// Group-commit options with a linger long enough that `max_commits`
/// concurrent committers deterministically land in ONE batch.
WalOptions GroupOptions(uint64_t recycle_bytes, std::size_t max_commits,
                        std::chrono::microseconds max_wait,
                        StorageFaultInjector* fault = nullptr) {
  WalOptions options = RecoveryOptions(recycle_bytes, fault);
  options.group_commit = true;
  options.group_max_commits = max_commits;
  options.group_max_wait = max_wait;
  return options;
}

TEST(WalGroupCommitTest, BatchSharesOneSyncAndOnePenalty) {
  const std::string path = TestPath("wal_group_batch");
  RemoveWalFiles(path);
  {
    // Linger until all 4 committers are queued: exactly one batch.
    Wal wal(path, GroupOptions(1 << 20, 4, std::chrono::microseconds(2'000'000)));
    const auto penalty = std::chrono::microseconds(1000);
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&wal, penalty, i] {
        EXPECT_TRUE(
            wal.Commit("payload-" + std::to_string(i), true, penalty).ok());
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(wal.commits(), 4u);
    EXPECT_EQ(wal.syncs(), 1u);
    EXPECT_EQ(wal.group_commits(), 1u);
    // Penalty-per-SYNC invariant: 4 durable commits with a 1000us
    // modeled penalty each charge 1000us total, not 4000us.
    EXPECT_EQ(wal.penalty_us_charged(), 1000u);
    EXPECT_EQ(wal.last_lsn(), 4u);
  }
  // The batch's frames replay individually, in LSN order, densely.
  Wal reopened(path, RecoveryOptions(1 << 20));
  WalRecoverResult result;
  const auto frames = Replay(&reopened, 0, &result);
  ASSERT_EQ(frames.size(), 4u);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].first, i + 1);
  }
  RemoveWalFiles(path);
}

TEST(WalGroupCommitTest, PerTxnModeChargesPenaltyPerCommit) {
  const std::string path = TestPath("wal_pertxn_penalty");
  RemoveWalFiles(path);
  Wal wal(path, RecoveryOptions(1 << 20));  // group commit off
  const auto penalty = std::chrono::microseconds(300);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.Commit("payload", true, penalty).ok());
  }
  // Per-txn mode: every durable commit pays its own sync and its own
  // full modeled penalty (the paper's serialized Fig. 4 cost model).
  EXPECT_EQ(wal.syncs(), 3u);
  EXPECT_EQ(wal.penalty_us_charged(), 900u);
  RemoveWalFiles(path);
}

TEST(WalGroupCommitTest, ConcurrentCommittersKeepDenseOrderedLsns) {
  const std::string path = TestPath("wal_group_stress");
  RemoveWalFiles(path);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  {
    // No linger: batches form from natural contention (TSan exercises
    // the waiter handoff under real interleavings).
    Wal wal(path, GroupOptions(1 << 20, 64, std::chrono::microseconds(0)));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          EXPECT_TRUE(wal.Commit("t" + std::to_string(t) + "-" +
                                     std::to_string(i),
                                 true, {})
                          .ok());
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(wal.commits(), static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(wal.last_lsn(), static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_LE(wal.syncs(), wal.commits());
    EXPECT_GE(wal.group_commits(), 1u);
  }
  Wal reopened(path, RecoveryOptions(1 << 20));
  WalRecoverResult result;
  const auto frames = Replay(&reopened, 0, &result);
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].first, i + 1);  // dense, ascending
  }
  RemoveWalFiles(path);
}

TEST(WalGroupCommitTest, FailedGroupSyncPoisonsAndFailsEveryMember) {
  const std::string path = TestPath("wal_group_sync_fail");
  RemoveWalFiles(path);
  StorageFaultInjector fault(/*seed=*/7);
  fault.FailNthSync(1, EIO);
  Wal wal(path,
          GroupOptions(1 << 20, 3, std::chrono::microseconds(2'000'000), &fault));
  std::atomic<int> data_loss{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&wal, &data_loss, i] {
      rlscommon::Status s =
          wal.Commit("member-" + std::to_string(i), true, {});
      if (s.code() == rlscommon::ErrorCode::kDataLoss) ++data_loss;
    });
  }
  for (auto& t : threads) t.join();
  // The one failed sync fails the WHOLE parked group, and poisons the
  // log exactly once (fsyncgate: no retry ever claims durability).
  EXPECT_EQ(data_loss.load(), 3);
  EXPECT_TRUE(wal.poisoned());
  EXPECT_EQ(fault.sync_errors(), 1u);
  rlscommon::Status s = wal.Commit("after", true, {});
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kDataLoss);
  RemoveWalFiles(path);
}

TEST(WalGroupCommitTest, CrashMidBatchReplaysWholeTransactionPrefix) {
  const std::string path = TestPath("wal_group_crash");
  RemoveWalFiles(path);
  StorageFaultInjector fault(/*seed=*/8);
  // 3 x 16-byte payloads = 3 x 33-byte frames in one 99-byte batch
  // append; the power cut lands 17 bytes into the second frame.
  fault.CrashAtByte(50);
  {
    Wal wal(path, GroupOptions(1 << 20, 3,
                               std::chrono::microseconds(2'000'000), &fault));
    std::atomic<int> data_loss{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&wal, &data_loss] {
        if (wal.Commit(std::string(16, 'g'), true, {}).code() ==
            rlscommon::ErrorCode::kDataLoss) {
          ++data_loss;
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(data_loss.load(), 3);
    EXPECT_TRUE(wal.poisoned());
    EXPECT_TRUE(fault.crashed());
  }
  ASSERT_EQ(FileSize(path), 50u);  // torn batch tail present on disk
  // "Reboot": replay recovers a prefix of WHOLE transactions — the
  // complete first frame — and drops the torn second frame.
  Wal reopened(path, RecoveryOptions(1 << 20));
  WalRecoverResult result;
  const auto frames = Replay(&reopened, 0, &result);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, 1u);
  EXPECT_EQ(result.torn_tail_bytes, 17u);
  EXPECT_EQ(FileSize(path), 33u);
  RemoveWalFiles(path);
}

TEST(WalGroupCommitTest, ToggleBetweenModesKeepsLsnContinuity) {
  const std::string path = TestPath("wal_group_toggle");
  RemoveWalFiles(path);
  {
    Wal wal(path, RecoveryOptions(1 << 20));
    ASSERT_TRUE(wal.Commit("one", true, {}).ok());
    ASSERT_TRUE(wal.Commit("two", true, {}).ok());
    wal.SetGroupCommit(true);
    ASSERT_TRUE(wal.Commit("three", true, {}).ok());
    ASSERT_TRUE(wal.Commit("four", true, {}).ok());
    wal.SetGroupCommit(false);
    ASSERT_TRUE(wal.Commit("five", true, {}).ok());
    EXPECT_EQ(wal.last_lsn(), 5u);
  }
  Wal reopened(path, RecoveryOptions(1 << 20));
  WalRecoverResult result;
  const auto frames = Replay(&reopened, 0, &result);
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[4], (std::pair<uint64_t, std::string>{5, "five"}));
  RemoveWalFiles(path);
}

TEST(WalGroupCommitTest, LegacyModeGroupingKeepsByteAccounting) {
  // The Fig. 4 bench flips the legacy (non-recovery) WAL into group
  // mode: bytes/commit accounting and the recycle wrap must match the
  // per-txn cost model.
  const std::string path = TestPath("wal_group_legacy");
  WalOptions options;
  options.recycle_bytes = 1 << 20;
  options.group_commit = true;
  Wal wal(path, options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal] {
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(wal.Commit(std::string(10, 'x'), true, {}).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wal.commits(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(wal.bytes_logged(), static_cast<uint64_t>(kThreads * kPerThread * 10));
  EXPECT_EQ(wal.file_bytes(), static_cast<uint64_t>(kThreads * kPerThread * 10));
  EXPECT_LE(wal.syncs(), wal.commits());
}

}  // namespace
}  // namespace rdb
