// WAL recycle-wrap boundary tests. The log wraps to offset 0 once a
// commit pushes the file past the recycle threshold (a checkpointing
// stand-in); these tests drive that boundary with a tiny threshold
// instead of the production 256 MB.
#include "rdb/wal.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <string>

namespace rdb {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/rls_" + name + "_" +
         std::to_string(::getpid()) + ".log";
}

uint64_t FileSize(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

TEST(WalRecycleTest, WrapsPastThreshold) {
  const std::string path = TestPath("wal_wrap");
  Wal wal(path, /*recycle_bytes=*/64);
  const std::string record(10, 'x');
  // 6 commits = 60 bytes: still below the threshold, no wrap yet.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  }
  EXPECT_EQ(wal.file_bytes(), 60u);
  // 7th commit crosses 64; the *next* commit observes file_bytes_ >
  // threshold and rewinds to offset 0 before writing.
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 70u);
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 10u);  // wrapped: first record after rewind
  // Accounting is monotonic even though the file position wrapped.
  EXPECT_EQ(wal.commits(), 8u);
  EXPECT_EQ(wal.bytes_logged(), 80u);
}

TEST(WalRecycleTest, FileSizeStaysBounded) {
  const std::string path = TestPath("wal_bounded");
  const uint64_t threshold = 256;
  const std::string record(64, 'y');
  Wal wal(path, threshold);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  }
  // 6400 bytes logged, but the file never grows past threshold + one
  // record (the commit that crosses the threshold before wrapping).
  EXPECT_EQ(wal.bytes_logged(), 6400u);
  EXPECT_LE(FileSize(path), threshold + record.size());
  EXPECT_LE(wal.file_bytes(), threshold + record.size());
}

TEST(WalRecycleTest, ExactBoundaryDoesNotWrapEarly) {
  // Landing exactly on the threshold is not "past" it: the wrap
  // condition is strictly greater-than.
  const std::string path = TestPath("wal_exact");
  Wal wal(path, /*recycle_bytes=*/40);
  const std::string record(20, 'z');
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 40u);
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 60u);  // 40 == threshold: no wrap yet
  ASSERT_TRUE(wal.Commit(record, false, {}).ok());
  EXPECT_EQ(wal.file_bytes(), 20u);  // 60 > threshold: wrapped
}

TEST(WalRecycleTest, InMemoryWalIgnoresThreshold) {
  // Path-less WAL keeps accounting without a file; the wrap logic must
  // not disturb the counters.
  Wal wal("", /*recycle_bytes=*/8);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal.Commit("abcdef", false, {}).ok());
  }
  EXPECT_EQ(wal.bytes_logged(), 60u);
  EXPECT_EQ(wal.file_bytes(), 0u);
}

TEST(WalRecycleTest, DefaultThresholdIsProductionSized) {
  Wal wal("");
  EXPECT_EQ(wal.recycle_bytes(), Wal::kRecycleBytes);
  EXPECT_EQ(Wal::kRecycleBytes, 256ull << 20);
}

}  // namespace
}  // namespace rdb
