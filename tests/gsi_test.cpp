#include "gsi/gsi.h"

#include <gtest/gtest.h>

namespace gsi {
namespace {

using rlscommon::ErrorCode;

TEST(PrivilegeTest, NamesRoundTrip) {
  EXPECT_EQ(PrivilegeName(Privilege::kLrcRead), "lrc_read");
  EXPECT_EQ(ParsePrivilege("lrc_write"), Privilege::kLrcWrite);
  EXPECT_EQ(ParsePrivilege("rli_read"), Privilege::kRliRead);
  EXPECT_EQ(ParsePrivilege("bogus"), std::nullopt);
}

TEST(GridmapTest, ParsesEntries) {
  Gridmap gridmap;
  ASSERT_TRUE(Gridmap::Parse(
                  "# comment\n"
                  "\"/DC=org/DC=Grid/CN=Ann Chervenak\" annc\n"
                  "\"/DC=org/DC=Grid/CN=.*\" griduser\n",
                  &gridmap)
                  .ok());
  EXPECT_EQ(gridmap.size(), 2u);
  EXPECT_EQ(gridmap.MapToLocal("/DC=org/DC=Grid/CN=Ann Chervenak"), "annc");
  // First match wins; the catch-all covers other members.
  EXPECT_EQ(gridmap.MapToLocal("/DC=org/DC=Grid/CN=Someone Else"), "griduser");
  EXPECT_EQ(gridmap.MapToLocal("/DC=com/CN=Outsider"), std::nullopt);
}

TEST(GridmapTest, RejectsMalformedLines) {
  Gridmap gridmap;
  EXPECT_FALSE(Gridmap::Parse("/CN=NoQuotes user\n", &gridmap).ok());
  EXPECT_FALSE(Gridmap::Parse("\"/CN=Unterminated user\n", &gridmap).ok());
  EXPECT_FALSE(Gridmap::Parse("\"/CN=NoUser\"\n", &gridmap).ok());
  EXPECT_FALSE(Gridmap::Parse("\"(bad[regex\" user\n", &gridmap).ok());
}

TEST(AclTest, GrantsByDnOrLocalUser) {
  Acl acl;
  ASSERT_TRUE(acl.AddEntry("/DC=org/.*", {Privilege::kLrcRead}).ok());
  ASSERT_TRUE(acl.AddEntry("annc", {Privilege::kLrcWrite, Privilege::kAdmin}).ok());
  EXPECT_TRUE(acl.IsAuthorized("/DC=org/CN=X", "", Privilege::kLrcRead));
  EXPECT_FALSE(acl.IsAuthorized("/DC=org/CN=X", "", Privilege::kLrcWrite));
  EXPECT_TRUE(acl.IsAuthorized("/DC=other/CN=Y", "annc", Privilege::kLrcWrite));
  EXPECT_TRUE(acl.IsAuthorized("", "annc", Privilege::kAdmin));
  EXPECT_FALSE(acl.IsAuthorized("", "bob", Privilege::kAdmin));
}

TEST(AclTest, ConfigFileEntryFormat) {
  Acl acl;
  ASSERT_TRUE(acl.AddEntryFromString("/DC=org/.*: lrc_read, lrc_write").ok());
  EXPECT_TRUE(acl.IsAuthorized("/DC=org/CN=Z", "", Privilege::kLrcWrite));
  EXPECT_FALSE(acl.AddEntryFromString("pattern-without-privs").ok());
  EXPECT_FALSE(acl.AddEntryFromString("p: not_a_privilege").ok());
  EXPECT_FALSE(acl.AddEntryFromString("p:").ok());
}

TEST(AuthManagerTest, OpenServerAllowsEveryone) {
  // Paper §3.1: the server can run without authentication/authorization.
  AuthManager open = AuthManager::Open();
  AuthContext ctx;
  ASSERT_TRUE(open.Authenticate(Credential::Anonymous(), &ctx).ok());
  EXPECT_FALSE(ctx.authenticated);
  EXPECT_TRUE(open.Authorize(ctx, Privilege::kLrcWrite).ok());
  EXPECT_TRUE(open.Authorize(ctx, Privilege::kAdmin).ok());
}

TEST(AuthManagerTest, SecuredRequiresCredential) {
  Gridmap gridmap;
  ASSERT_TRUE(gridmap.AddEntry("/CN=User", "user").ok());
  Acl acl;
  ASSERT_TRUE(acl.AddEntry("user", {Privilege::kLrcRead}).ok());
  AuthManager secured = AuthManager::Secured(std::move(gridmap), std::move(acl),
                                             std::chrono::microseconds(0));
  AuthContext ctx;
  EXPECT_EQ(secured.Authenticate(Credential::Anonymous(), &ctx).code(),
            ErrorCode::kUnauthenticated);
  ASSERT_TRUE(secured.Authenticate(Credential{"/CN=User"}, &ctx).ok());
  EXPECT_TRUE(ctx.authenticated);
  EXPECT_EQ(ctx.local_user, "user");
  EXPECT_TRUE(secured.Authorize(ctx, Privilege::kLrcRead).ok());
  EXPECT_EQ(secured.Authorize(ctx, Privilege::kLrcWrite).code(),
            ErrorCode::kPermissionDenied);
}

TEST(AuthManagerTest, UnmappedDnCanStillMatchAclByDn) {
  // ACL entries match the DN directly even without a gridmap entry.
  Gridmap gridmap;
  Acl acl;
  ASSERT_TRUE(acl.AddEntry("/CN=Direct.*", {Privilege::kRliRead}).ok());
  AuthManager secured = AuthManager::Secured(std::move(gridmap), std::move(acl),
                                             std::chrono::microseconds(0));
  AuthContext ctx;
  ASSERT_TRUE(secured.Authenticate(Credential{"/CN=DirectAccess"}, &ctx).ok());
  EXPECT_EQ(ctx.local_user, "");
  EXPECT_TRUE(secured.Authorize(ctx, Privilege::kRliRead).ok());
  EXPECT_FALSE(secured.Authorize(ctx, Privilege::kRliWrite).ok());
}

TEST(AuthManagerTest, UnauthenticatedContextDeniedOnSecured) {
  AuthManager secured = AuthManager::Secured({}, {}, std::chrono::microseconds(0));
  AuthContext ctx;  // never authenticated
  EXPECT_EQ(secured.Authorize(ctx, Privilege::kLrcRead).code(),
            ErrorCode::kUnauthenticated);
}

}  // namespace
}  // namespace gsi
