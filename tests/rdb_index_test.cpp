#include "rdb/index.h"

#include <gtest/gtest.h>

namespace rdb {
namespace {

Rid R(uint32_t page, uint16_t slot) { return Rid{page, slot}; }

TEST(HashIndexTest, InsertLookup) {
  HashIndex index(IndexDeleteMode::kErase);
  index.Insert(Value::String("a"), R(0, 0));
  index.Insert(Value::String("b"), R(0, 1));
  std::vector<Rid> rids;
  index.Lookup(Value::String("a"), &rids);
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], R(0, 0));
}

TEST(HashIndexTest, MultimapSemantics) {
  HashIndex index(IndexDeleteMode::kErase);
  index.Insert(Value::Int(7), R(0, 0));
  index.Insert(Value::Int(7), R(0, 1));
  std::vector<Rid> rids;
  index.Lookup(Value::Int(7), &rids);
  EXPECT_EQ(rids.size(), 2u);
}

TEST(HashIndexTest, UniqueRejectsDuplicates) {
  HashIndex index(IndexDeleteMode::kErase, /*unique=*/true);
  EXPECT_TRUE(index.Insert(Value::String("key"), R(0, 0)));
  EXPECT_FALSE(index.Insert(Value::String("key"), R(0, 1)));
  // After erasing, the key becomes insertable again.
  index.Erase(Value::String("key"), R(0, 0));
  EXPECT_TRUE(index.Insert(Value::String("key"), R(0, 2)));
}

TEST(HashIndexTest, EraseModeRemovesEntries) {
  HashIndex index(IndexDeleteMode::kErase);
  for (int i = 0; i < 1000; ++i) index.Insert(Value::Int(i), R(0, i % 100));
  for (int i = 0; i < 1000; ++i) index.Erase(Value::Int(i), R(0, i % 100));
  EXPECT_EQ(index.stats().live_entries, 0u);
  EXPECT_EQ(index.stats().tombstones, 0u);
}

TEST(HashIndexTest, TombstoneModeAccumulatesDead) {
  HashIndex index(IndexDeleteMode::kTombstone);
  for (int i = 0; i < 1000; ++i) index.Insert(Value::Int(i), R(0, 0));
  for (int i = 0; i < 1000; ++i) index.Erase(Value::Int(i), R(0, 0));
  EXPECT_EQ(index.stats().live_entries, 0u);
  EXPECT_EQ(index.stats().tombstones, 1000u);
  // Like a PostgreSQL index: dead entries are still RETURNED — only the
  // heap fetch (visibility check) reveals they are deleted. That fetch
  // is the cost the Fig. 8 saw-tooth measures.
  std::vector<Rid> rids;
  index.Lookup(Value::Int(5), &rids);
  EXPECT_EQ(rids.size(), 1u);
}

TEST(HashIndexTest, EraseModeReturnsNoDeadEntries) {
  HashIndex index(IndexDeleteMode::kErase);
  index.Insert(Value::Int(5), R(0, 0));
  index.Erase(Value::Int(5), R(0, 0));
  std::vector<Rid> rids;
  index.Lookup(Value::Int(5), &rids);
  EXPECT_TRUE(rids.empty());
}

TEST(HashIndexTest, TombstonesSlowProbes) {
  // The Fig. 8 mechanism: churn on the same keys lengthens bucket chains
  // under the PostgreSQL delete mode.
  HashIndex pg(IndexDeleteMode::kTombstone);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 200; ++i) pg.Insert(Value::Int(i), R(0, 0));
    for (int i = 0; i < 200; ++i) pg.Erase(Value::Int(i), R(0, 0));
  }
  // Measure probe work for one lookup burst.
  const uint64_t steps_before = pg.stats().probe_steps;
  std::vector<Rid> rids;
  for (int i = 0; i < 200; ++i) pg.Lookup(Value::Int(i), &rids);
  const uint64_t pg_steps = pg.stats().probe_steps - steps_before;

  HashIndex my(IndexDeleteMode::kErase);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 200; ++i) my.Insert(Value::Int(i), R(0, 0));
    for (int i = 0; i < 200; ++i) my.Erase(Value::Int(i), R(0, 0));
  }
  const uint64_t my_before = my.stats().probe_steps;
  for (int i = 0; i < 200; ++i) my.Lookup(Value::Int(i), &rids);
  const uint64_t my_steps = my.stats().probe_steps - my_before;

  EXPECT_GT(pg_steps, my_steps * 5) << "tombstones must dominate probe cost";
}

TEST(HashIndexTest, ClearDropsTombstones) {
  HashIndex index(IndexDeleteMode::kTombstone);
  for (int i = 0; i < 100; ++i) index.Insert(Value::Int(i), R(0, 0));
  for (int i = 0; i < 100; ++i) index.Erase(Value::Int(i), R(0, 0));
  index.Clear();  // VACUUM rebuild path
  EXPECT_EQ(index.stats().tombstones, 0u);
  index.Insert(Value::Int(1), R(0, 0));
  std::vector<Rid> rids;
  index.Lookup(Value::Int(1), &rids);
  EXPECT_EQ(rids.size(), 1u);
}

TEST(HashIndexTest, GrowthKeepsLookupsCorrect) {
  HashIndex index(IndexDeleteMode::kErase, false, 16);
  for (int i = 0; i < 10000; ++i) index.Insert(Value::Int(i), R(0, i % 1000));
  EXPECT_GT(index.bucket_count(), 16u);
  std::vector<Rid> rids;
  for (int i = 0; i < 10000; i += 97) {
    rids.clear();
    index.Lookup(Value::Int(i), &rids);
    ASSERT_EQ(rids.size(), 1u) << i;
    EXPECT_EQ(rids[0], R(0, i % 1000));
  }
}

TEST(HashIndexTest, EraseMissingIsNoop) {
  HashIndex index(IndexDeleteMode::kErase);
  index.Insert(Value::Int(1), R(0, 0));
  index.Erase(Value::Int(2), R(0, 0));    // wrong key
  index.Erase(Value::Int(1), R(0, 99));   // wrong rid
  std::vector<Rid> rids;
  index.Lookup(Value::Int(1), &rids);
  EXPECT_EQ(rids.size(), 1u);
}

TEST(HashIndexTest, NumericKeysCrossTypeConsistent) {
  // Int(3) and Double(3.0) compare equal, so they must collide in the index.
  HashIndex index(IndexDeleteMode::kErase);
  index.Insert(Value::Int(3), R(0, 0));
  std::vector<Rid> rids;
  index.Lookup(Value::Double(3.0), &rids);
  EXPECT_EQ(rids.size(), 1u);
}

TEST(OrderedIndexTest, RangeQueries) {
  OrderedIndex index;
  for (int i = 0; i < 100; ++i) index.Insert(Value::Timestamp(i * 10), R(0, i));
  std::vector<Rid> rids;
  index.LookupLess(Value::Timestamp(50), &rids);
  EXPECT_EQ(rids.size(), 5u);  // 0,10,20,30,40
  rids.clear();
  index.LookupRange(Value::Timestamp(30), Value::Timestamp(60), &rids);
  EXPECT_EQ(rids.size(), 4u);  // 30,40,50,60
}

TEST(OrderedIndexTest, EqualKeyLookup) {
  OrderedIndex index;
  index.Insert(Value::Int(5), R(0, 0));
  index.Insert(Value::Int(5), R(0, 1));
  index.Insert(Value::Int(6), R(0, 2));
  std::vector<Rid> rids;
  index.Lookup(Value::Int(5), &rids);
  EXPECT_EQ(rids.size(), 2u);
}

TEST(OrderedIndexTest, EraseSpecificEntry) {
  OrderedIndex index;
  index.Insert(Value::Int(5), R(0, 0));
  index.Insert(Value::Int(5), R(0, 1));
  index.Erase(Value::Int(5), R(0, 0));
  std::vector<Rid> rids;
  index.Lookup(Value::Int(5), &rids);
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], R(0, 1));
}

TEST(ValueTest, CompareOrdering) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Double(9.5).Compare(Value::String("a")), 0);  // numbers < strings
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  const Value values[] = {Value::Null(), Value::Int(-42), Value::Double(3.25),
                          Value::String("hello"), Value::Timestamp(123456789)};
  for (const Value& v : values) {
    std::string bytes;
    v.Encode(&bytes);
    std::string_view view = bytes;
    Value decoded;
    ASSERT_TRUE(Value::Decode(&view, &decoded).ok());
    EXPECT_TRUE(view.empty());
    EXPECT_EQ(decoded.Compare(v), 0);
    EXPECT_EQ(decoded.is_timestamp(), v.is_timestamp());
  }
}

}  // namespace
}  // namespace rdb
