// Whole-system integration tests: multi-LRC/multi-RLI topologies modeled
// on the deployments of paper §6 (ESG's fully connected 4-node mesh;
// Pegasus' 6 LRC / 4 RLI split), exercised end-to-end through the client
// API: client -> RLI -> LRC -> replica.
#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "common/workload.h"
#include "rls/client.h"
#include "rls/rls_server.h"

namespace rls {
namespace {

using rlscommon::ErrorCode;

std::string UniqueDb(const std::string& base) {
  static std::atomic<int> counter{0};
  return "mysql://" + base + std::to_string(counter.fetch_add(1));
}

class Topology {
 public:
  explicit Topology(net::Network* network) : network_(network) {}

  RlsServer* AddLrc(const std::string& address, UpdateConfig update) {
    RlsServerConfig config;
    config.address = address;
    config.lrc.enabled = true;
    config.lrc.dsn = UniqueDb("topo_lrc");
    config.lrc.update = std::move(update);
    EXPECT_TRUE(env_.CreateDatabase(config.lrc.dsn).ok());
    return StartServer(config);
  }

  RlsServer* AddRli(const std::string& address, bool bloom_only = false) {
    RlsServerConfig config;
    config.address = address;
    config.rli.enabled = true;
    if (!bloom_only) {
      config.rli.dsn = UniqueDb("topo_rli");
      EXPECT_TRUE(env_.CreateDatabase(config.rli.dsn).ok());
    }
    return StartServer(config);
  }

  RlsServer* AddCombined(const std::string& address, UpdateConfig update) {
    RlsServerConfig config;
    config.address = address;
    config.lrc.enabled = true;
    config.lrc.dsn = UniqueDb("topo_both_lrc");
    config.lrc.update = std::move(update);
    config.rli.enabled = true;
    config.rli.dsn = UniqueDb("topo_both_rli");
    EXPECT_TRUE(env_.CreateDatabase(config.lrc.dsn).ok());
    EXPECT_TRUE(env_.CreateDatabase(config.rli.dsn).ok());
    return StartServer(config);
  }

 private:
  RlsServer* StartServer(const RlsServerConfig& config) {
    auto server = std::make_unique<RlsServer>(network_, config, &env_);
    EXPECT_TRUE(server->Start().ok());
    servers_.push_back(std::move(server));
    return servers_.back().get();
  }

  net::Network* network_;
  dbapi::Environment env_;
  std::vector<std::unique_ptr<RlsServer>> servers_;
};

UpdateConfig FullUpdateTo(std::initializer_list<std::string> rlis) {
  UpdateConfig update;
  update.mode = UpdateMode::kFull;
  for (const std::string& rli : rlis) update.targets.push_back(UpdateTarget{rli});
  return update;
}

TEST(IntegrationTest, TwoLevelLookupFlow) {
  // The paper's canonical usage: query the RLI for the owning LRCs, then
  // query one of those LRCs for the replicas (paper §3.2).
  net::Network network;
  Topology topo(&network);
  topo.AddRli("rli:lookup");
  RlsServer* lrc0 = topo.AddLrc("lrc:west", FullUpdateTo({"rli:lookup"}));
  RlsServer* lrc1 = topo.AddLrc("lrc:east", FullUpdateTo({"rli:lookup"}));

  // Both sites replicate "shared-data"; only west has "west-only".
  ASSERT_TRUE(lrc0->lrc_store()->CreateMapping("shared-data", "gsiftp://west/d").ok());
  ASSERT_TRUE(lrc1->lrc_store()->CreateMapping("shared-data", "gsiftp://east/d").ok());
  ASSERT_TRUE(lrc0->lrc_store()->CreateMapping("west-only", "gsiftp://west/w").ok());
  ASSERT_TRUE(lrc0->update_manager()->ForceFullUpdate().ok());
  ASSERT_TRUE(lrc1->update_manager()->ForceFullUpdate().ok());

  std::unique_ptr<RliClient> rli_client;
  ASSERT_TRUE(RliClient::Connect(&network, "rli:lookup", {}, &rli_client).ok());
  std::vector<std::string> lrcs;
  ASSERT_TRUE(rli_client->Query("shared-data", &lrcs).ok());
  EXPECT_EQ(lrcs.size(), 2u);
  ASSERT_TRUE(rli_client->Query("west-only", &lrcs).ok());
  ASSERT_EQ(lrcs.size(), 1u);

  // Follow the pointer: ask that LRC for actual replica locations.
  std::unique_ptr<LrcClient> lrc_client;
  ASSERT_TRUE(LrcClient::Connect(&network, lrcs[0], {}, &lrc_client).ok());
  std::vector<std::string> replicas;
  ASSERT_TRUE(lrc_client->Query("west-only", &replicas).ok());
  ASSERT_EQ(replicas.size(), 1u);
  EXPECT_EQ(replicas[0], "gsiftp://west/w");
}

TEST(IntegrationTest, EsgStyleFullyConnectedMesh) {
  // ESG deploys four servers functioning as both LRCs and RLIs in a
  // fully connected configuration (paper §6).
  net::Network network;
  Topology topo(&network);
  const std::vector<std::string> addresses = {"esg:0", "esg:1", "esg:2", "esg:3"};
  std::vector<RlsServer*> nodes;
  for (const std::string& address : addresses) {
    // Every node updates every node (including itself).
    UpdateConfig update;
    update.mode = UpdateMode::kFull;
    for (const std::string& peer : addresses) {
      update.targets.push_back(UpdateTarget{peer});
    }
    nodes.push_back(topo.AddCombined(address, update));
  }

  // Each node registers its own files.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int f = 0; f < 10; ++f) {
      ASSERT_TRUE(nodes[i]
                      ->lrc_store()
                      ->CreateMapping("esg-file-" + std::to_string(i) + "-" +
                                          std::to_string(f),
                                      "gsiftp://esg" + std::to_string(i) + "/f")
                      .ok());
    }
  }
  for (RlsServer* node : nodes) {
    ASSERT_TRUE(node->update_manager()->ForceFullUpdate().ok());
  }

  // ANY node's RLI can locate ANY file.
  for (const std::string& address : addresses) {
    std::unique_ptr<RliClient> client;
    ASSERT_TRUE(RliClient::Connect(&network, address, {}, &client).ok());
    std::vector<std::string> lrcs;
    ASSERT_TRUE(client->Query("esg-file-2-7", &lrcs).ok()) << "via " << address;
    ASSERT_EQ(lrcs.size(), 1u);
    EXPECT_EQ(lrcs[0], "esg:2");
  }
}

TEST(IntegrationTest, PegasusStyleManyLrcsFewRlis) {
  // Pegasus: 6 LRCs and 4 RLIs registering ~100k logical files (§6);
  // here scaled down but with the same fan-out structure.
  net::Network network;
  Topology topo(&network);
  const std::vector<std::string> rli_addresses = {"peg-rli:0", "peg-rli:1",
                                                  "peg-rli:2", "peg-rli:3"};
  std::vector<RlsServer*> rlis;
  for (const auto& address : rli_addresses) rlis.push_back(topo.AddRli(address));

  std::vector<RlsServer*> lrcs;
  rlscommon::NameGenerator gen("pegasus");
  for (int i = 0; i < 6; ++i) {
    UpdateConfig update;
    update.mode = UpdateMode::kFull;
    // Each LRC updates two RLIs (redundancy).
    update.targets.push_back(UpdateTarget{rli_addresses[i % 4]});
    update.targets.push_back(UpdateTarget{rli_addresses[(i + 1) % 4]});
    RlsServer* lrc = topo.AddLrc("peg-lrc:" + std::to_string(i), update);
    for (int f = 0; f < 50; ++f) {
      uint64_t id = static_cast<uint64_t>(i) * 50 + f;
      ASSERT_TRUE(
          lrc->lrc_store()->CreateMapping(gen.LogicalName(id), gen.PhysicalName(id)).ok());
    }
    lrcs.push_back(lrc);
  }
  for (RlsServer* lrc : lrcs) {
    ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());
  }

  // A file registered at LRC 3 is findable through its two RLIs.
  const std::string name = gen.LogicalName(3 * 50 + 11);
  std::unique_ptr<RliClient> client;
  ASSERT_TRUE(RliClient::Connect(&network, rli_addresses[3], {}, &client).ok());
  std::vector<std::string> found;
  ASSERT_TRUE(client->Query(name, &found).ok());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], "peg-lrc:3");
  ASSERT_TRUE(RliClient::Connect(&network, rli_addresses[0], {}, &client).ok());
  ASSERT_TRUE(client->Query(name, &found).ok());
  EXPECT_EQ(found[0], "peg-lrc:3");
  // ...but not through an RLI it does not update.
  ASSERT_TRUE(RliClient::Connect(&network, rli_addresses[1], {}, &client).ok());
  EXPECT_EQ(client->Query(name, &found).code(), ErrorCode::kNotFound);
}

TEST(IntegrationTest, BloomRliFalsePositivesRecoverable) {
  // Paper §3.2/§3.4: a Bloom RLI may answer with a false positive; the
  // client recovers by querying the LRC, which authoritatively says no.
  net::Network network;
  Topology topo(&network);
  topo.AddRli("rli:bloom", /*bloom_only=*/true);
  UpdateConfig update;
  update.mode = UpdateMode::kBloom;
  update.targets.push_back(UpdateTarget{"rli:bloom"});
  update.bloom_expected_entries = 2000;
  RlsServer* lrc = topo.AddLrc("lrc:bloomsrc", update);

  rlscommon::NameGenerator gen("fp");
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        lrc->lrc_store()->CreateMapping(gen.LogicalName(i), gen.PhysicalName(i)).ok());
  }
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());

  std::unique_ptr<RliClient> rli_client;
  ASSERT_TRUE(RliClient::Connect(&network, "rli:bloom", {}, &rli_client).ok());
  std::unique_ptr<LrcClient> lrc_client;
  ASSERT_TRUE(LrcClient::Connect(&network, "lrc:bloomsrc", {}, &lrc_client).ok());

  // Registered names are always found (no false negatives) and resolve.
  std::vector<std::string> lrcs, replicas;
  ASSERT_TRUE(rli_client->Query(gen.LogicalName(123), &lrcs).ok());
  ASSERT_TRUE(lrc_client->Query(gen.LogicalName(123), &replicas).ok());

  // Probe unregistered names: any RLI false positive must be recoverable
  // at the LRC (NotFound there).
  int false_positives = 0;
  for (uint64_t i = 0; i < 3000; ++i) {
    const std::string name = gen.LogicalName(1000000 + i);
    if (rli_client->Query(name, &lrcs).ok()) {
      ++false_positives;
      EXPECT_EQ(lrc_client->Query(name, &replicas).code(), ErrorCode::kNotFound);
    }
  }
  // ~1% FP rate -> expect on the order of 30; allow wide slack but assert
  // the rate is clearly bounded.
  EXPECT_LT(false_positives, 150);
  // Wildcard queries are impossible on a Bloom-only RLI (paper §5.4).
  std::vector<Mapping> wild;
  EXPECT_EQ(rli_client->WildcardQuery("*", 0, &wild).code(), ErrorCode::kUnsupported);
}

TEST(IntegrationTest, StaleRliPointerRecovery) {
  // A client holding a stale RLI answer must get NotFound at the LRC and
  // be able to fall back to another replica (paper §3.2 robustness note).
  net::Network network;
  Topology topo(&network);
  topo.AddRli("rli:stale");
  RlsServer* lrc_a = topo.AddLrc("lrc:a", FullUpdateTo({"rli:stale"}));
  RlsServer* lrc_b = topo.AddLrc("lrc:b", FullUpdateTo({"rli:stale"}));
  ASSERT_TRUE(lrc_a->lrc_store()->CreateMapping("doc", "gsiftp://a/doc").ok());
  ASSERT_TRUE(lrc_b->lrc_store()->CreateMapping("doc", "gsiftp://b/doc").ok());
  ASSERT_TRUE(lrc_a->update_manager()->ForceFullUpdate().ok());
  ASSERT_TRUE(lrc_b->update_manager()->ForceFullUpdate().ok());

  // The replica at A disappears but the RLI still points there (stale).
  ASSERT_TRUE(lrc_a->lrc_store()->DeleteMapping("doc", "gsiftp://a/doc").ok());

  std::unique_ptr<RliClient> rli_client;
  ASSERT_TRUE(RliClient::Connect(&network, "rli:stale", {}, &rli_client).ok());
  std::vector<std::string> lrcs;
  ASSERT_TRUE(rli_client->Query("doc", &lrcs).ok());
  EXPECT_EQ(lrcs.size(), 2u);  // stale answer still lists both

  int resolved = 0;
  for (const std::string& address : lrcs) {
    std::unique_ptr<LrcClient> lrc_client;
    ASSERT_TRUE(LrcClient::Connect(&network, address, {}, &lrc_client).ok());
    std::vector<std::string> replicas;
    if (lrc_client->Query("doc", &replicas).ok()) ++resolved;
  }
  EXPECT_EQ(resolved, 1);  // exactly the surviving replica
}

}  // namespace
}  // namespace rls
