#include "net/rpc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/serialize.h"
#include "net/transport.h"

namespace net {
namespace {

using rlscommon::ErrorCode;
using rlscommon::Status;

TEST(SerializeTest, RoundTripAllTypes) {
  std::string buffer;
  Writer w(&buffer);
  w.U8(7);
  w.U16(65535);
  w.U32(123456);
  w.U64(1ull << 60);
  w.I64(-42);
  w.F64(2.5);
  w.Str("hello");
  w.StrVec({"a", "bb", ""});

  Reader r(buffer);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double f64;
  std::string s;
  std::vector<std::string> v;
  ASSERT_TRUE(r.U8(&u8));
  ASSERT_TRUE(r.U16(&u16));
  ASSERT_TRUE(r.U32(&u32));
  ASSERT_TRUE(r.U64(&u64));
  ASSERT_TRUE(r.I64(&i64));
  ASSERT_TRUE(r.F64(&f64));
  ASSERT_TRUE(r.Str(&s));
  ASSERT_TRUE(r.StrVec(&v));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 65535);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 2.5);
  EXPECT_EQ(s, "hello");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "bb");
}

TEST(SerializeTest, UnderflowDetected) {
  Reader r("ab");
  uint64_t u64;
  EXPECT_FALSE(r.U64(&u64));
  std::string s;
  Reader r2("\xff\xff\xff\xff");  // length prefix larger than body
  EXPECT_FALSE(r2.Str(&s));
}

TEST(SerializeTest, HostileStrVecCountRejected) {
  // A huge count with a tiny body must not allocate or loop forever.
  std::string buffer;
  Writer w(&buffer);
  w.U32(0x7fffffff);
  Reader r(buffer);
  std::vector<std::string> v;
  EXPECT_FALSE(r.StrVec(&v));
}

TEST(LinkModelTest, DelayMath) {
  using Millis = std::chrono::duration<double, std::milli>;
  LinkModel lan = LinkModel::Lan100Mbit();
  // 1 MB at 100 Mbit/s ~= 80 ms serialization + 0.1 ms propagation.
  double ms = Millis(lan.DelayFor(1000000)).count();
  EXPECT_NEAR(ms, 80.1, 1.0);

  LinkModel wan = LinkModel::WanLaToChicago();
  double rtt_half_ms = Millis(wan.DelayFor(0)).count();
  EXPECT_NEAR(rtt_half_ms, 31.9, 0.1);

  LinkModel loop = LinkModel::Loopback();
  EXPECT_EQ(loop.DelayFor(1 << 20), rlscommon::Duration::zero());
}

TEST(MessageQueueTest, FifoAndClose) {
  MessageQueue queue;
  Message m;
  m.opcode = 1;
  ASSERT_TRUE(queue.Push(m));
  m.opcode = 2;
  ASSERT_TRUE(queue.Push(m));
  Message out;
  ASSERT_TRUE(queue.Pop(&out).ok());
  EXPECT_EQ(out.opcode, 1);
  queue.Close();
  // Drains remaining messages, then reports closed.
  ASSERT_TRUE(queue.Pop(&out).ok());
  EXPECT_EQ(out.opcode, 2);
  EXPECT_EQ(queue.Pop(&out).code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(queue.Push(m));
}

TEST(MessageQueueTest, PopWakesOnClose) {
  MessageQueue queue;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.Close();
  });
  Message out;
  EXPECT_EQ(queue.Pop(&out).code(), ErrorCode::kUnavailable);
  closer.join();
}

TEST(MessageQueueTest, TryPushRespectsDepthBound) {
  MessageQueue queue(2);
  Message m;
  EXPECT_EQ(queue.TryPush(m), MessageQueue::PushResult::kOk);
  EXPECT_EQ(queue.TryPush(m), MessageQueue::PushResult::kOk);
  EXPECT_EQ(queue.TryPush(m), MessageQueue::PushResult::kFull);
  EXPECT_EQ(queue.depth(), 2u);
  // Plain Push ignores the bound (control traffic must not be dropped).
  EXPECT_TRUE(queue.Push(m));
  EXPECT_EQ(queue.depth(), 3u);
  // Draining one frees a slot for TryPush again.
  Message out;
  ASSERT_TRUE(queue.Pop(&out).ok());
  ASSERT_TRUE(queue.Pop(&out).ok());
  EXPECT_EQ(queue.TryPush(m), MessageQueue::PushResult::kOk);
}

TEST(MessageQueueTest, TryPushAfterCloseReportsClosedNotFull) {
  MessageQueue queue(1);
  Message m;
  ASSERT_EQ(queue.TryPush(m), MessageQueue::PushResult::kOk);
  queue.Close();
  // Closed wins over full: the sender must learn the peer is gone, not
  // keep retrying a "full" queue forever.
  EXPECT_EQ(queue.TryPush(m), MessageQueue::PushResult::kClosed);
}

TEST(MessageQueueTest, CloseEnqueueInterleaving) {
  // Concurrent producers racing a Close: every Push either lands (and is
  // drained before the closed status surfaces) or reports failure —
  // messages are never silently lost and never appear after Unavailable.
  for (int round = 0; round < 20; ++round) {
    MessageQueue queue;
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < 16; ++i) {
          Message m;
          m.opcode = static_cast<uint16_t>(p * 100 + i);
          if (queue.Push(m)) accepted.fetch_add(1);
        }
      });
    }
    std::thread closer([&] { queue.Close(); });
    for (auto& t : producers) t.join();
    closer.join();
    int drained = 0;
    Message out;
    while (queue.Pop(&out).ok()) ++drained;
    EXPECT_EQ(drained, accepted.load());
    EXPECT_EQ(queue.Pop(&out).code(), ErrorCode::kUnavailable);
  }
}

TEST(MessageQueueTest, PopForTimesOutThenCloseWakes) {
  MessageQueue queue;
  Message out;
  // No traffic: PopFor must report Timeout, not Unavailable.
  EXPECT_EQ(queue.PopFor(&out, std::chrono::milliseconds(5)).code(),
            ErrorCode::kTimeout);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.Close();
  });
  // Blocked waiter wakes promptly on Close with Unavailable.
  EXPECT_EQ(queue.PopFor(&out, std::chrono::seconds(30)).code(),
            ErrorCode::kUnavailable);
  closer.join();
}

TEST(NetworkTest, ConnectRefusedWithoutListener) {
  Network network;
  ConnectionPtr conn;
  EXPECT_EQ(network.Connect("nowhere:1", LinkModel::Loopback(), &conn).code(),
            ErrorCode::kNotFound);
}

TEST(NetworkTest, ListenRejectsDuplicateAddress) {
  Network network;
  ASSERT_TRUE(network.Listen("addr:1", [](ConnectionPtr) {}).ok());
  EXPECT_EQ(network.Listen("addr:1", [](ConnectionPtr) {}).code(),
            ErrorCode::kAlreadyExists);
  network.StopListening("addr:1");
  EXPECT_TRUE(network.Listen("addr:1", [](ConnectionPtr) {}).ok());
}

RpcHandler EchoHandler() {
  return [](const gsi::AuthContext&, uint16_t opcode, const std::string& request,
            std::string* response) -> Status {
    if (opcode == 99) return Status::NotFound("nothing here");
    *response = request + "!";
    return Status::Ok();
  };
}

TEST(RpcTest, CallRoundTrip) {
  Network network;
  RpcServer server(&network, "echo:1", ServerOptions{}, EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<RpcClient> client;
  ASSERT_TRUE(RpcClient::Connect(&network, "echo:1", ClientOptions{}, &client).ok());
  std::string response;
  ASSERT_TRUE(client->Call(5, "hello", &response).ok());
  EXPECT_EQ(response, "hello!");
  EXPECT_EQ(server.requests_served(), 1u);
  server.Stop();
}

TEST(RpcTest, ServerErrorsPropagateAsStatus) {
  Network network;
  RpcServer server(&network, "echo:2", ServerOptions{}, EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<RpcClient> client;
  ASSERT_TRUE(RpcClient::Connect(&network, "echo:2", ClientOptions{}, &client).ok());
  std::string response;
  Status s = client->Call(99, "", &response);
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "nothing here");
  server.Stop();
}

TEST(RpcTest, SecuredServerRejectsAnonymous) {
  gsi::Gridmap gridmap;
  ASSERT_TRUE(gridmap.AddEntry("/CN=Tester", "tester").ok());
  gsi::Acl acl;
  ASSERT_TRUE(acl.AddEntry("tester", {gsi::Privilege::kLrcRead}).ok());
  ServerOptions options;
  options.auth =
      gsi::AuthManager::Secured(std::move(gridmap), std::move(acl),
                                std::chrono::microseconds(0));
  Network network;
  RpcServer server(&network, "sec:1", options, EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<RpcClient> client;
  Status s = RpcClient::Connect(&network, "sec:1", ClientOptions{}, &client);
  EXPECT_EQ(s.code(), ErrorCode::kUnauthenticated);

  ClientOptions with_cred;
  with_cred.credential.dn = "/CN=Tester";
  ASSERT_TRUE(RpcClient::Connect(&network, "sec:1", with_cred, &client).ok());
  std::string response;
  EXPECT_TRUE(client->Call(1, "ping", &response).ok());
  server.Stop();
}

TEST(RpcTest, ManyConcurrentClients) {
  Network network;
  RpcServer server(&network, "echo:3", ServerOptions{}, EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      std::unique_ptr<RpcClient> client;
      if (!RpcClient::Connect(&network, "echo:3", ClientOptions{}, &client).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 50; ++i) {
        std::string response;
        if (!client->Call(1, "x", &response).ok() || response != "x!") ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 16u * 50u);
  server.Stop();
}

TEST(RpcTest, CallAfterServerStopFails) {
  Network network;
  auto server = std::make_unique<RpcServer>(&network, "echo:4", ServerOptions{},
                                            EchoHandler());
  ASSERT_TRUE(server->Start().ok());
  std::unique_ptr<RpcClient> client;
  ASSERT_TRUE(RpcClient::Connect(&network, "echo:4", ClientOptions{}, &client).ok());
  server->Stop();
  std::string response;
  EXPECT_EQ(client->Call(1, "x", &response).code(), ErrorCode::kUnavailable);
}

TEST(RpcTest, LinkModelDelaysCall) {
  Network network;
  RpcServer server(&network, "slow:1", ServerOptions{}, EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  ClientOptions options;
  options.link.rtt = std::chrono::microseconds(40000);  // 40 ms RTT
  std::unique_ptr<RpcClient> client;
  ASSERT_TRUE(RpcClient::Connect(&network, "slow:1", options, &client).ok());
  auto start = std::chrono::steady_clock::now();
  std::string response;
  ASSERT_TRUE(client->Call(1, "x", &response).ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  // One call = request + response = one full RTT minimum.
  EXPECT_GE(elapsed, std::chrono::microseconds(38000));
  server.Stop();
}

}  // namespace
}  // namespace net
