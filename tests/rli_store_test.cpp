#include "rls/rli_store.h"

#include <gtest/gtest.h>

#include <atomic>

namespace rls {
namespace {

using rlscommon::ErrorCode;

class RliRelationalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    dsn_ = "mysql://rlistore" + std::to_string(counter.fetch_add(1));
    ASSERT_TRUE(env_.CreateDatabase(dsn_).ok());
    ASSERT_TRUE(RliRelationalStore::Create(env_, dsn_, &store_).ok());
  }

  dbapi::Environment env_;
  std::string dsn_;
  std::unique_ptr<RliRelationalStore> store_;
};

TEST_F(RliRelationalTest, UpsertAndQuery) {
  ASSERT_TRUE(store_->Upsert("lfn1", "rls://lrc0", 1000).ok());
  ASSERT_TRUE(store_->Upsert("lfn1", "rls://lrc1", 1000).ok());
  std::vector<std::string> lrcs;
  ASSERT_TRUE(store_->Query("lfn1", &lrcs).ok());
  EXPECT_EQ(lrcs.size(), 2u);
  EXPECT_EQ(store_->Query("missing", &lrcs).code(), ErrorCode::kNotFound);
}

TEST_F(RliRelationalTest, UpsertRefreshesNotDuplicates) {
  ASSERT_TRUE(store_->Upsert("lfn1", "rls://lrc0", 1000).ok());
  ASSERT_TRUE(store_->Upsert("lfn1", "rls://lrc0", 2000).ok());
  EXPECT_EQ(store_->AssociationCount(), 1u);
  // The refreshed timestamp must survive an expiration pass at t=1500.
  uint64_t removed = 0;
  ASSERT_TRUE(store_->ExpireOlderThan(1500, &removed).ok());
  EXPECT_EQ(removed, 0u);
  std::vector<std::string> lrcs;
  EXPECT_TRUE(store_->Query("lfn1", &lrcs).ok());
}

TEST_F(RliRelationalTest, BatchUpsert) {
  std::vector<std::string> names;
  for (int i = 0; i < 100; ++i) names.push_back("lfn" + std::to_string(i));
  ASSERT_TRUE(store_->UpsertBatch(names, "rls://lrc0", 500).ok());
  EXPECT_EQ(store_->AssociationCount(), 100u);
  EXPECT_EQ(store_->LogicalNameCount(), 100u);
}

TEST_F(RliRelationalTest, ExpirationDiscardsStaleEntries) {
  // Paper §3.2: "an expire thread ... discards entries older than the
  // allowed timeout interval".
  ASSERT_TRUE(store_->Upsert("old", "rls://lrc0", 1000).ok());
  ASSERT_TRUE(store_->Upsert("fresh", "rls://lrc0", 9000).ok());
  uint64_t removed = 0;
  ASSERT_TRUE(store_->ExpireOlderThan(5000, &removed).ok());
  EXPECT_EQ(removed, 1u);
  std::vector<std::string> lrcs;
  EXPECT_EQ(store_->Query("old", &lrcs).code(), ErrorCode::kNotFound);
  EXPECT_TRUE(store_->Query("fresh", &lrcs).ok());
  // Orphaned logical-name rows are garbage collected.
  EXPECT_EQ(store_->LogicalNameCount(), 1u);
}

TEST_F(RliRelationalTest, RemoveIsIdempotent) {
  ASSERT_TRUE(store_->Upsert("lfn1", "rls://lrc0", 1000).ok());
  ASSERT_TRUE(store_->Remove("lfn1", "rls://lrc0").ok());
  ASSERT_TRUE(store_->Remove("lfn1", "rls://lrc0").ok());
  ASSERT_TRUE(store_->Remove("never-existed", "rls://lrc0").ok());
  std::vector<std::string> lrcs;
  EXPECT_EQ(store_->Query("lfn1", &lrcs).code(), ErrorCode::kNotFound);
}

TEST_F(RliRelationalTest, RemoveOnlyAffectsOneLrc) {
  ASSERT_TRUE(store_->Upsert("lfn1", "rls://lrc0", 1000).ok());
  ASSERT_TRUE(store_->Upsert("lfn1", "rls://lrc1", 1000).ok());
  ASSERT_TRUE(store_->Remove("lfn1", "rls://lrc0").ok());
  std::vector<std::string> lrcs;
  ASSERT_TRUE(store_->Query("lfn1", &lrcs).ok());
  ASSERT_EQ(lrcs.size(), 1u);
  EXPECT_EQ(lrcs[0], "rls://lrc1");
}

TEST_F(RliRelationalTest, WildcardQuery) {
  ASSERT_TRUE(store_->Upsert("lfn://a/1", "rls://lrc0", 1000).ok());
  ASSERT_TRUE(store_->Upsert("lfn://a/2", "rls://lrc0", 1000).ok());
  ASSERT_TRUE(store_->Upsert("lfn://b/1", "rls://lrc1", 1000).ok());
  std::vector<Mapping> results;
  ASSERT_TRUE(store_->WildcardQuery("lfn://a/*", 0, &results).ok());
  EXPECT_EQ(results.size(), 2u);
}

TEST_F(RliRelationalTest, ListLrcs) {
  ASSERT_TRUE(store_->Upsert("x", "rls://lrc0", 1).ok());
  ASSERT_TRUE(store_->Upsert("y", "rls://lrc1", 1).ok());
  std::vector<std::string> lrcs;
  ASSERT_TRUE(store_->ListLrcs(&lrcs).ok());
  EXPECT_EQ(lrcs.size(), 2u);
}

TEST(RliBloomStoreTest, StoreAndQuery) {
  RliBloomStore store;
  bloom::BloomFilter f0 = bloom::BloomFilter::ForEntries(1000);
  f0.Insert("lfn1");
  f0.Insert("lfn2");
  bloom::BloomFilter f1 = bloom::BloomFilter::ForEntries(1000);
  f1.Insert("lfn2");
  store.StoreFilter("rls://lrc0", std::move(f0));
  store.StoreFilter("rls://lrc1", std::move(f1));
  EXPECT_EQ(store.filter_count(), 2u);

  std::vector<std::string> lrcs;
  ASSERT_TRUE(store.Query("lfn1", &lrcs).ok());
  ASSERT_EQ(lrcs.size(), 1u);
  EXPECT_EQ(lrcs[0], "rls://lrc0");
  ASSERT_TRUE(store.Query("lfn2", &lrcs).ok());
  EXPECT_EQ(lrcs.size(), 2u);
  EXPECT_EQ(store.Query("absent-name-zzz", &lrcs).code(), ErrorCode::kNotFound);
}

TEST(RliBloomStoreTest, ReplacingFilterDropsOldBits) {
  RliBloomStore store;
  bloom::BloomFilter old_filter = bloom::BloomFilter::ForEntries(1000);
  old_filter.Insert("old-name");
  store.StoreFilter("rls://lrc0", std::move(old_filter));
  bloom::BloomFilter new_filter = bloom::BloomFilter::ForEntries(1000);
  new_filter.Insert("new-name");
  store.StoreFilter("rls://lrc0", std::move(new_filter));
  EXPECT_EQ(store.filter_count(), 1u);
  std::vector<std::string> lrcs;
  EXPECT_EQ(store.Query("old-name", &lrcs).code(), ErrorCode::kNotFound);
  EXPECT_TRUE(store.Query("new-name", &lrcs).ok());
}

TEST(RliBloomStoreTest, ExpirationUsesClock) {
  rlscommon::ManualClock clock;
  RliBloomStore store(&clock);
  store.StoreFilter("rls://stale", bloom::BloomFilter::ForEntries(100));
  clock.Advance(std::chrono::seconds(100));
  store.StoreFilter("rls://fresh", bloom::BloomFilter::ForEntries(100));
  EXPECT_EQ(store.ExpireOlderThan(std::chrono::seconds(50)), 1u);
  EXPECT_EQ(store.filter_count(), 1u);
  std::vector<std::string> lrcs;
  ASSERT_TRUE(store.ListLrcs(&lrcs).ok());
  ASSERT_EQ(lrcs.size(), 1u);
  EXPECT_EQ(lrcs[0], "rls://fresh");
}

TEST(RliBloomStoreTest, TotalBitsTracksMemoryFootprint) {
  RliBloomStore store;
  store.StoreFilter("a", bloom::BloomFilter::ForEntries(100000));
  store.StoreFilter("b", bloom::BloomFilter::ForEntries(100000));
  EXPECT_EQ(store.TotalFilterBits(), 2u * 1000000u);
}

}  // namespace
}  // namespace rls
