#include "common/strings.h"

#include <gtest/gtest.h>

namespace rlscommon {
namespace {

TEST(SplitTest, BasicFields) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(WildcardTest, ExactMatch) {
  EXPECT_TRUE(WildcardMatch("abc", "abc"));
  EXPECT_FALSE(WildcardMatch("abc", "abd"));
  EXPECT_FALSE(WildcardMatch("abc", "ab"));
}

TEST(WildcardTest, StarMatchesRuns) {
  EXPECT_TRUE(WildcardMatch("*", ""));
  EXPECT_TRUE(WildcardMatch("*", "anything"));
  EXPECT_TRUE(WildcardMatch("lfn://*", "lfn://ligo/file1"));
  EXPECT_TRUE(WildcardMatch("*.gwf", "H-R-123.gwf"));
  EXPECT_FALSE(WildcardMatch("*.gwf", "H-R-123.dat"));
}

TEST(WildcardTest, QuestionMatchesOne) {
  EXPECT_TRUE(WildcardMatch("a?c", "abc"));
  EXPECT_FALSE(WildcardMatch("a?c", "ac"));
  EXPECT_FALSE(WildcardMatch("a?c", "abbc"));
}

TEST(WildcardTest, MixedPatterns) {
  EXPECT_TRUE(WildcardMatch("lfn://*/run-00?/*", "lfn://exp/run-007/file42"));
  EXPECT_FALSE(WildcardMatch("lfn://*/run-00?/*", "lfn://exp/run-017/file42"));
  EXPECT_TRUE(WildcardMatch("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(WildcardMatch("a*b*c", "aXXcYYb"));
}

TEST(WildcardTest, AdjacentStars) {
  EXPECT_TRUE(WildcardMatch("a**b", "ab"));
  EXPECT_TRUE(WildcardMatch("**", "x"));
  EXPECT_TRUE(WildcardMatch("a*", "a"));
}

// No exponential blowup on adversarial patterns (linear algorithm).
TEST(WildcardTest, PathologicalPatternTerminates) {
  std::string text(2000, 'a');
  std::string pattern;
  for (int i = 0; i < 50; ++i) pattern += "a*";
  pattern += "b";
  EXPECT_FALSE(WildcardMatch(pattern, text));
}

TEST(HasWildcardTest, DetectsMeta) {
  EXPECT_TRUE(HasWildcard("a*b"));
  EXPECT_TRUE(HasWildcard("a?b"));
  EXPECT_FALSE(HasWildcard("plain/name"));
}

TEST(LikeToGlobTest, TranslatesMeta) {
  EXPECT_EQ(LikeToGlob("%abc%"), "*abc*");
  EXPECT_EQ(LikeToGlob("a_c"), "a?c");
  EXPECT_EQ(LikeToGlob("plain"), "plain");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("lfn://x", "lfn://"));
  EXPECT_FALSE(StartsWith("lf", "lfn://"));
  EXPECT_TRUE(EndsWith("file.gwf", ".gwf"));
  EXPECT_FALSE(EndsWith("gwf", ".gwf"));
}

// Property sweep: LIKE -> glob -> match agrees with direct glob semantics.
class LikeGlobProperty : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(LikeGlobProperty, RoundTripMatches) {
  auto [like, text] = GetParam();
  std::string glob = LikeToGlob(like);
  // Sanity: conversions never change length.
  EXPECT_EQ(glob.size(), std::string(like).size());
  // Matching is well-defined (no crash) and consistent when repeated.
  bool first = WildcardMatch(glob, text);
  EXPECT_EQ(first, WildcardMatch(glob, text));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeGlobProperty,
    ::testing::Values(std::make_pair("%run%", "lfn://a/run-1/f"),
                      std::make_pair("lfn%", "lfn://a"),
                      std::make_pair("_fn%", "lfn://a"),
                      std::make_pair("%", ""),
                      std::make_pair("a_b", "axb")));

}  // namespace
}  // namespace rlscommon
