// Observability layer: metrics registry, trace propagation, JSONL
// exporter and the GetStats introspection RPC.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rls/client.h"
#include "rls/protocol.h"
#include "rls/rls_server.h"

namespace obs {
namespace {

TEST(RegistryTest, CounterConcurrencyIsExact) {
  Registry registry;
  Counter* counter = registry.GetCounter("test_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), uint64_t{kThreads} * kPerThread);
}

TEST(RegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  Registry registry;
  Counter* a = registry.GetCounter("requests", Label("method", "add"));
  Counter* b = registry.GetCounter("requests", Label("method", "add"));
  Counter* c = registry.GetCounter("requests", Label("method", "query"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryTest, PrometheusRenderingGolden) {
  Registry registry;
  registry.GetCounter("adds_total")->Increment(3);
  registry.GetGauge("queue_depth")->Set(-2);
  registry.GetCounter("hits_total", Label("pool", "lrc"))->Increment();
  Histogram* hist = registry.GetHistogram("latency_us");
  hist->RecordMicros(100);
  hist->RecordMicros(100);
  const std::string expected =
      "adds_total 3\n"
      "hits_total{pool=\"lrc\"} 1\n"
      "latency_us_count 2\n"
      "latency_us_mean 100\n"
      "latency_us_p50 127\n"
      "latency_us_p95 127\n"
      "latency_us_p99 127\n"
      "latency_us_p999 127\n"
      "latency_us_max 127\n"
      "queue_depth -2\n";
  EXPECT_EQ(registry.RenderPrometheus(), expected);
}

TEST(RegistryTest, JsonRenderingSplicesExtraFields) {
  Registry registry;
  registry.GetCounter("adds_total")->Increment(7);
  const std::string json = registry.RenderJson("\"server\": \"lrc:1\"");
  EXPECT_EQ(json,
            "{\"server\": \"lrc:1\", \"metrics\": "
            "[{\"name\": \"adds_total\", \"value\": 7}]}");
}

TEST(RegistryTest, CallbackGaugeEvaluatedAtSnapshotTime) {
  Registry registry;
  int backing = 5;
  registry.RegisterCallback("store_size", "", [&] { return double(backing); });
  Snapshot snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 5.0);
  backing = 9;
  EXPECT_DOUBLE_EQ(registry.TakeSnapshot().samples[0].value, 9.0);
  registry.UnregisterCallback("store_size", "");
  EXPECT_EQ(registry.size(), 0u);
  registry.UnregisterCallback("store_size", "");  // tolerates missing
}

TEST(TraceTest, NewTraceIdNeverZeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = NewTraceId();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(TraceIdToString(0x1234).size(), 16u);
}

TEST(TraceTest, ScopedTraceInstallsAndRestores) {
  EXPECT_FALSE(CurrentTrace().valid());
  {
    ScopedTrace outer(TraceContext{42, 1});
    EXPECT_EQ(CurrentTrace().trace_id, 42u);
    {
      ScopedTrace inner(TraceContext{43, 2});
      EXPECT_EQ(CurrentTrace().trace_id, 43u);
    }
    EXPECT_EQ(CurrentTrace().trace_id, 42u);
    EXPECT_EQ(CurrentTrace().span_id, 1u);
  }
  EXPECT_FALSE(CurrentTrace().valid());
}

TEST(TraceTest, SpanMeasuresElapsedAndSlowThresholdRoundTrips) {
  SetSlowSpanThreshold(std::chrono::microseconds(250));
  EXPECT_EQ(GetSlowSpanThreshold(), std::chrono::microseconds(250));
  {
    ScopedTrace trace;
    Span span("test", "slow_hop");
    span.Hop("midpoint");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(span.Elapsed(), std::chrono::microseconds(250));
    // Destructor logs the slow-span WARN with hop timing; must not crash.
  }
  SetSlowSpanThreshold(std::chrono::microseconds(0));
}

TEST(ExporterTest, AppendsOneLinePerExport) {
  const std::string path =
      "/tmp/rls_obs_exporter_" + std::to_string(::getpid()) + ".jsonl";
  std::remove(path.c_str());
  Registry registry;
  registry.GetCounter("exports_total")->Increment();
  JsonlExporter exporter({path, std::chrono::milliseconds(60000)},
                         [&] { return registry.RenderJson(); });
  ASSERT_TRUE(exporter.Start().ok());
  ASSERT_TRUE(exporter.ExportNow().ok());
  exporter.Stop();  // writes one final snapshot
  EXPECT_EQ(exporter.lines_written(), 2u);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[4096];
  int lines = 0;
  while (std::fgets(line, sizeof(line), f)) {
    ++lines;
    EXPECT_NE(std::string(line).find("exports_total"), std::string::npos);
  }
  std::fclose(f);
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(ExporterTest, DisabledWithoutPathConfigured) {
  JsonlExporter exporter({"", std::chrono::milliseconds(10)},
                         [] { return std::string("{}"); });
  ASSERT_TRUE(exporter.Start().ok());
  exporter.Stop();
  EXPECT_EQ(exporter.lines_written(), 0u);
}

// The ISSUE acceptance test: GetStats on a combined LRC+RLI server that
// has served traffic returns at least 12 distinct metric names covering
// every instrumented subsystem (rpc, connection pool, thread pool, LRC,
// RLI, update manager).
TEST(GetStatsTest, SnapshotSpansAllSubsystems) {
  net::Network network;
  dbapi::Environment env;
  rls::RlsServerConfig config;
  config.address = "obs:1";
  config.url = "obs:1";
  config.lrc.enabled = true;
  config.lrc.dsn = "mysql://obs_lrc";
  config.lrc.update.mode = rls::UpdateMode::kFull;
  config.lrc.update.targets.push_back(rls::UpdateTarget{"obs:1"});  // self-update
  config.rli.enabled = true;
  config.rli.dsn = "mysql://obs_rli";
  ASSERT_TRUE(env.CreateDatabase(config.lrc.dsn).ok());
  ASSERT_TRUE(env.CreateDatabase(config.rli.dsn).ok());
  rls::RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<rls::LrcClient> client;
  ASSERT_TRUE(rls::LrcClient::Connect(&network, "obs:1", {}, &client).ok());
  ASSERT_TRUE(client->Create("lfn0", "pfn0").ok());
  ASSERT_TRUE(client->ForceUpdate().ok());
  std::vector<std::string> targets;
  ASSERT_TRUE(client->Query("lfn0", &targets).ok());

  rls::GetStatsResponse stats;
  ASSERT_TRUE(client->GetStats(&stats).ok());
  EXPECT_EQ(stats.role, "lrc+rli");
  EXPECT_GE(stats.uptime_seconds, 0.0);
  EXPECT_EQ(stats.vitals.mapping_count, 1u);
  EXPECT_GT(stats.vitals.requests_served, 0u);
  EXPECT_GE(stats.vitals.updates_sent, 1u);
  EXPECT_GE(stats.vitals.updates_received, 1u);
  ASSERT_EQ(stats.targets.size(), 1u);
  EXPECT_EQ(stats.targets[0].address, "obs:1");
  EXPECT_GE(stats.targets[0].updates_sent, 1u);
  EXPECT_GE(stats.targets[0].seconds_since_last, 0.0);

  std::set<std::string> names;
  for (const rls::MetricSample& m : stats.metrics) names.insert(m.name);
  EXPECT_GE(names.size(), 12u);
  // One representative name per subsystem.
  const char* expected[] = {
      "rpc_requests_total",            // net::rpc
      "rpc_active_connections",        // net::rpc callback gauge
      "db_pool_acquires_total",        // dbapi::pool
      "threadpool_queue_depth",        // rlscommon::ThreadPool
      "lrc_mappings",                  // LRC store
      "rli_associations",              // RLI store
      "ss_updates_sent_total",         // update manager
      "rls_family_latency_us",         // per-family histograms
      "server_uptime_seconds",
  };
  for (const char* name : expected) {
    EXPECT_TRUE(names.count(name)) << "missing metric " << name;
  }

  // Codec round trip of the full response.
  std::string bytes;
  stats.Encode(&bytes);
  rls::GetStatsResponse decoded;
  ASSERT_TRUE(rls::GetStatsResponse::Decode(bytes, &decoded).ok());
  EXPECT_EQ(decoded.role, stats.role);
  EXPECT_EQ(decoded.metrics.size(), stats.metrics.size());
  EXPECT_EQ(decoded.targets.size(), 1u);
  EXPECT_EQ(decoded.targets[0].address, "obs:1");
  EXPECT_FALSE(rls::GetStatsResponse::Decode("junk", &decoded).ok());

  server.Stop();
}

// Group-commit observability: a server with wal_group_commit on must
// surface the batching counters through GetStats (WalRecoveryStatus)
// and the wal_group_size / wal_sync_wait_us / wal_group_commits_total
// instruments through the registry, and the codec must round-trip the
// new fields.
TEST(GetStatsTest, GroupCommitWalCountersSurface) {
  net::Network network;
  dbapi::Environment env;
  rls::RlsServerConfig config;
  config.address = "obs:gc";
  config.url = "obs:gc";
  config.lrc.enabled = true;
  config.lrc.dsn = "mysql://obs_gc";
  config.lrc.wal_group_commit = true;
  ASSERT_TRUE(env.CreateDatabase(config.lrc.dsn).ok());
  rls::RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());
  // Durable flushes so sync waits actually happen (penalty 0: fast).
  env.Find(config.lrc.dsn)->SetDurableFlush(true);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&network, t] {
      std::unique_ptr<rls::LrcClient> client;
      ASSERT_TRUE(rls::LrcClient::Connect(&network, "obs:gc", {}, &client).ok());
      for (int i = 0; i < 10; ++i) {
        std::string name = "gc" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(client->Create(name, "pfn://" + name).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  std::unique_ptr<rls::LrcClient> client;
  ASSERT_TRUE(rls::LrcClient::Connect(&network, "obs:gc", {}, &client).ok());
  rls::GetStatsResponse stats;
  ASSERT_TRUE(client->GetStats(&stats).ok());
  EXPECT_EQ(stats.wal.group_commit, 1);
  EXPECT_GE(stats.wal.commits, 40u);
  EXPECT_GE(stats.wal.group_commits, 1u);
  EXPECT_LE(stats.wal.syncs, stats.wal.commits);

  std::set<std::string> names;
  for (const rls::MetricSample& m : stats.metrics) names.insert(m.name);
  for (const char* name :
       {"wal_group_size", "wal_sync_wait_us", "wal_group_commits_total",
        "wal_commits", "wal_syncs"}) {
    EXPECT_TRUE(names.count(name)) << "missing metric " << name;
  }

  std::string bytes;
  stats.Encode(&bytes);
  rls::GetStatsResponse decoded;
  ASSERT_TRUE(rls::GetStatsResponse::Decode(bytes, &decoded).ok());
  EXPECT_EQ(decoded.wal.group_commit, 1);
  EXPECT_EQ(decoded.wal.commits, stats.wal.commits);
  EXPECT_EQ(decoded.wal.syncs, stats.wal.syncs);
  EXPECT_EQ(decoded.wal.group_commits, stats.wal.group_commits);
  server.Stop();
}

TEST(GetStatsTest, RequiresStatsPrivilege) {
  net::Network network;
  dbapi::Environment env;
  gsi::Gridmap gridmap;
  ASSERT_TRUE(gridmap.AddEntry("/CN=Reader", "reader").ok());
  gsi::Acl acl;
  ASSERT_TRUE(acl.AddEntry("reader", {gsi::Privilege::kLrcRead}).ok());
  rls::RlsServerConfig config;
  config.address = "obs:acl";
  config.lrc.enabled = true;
  config.lrc.dsn = "mysql://obs_acl";
  config.auth = gsi::AuthManager::Secured(std::move(gridmap), std::move(acl),
                                          std::chrono::microseconds(0));
  ASSERT_TRUE(env.CreateDatabase(config.lrc.dsn).ok());
  rls::RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());

  rls::ClientConfig reader;
  reader.credential.dn = "/CN=Reader";
  std::unique_ptr<rls::LrcClient> client;
  ASSERT_TRUE(rls::LrcClient::Connect(&network, "obs:acl", reader, &client).ok());
  rls::GetStatsResponse stats;
  rlscommon::Status s = client->GetStats(&stats);
  EXPECT_FALSE(s.ok());
  server.Stop();
}

}  // namespace
}  // namespace obs
