// Planner behaviour, asserted through EXPLAIN: the hot RLS queries must
// run index-to-index, and fallbacks must be visible.
#include <gtest/gtest.h>

#include "sql/engine.h"

namespace sql {
namespace {

using rdb::BackendProfile;
using rdb::Value;
using rlscommon::Status;

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : db_("plan", BackendProfile::MySQL()), engine_(&db_) {
    Exec("CREATE TABLE t_lfn (id INT AUTO_INCREMENT PRIMARY KEY,"
         " name VARCHAR(250) NOT NULL, ref INT)");
    Exec("CREATE UNIQUE INDEX idx_lfn_name ON t_lfn (name)");
    Exec("CREATE TABLE t_pfn (id INT AUTO_INCREMENT PRIMARY KEY,"
         " name VARCHAR(250) NOT NULL, ref INT)");
    Exec("CREATE TABLE t_map (lfn_id INT, pfn_id INT, updatetime TIMESTAMP)");
    Exec("CREATE INDEX idx_map_lfn ON t_map (lfn_id)");
    Exec("CREATE ORDERED INDEX idx_map_time ON t_map (updatetime)");
  }

  ResultSet Exec(const std::string& sql, const std::vector<Value>& params = {}) {
    ResultSet rs;
    Status s = engine_.ExecuteSql(sql, params, &session_, &rs);
    EXPECT_TRUE(s.ok()) << sql << " -> " << s.ToString();
    return rs;
  }

  /// access_path cell for `source` in the EXPLAIN output.
  std::string PathFor(const ResultSet& rs, const std::string& source) {
    for (const rdb::Row& row : rs.rows) {
      if (row[0].AsString() == source) return row[1].AsString();
    }
    return "<missing>";
  }

  rdb::Database db_;
  Engine engine_;
  Session session_;
};

TEST_F(PlannerTest, PointLookupUsesHashIndex) {
  ResultSet rs = Exec("EXPLAIN SELECT * FROM t_lfn WHERE name = ?",
                      {Value::String("x")});
  EXPECT_EQ(PathFor(rs, "t_lfn"), "hash index on name (=)");
}

TEST_F(PlannerTest, UnindexedPredicateFallsBackToScan) {
  ResultSet rs = Exec("EXPLAIN SELECT * FROM t_lfn WHERE ref = 3");
  EXPECT_EQ(PathFor(rs, "t_lfn"), "sequential scan");
}

TEST_F(PlannerTest, LrcReplicaQueryRunsIndexToIndex) {
  // The exact hot-path query: every level must avoid sequential scans
  // except t_pfn's pk probe (also an index).
  ResultSet rs = Exec(
      "EXPLAIN SELECT t_pfn.name FROM t_lfn"
      " JOIN t_map ON t_lfn.id = t_map.lfn_id"
      " JOIN t_pfn ON t_map.pfn_id = t_pfn.id"
      " WHERE t_lfn.name = ?",
      {Value::String("x")});
  EXPECT_EQ(PathFor(rs, "t_lfn"), "hash index on name (=)");
  EXPECT_EQ(PathFor(rs, "t_map"), "hash index on lfn_id (=)");
  EXPECT_EQ(PathFor(rs, "t_pfn"), "hash index on id (=)");
}

TEST_F(PlannerTest, ExpirationDeleteShapeUsesOrderedIndex) {
  // The RLI expire thread's scan: updatetime < cutoff.
  ResultSet rs = Exec("EXPLAIN SELECT * FROM t_map WHERE updatetime < ?",
                      {Value::Timestamp(123)});
  EXPECT_EQ(PathFor(rs, "t_map"), "ordered index on updatetime (<)");
}

TEST_F(PlannerTest, JoinWithoutInnerIndexScans) {
  Exec("CREATE TABLE bare (k INT, v INT)");
  ResultSet rs = Exec(
      "EXPLAIN SELECT * FROM t_lfn JOIN bare ON t_lfn.id = bare.k"
      " WHERE t_lfn.name = 'x'");
  EXPECT_EQ(PathFor(rs, "bare"), "sequential scan");
}

TEST_F(PlannerTest, AliasesAppearInPlan) {
  ResultSet rs = Exec("EXPLAIN SELECT * FROM t_lfn AS l WHERE l.name = 'x'");
  EXPECT_EQ(PathFor(rs, "l"), "hash index on name (=)");
}

TEST_F(PlannerTest, ConstantOnLeftSideStillDrives) {
  ResultSet rs = Exec("EXPLAIN SELECT * FROM t_lfn WHERE ? = name",
                      {Value::String("x")});
  EXPECT_EQ(PathFor(rs, "t_lfn"), "hash index on name (=)");
}

}  // namespace
}  // namespace sql
