// Property-based tests: randomized operation sequences against simple
// reference models.
//
//   * LrcStore vs. an in-memory multimap model — create/add/delete/query
//     must agree exactly after every step.
//   * SQL engine vs. a vector-of-rows model for predicate filtering.
//   * Bloom counting filter: after arbitrary add/remove churn, exported
//     bitmaps never produce false negatives for the live set.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>

#include "bloom/bloom_filter.h"
#include "common/rng.h"
#include "rls/lrc_store.h"
#include "sql/engine.h"

namespace rls {
namespace {

std::string UniqueDb() {
  static std::atomic<int> counter{0};
  return "mysql://prop" + std::to_string(counter.fetch_add(1));
}

class LrcModelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LrcModelProperty, RandomOpsAgreeWithModel) {
  dbapi::Environment env;
  const std::string dsn = UniqueDb();
  ASSERT_TRUE(env.CreateDatabase(dsn).ok());
  std::unique_ptr<LrcStore> store;
  ASSERT_TRUE(LrcStore::Create(env, dsn, &store).ok());

  // Reference model: logical -> set of targets.
  std::map<std::string, std::set<std::string>> model;
  rlscommon::Xoshiro256 rng(GetParam());

  auto lfn = [&](uint64_t i) { return "lfn" + std::to_string(i); };
  auto pfn = [&](uint64_t i) { return "pfn" + std::to_string(i); };

  for (int step = 0; step < 600; ++step) {
    const uint64_t l = rng.Below(20);
    const uint64_t p = rng.Below(30);
    switch (rng.Below(4)) {
      case 0: {  // create
        auto status = store->CreateMapping(lfn(l), pfn(p));
        const bool model_new = !model.count(lfn(l));
        EXPECT_EQ(status.ok(), model_new) << "step " << step;
        if (model_new) model[lfn(l)].insert(pfn(p));
        break;
      }
      case 1: {  // add
        auto status = store->AddMapping(lfn(l), pfn(p));
        auto it = model.find(lfn(l));
        const bool model_ok = it != model.end() && !it->second.count(pfn(p));
        EXPECT_EQ(status.ok(), model_ok) << "step " << step;
        if (model_ok) it->second.insert(pfn(p));
        break;
      }
      case 2: {  // delete
        auto status = store->DeleteMapping(lfn(l), pfn(p));
        auto it = model.find(lfn(l));
        const bool model_ok = it != model.end() && it->second.count(pfn(p)) > 0;
        EXPECT_EQ(status.ok(), model_ok) << "step " << step;
        if (model_ok) {
          it->second.erase(pfn(p));
          if (it->second.empty()) model.erase(it);
        }
        break;
      }
      case 3: {  // query
        std::vector<std::string> targets;
        auto status = store->QueryLogical(lfn(l), &targets);
        auto it = model.find(lfn(l));
        EXPECT_EQ(status.ok(), it != model.end()) << "step " << step;
        if (it != model.end()) {
          std::set<std::string> got(targets.begin(), targets.end());
          EXPECT_EQ(got, it->second) << "step " << step;
        }
        break;
      }
    }
  }

  // Final invariants: counts agree; every model mapping is queryable.
  uint64_t model_mappings = 0;
  for (const auto& [l, targets] : model) model_mappings += targets.size();
  EXPECT_EQ(store->LogicalNameCount(), model.size());
  EXPECT_EQ(store->MappingCount(), model_mappings);
  for (const auto& [l, targets] : model) {
    std::vector<std::string> got;
    ASSERT_TRUE(store->QueryLogical(l, &got).ok());
    EXPECT_EQ(std::set<std::string>(got.begin(), got.end()), targets);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LrcModelProperty, ::testing::Values(1, 2, 3, 4, 5));

class SqlFilterProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlFilterProperty, PredicatesAgreeWithModel) {
  rdb::Database db("prop", rdb::BackendProfile::MySQL());
  sql::Engine engine(&db);
  sql::Session session;
  sql::ResultSet rs;
  ASSERT_TRUE(engine.ExecuteSql("CREATE TABLE t (id INT, v INT)", {}, &session, &rs).ok());
  ASSERT_TRUE(engine.ExecuteSql("CREATE INDEX idx_v ON t (v)", {}, &session, &rs).ok());

  rlscommon::Xoshiro256 rng(GetParam());
  std::vector<std::pair<int64_t, int64_t>> model;
  for (int i = 0; i < 200; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Below(50));
    model.emplace_back(i, v);
    ASSERT_TRUE(engine
                    .ExecuteSql("INSERT INTO t (id, v) VALUES (?, ?)",
                                {rdb::Value::Int(i), rdb::Value::Int(v)}, &session, &rs)
                    .ok());
  }

  for (int probe = 0; probe < 50; ++probe) {
    const int64_t bound = static_cast<int64_t>(rng.Below(55));
    // Equality via index.
    ASSERT_TRUE(engine
                    .ExecuteSql("SELECT COUNT(*) FROM t WHERE v = ?",
                                {rdb::Value::Int(bound)}, &session, &rs)
                    .ok());
    int64_t expected = 0;
    for (auto& [id, v] : model) {
      if (v == bound) ++expected;
    }
    EXPECT_EQ(rs.at(0, 0).AsInt(), expected) << "v = " << bound;
    // Range via scan.
    ASSERT_TRUE(engine
                    .ExecuteSql("SELECT COUNT(*) FROM t WHERE v < ?",
                                {rdb::Value::Int(bound)}, &session, &rs)
                    .ok());
    expected = 0;
    for (auto& [id, v] : model) {
      if (v < bound) ++expected;
    }
    EXPECT_EQ(rs.at(0, 0).AsInt(), expected) << "v < " << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFilterProperty, ::testing::Values(11, 22, 33));

class BloomChurnProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BloomChurnProperty, NoFalseNegativesAfterChurn) {
  bloom::CountingBloomFilter filter = bloom::CountingBloomFilter::ForEntries(5000);
  std::set<std::string> live;
  rlscommon::Xoshiro256 rng(GetParam());

  for (int step = 0; step < 5000; ++step) {
    std::string key = "key" + std::to_string(rng.Below(3000));
    if (rng.Below(2) == 0) {
      if (!live.count(key)) {
        filter.Insert(key);
        live.insert(key);
      }
    } else if (live.count(key)) {
      filter.Remove(key);
      live.erase(key);
    }
  }

  bloom::BloomFilter exported = filter.ToBloomFilter();
  for (const std::string& key : live) {
    EXPECT_TRUE(filter.Contains(key)) << key;
    EXPECT_TRUE(exported.Contains(key)) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BloomChurnProperty, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace rls
