// Tests for configuration-file bootstrap (single servers and static
// topologies — the paper's stand-in for a membership service, §3.6).
#include "rls/bootstrap.h"

#include <gtest/gtest.h>

#include "rls/client.h"

namespace rls {
namespace {

using rlscommon::Config;
using rlscommon::ErrorCode;
using rlscommon::Status;

Config MustParse(const std::string& text) {
  Config config;
  EXPECT_TRUE(Config::ParseString(text, &config).ok());
  return config;
}

TEST(ConfigureServerTest, FullLrcConfig) {
  Config config = MustParse(
      "address rls://lrc0.isi.edu\n"
      "lrc_server true\n"
      "lrc_dsn mysql://boot_lrc0\n"
      "update_mode immediate\n"
      "update_rli rls://rli0.isi.edu\n"
      "update_rli rls://rli1.isi.edu\n"
      "update_immediate_interval_ms 5000\n"
      "update_buffer_count 42\n");
  RlsServerConfig server;
  ASSERT_TRUE(ConfigureServer(config, &server).ok());
  EXPECT_EQ(server.address, "rls://lrc0.isi.edu");
  EXPECT_TRUE(server.lrc.enabled);
  EXPECT_FALSE(server.rli.enabled);
  EXPECT_EQ(server.lrc.update.mode, UpdateMode::kImmediate);
  ASSERT_EQ(server.lrc.update.targets.size(), 2u);
  EXPECT_EQ(server.lrc.update.targets[1].address, "rls://rli1.isi.edu");
  EXPECT_EQ(server.lrc.update.immediate_interval, std::chrono::milliseconds(5000));
  EXPECT_EQ(server.lrc.update.immediate_max_pending, 42u);
}

TEST(ConfigureServerTest, RliConfigWithParents) {
  Config config = MustParse(
      "address rls://rli0\n"
      "rli_server true\n"
      "rli_dsn mysql://boot_rli0\n"
      "rli_timeout_s 120\n"
      "rli_parent rls://root-rli\n");
  RlsServerConfig server;
  ASSERT_TRUE(ConfigureServer(config, &server).ok());
  EXPECT_TRUE(server.rli.enabled);
  EXPECT_EQ(server.rli.timeout, std::chrono::seconds(120));
  ASSERT_EQ(server.rli.parents.size(), 1u);
  EXPECT_EQ(server.rli.parents[0].address, "rls://root-rli");
}

TEST(ConfigureServerTest, PartitionedTargetsCarryPatterns) {
  Config config = MustParse(
      "address rls://lrc\n"
      "lrc_server true\n"
      "lrc_dsn mysql://boot_part\n"
      "update_mode partitioned\n"
      "update_rli rls://rli-a lfn://expA/* lfn://calib/*\n"
      "update_rli rls://rli-b lfn://expB/*\n");
  RlsServerConfig server;
  ASSERT_TRUE(ConfigureServer(config, &server).ok());
  ASSERT_EQ(server.lrc.update.targets.size(), 2u);
  EXPECT_EQ(server.lrc.update.targets[0].patterns.size(), 2u);
  EXPECT_EQ(server.lrc.update.targets[0].patterns[1], "lfn://calib/*");
}

TEST(ConfigureServerTest, AuthenticationBlock) {
  Config config = MustParse(
      "address rls://sec\n"
      "lrc_server true\n"
      "lrc_dsn mysql://boot_sec\n"
      "authentication true\n"
      "gridmap \"/CN=Ann.*\" annc\n"
      "acl annc: lrc_read, lrc_write\n"
      "auth_handshake_us 0\n");
  RlsServerConfig server;
  ASSERT_TRUE(ConfigureServer(config, &server).ok());
  EXPECT_FALSE(server.auth.open());
  gsi::AuthContext ctx;
  ASSERT_TRUE(server.auth.Authenticate(gsi::Credential{"/CN=Ann Chervenak"}, &ctx).ok());
  EXPECT_EQ(ctx.local_user, "annc");
  EXPECT_TRUE(server.auth.Authorize(ctx, gsi::Privilege::kLrcWrite).ok());
}

TEST(ConfigureServerTest, RejectsBrokenConfigs) {
  RlsServerConfig server;
  EXPECT_FALSE(ConfigureServer(MustParse("lrc_server true\n"), &server).ok());
  EXPECT_FALSE(ConfigureServer(MustParse("address a\n"), &server).ok());
  EXPECT_FALSE(
      ConfigureServer(MustParse("address a\nlrc_server true\n"), &server).ok());
  EXPECT_FALSE(ConfigureServer(
                   MustParse("address a\nlrc_server true\nlrc_dsn mysql://x\n"
                             "update_mode full\n"),  // mode without targets
                   &server)
                   .ok());
  EXPECT_FALSE(ConfigureServer(
                   MustParse("address a\nlrc_server true\nlrc_dsn mysql://x\n"
                             "update_mode warp\nupdate_rli r\n"),
                   &server)
                   .ok());
  EXPECT_FALSE(ConfigureServer(
                   MustParse("address a\nlrc_server true\nlrc_dsn mysql://x\n"
                             "authentication true\n"),  // no acl entries
                   &server)
                   .ok());
}

TEST(EnsureDatabasesTest, CreatesOnceIdempotently) {
  Config config = MustParse(
      "address rls://both\n"
      "lrc_server true\n"
      "lrc_dsn mysql://ensure_lrc\n"
      "rli_server true\n"
      "rli_dsn mysql://ensure_rli\n");
  RlsServerConfig server;
  ASSERT_TRUE(ConfigureServer(config, &server).ok());
  dbapi::Environment env;
  ASSERT_TRUE(EnsureDatabases(server, env).ok());
  EXPECT_NE(env.Find("mysql://ensure_lrc"), nullptr);
  EXPECT_NE(env.Find("mysql://ensure_rli"), nullptr);
  // Second call must not fail on the existing databases.
  EXPECT_TRUE(EnsureDatabases(server, env).ok());
}

TEST(TopologyTest, StartsWholeDeploymentFromOneFile) {
  Config config = MustParse(
      "servers rli0 lrc0 lrc1\n"
      "server.rli0.address rls://topo-rli0\n"
      "server.rli0.rli_server true\n"
      "server.rli0.rli_dsn mysql://topo_rli0\n"
      "server.lrc0.address rls://topo-lrc0\n"
      "server.lrc0.lrc_server true\n"
      "server.lrc0.lrc_dsn mysql://topo_lrc0\n"
      "server.lrc0.update_mode full\n"
      "server.lrc0.update_rli rls://topo-rli0\n"
      "server.lrc1.address rls://topo-lrc1\n"
      "server.lrc1.lrc_server true\n"
      "server.lrc1.lrc_dsn mysql://topo_lrc1\n"
      "server.lrc1.update_mode full\n"
      "server.lrc1.update_rli rls://topo-rli0\n");
  net::Network network;
  dbapi::Environment env;
  std::unique_ptr<Topology> topology;
  ASSERT_TRUE(Topology::Create(config, &network, &env, &topology).ok());
  EXPECT_EQ(topology->size(), 3u);
  ASSERT_NE(topology->Find("lrc0"), nullptr);
  EXPECT_EQ(topology->Find("nope"), nullptr);

  // The deployment actually works end to end.
  RlsServer* lrc0 = topology->Find("lrc0");
  ASSERT_TRUE(lrc0->lrc_store()->CreateMapping("topo-file", "gsiftp://x/f").ok());
  ASSERT_TRUE(lrc0->update_manager()->ForceFullUpdate().ok());
  std::unique_ptr<RliClient> client;
  ASSERT_TRUE(RliClient::Connect(&network, "rls://topo-rli0", {}, &client).ok());
  std::vector<std::string> owners;
  ASSERT_TRUE(client->Query("topo-file", &owners).ok());
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0], "rls://topo-lrc0");
  topology->StopAll();
}

TEST(TopologyTest, RejectsMissingServerList) {
  net::Network network;
  dbapi::Environment env;
  std::unique_ptr<Topology> topology;
  EXPECT_FALSE(
      Topology::Create(MustParse("server.x.address a\n"), &network, &env, &topology)
          .ok());
}

TEST(TopologyTest, BrokenMemberFailsWholeTopology) {
  Config config = MustParse(
      "servers good bad\n"
      "server.good.address rls://topo-good\n"
      "server.good.lrc_server true\n"
      "server.good.lrc_dsn mysql://topo_good\n"
      "server.bad.address rls://topo-bad\n");  // no role
  net::Network network;
  dbapi::Environment env;
  std::unique_ptr<Topology> topology;
  Status s = Topology::Create(config, &network, &env, &topology);
  EXPECT_FALSE(s.ok());
  // The good server was stopped and unregistered: its address is free.
  EXPECT_TRUE(network.Listen("rls://topo-good", [](net::ConnectionPtr) {}).ok());
}

}  // namespace
}  // namespace rls
