// Latency histogram + server metrics surface.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/histogram.h"
#include "rls/client.h"
#include "rls/rls_server.h"

namespace rlscommon {
namespace {

TEST(HistogramTest, EmptySnapshot) {
  LatencyHistogram hist;
  auto snap = hist.GetSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean_us, 0.0);
}

TEST(HistogramTest, MeanAndCount) {
  LatencyHistogram hist;
  hist.RecordMicros(100);
  hist.RecordMicros(300);
  auto snap = hist.GetSnapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.mean_us, 200.0);
}

TEST(HistogramTest, QuantilesWithinBucketResolution) {
  LatencyHistogram hist;
  // 90 fast samples (~100 us), 10 slow (~10000 us).
  for (int i = 0; i < 90; ++i) hist.RecordMicros(100);
  for (int i = 0; i < 10; ++i) hist.RecordMicros(10000);
  auto snap = hist.GetSnapshot();
  // p50 lands in the 64..127 bucket (upper edge 127).
  EXPECT_GE(snap.p50_us, 100u);
  EXPECT_LE(snap.p50_us, 255u);
  // p99 must land in the slow bucket (8192..16383).
  EXPECT_GE(snap.p99_us, 10000u);
  EXPECT_LE(snap.p99_us, 16383u);
  EXPECT_GE(snap.max_us, 10000u);
}

TEST(HistogramTest, ExtremeValuesClampToLastBucket) {
  LatencyHistogram hist;
  hist.RecordMicros(0);
  hist.RecordMicros(UINT64_MAX);
  auto snap = hist.GetSnapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_GT(snap.max_us, 1u << 30);
}

TEST(HistogramTest, RecordChronoAndReset) {
  LatencyHistogram hist;
  hist.Record(std::chrono::milliseconds(5));
  auto snap = hist.GetSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_NEAR(snap.mean_us, 5000.0, 1.0);
  hist.Reset();
  EXPECT_EQ(hist.GetSnapshot().count, 0u);
}

TEST(HistogramTest, ConcurrentRecordersDontLoseMuch) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) hist.RecordMicros(128);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.GetSnapshot().count, uint64_t{kThreads} * kPerThread);
}

TEST(HistogramTest, ToStringContainsFields) {
  LatencyHistogram hist;
  hist.RecordMicros(10);
  std::string text = hist.ToString();
  EXPECT_NE(text.find("count=1"), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
}

TEST(ServerMetricsTest, FamiliesTrackOperations) {
  net::Network network;
  dbapi::Environment env;
  ASSERT_TRUE(env.CreateDatabase("mysql://metrics_lrc").ok());
  rls::RlsServerConfig config;
  config.address = "rls:metrics";
  config.lrc.enabled = true;
  config.lrc.dsn = "mysql://metrics_lrc";
  rls::RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<rls::LrcClient> client;
  ASSERT_TRUE(rls::LrcClient::Connect(&network, "rls:metrics", {}, &client).ok());
  ASSERT_TRUE(client->Create("m1", "p1").ok());
  ASSERT_TRUE(client->Create("m2", "p2").ok());
  std::vector<std::string> targets;
  ASSERT_TRUE(client->Query("m1", &targets).ok());

  rls::MetricsResponse metrics;
  ASSERT_TRUE(client->Metrics(&metrics).ok());
  ASSERT_EQ(metrics.families.size(), 4u);
  uint64_t reads = 0, writes = 0;
  for (const rls::FamilyMetrics& f : metrics.families) {
    if (f.family == "lrc_read") reads = f.count;
    if (f.family == "lrc_write") writes = f.count;
    if (f.count > 0) EXPECT_GT(f.max_us, 0u) << f.family;
  }
  EXPECT_EQ(writes, 2u);
  EXPECT_EQ(reads, 1u);
  server.Stop();
}

TEST(ServerMetricsTest, CodecRoundTrip) {
  rls::MetricsResponse metrics;
  rls::FamilyMetrics f;
  f.family = "lrc_read";
  f.count = 7;
  f.mean_us = 12.5;
  f.p50_us = 8;
  f.p95_us = 64;
  f.p99_us = 128;
  f.p999_us = 192;
  f.max_us = 255;
  metrics.families.push_back(f);
  std::string bytes;
  metrics.Encode(&bytes);
  rls::MetricsResponse decoded;
  ASSERT_TRUE(rls::MetricsResponse::Decode(bytes, &decoded).ok());
  ASSERT_EQ(decoded.families.size(), 1u);
  EXPECT_EQ(decoded.families[0].family, "lrc_read");
  EXPECT_EQ(decoded.families[0].count, 7u);
  EXPECT_DOUBLE_EQ(decoded.families[0].mean_us, 12.5);
  EXPECT_EQ(decoded.families[0].p999_us, 192u);
  EXPECT_EQ(decoded.families[0].max_us, 255u);
  EXPECT_FALSE(rls::MetricsResponse::Decode("garbage", &decoded).ok());
}

}  // namespace
}  // namespace rlscommon
