// Robustness: hostile/malformed wire payloads must produce PROTOCOL
// errors, never crashes or hangs; requests before AUTH are rejected;
// unknown opcodes are rejected.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.h"
#include "net/rpc.h"
#include "rls/protocol.h"
#include "rls/rls_server.h"

namespace rls {
namespace {

using rlscommon::ErrorCode;

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    const int id = counter.fetch_add(1);
    RlsServerConfig config;
    config.address = "rls:rob" + std::to_string(id);
    config.lrc.enabled = true;
    config.lrc.dsn = "mysql://rob_lrc" + std::to_string(id);
    config.rli.enabled = true;
    config.rli.dsn = "mysql://rob_rli" + std::to_string(id);
    ASSERT_TRUE(env_.CreateDatabase(config.lrc.dsn).ok());
    ASSERT_TRUE(env_.CreateDatabase(config.rli.dsn).ok());
    address_ = config.address;
    server_ = std::make_unique<RlsServer>(&network_, config, &env_);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(net::RpcClient::Connect(&network_, address_, {}, &rpc_).ok());
  }

  net::Network network_;
  dbapi::Environment env_;
  std::string address_;
  std::unique_ptr<RlsServer> server_;
  std::unique_ptr<net::RpcClient> rpc_;
};

TEST_F(RobustnessTest, TruncatedPayloadsRejectedOnEveryOpcode) {
  const uint16_t opcodes[] = {
      kLrcCreate,  kLrcAdd,       kLrcDelete,        kLrcBulkCreate,
      kLrcQueryLfn, kLrcQueryPfn, kLrcBulkQueryLfn,  kLrcWildcardQueryLfn,
      kLrcExists,  kLrcAttrDefine, kLrcAttrAdd,      kLrcAttrSearch,
      kLrcAttrQueryObj, kLrcRliAdd, kRliQueryLfn,    kRliBulkQuery,
      kRliWildcardQuery, kSsFullBegin, kSsFullChunk, kSsFullEnd,
      kSsIncremental, kSsBloom};
  for (uint16_t opcode : opcodes) {
    std::string response;
    // Empty payload where a body is required.
    auto s = rpc_->Call(opcode, "", &response);
    EXPECT_FALSE(s.ok()) << "opcode " << opcode << " accepted empty payload";
    // One stray byte.
    s = rpc_->Call(opcode, "\x01", &response);
    EXPECT_FALSE(s.ok()) << "opcode " << opcode << " accepted 1-byte payload";
  }
  // The connection survives all of it.
  EXPECT_TRUE(rpc_->Call(kPing, "", nullptr).ok());
}

TEST_F(RobustnessTest, RandomBytesNeverCrashTheServer) {
  rlscommon::Xoshiro256 rng(1234);
  for (int round = 0; round < 500; ++round) {
    const uint16_t opcode = static_cast<uint16_t>(rng.Below(70));
    std::string payload;
    const std::size_t len = rng.Below(64);
    for (std::size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.Below(256)));
    }
    std::string response;
    (void)rpc_->Call(opcode, payload, &response);  // any status; no crash
  }
  EXPECT_TRUE(rpc_->Call(kPing, "", nullptr).ok());
}

TEST_F(RobustnessTest, HostileCountPrefixesRejected) {
  // A MappingRequest claiming 2^31 mappings with a tiny body.
  std::string payload;
  net::Writer w(&payload);
  w.U32(0x7fffffff);
  w.Str("lfn");
  std::string response;
  auto s = rpc_->Call(kLrcBulkCreate, payload, &response);
  EXPECT_EQ(s.code(), ErrorCode::kProtocol);

  // A Bloom update whose header promises more bits than the body holds.
  payload.clear();
  net::Writer w2(&payload);
  w2.Str("rls://attacker");
  std::string fake_filter = "BLM1";
  fake_filter.resize(24, '\xff');  // huge num_bits, no body
  w2.Str(fake_filter);
  s = rpc_->Call(kSsBloom, payload, &response);
  EXPECT_FALSE(s.ok());
}

TEST_F(RobustnessTest, RequestsBeforeAuthRejected) {
  // Hand-rolled connection that skips the AUTH handshake.
  net::ConnectionPtr raw;
  ASSERT_TRUE(network_.Connect(address_, net::LinkModel::Loopback(), &raw).ok());
  net::Message msg;
  msg.request_id = 1;
  msg.opcode = kLrcExists;
  NameQueryRequest req;
  req.name = "x";
  req.Encode(&msg.payload);
  ASSERT_TRUE(raw->Send(std::move(msg)).ok());
  net::Message reply;
  ASSERT_TRUE(raw->Recv(&reply).ok());
  ASSERT_TRUE(reply.is_error());
  EXPECT_EQ(net::DecodeError(reply.payload).code(), ErrorCode::kUnauthenticated);
}

TEST_F(RobustnessTest, UnknownOpcodeRejected) {
  std::string response;
  auto s = rpc_->Call(9999, "", &response);
  EXPECT_EQ(s.code(), ErrorCode::kProtocol);
}

TEST_F(RobustnessTest, OversizedNameRejectedCleanly) {
  // The Fig. 3 schema caps names at VARCHAR(250); a 10 KB name must fail
  // with a clean error, not corrupt anything.
  MappingRequest req;
  req.mappings.push_back(Mapping{std::string(10000, 'x'), "target"});
  std::string payload, response;
  req.Encode(&payload);
  auto s = rpc_->Call(kLrcCreate, payload, &response);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(rpc_->Call(kPing, "", nullptr).ok());
  EXPECT_EQ(server_->lrc_store()->LogicalNameCount(), 0u);
}

TEST_F(RobustnessTest, ErrorCodecRoundTrip) {
  std::string payload;
  net::EncodeError(rlscommon::Status::Timeout("deadline"), &payload);
  auto s = net::DecodeError(payload);
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_EQ(s.message(), "deadline");
  EXPECT_EQ(net::DecodeError("junk").code(), ErrorCode::kProtocol);
}

TEST_F(RobustnessTest, ProtocolDecodersRejectGarbageDirectly) {
  // Exercise every Decode function against random bytes (no server).
  rlscommon::Xoshiro256 rng(99);
  for (int i = 0; i < 200; ++i) {
    std::string junk;
    const std::size_t len = rng.Below(40);
    for (std::size_t b = 0; b < len; ++b) {
      junk.push_back(static_cast<char>(rng.Below(256)));
    }
    MappingRequest m;
    (void)MappingRequest::Decode(junk, &m);
    BulkQueryRequest bq;
    (void)BulkQueryRequest::Decode(junk, &bq);
    AttrValueRequest av;
    (void)AttrValueRequest::Decode(junk, &av);
    AttrSearchRequest as;
    (void)AttrSearchRequest::Decode(junk, &as);
    BulkAttrRequest ba;
    (void)BulkAttrRequest::Decode(junk, &ba);
    FullUpdateChunk fc;
    (void)FullUpdateChunk::Decode(junk, &fc);
    IncrementalUpdate iu;
    (void)IncrementalUpdate::Decode(junk, &iu);
    BloomUpdate bu;
    (void)BloomUpdate::Decode(junk, &bu);
    ServerStats stats;
    (void)DecodeStats(junk, &stats);
  }
  SUCCEED();  // no crash, no UB (run under sanitizers in CI)
}

}  // namespace
}  // namespace rls
