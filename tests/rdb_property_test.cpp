// Property tests for the storage engine: random operation sequences
// against an in-memory reference model, under BOTH backend profiles,
// with interleaved VACUUMs.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "rdb/database.h"

namespace rdb {
namespace {

TableSchema KvSchema() {
  return TableSchema("kv", {
      ColumnDef{"id", ColumnType::kInt, false, true, 0},
      ColumnDef{"key", ColumnType::kVarchar, false, false, 100},
      ColumnDef{"value", ColumnType::kInt, true, false, 0},
  });
}

struct Model {
  // key -> (id, value); unique key index semantics.
  std::map<std::string, std::pair<int64_t, int64_t>> rows;
};

class RdbModelProperty
    : public ::testing::TestWithParam<std::tuple<BackendKind, uint64_t>> {};

TEST_P(RdbModelProperty, RandomOpsMatchModel) {
  auto [kind, seed] = GetParam();
  BackendProfile profile;
  profile.kind = kind;
  Table table(KvSchema(), &profile);
  ASSERT_TRUE(table.CreateIndex("pk", "id", IndexKind::kHash, true).ok());
  ASSERT_TRUE(table.CreateIndex("by_key", "key", IndexKind::kHash, true).ok());

  Model model;
  rlscommon::Xoshiro256 rng(seed);

  auto find_rid = [&](const std::string& key, Rid* rid) {
    std::vector<Rid> rids;
    table.FindHashIndex("key")->Lookup(Value::String(key), &rids);
    for (Rid r : rids) {
      if (table.IsLive(r)) {
        *rid = r;
        return true;
      }
    }
    return false;
  };

  for (int step = 0; step < 3000; ++step) {
    const std::string key = "k" + std::to_string(rng.Below(40));
    switch (rng.Below(5)) {
      case 0: {  // insert
        Rid rid;
        int64_t id = 0;
        const int64_t value = static_cast<int64_t>(rng.Below(1000));
        rlscommon::Status s = table.Insert({Value::Null(), Value::String(key), Value::Int(value)},
                                &rid, &id);
        const bool expect_ok = !model.rows.count(key);
        ASSERT_EQ(s.ok(), expect_ok) << "step " << step << " key " << key;
        if (expect_ok) model.rows[key] = {id, value};
        break;
      }
      case 1: {  // delete
        Rid rid;
        const bool present = find_rid(key, &rid);
        ASSERT_EQ(present, model.rows.count(key) > 0) << "step " << step;
        if (present) {
          ASSERT_TRUE(table.Delete(rid).ok());
          model.rows.erase(key);
        }
        break;
      }
      case 2: {  // update value
        Rid rid;
        if (find_rid(key, &rid)) {
          Row row;
          ASSERT_TRUE(table.ReadRow(rid, &row).ok());
          const int64_t fresh = static_cast<int64_t>(rng.Below(1000));
          row[2] = Value::Int(fresh);
          Rid new_rid;
          ASSERT_TRUE(table.Update(rid, row, &new_rid).ok());
          model.rows[key].second = fresh;
        }
        break;
      }
      case 3: {  // point read
        Rid rid;
        const bool present = find_rid(key, &rid);
        ASSERT_EQ(present, model.rows.count(key) > 0) << "step " << step;
        if (present) {
          Row row;
          ASSERT_TRUE(table.ReadRow(rid, &row).ok());
          EXPECT_EQ(row[0].AsInt(), model.rows[key].first);
          EXPECT_EQ(row[2].AsInt(), model.rows[key].second);
        }
        break;
      }
      case 4: {  // occasional vacuum
        if (rng.Below(10) == 0) table.Vacuum();
        break;
      }
    }
  }

  // Final sweep: model and table agree exactly.
  EXPECT_EQ(table.live_rows(), model.rows.size());
  for (const auto& [key, expected] : model.rows) {
    Rid rid;
    ASSERT_TRUE(find_rid(key, &rid)) << key;
    Row row;
    ASSERT_TRUE(table.ReadRow(rid, &row).ok());
    EXPECT_EQ(row[0].AsInt(), expected.first) << key;
    EXPECT_EQ(row[2].AsInt(), expected.second) << key;
  }
  table.Vacuum();
  EXPECT_EQ(table.live_rows(), model.rows.size());
  EXPECT_EQ(table.dead_rows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndSeeds, RdbModelProperty,
    ::testing::Combine(::testing::Values(BackendKind::kMySQL,
                                         BackendKind::kPostgreSQL),
                       ::testing::Values(101, 202, 303)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == BackendKind::kMySQL ? "MySQL"
                                                                        : "PostgreSQL") +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// Ordered-index invariant: LookupLess == brute-force filter, under churn.
class OrderedIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderedIndexProperty, RangeAgreesWithBruteForce) {
  OrderedIndex index;
  std::multimap<int64_t, Rid> model;
  rlscommon::Xoshiro256 rng(GetParam());
  for (int step = 0; step < 2000; ++step) {
    const int64_t key = static_cast<int64_t>(rng.Below(500));
    const Rid rid{static_cast<uint32_t>(step), 0};
    if (rng.Below(3) != 0) {
      index.Insert(Value::Timestamp(key), rid);
      model.emplace(key, rid);
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      index.Erase(Value::Timestamp(it->first), it->second);
      model.erase(it);
    }
    if (step % 100 == 0) {
      const int64_t bound = static_cast<int64_t>(rng.Below(600));
      std::vector<Rid> got;
      index.LookupLess(Value::Timestamp(bound), &got);
      std::size_t expected = 0;
      for (const auto& [k, r] : model) {
        if (k < bound) ++expected;
      }
      ASSERT_EQ(got.size(), expected) << "step " << step << " bound " << bound;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedIndexProperty, ::testing::Values(5, 55, 555));

}  // namespace
}  // namespace rdb
