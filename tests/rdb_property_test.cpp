// Property tests for the storage engine: random operation sequences
// against an in-memory reference model, under BOTH backend profiles,
// with interleaved VACUUMs — plus WAL recovery idempotence: replaying
// the log (once, twice, or with commits in between) never diverges
// from the model.
#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "rdb/database.h"
#include "rdb/wal_record.h"

namespace rdb {
namespace {

TableSchema KvSchema() {
  return TableSchema("kv", {
      ColumnDef{"id", ColumnType::kInt, false, true, 0},
      ColumnDef{"key", ColumnType::kVarchar, false, false, 100},
      ColumnDef{"value", ColumnType::kInt, true, false, 0},
  });
}

struct Model {
  // key -> (id, value); unique key index semantics.
  std::map<std::string, std::pair<int64_t, int64_t>> rows;
};

class RdbModelProperty
    : public ::testing::TestWithParam<std::tuple<BackendKind, uint64_t>> {};

TEST_P(RdbModelProperty, RandomOpsMatchModel) {
  auto [kind, seed] = GetParam();
  BackendProfile profile;
  profile.kind = kind;
  Table table(KvSchema(), &profile);
  ASSERT_TRUE(table.CreateIndex("pk", "id", IndexKind::kHash, true).ok());
  ASSERT_TRUE(table.CreateIndex("by_key", "key", IndexKind::kHash, true).ok());

  Model model;
  rlscommon::Xoshiro256 rng(seed);

  auto find_rid = [&](const std::string& key, Rid* rid) {
    std::vector<Rid> rids;
    table.FindHashIndex("key")->Lookup(Value::String(key), &rids);
    for (Rid r : rids) {
      if (table.IsLive(r)) {
        *rid = r;
        return true;
      }
    }
    return false;
  };

  for (int step = 0; step < 3000; ++step) {
    const std::string key = "k" + std::to_string(rng.Below(40));
    switch (rng.Below(5)) {
      case 0: {  // insert
        Rid rid;
        int64_t id = 0;
        const int64_t value = static_cast<int64_t>(rng.Below(1000));
        rlscommon::Status s = table.Insert({Value::Null(), Value::String(key), Value::Int(value)},
                                &rid, &id);
        const bool expect_ok = !model.rows.count(key);
        ASSERT_EQ(s.ok(), expect_ok) << "step " << step << " key " << key;
        if (expect_ok) model.rows[key] = {id, value};
        break;
      }
      case 1: {  // delete
        Rid rid;
        const bool present = find_rid(key, &rid);
        ASSERT_EQ(present, model.rows.count(key) > 0) << "step " << step;
        if (present) {
          ASSERT_TRUE(table.Delete(rid).ok());
          model.rows.erase(key);
        }
        break;
      }
      case 2: {  // update value
        Rid rid;
        if (find_rid(key, &rid)) {
          Row row;
          ASSERT_TRUE(table.ReadRow(rid, &row).ok());
          const int64_t fresh = static_cast<int64_t>(rng.Below(1000));
          row[2] = Value::Int(fresh);
          Rid new_rid;
          ASSERT_TRUE(table.Update(rid, row, &new_rid).ok());
          model.rows[key].second = fresh;
        }
        break;
      }
      case 3: {  // point read
        Rid rid;
        const bool present = find_rid(key, &rid);
        ASSERT_EQ(present, model.rows.count(key) > 0) << "step " << step;
        if (present) {
          Row row;
          ASSERT_TRUE(table.ReadRow(rid, &row).ok());
          EXPECT_EQ(row[0].AsInt(), model.rows[key].first);
          EXPECT_EQ(row[2].AsInt(), model.rows[key].second);
        }
        break;
      }
      case 4: {  // occasional vacuum
        if (rng.Below(10) == 0) table.Vacuum();
        break;
      }
    }
  }

  // Final sweep: model and table agree exactly.
  EXPECT_EQ(table.live_rows(), model.rows.size());
  for (const auto& [key, expected] : model.rows) {
    Rid rid;
    ASSERT_TRUE(find_rid(key, &rid)) << key;
    Row row;
    ASSERT_TRUE(table.ReadRow(rid, &row).ok());
    EXPECT_EQ(row[0].AsInt(), expected.first) << key;
    EXPECT_EQ(row[2].AsInt(), expected.second) << key;
  }
  table.Vacuum();
  EXPECT_EQ(table.live_rows(), model.rows.size());
  EXPECT_EQ(table.dead_rows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndSeeds, RdbModelProperty,
    ::testing::Combine(::testing::Values(BackendKind::kMySQL,
                                         BackendKind::kPostgreSQL),
                       ::testing::Values(101, 202, 303)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == BackendKind::kMySQL ? "MySQL"
                                                                        : "PostgreSQL") +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// Ordered-index invariant: LookupLess == brute-force filter, under churn.
class OrderedIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderedIndexProperty, RangeAgreesWithBruteForce) {
  OrderedIndex index;
  std::multimap<int64_t, Rid> model;
  rlscommon::Xoshiro256 rng(GetParam());
  for (int step = 0; step < 2000; ++step) {
    const int64_t key = static_cast<int64_t>(rng.Below(500));
    const Rid rid{static_cast<uint32_t>(step), 0};
    if (rng.Below(3) != 0) {
      index.Insert(Value::Timestamp(key), rid);
      model.emplace(key, rid);
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      index.Erase(Value::Timestamp(it->first), it->second);
      model.erase(it);
    }
    if (step % 100 == 0) {
      const int64_t bound = static_cast<int64_t>(rng.Below(600));
      std::vector<Rid> got;
      index.LookupLess(Value::Timestamp(bound), &got);
      std::size_t expected = 0;
      for (const auto& [k, r] : model) {
        if (k < bound) ++expected;
      }
      ASSERT_EQ(got.size(), expected) << "step " << step << " bound " << bound;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedIndexProperty, ::testing::Values(5, 55, 555));

// --------------------------------------------------------------------
// WAL recovery idempotence: a random committed workload, logged through
// the recovery WAL (with checkpoint wraps), replays to exactly the
// model — and replaying again, or replaying then committing more and
// replaying once more, never diverges.
// --------------------------------------------------------------------

class RecoveryIdempotenceProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  using KvModel = std::map<std::string, std::pair<int64_t, int64_t>>;

  static BackendProfile RecoveryProfile() {
    BackendProfile profile = BackendProfile::MySQL();
    profile.wal_recovery = true;
    profile.wal_recycle_bytes = 4096;  // force several checkpoint wraps
    return profile;
  }

  static void InitSchema(Database* db) {
    ASSERT_TRUE(db->CreateTable(KvSchema()).ok());
    Table* table = db->GetTable("kv");
    ASSERT_TRUE(table->CreateIndex("pk", "id", IndexKind::kHash, true).ok());
    ASSERT_TRUE(table->CreateIndex("by_key", "key", IndexKind::kHash, true).ok());
  }

  /// Runs `steps` random mutations, logging each as one committed
  /// transaction (the sql layer's behavior, without the sql layer).
  static void RunOps(Database* db, rlscommon::Xoshiro256* rng, int steps,
                     KvModel* model) {
    Table* table = db->GetTable("kv");
    auto find_row = [&](const std::string& key, Rid* rid, Row* row) {
      std::vector<Rid> rids;
      table->FindHashIndex("key")->Lookup(Value::String(key), &rids);
      for (Rid r : rids) {
        if (table->IsLive(r) && table->ReadRow(r, row).ok()) {
          *rid = r;
          return true;
        }
      }
      return false;
    };
    for (int step = 0; step < steps; ++step) {
      const std::string key = "k" + std::to_string(rng->Below(30));
      const int64_t value = static_cast<int64_t>(rng->Below(1000));
      std::string payload;
      switch (rng->Below(4)) {
        case 0:
        case 1: {  // insert fresh keys
          if (model->count(key)) continue;
          int64_t id = 0;
          ASSERT_TRUE(table
                          ->Insert({Value::Null(), Value::String(key),
                                    Value::Int(value)},
                                   nullptr, &id)
                          .ok());
          (*model)[key] = {id, value};
          AppendInsertRecord(
              "kv", {Value::Int(id), Value::String(key), Value::Int(value)},
              &payload);
          break;
        }
        case 2: {  // update
          Rid rid;
          Row old_row;
          if (!find_row(key, &rid, &old_row)) continue;
          Row new_row = old_row;
          new_row[2] = Value::Int(value);
          Rid new_rid;
          ASSERT_TRUE(table->Update(rid, new_row, &new_rid).ok());
          (*model)[key].second = value;
          AppendUpdateRecord("kv", old_row, new_row, &payload);
          break;
        }
        default: {  // delete
          Rid rid;
          Row old_row;
          if (!find_row(key, &rid, &old_row)) continue;
          ASSERT_TRUE(table->Delete(rid).ok());
          model->erase(key);
          AppendDeleteRecord("kv", old_row, &payload);
          break;
        }
      }
      if (!payload.empty()) {
        ASSERT_TRUE(db->wal().Commit(payload, true, {}).ok());
      }
    }
  }

  static KvModel Dump(Database* db) {
    KvModel out;
    const Table* table = db->GetTable("kv");
    table->Scan([&](Rid rid, SlotState st) {
      if (st != SlotState::kLive) return true;
      Row row;
      if (table->ReadRow(rid, &row).ok()) {
        out[row[1].AsString()] = {row[0].AsInt(), row[2].AsInt()};
      }
      return true;
    });
    return out;
  }
};

TEST_P(RecoveryIdempotenceProperty, ReplayNeverDiverges) {
  const uint64_t seed = GetParam();
  const std::string wal = ::testing::TempDir() + "/rls_recprop_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(seed) + ".wal";
  ::unlink(wal.c_str());
  ::unlink((wal + ".ckpt").c_str());
  rlscommon::Xoshiro256 rng(seed);
  KvModel model;

  {  // Committed workload (several checkpoint wraps at 4 KB recycle).
    Database db("prop", RecoveryProfile(), wal);
    InitSchema(&db);
    ASSERT_TRUE(db.Recover().ok());
    RunOps(&db, &rng, 1500, &model);
    EXPECT_GE(db.wal().checkpoints(), 1u);
  }

  uint64_t lsn_after_replay = 0;
  {  // Replay equals the model; a second Recover() is a no-op.
    Database db("prop", RecoveryProfile(), wal);
    InitSchema(&db);
    ASSERT_TRUE(db.Recover().ok());
    EXPECT_EQ(Dump(&db), model) << "seed " << seed;
    lsn_after_replay = db.wal().last_lsn();
    ASSERT_TRUE(db.Recover().ok());
    EXPECT_EQ(Dump(&db), model) << "double replay diverged, seed " << seed;
    EXPECT_EQ(db.wal().last_lsn(), lsn_after_replay);
  }

  {  // Replay-then-commit: more work after recovery, then replay again.
    Database db("prop", RecoveryProfile(), wal);
    InitSchema(&db);
    ASSERT_TRUE(db.Recover().ok());
    EXPECT_GE(db.wal().last_lsn(), lsn_after_replay);
    RunOps(&db, &rng, 500, &model);
  }
  {
    Database db("prop", RecoveryProfile(), wal);
    InitSchema(&db);
    ASSERT_TRUE(db.Recover().ok());
    EXPECT_EQ(Dump(&db), model) << "replay-then-commit diverged, seed " << seed;
  }
  ::unlink(wal.c_str());
  ::unlink((wal + ".ckpt").c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryIdempotenceProperty,
                         ::testing::Values(11, 77, 1234));

}  // namespace
}  // namespace rdb
