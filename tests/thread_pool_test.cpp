#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace rlscommon {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelismActuallyHappens) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      int now = concurrent.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace rlscommon
