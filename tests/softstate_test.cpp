// End-to-end soft-state update tests: LRC servers pushing full,
// incremental, Bloom and partitioned updates into RLI servers over the
// in-process network (paper §3.2–3.5).
#include <gtest/gtest.h>

#include <atomic>

#include "rls/client.h"
#include "rls/rls_server.h"

namespace rls {
namespace {

using rlscommon::ErrorCode;

class SoftStateTest : public ::testing::Test {
 protected:
  static std::string UniqueName(const std::string& base) {
    static std::atomic<int> counter{0};
    return base + std::to_string(counter.fetch_add(1));
  }

  /// Starts an RLI server (relational + bloom stores).
  std::unique_ptr<RlsServer> StartRli(const std::string& address,
                                      std::chrono::seconds timeout = std::chrono::seconds(0)) {
    RlsServerConfig config;
    config.address = address;
    config.rli.enabled = true;
    config.rli.dsn = "mysql://" + UniqueName("rli_db");
    config.rli.accept_bloom = true;
    config.rli.timeout = timeout;
    EXPECT_TRUE(env_.CreateDatabase(config.rli.dsn).ok());
    auto server = std::make_unique<RlsServer>(&network_, config, &env_);
    EXPECT_TRUE(server->Start().ok());
    return server;
  }

  /// Starts an LRC server configured with the given update mode/targets.
  std::unique_ptr<RlsServer> StartLrc(const std::string& address, UpdateConfig update) {
    RlsServerConfig config;
    config.address = address;
    config.url = address;
    config.lrc.enabled = true;
    config.lrc.dsn = "mysql://" + UniqueName("lrc_db");
    config.lrc.update = std::move(update);
    EXPECT_TRUE(env_.CreateDatabase(config.lrc.dsn).ok());
    auto server = std::make_unique<RlsServer>(&network_, config, &env_);
    EXPECT_TRUE(server->Start().ok());
    return server;
  }

  net::Network network_;
  dbapi::Environment env_;
};

TEST_F(SoftStateTest, FullUncompressedUpdateFlow) {
  auto rli = StartRli("rli:1");
  UpdateConfig update;
  update.mode = UpdateMode::kFull;
  update.targets.push_back(UpdateTarget{"rli:1"});
  update.chunk_size = 16;  // force multiple chunks
  auto lrc = StartLrc("lrc:1", update);

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(lrc->lrc_store()
                    ->CreateMapping("lfn" + std::to_string(i), "pfn" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());

  // The RLI now maps every logical name to the LRC url.
  std::vector<std::string> lrcs;
  ASSERT_TRUE(rli->rli_relational()->Query("lfn42", &lrcs).ok());
  ASSERT_EQ(lrcs.size(), 1u);
  EXPECT_EQ(lrcs[0], "lrc:1");
  EXPECT_EQ(rli->rli_relational()->AssociationCount(), 50u);
  EXPECT_EQ(rli->Stats().updates_received, 1u);
  EXPECT_EQ(lrc->update_manager()->stats().full_updates_sent, 1u);
  EXPECT_EQ(lrc->update_manager()->stats().names_sent, 50u);
}

TEST_F(SoftStateTest, IncrementalUpdateReflectsRecentChanges) {
  auto rli = StartRli("rli:2");
  UpdateConfig update;
  update.mode = UpdateMode::kImmediate;
  update.targets.push_back(UpdateTarget{"rli:2"});
  auto lrc = StartLrc("lrc:2", update);

  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("a", "p1").ok());
  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("b", "p2").ok());
  ASSERT_TRUE(lrc->update_manager()->FlushImmediate().ok());

  std::vector<std::string> lrcs;
  ASSERT_TRUE(rli->rli_relational()->Query("a", &lrcs).ok());
  ASSERT_TRUE(rli->rli_relational()->Query("b", &lrcs).ok());

  // Deleting a name propagates as a "removed" entry.
  ASSERT_TRUE(lrc->lrc_store()->DeleteMapping("a", "p1").ok());
  ASSERT_TRUE(lrc->update_manager()->FlushImmediate().ok());
  EXPECT_EQ(rli->rli_relational()->Query("a", &lrcs).code(), ErrorCode::kNotFound);
  ASSERT_TRUE(rli->rli_relational()->Query("b", &lrcs).ok());
}

TEST_F(SoftStateTest, AddThenDeleteCancelsOut) {
  auto rli = StartRli("rli:3");
  UpdateConfig update;
  update.mode = UpdateMode::kImmediate;
  update.targets.push_back(UpdateTarget{"rli:3"});
  auto lrc = StartLrc("lrc:3", update);

  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("flash", "p").ok());
  ASSERT_TRUE(lrc->lrc_store()->DeleteMapping("flash", "p").ok());
  ASSERT_TRUE(lrc->update_manager()->FlushImmediate().ok());
  // Nothing should have been sent: the add and delete cancelled.
  EXPECT_EQ(lrc->update_manager()->stats().incremental_updates_sent, 0u);
}

TEST_F(SoftStateTest, BloomUpdateFlow) {
  auto rli = StartRli("rli:4");
  UpdateConfig update;
  update.mode = UpdateMode::kBloom;
  update.targets.push_back(UpdateTarget{"rli:4"});
  update.bloom_expected_entries = 1000;
  auto lrc = StartLrc("lrc:4", update);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(lrc->lrc_store()
                    ->CreateMapping("blfn" + std::to_string(i), "p" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());
  EXPECT_EQ(rli->rli_bloom()->filter_count(), 1u);

  std::vector<std::string> lrcs;
  ASSERT_TRUE(rli->rli_bloom()->Query("blfn123", &lrcs).ok());
  ASSERT_EQ(lrcs.size(), 1u);
  EXPECT_EQ(lrcs[0], "lrc:4");
  // The one-time generation cost was recorded.
  EXPECT_GE(lrc->update_manager()->stats().last_bloom_generate_seconds, 0.0);
  EXPECT_EQ(lrc->update_manager()->stats().bloom_updates_sent, 1u);
}

TEST_F(SoftStateTest, BloomDeletionUnsetsBits) {
  auto rli = StartRli("rli:5");
  UpdateConfig update;
  update.mode = UpdateMode::kBloom;
  update.targets.push_back(UpdateTarget{"rli:5"});
  update.bloom_expected_entries = 1000;
  auto lrc = StartLrc("lrc:5", update);

  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("keep", "p1").ok());
  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("drop", "p2").ok());
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());

  ASSERT_TRUE(lrc->lrc_store()->DeleteMapping("drop", "p2").ok());
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());  // resends filter

  std::vector<std::string> lrcs;
  ASSERT_TRUE(rli->rli_bloom()->Query("keep", &lrcs).ok());
  EXPECT_EQ(rli->rli_bloom()->Query("drop", &lrcs).code(), ErrorCode::kNotFound);
}

TEST_F(SoftStateTest, PartitionedUpdatesRouteBySubspace) {
  // Paper §3.5: names matched against patterns; different namespace
  // subsets go to different RLIs.
  auto rli_a = StartRli("rli:6a");
  auto rli_b = StartRli("rli:6b");
  UpdateConfig update;
  update.mode = UpdateMode::kPartitioned;
  update.targets.push_back(UpdateTarget{"rli:6a", net::LinkModel::Loopback(),
                                        {"lfn://expA/*"}});
  update.targets.push_back(UpdateTarget{"rli:6b", net::LinkModel::Loopback(),
                                        {"lfn://expB/*"}});
  auto lrc = StartLrc("lrc:6", update);

  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("lfn://expA/f1", "p1").ok());
  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("lfn://expA/f2", "p2").ok());
  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("lfn://expB/f1", "p3").ok());
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());

  EXPECT_EQ(rli_a->rli_relational()->AssociationCount(), 2u);
  EXPECT_EQ(rli_b->rli_relational()->AssociationCount(), 1u);
  std::vector<std::string> lrcs;
  EXPECT_TRUE(rli_a->rli_relational()->Query("lfn://expA/f1", &lrcs).ok());
  EXPECT_EQ(rli_a->rli_relational()->Query("lfn://expB/f1", &lrcs).code(),
            ErrorCode::kNotFound);
}

TEST_F(SoftStateTest, StaleEntriesExpireAtRli) {
  auto rli = StartRli("rli:7", std::chrono::seconds(1));
  UpdateConfig update;
  update.mode = UpdateMode::kFull;
  update.targets.push_back(UpdateTarget{"rli:7"});
  auto lrc = StartLrc("lrc:7", update);

  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("short-lived", "p").ok());
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());
  std::vector<std::string> lrcs;
  ASSERT_TRUE(rli->rli_relational()->Query("short-lived", &lrcs).ok());

  // Let the soft state age past the 1 s timeout, then expire.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  rli->ExpireNow();
  EXPECT_EQ(rli->rli_relational()->Query("short-lived", &lrcs).code(),
            ErrorCode::kNotFound);

  // A fresh update resurrects it — soft state is reconstructable (§2).
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());
  EXPECT_TRUE(rli->rli_relational()->Query("short-lived", &lrcs).ok());
}

TEST_F(SoftStateTest, LrcUpdatesMultipleRlis) {
  auto rli_a = StartRli("rli:8a");
  auto rli_b = StartRli("rli:8b");
  UpdateConfig update;
  update.mode = UpdateMode::kFull;
  update.targets.push_back(UpdateTarget{"rli:8a"});
  update.targets.push_back(UpdateTarget{"rli:8b"});
  auto lrc = StartLrc("lrc:8", update);

  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("both", "p").ok());
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());
  std::vector<std::string> lrcs;
  EXPECT_TRUE(rli_a->rli_relational()->Query("both", &lrcs).ok());
  EXPECT_TRUE(rli_b->rli_relational()->Query("both", &lrcs).ok());
}

TEST_F(SoftStateTest, HierarchicalRliForwarding) {
  // §7 "hierarchy of RLI servers that update one another".
  auto root = StartRli("rli:root");
  RlsServerConfig mid_config;
  mid_config.address = "rli:mid";
  mid_config.rli.enabled = true;
  mid_config.rli.dsn = "mysql://" + UniqueName("rli_mid");
  mid_config.rli.parents.push_back(UpdateTarget{"rli:root"});
  ASSERT_TRUE(env_.CreateDatabase(mid_config.rli.dsn).ok());
  auto mid = std::make_unique<RlsServer>(&network_, mid_config, &env_);
  ASSERT_TRUE(mid->Start().ok());

  UpdateConfig update;
  update.mode = UpdateMode::kFull;
  update.targets.push_back(UpdateTarget{"rli:mid"});
  auto lrc = StartLrc("lrc:9", update);

  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("forwarded", "p").ok());
  ASSERT_TRUE(lrc->update_manager()->ForceFullUpdate().ok());

  std::vector<std::string> lrcs;
  EXPECT_TRUE(mid->rli_relational()->Query("forwarded", &lrcs).ok());
  // The update propagated one level up the hierarchy too.
  EXPECT_TRUE(root->rli_relational()->Query("forwarded", &lrcs).ok());
}

TEST_F(SoftStateTest, ImmediateSchedulerFlushesOnThreshold) {
  auto rli = StartRli("rli:10");
  UpdateConfig update;
  update.mode = UpdateMode::kImmediate;
  update.targets.push_back(UpdateTarget{"rli:10"});
  update.immediate_max_pending = 5;
  update.immediate_interval = std::chrono::milliseconds(50);
  auto lrc = StartLrc("lrc:10", update);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(lrc->lrc_store()
                    ->CreateMapping("auto" + std::to_string(i), "p")
                    .ok());
  }
  // The background scheduler must flush without an explicit call.
  std::vector<std::string> lrcs;
  bool seen = false;
  for (int tries = 0; tries < 100 && !seen; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    seen = rli->rli_relational()->Query("auto0", &lrcs).ok();
  }
  EXPECT_TRUE(seen) << "scheduler never flushed pending immediate updates";
}

TEST_F(SoftStateTest, UpdateToBloomOnlyRliRejectsUncompressed) {
  RlsServerConfig config;
  config.address = "rli:bloomonly";
  config.rli.enabled = true;
  config.rli.dsn = "";  // no database: Bloom-only (paper §3.4)
  auto rli = std::make_unique<RlsServer>(&network_, config, &env_);
  ASSERT_TRUE(rli->Start().ok());

  UpdateConfig update;
  update.mode = UpdateMode::kFull;
  update.targets.push_back(UpdateTarget{"rli:bloomonly"});
  auto lrc = StartLrc("lrc:11", update);
  ASSERT_TRUE(lrc->lrc_store()->CreateMapping("x", "p").ok());
  EXPECT_EQ(lrc->update_manager()->ForceFullUpdate().code(), ErrorCode::kUnsupported);
}

}  // namespace
}  // namespace rls
