#include "rdb/table.h"

#include <gtest/gtest.h>

#include "rdb/database.h"

namespace rdb {
namespace {

TableSchema NameSchema(const std::string& table = "t_lfn") {
  return TableSchema(table, {
      ColumnDef{"id", ColumnType::kInt, false, true, 0},
      ColumnDef{"name", ColumnType::kVarchar, false, false, 250},
      ColumnDef{"ref", ColumnType::kInt, true, false, 0},
  });
}

Row NameRow(const std::string& name, int64_t ref = 0) {
  return {Value::Null(), Value::String(name), Value::Int(ref)};
}

class TableTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  TableTest() {
    profile_.kind = GetParam();
    table_ = std::make_unique<Table>(NameSchema(), &profile_);
    EXPECT_TRUE(table_->CreateIndex("pk", "id", IndexKind::kHash, true).ok());
    EXPECT_TRUE(table_->CreateIndex("by_name", "name", IndexKind::kHash, true).ok());
  }

  BackendProfile profile_;
  std::unique_ptr<Table> table_;
};

TEST_P(TableTest, InsertAssignsAutoIncrement) {
  Rid rid;
  int64_t id = 0;
  ASSERT_TRUE(table_->Insert(NameRow("a"), &rid, &id).ok());
  EXPECT_EQ(id, 1);
  ASSERT_TRUE(table_->Insert(NameRow("b"), &rid, &id).ok());
  EXPECT_EQ(id, 2);
  Row row;
  ASSERT_TRUE(table_->ReadRow(rid, &row).ok());
  EXPECT_EQ(row[0].AsInt(), 2);
  EXPECT_EQ(row[1].AsString(), "b");
}

TEST_P(TableTest, ExplicitIdAdvancesCounter) {
  Rid rid;
  int64_t id = 0;
  Row row = {Value::Int(100), Value::String("x"), Value::Int(0)};
  ASSERT_TRUE(table_->Insert(row, &rid, &id).ok());
  EXPECT_EQ(id, 100);
  ASSERT_TRUE(table_->Insert(NameRow("y"), &rid, &id).ok());
  EXPECT_EQ(id, 101);
}

TEST_P(TableTest, UniqueConstraintEnforced) {
  Rid rid;
  ASSERT_TRUE(table_->Insert(NameRow("dup"), &rid, nullptr).ok());
  auto s = table_->Insert(NameRow("dup"), &rid, nullptr);
  EXPECT_EQ(s.code(), rlscommon::ErrorCode::kAlreadyExists);
  EXPECT_EQ(table_->live_rows(), 1u);
}

TEST_P(TableTest, DeleteRemovesFromIndexes) {
  Rid rid;
  ASSERT_TRUE(table_->Insert(NameRow("gone"), &rid, nullptr).ok());
  ASSERT_TRUE(table_->Delete(rid).ok());
  // No LIVE row is reachable via the index. (The PostgreSQL profile may
  // still return the dead rid — callers decide visibility at the heap.)
  std::vector<Rid> rids;
  table_->FindHashIndex("name")->Lookup(Value::String("gone"), &rids);
  for (Rid r : rids) EXPECT_FALSE(table_->IsLive(r));
  EXPECT_EQ(table_->live_rows(), 0u);
  // Double delete fails cleanly.
  EXPECT_EQ(table_->Delete(rid).code(), rlscommon::ErrorCode::kNotFound);
}

TEST_P(TableTest, UpdateRewritesRowAndIndexes) {
  Rid rid;
  ASSERT_TRUE(table_->Insert(NameRow("before"), &rid, nullptr).ok());
  Row updated = {Value::Int(1), Value::String("after"), Value::Int(9)};
  Rid new_rid;
  ASSERT_TRUE(table_->Update(rid, updated, &new_rid).ok());
  std::vector<Rid> rids;
  table_->FindHashIndex("name")->Lookup(Value::String("after"), &rids);
  ASSERT_EQ(rids.size(), 1u);
  Row row;
  ASSERT_TRUE(table_->ReadRow(rids[0], &row).ok());
  EXPECT_EQ(row[2].AsInt(), 9);
  rids.clear();
  table_->FindHashIndex("name")->Lookup(Value::String("before"), &rids);
  for (Rid r : rids) EXPECT_FALSE(table_->IsLive(r));
}

TEST_P(TableTest, ValidationRejectsBadRows) {
  Rid rid;
  // Wrong arity.
  EXPECT_FALSE(table_->Insert({Value::Int(1)}, &rid, nullptr).ok());
  // NULL in NOT NULL column.
  EXPECT_FALSE(
      table_->Insert({Value::Null(), Value::Null(), Value::Int(0)}, &rid, nullptr).ok());
  // Type mismatch.
  EXPECT_FALSE(
      table_->Insert({Value::Null(), Value::Int(5), Value::Int(0)}, &rid, nullptr).ok());
  // VARCHAR overflow.
  EXPECT_FALSE(
      table_->Insert(NameRow(std::string(300, 'x')), &rid, nullptr).ok());
}

TEST_P(TableTest, VacuumPreservesLiveRows) {
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    Rid rid;
    ASSERT_TRUE(table_->Insert(NameRow("n" + std::to_string(i)), &rid, nullptr).ok());
    rids.push_back(rid);
  }
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(table_->Delete(rids[i]).ok());
  table_->Vacuum();
  EXPECT_EQ(table_->live_rows(), 50u);
  EXPECT_EQ(table_->dead_rows(), 0u);
  std::vector<Rid> found;
  table_->FindHashIndex("name")->Lookup(Value::String("n75"), &found);
  ASSERT_EQ(found.size(), 1u);
  Row row;
  ASSERT_TRUE(table_->ReadRow(found[0], &row).ok());
  EXPECT_EQ(row[1].AsString(), "n75");
}

INSTANTIATE_TEST_SUITE_P(Profiles, TableTest,
                         ::testing::Values(BackendKind::kMySQL,
                                           BackendKind::kPostgreSQL),
                         [](const auto& info) {
                           return info.param == BackendKind::kMySQL ? "MySQL"
                                                                    : "PostgreSQL";
                         });

TEST(TableProfileTest, PostgresDeleteLeavesDeadTuples) {
  BackendProfile profile = BackendProfile::PostgreSQL();
  Table table(NameSchema(), &profile);
  Rid rid;
  ASSERT_TRUE(table.Insert(NameRow("a"), &rid, nullptr).ok());
  ASSERT_TRUE(table.Delete(rid).ok());
  EXPECT_EQ(table.dead_rows(), 1u);
  table.Vacuum();
  EXPECT_EQ(table.dead_rows(), 0u);
}

TEST(TableProfileTest, MySqlDeleteFreesImmediately) {
  BackendProfile profile = BackendProfile::MySQL();
  Table table(NameSchema(), &profile);
  Rid rid;
  ASSERT_TRUE(table.Insert(NameRow("a"), &rid, nullptr).ok());
  ASSERT_TRUE(table.Delete(rid).ok());
  EXPECT_EQ(table.dead_rows(), 0u);
}

TEST(DatabaseTest, CreateAndDropTables) {
  Database db("test", BackendProfile::MySQL());
  ASSERT_TRUE(db.CreateTable(NameSchema("t1")).ok());
  ASSERT_TRUE(db.CreateTable(NameSchema("t2")).ok());
  EXPECT_EQ(db.CreateTable(NameSchema("t1")).code(),
            rlscommon::ErrorCode::kAlreadyExists);
  EXPECT_NE(db.GetTable("t1"), nullptr);
  ASSERT_TRUE(db.DropTable("t1").ok());
  EXPECT_EQ(db.GetTable("t1"), nullptr);
  EXPECT_EQ(db.DropTable("missing").code(), rlscommon::ErrorCode::kNotFound);
  auto names = db.TableNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "t2");
}

TEST(DatabaseTest, VacuumCollectsDeadTuples) {
  Database db("pg", BackendProfile::PostgreSQL());
  ASSERT_TRUE(db.CreateTable(NameSchema("t")).ok());
  Table* table = db.GetTable("t");
  Rid rid;
  ASSERT_TRUE(table->Insert(NameRow("x"), &rid, nullptr).ok());
  ASSERT_TRUE(table->Delete(rid).ok());
  EXPECT_EQ(table->dead_rows(), 1u);
  ASSERT_TRUE(db.Vacuum("t").ok());
  EXPECT_EQ(table->dead_rows(), 0u);
  EXPECT_EQ(db.Vacuum("missing").code(), rlscommon::ErrorCode::kNotFound);
}

TEST(WalTest, AccountsBytesAndCommits) {
  Wal wal("");
  ASSERT_TRUE(wal.Commit("0123456789", false, {}).ok());
  ASSERT_TRUE(wal.Commit("abc", true, std::chrono::microseconds(0)).ok());
  EXPECT_EQ(wal.bytes_logged(), 13u);
  EXPECT_EQ(wal.commits(), 2u);
  EXPECT_EQ(wal.syncs(), 1u);
}

TEST(WalTest, DurablePenaltyIsCharged) {
  Wal wal("");
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(wal.Commit("x", true, std::chrono::microseconds(20000)).ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(18000));
}

TEST(WalTest, FileBackedWritesSurvive) {
  std::string path = ::testing::TempDir() + "/rls_wal_test.log";
  Wal wal(path);
  ASSERT_TRUE(wal.Commit("hello wal", true, std::chrono::microseconds(0)).ok());
  EXPECT_EQ(wal.bytes_logged(), 9u);
}

}  // namespace
}  // namespace rdb
