#include "common/config.h"

#include <gtest/gtest.h>

namespace rlscommon {
namespace {

TEST(ConfigTest, ParsesKeyValueStyles) {
  Config config;
  ASSERT_TRUE(Config::ParseString("a 1\nb: two\nc=3.5\n", &config).ok());
  EXPECT_EQ(config.GetInt("a", 0), 1);
  EXPECT_EQ(config.GetString("b", ""), "two");
  EXPECT_DOUBLE_EQ(config.GetDouble("c", 0.0), 3.5);
}

TEST(ConfigTest, SkipsCommentsAndBlanks) {
  Config config;
  ASSERT_TRUE(Config::ParseString("# comment\n\n  \nkey value\n", &config).ok());
  EXPECT_EQ(config.size(), 1u);
}

TEST(ConfigTest, LastWriterWins) {
  Config config;
  ASSERT_TRUE(Config::ParseString("x 1\nx 2\n", &config).ok());
  EXPECT_EQ(config.GetInt("x", 0), 2);
}

TEST(ConfigTest, GetAllPreservesOrder) {
  Config config;
  ASSERT_TRUE(Config::ParseString("acl a: read\nacl b: write\n", &config).ok());
  auto all = config.GetAll("acl");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "a: read");
  EXPECT_EQ(all[1], "b: write");
}

TEST(ConfigTest, BooleanForms) {
  Config config;
  ASSERT_TRUE(
      Config::ParseString("t1 true\nt2 on\nt3 yes\nt4 1\nf1 false\nf2 off\n", &config)
          .ok());
  EXPECT_TRUE(config.GetBool("t1", false));
  EXPECT_TRUE(config.GetBool("t2", false));
  EXPECT_TRUE(config.GetBool("t3", false));
  EXPECT_TRUE(config.GetBool("t4", false));
  EXPECT_FALSE(config.GetBool("f1", true));
  EXPECT_FALSE(config.GetBool("f2", true));
}

TEST(ConfigTest, MissingKeyUsesDefault) {
  Config config;
  EXPECT_EQ(config.GetInt("absent", 42), 42);
  EXPECT_EQ(config.GetString("absent", "d"), "d");
  EXPECT_FALSE(config.Has("absent"));
}

TEST(ConfigTest, MalformedValueFallsBackToDefault) {
  Config config;
  ASSERT_TRUE(Config::ParseString("n notanumber\n", &config).ok());
  EXPECT_EQ(config.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(config.GetDouble("n", 1.5), 1.5);
}

TEST(ConfigTest, RejectsKeyWithoutValue) {
  Config config;
  EXPECT_FALSE(Config::ParseString("orphankey\n", &config).ok());
}

TEST(ConfigTest, MissingFileIsNotFound) {
  Config config;
  auto s = Config::ParseFile("/nonexistent/rls.conf", &config);
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace rlscommon
