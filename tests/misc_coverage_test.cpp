// Coverage for paths the focused suites skip: error rendering, wire
// reader utilities, TryPop, auth handshake cost, bloom math, and server
// bulk partial-failure semantics.
#include <gtest/gtest.h>

#include <atomic>

#include "bloom/bloom_filter.h"
#include "common/error.h"
#include "common/workload.h"
#include "net/serialize.h"
#include "net/transport.h"
#include "rls/client.h"
#include "rls/rls_server.h"

namespace {

using rlscommon::ErrorCode;
using rlscommon::RlsError;
using rlscommon::Status;

TEST(StatusTest, ToStringAndNames) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status(ErrorCode::kTimeout, "").ToString(), "TIMEOUT");
  EXPECT_EQ(rlscommon::ErrorCodeName(ErrorCode::kUnsupported), "UNSUPPORTED");
}

TEST(StatusTest, ThrowIfErrorThrowsWithCode) {
  EXPECT_NO_THROW(rlscommon::ThrowIfError(Status::Ok()));
  try {
    rlscommon::ThrowIfError(Status::PermissionDenied("nope"));
    FAIL() << "did not throw";
  } catch (const RlsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPermissionDenied);
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
  }
}

TEST(ReaderTest, SkipAndRest) {
  std::string buffer;
  net::Writer w(&buffer);
  w.U32(7);
  w.Raw("tail-bytes");
  net::Reader r(buffer);
  uint32_t v;
  ASSERT_TRUE(r.U32(&v));
  EXPECT_EQ(r.Rest(), "tail-bytes");
  r.Skip(5);
  EXPECT_EQ(r.Rest(), "bytes");
  r.Skip(1000);  // clamps
  EXPECT_TRUE(r.AtEnd());
}

TEST(MessageQueueTest, TryPopNonBlocking) {
  net::MessageQueue queue;
  net::Message out;
  EXPECT_EQ(queue.TryPop(&out).code(), ErrorCode::kNotFound);
  net::Message m;
  m.opcode = 9;
  ASSERT_TRUE(queue.Push(m));
  ASSERT_TRUE(queue.TryPop(&out).ok());
  EXPECT_EQ(out.opcode, 9);
  queue.Close();
  EXPECT_EQ(queue.TryPop(&out).code(), ErrorCode::kUnavailable);
}

TEST(AuthTest, HandshakeCostIsCharged) {
  gsi::Gridmap gridmap;
  ASSERT_TRUE(gridmap.AddEntry("/CN=Slow", "slow").ok());
  gsi::Acl acl;
  ASSERT_TRUE(acl.AddEntry("slow", {gsi::Privilege::kLrcRead}).ok());
  auto manager = gsi::AuthManager::Secured(std::move(gridmap), std::move(acl),
                                           std::chrono::microseconds(30000));
  gsi::AuthContext ctx;
  rlscommon::Stopwatch watch;
  ASSERT_TRUE(manager.Authenticate(gsi::Credential{"/CN=Slow"}, &ctx).ok());
  EXPECT_GE(watch.ElapsedSeconds(), 0.025);
}

TEST(BloomMathTest, FpRateFallsWithMoreBits) {
  const double fp10 = bloom::ExpectedFalsePositiveRate({10000, 3}, 1000);
  const double fp20 = bloom::ExpectedFalsePositiveRate({20000, 3}, 1000);
  EXPECT_LT(fp20, fp10);
  EXPECT_NEAR(fp10, 0.0174, 0.002);  // (1 - e^{-3/10})^3: the paper rounds to ~1%
  EXPECT_DOUBLE_EQ(bloom::ExpectedFalsePositiveRate({0, 3}, 10), 1.0);
}

TEST(ServerBulkTest, PartialFailuresReportedPerItem) {
  net::Network network;
  dbapi::Environment env;
  ASSERT_TRUE(env.CreateDatabase("mysql://misc_bulk").ok());
  rls::RlsServerConfig config;
  config.address = "misc:bulk";
  config.lrc.enabled = true;
  config.lrc.dsn = "mysql://misc_bulk";
  rls::RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<rls::LrcClient> client;
  ASSERT_TRUE(rls::LrcClient::Connect(&network, "misc:bulk", {}, &client).ok());

  ASSERT_TRUE(client->Create("dup", "p0").ok());
  std::vector<rls::Mapping> batch = {
      {"fresh-1", "p1"},
      {"dup", "p-collides"},   // AlreadyExists
      {"fresh-2", "p2"},
      {std::string(9999, 'x'), "p3"},  // InvalidArgument (too long)
  };
  rls::BulkStatusResponse result;
  ASSERT_TRUE(client->BulkCreate(batch, &result).ok());
  EXPECT_EQ(result.succeeded, 2u);
  ASSERT_EQ(result.failures.size(), 2u);
  EXPECT_EQ(result.failures[0].index, 1u);
  EXPECT_EQ(result.failures[0].code, ErrorCode::kAlreadyExists);
  EXPECT_EQ(result.failures[1].index, 3u);
  // The successes landed despite the interleaved failures.
  EXPECT_TRUE(client->Exists("fresh-1").ok());
  EXPECT_TRUE(client->Exists("fresh-2").ok());
  server.Stop();
}

TEST(ServerBulkTest, BulkDeleteMirror) {
  net::Network network;
  dbapi::Environment env;
  ASSERT_TRUE(env.CreateDatabase("mysql://misc_bulkdel").ok());
  rls::RlsServerConfig config;
  config.address = "misc:bulkdel";
  config.lrc.enabled = true;
  config.lrc.dsn = "mysql://misc_bulkdel";
  rls::RlsServer server(&network, config, &env);
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<rls::LrcClient> client;
  ASSERT_TRUE(rls::LrcClient::Connect(&network, "misc:bulkdel", {}, &client).ok());

  ASSERT_TRUE(client->Create("a", "p").ok());
  rls::BulkStatusResponse result;
  ASSERT_TRUE(client->BulkDelete({{"a", "p"}, {"ghost", "p"}}, &result).ok());
  EXPECT_EQ(result.succeeded, 1u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].code, ErrorCode::kNotFound);
  server.Stop();
}

TEST(WorkloadTest, PrefixedCorporaDoNotCollide) {
  rlscommon::NameGenerator a("siteA"), b("siteB");
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_NE(a.LogicalName(i), b.LogicalName(i));
    EXPECT_NE(a.PhysicalName(i), b.PhysicalName(i));
  }
}

TEST(ValueHashTest, EqualValuesHashEqual) {
  using rdb::Value;
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  EXPECT_NE(Value::String("x").Hash(), Value::String("y").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

}  // namespace
