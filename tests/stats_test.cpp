#include "common/stats.h"

#include <gtest/gtest.h>

namespace rlscommon {
namespace {

TEST(SummarizeTest, BasicStats) {
  Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(SummarizeTest, EmptySample) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, SingleSampleHasZeroStddev) {
  Summary s = Summarize({7.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 7.0);
}

TEST(TrialStatsTest, MeanRateOverTrials) {
  // Paper methodology: N ops per trial, mean rate over trials.
  TrialStats stats;
  stats.AddTrial(3000, 10.0);  // 300 ops/s
  stats.AddTrial(3000, 5.0);   // 600 ops/s
  EXPECT_EQ(stats.trials(), 2u);
  EXPECT_DOUBLE_EQ(stats.MeanRate(), 450.0);
  EXPECT_DOUBLE_EQ(stats.MeanSeconds(), 7.5);
}

TEST(TrialStatsTest, ZeroSecondsYieldsZeroRate) {
  TrialStats stats;
  stats.AddTrial(100, 0.0);
  EXPECT_DOUBLE_EQ(stats.MeanRate(), 0.0);
}

TEST(TrialStatsTest, EmptyIsZero) {
  TrialStats stats;
  EXPECT_DOUBLE_EQ(stats.MeanRate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.MeanSeconds(), 0.0);
}

TEST(FormatTest, Double) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1000.0, 0), "1000");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KB");
  EXPECT_EQ(FormatBytes(1.25 * 1024 * 1024), "1.25 MB");
}

}  // namespace
}  // namespace rlscommon
