#include "bloom/bloom_filter.h"

#include <gtest/gtest.h>

#include "common/workload.h"

namespace bloom {
namespace {

TEST(SizingTest, PaperPolicyTenBitsPerEntry) {
  // "10 million bits for approximately 1 million entries" (paper §3.4).
  BloomParams p = SizeForEntries(1000000);
  EXPECT_EQ(p.num_bits, 10000000u);
  EXPECT_EQ(p.num_hashes, 3u);
}

TEST(SizingTest, MinimumSize) {
  EXPECT_EQ(SizeForEntries(0).num_bits, 1024u);
  EXPECT_EQ(SizeForEntries(10).num_bits, 1024u);
}

TEST(SizingTest, ExpectedFalsePositiveNearOnePercent) {
  // The paper's parameters "give a false positive rate of approximately 1%".
  BloomParams p = SizeForEntries(1000000);
  double fp = ExpectedFalsePositiveRate(p, 1000000);
  EXPECT_GT(fp, 0.005);
  EXPECT_LT(fp, 0.02);
}

TEST(HashingTest, DeterministicAndSpread) {
  HashPair a = HashKey("lfn://x/1");
  HashPair b = HashKey("lfn://x/1");
  HashPair c = HashKey("lfn://x/2");
  EXPECT_EQ(a.h1, b.h1);
  EXPECT_EQ(a.h2, b.h2);
  EXPECT_NE(a.h1, c.h1);
}

TEST(HashingTest, IndexHashInRange) {
  HashPair h = HashKey("some-key");
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_LT(IndexHash(h, i, 1000), 1000u);
  }
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter = BloomFilter::ForEntries(10000);
  rlscommon::NameGenerator gen("t");
  for (uint64_t i = 0; i < 10000; ++i) filter.Insert(gen.LogicalName(i));
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(filter.Contains(gen.LogicalName(i))) << i;
  }
}

TEST(BloomFilterTest, MeasuredFalsePositiveRateNearOnePercent) {
  BloomFilter filter = BloomFilter::ForEntries(50000);
  rlscommon::NameGenerator gen("fp");
  for (uint64_t i = 0; i < 50000; ++i) filter.Insert(gen.LogicalName(i));
  uint64_t false_positives = 0;
  const uint64_t probes = 50000;
  for (uint64_t i = 0; i < probes; ++i) {
    if (filter.Contains(gen.LogicalName(1000000 + i))) ++false_positives;
  }
  const double rate = static_cast<double>(false_positives) / probes;
  EXPECT_GT(rate, 0.001);
  EXPECT_LT(rate, 0.03) << "paper claims ~1%";
}

TEST(BloomFilterTest, EmptyContainsNothing) {
  BloomFilter filter = BloomFilter::ForEntries(1000);
  EXPECT_FALSE(filter.Contains("anything"));
  EXPECT_EQ(filter.CountSetBits(), 0u);
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  BloomFilter filter = BloomFilter::ForEntries(5000);
  rlscommon::NameGenerator gen("ser");
  for (uint64_t i = 0; i < 5000; ++i) filter.Insert(gen.LogicalName(i));
  std::string bytes;
  filter.Serialize(&bytes);
  EXPECT_EQ(bytes.size(), filter.SerializedBytes());

  BloomFilter restored;
  ASSERT_TRUE(BloomFilter::Deserialize(bytes, &restored).ok());
  EXPECT_EQ(restored.num_bits(), filter.num_bits());
  EXPECT_EQ(restored.insert_count(), filter.insert_count());
  EXPECT_EQ(restored.CountSetBits(), filter.CountSetBits());
  for (uint64_t i = 0; i < 5000; ++i) {
    EXPECT_TRUE(restored.Contains(gen.LogicalName(i)));
  }
}

TEST(BloomFilterTest, DeserializeRejectsGarbage) {
  BloomFilter out;
  EXPECT_FALSE(BloomFilter::Deserialize("", &out).ok());
  EXPECT_FALSE(BloomFilter::Deserialize("short", &out).ok());
  std::string bytes;
  BloomFilter::ForEntries(100).Serialize(&bytes);
  bytes.resize(bytes.size() - 3);  // truncate body
  EXPECT_FALSE(BloomFilter::Deserialize(bytes, &out).ok());
  bytes[0] = 'X';  // bad magic
  EXPECT_FALSE(BloomFilter::Deserialize(bytes, &out).ok());
}

TEST(BloomFilterTest, WireSizeMatchesPaperScale) {
  // 1M entries -> 10 Mbit filter = 1.25 MB on the wire (Table 3).
  BloomFilter filter = BloomFilter::ForEntries(1000000);
  const double mb = static_cast<double>(filter.SerializedBytes()) / (1024.0 * 1024.0);
  EXPECT_NEAR(mb, 1.19, 0.1);  // 10^7 bits / 8 / 2^20
}

TEST(BloomFilterTest, MergeUnionsBits) {
  BloomFilter a = BloomFilter::ForEntries(1000);
  BloomFilter b = BloomFilter::ForEntries(1000);
  a.Insert("only-in-a");
  b.Insert("only-in-b");
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_TRUE(a.Contains("only-in-a"));
  EXPECT_TRUE(a.Contains("only-in-b"));
}

TEST(BloomFilterTest, MergeRejectsMismatchedParams) {
  BloomFilter a = BloomFilter::ForEntries(1000);
  BloomFilter b = BloomFilter::ForEntries(100000);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter filter = BloomFilter::ForEntries(1000);
  filter.Insert("x");
  filter.Clear();
  EXPECT_FALSE(filter.Contains("x"));
  EXPECT_EQ(filter.insert_count(), 0u);
}

TEST(CountingBloomTest, InsertRemoveRestoresAbsence) {
  CountingBloomFilter filter = CountingBloomFilter::ForEntries(10000);
  filter.Insert("lfn://a");
  EXPECT_TRUE(filter.Contains("lfn://a"));
  filter.Remove("lfn://a");
  EXPECT_FALSE(filter.Contains("lfn://a"));
}

TEST(CountingBloomTest, RemoveKeepsOverlappingKeys) {
  CountingBloomFilter filter = CountingBloomFilter::ForEntries(10000);
  rlscommon::NameGenerator gen("cb");
  for (uint64_t i = 0; i < 1000; ++i) filter.Insert(gen.LogicalName(i));
  // Removing half must not create false negatives for the rest.
  for (uint64_t i = 0; i < 500; ++i) filter.Remove(gen.LogicalName(i));
  for (uint64_t i = 500; i < 1000; ++i) {
    EXPECT_TRUE(filter.Contains(gen.LogicalName(i))) << i;
  }
}

TEST(CountingBloomTest, ExportedBitmapMatchesMembership) {
  CountingBloomFilter counting = CountingBloomFilter::ForEntries(5000);
  rlscommon::NameGenerator gen("ex");
  for (uint64_t i = 0; i < 2000; ++i) counting.Insert(gen.LogicalName(i));
  for (uint64_t i = 0; i < 1000; ++i) counting.Remove(gen.LogicalName(i));
  BloomFilter exported = counting.ToBloomFilter();
  for (uint64_t i = 1000; i < 2000; ++i) {
    EXPECT_TRUE(exported.Contains(gen.LogicalName(i)));
  }
  // The churn (add 2000, remove 1000) must not leave the filter denser
  // than a fresh filter of the surviving keys would roughly be.
  BloomFilter fresh(exported.params());
  for (uint64_t i = 1000; i < 2000; ++i) fresh.Insert(gen.LogicalName(i));
  EXPECT_LE(exported.CountSetBits(), fresh.CountSetBits() + 16);
}

TEST(CountingBloomTest, SaturationFlagsAndStaysSafe) {
  BloomParams tiny{64, 3};
  CountingBloomFilter filter(tiny);
  // Cram in enough duplicates to saturate 4-bit counters.
  for (int i = 0; i < 20; ++i) filter.Insert("same-key");
  EXPECT_TRUE(filter.HasSaturated());
  for (int i = 0; i < 20; ++i) filter.Remove("same-key");
  // Saturated counters stick: no false negative possible.
  EXPECT_TRUE(filter.Contains("same-key"));
}

// Parameterized sweep: the 10-bits/entry + 3-hash policy holds its ~1%
// false-positive promise across catalog sizes.
class FpSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FpSweep, FalsePositiveBounded) {
  const uint64_t entries = GetParam();
  BloomFilter filter = BloomFilter::ForEntries(entries);
  rlscommon::NameGenerator gen("sweep");
  for (uint64_t i = 0; i < entries; ++i) filter.Insert(gen.LogicalName(i));
  uint64_t fp = 0;
  const uint64_t probes = 20000;
  for (uint64_t i = 0; i < probes; ++i) {
    if (filter.Contains(gen.LogicalName(10000000 + i))) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.03);
}

INSTANTIATE_TEST_SUITE_P(CatalogSizes, FpSweep,
                         ::testing::Values(1000, 10000, 100000, 250000));

}  // namespace
}  // namespace bloom
