// Concurrency stress: many client threads mutating and querying one
// server while soft-state updates and the expire thread run — then check
// global invariants. Mirrors the paper's 100-requesting-threads setup.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>

#include "rls/client.h"
#include "rls/rls_server.h"

namespace rls {
namespace {

TEST(ConcurrencyTest, MixedWorkloadKeepsInvariants) {
  net::Network network;
  dbapi::Environment env;
  ASSERT_TRUE(env.CreateDatabase("mysql://stress_lrc").ok());
  ASSERT_TRUE(env.CreateDatabase("mysql://stress_rli").ok());

  RlsServerConfig rli_config;
  rli_config.address = "rls:stress-rli";
  rli_config.rli.enabled = true;
  rli_config.rli.dsn = "mysql://stress_rli";
  rli_config.rli.timeout = std::chrono::seconds(60);
  rli_config.rli.expire_poll = std::chrono::milliseconds(20);  // churn hard
  RlsServer rli(&network, rli_config, &env);
  ASSERT_TRUE(rli.Start().ok());

  RlsServerConfig lrc_config;
  lrc_config.address = "rls:stress-lrc";
  lrc_config.lrc.enabled = true;
  lrc_config.lrc.dsn = "mysql://stress_lrc";
  lrc_config.lrc.update.mode = UpdateMode::kImmediate;
  lrc_config.lrc.update.immediate_interval = std::chrono::milliseconds(10);
  lrc_config.lrc.update.immediate_max_pending = 10;
  lrc_config.lrc.update.targets.push_back(UpdateTarget{"rls:stress-rli"});
  RlsServer lrc(&network, lrc_config, &env);
  ASSERT_TRUE(lrc.Start().ok());

  constexpr int kThreads = 12;
  constexpr int kOpsPerThread = 300;
  std::atomic<int> unexpected{0};
  std::atomic<uint64_t> creates_ok{0}, deletes_ok{0};
  std::barrier gate(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::unique_ptr<LrcClient> client;
      if (!LrcClient::Connect(&network, "rls:stress-lrc", {}, &client).ok()) {
        ++unexpected;
        return;
      }
      gate.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Threads intentionally collide on a small shared keyspace.
        const std::string lfn = "stress-" + std::to_string((t * 7 + i) % 50);
        const std::string pfn = "p-" + std::to_string(t) + "-" + std::to_string(i % 3);
        switch (i % 4) {
          case 0: {
            auto s = client->Create(lfn, pfn);
            if (s.ok()) {
              ++creates_ok;
            } else if (s.code() != rlscommon::ErrorCode::kAlreadyExists) {
              ++unexpected;
            }
            break;
          }
          case 1: {
            auto s = client->Add(lfn, pfn);
            if (!s.ok() && s.code() != rlscommon::ErrorCode::kAlreadyExists &&
                s.code() != rlscommon::ErrorCode::kNotFound) {
              ++unexpected;
            }
            break;
          }
          case 2: {
            auto s = client->Delete(lfn, pfn);
            if (s.ok()) {
              ++deletes_ok;
            } else if (s.code() != rlscommon::ErrorCode::kNotFound) {
              ++unexpected;
            }
            break;
          }
          case 3: {
            std::vector<std::string> targets;
            auto s = client->Query(lfn, &targets);
            if (s.ok() && targets.empty()) ++unexpected;  // ok implies results
            if (!s.ok() && s.code() != rlscommon::ErrorCode::kNotFound) ++unexpected;
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(creates_ok.load(), 0u);
  EXPECT_GT(deletes_ok.load(), 0u);

  // Invariants after the storm: every surviving logical name resolves to
  // at least one target, and counts are consistent.
  std::unique_ptr<LrcClient> checker;
  ASSERT_TRUE(LrcClient::Connect(&network, "rls:stress-lrc", {}, &checker).ok());
  std::vector<Mapping> all;
  ASSERT_TRUE(checker->WildcardQuery("stress-*", 0, &all).ok() || all.empty());
  uint64_t resolvable = 0;
  std::set<std::string> names;
  for (const Mapping& m : all) names.insert(m.logical);
  for (const std::string& name : names) {
    std::vector<std::string> targets;
    auto s = checker->Query(name, &targets);
    ASSERT_TRUE(s.ok()) << name;
    ASSERT_FALSE(targets.empty()) << name;
    resolvable += targets.size();
  }
  EXPECT_EQ(resolvable, all.size());  // wildcard view == per-name view
  ServerStats stats;
  ASSERT_TRUE(checker->Stats(&stats).ok());
  EXPECT_EQ(stats.lfn_count, names.size());
  EXPECT_EQ(stats.mapping_count, all.size());

  // The immediate-mode scheduler kept feeding the RLI throughout; one
  // final flush + full update must reconcile the index completely.
  ASSERT_TRUE(checker->ForceUpdate().ok());
  std::unique_ptr<RliClient> rli_client;
  ASSERT_TRUE(RliClient::Connect(&network, "rls:stress-rli", {}, &rli_client).ok());
  for (const std::string& name : names) {
    std::vector<std::string> owners;
    ASSERT_TRUE(rli_client->Query(name, &owners).ok()) << name;
  }

  lrc.Stop();
  rli.Stop();
}

TEST(ConcurrencyTest, VacuumDuringLoadBlocksButNeverCorrupts) {
  net::Network network;
  dbapi::Environment env;
  ASSERT_TRUE(env.CreateDatabase("postgresql://stress_pg").ok());
  RlsServerConfig config;
  config.address = "rls:stress-pg";
  config.lrc.enabled = true;
  config.lrc.dsn = "postgresql://stress_pg";
  RlsServer lrc(&network, config, &env);
  ASSERT_TRUE(lrc.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      std::unique_ptr<LrcClient> client;
      if (!LrcClient::Connect(&network, "rls:stress-pg", {}, &client).ok()) {
        ++unexpected;
        return;
      }
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string lfn = "vac-" + std::to_string(t) + "-" + std::to_string(i);
        if (!client->Create(lfn, "p").ok()) ++unexpected;
        if (!client->Delete(lfn, "p").ok()) ++unexpected;
        ++i;
      }
    });
  }
  // VACUUM repeatedly while the churn runs (exclusive table locks).
  rdb::Database* db = env.Find("postgresql://stress_pg");
  for (int v = 0; v < 10; ++v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    db->VacuumAll();
  }
  stop.store(true);
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(unexpected.load(), 0);
  // Steady-state: everything was deleted; a final vacuum leaves no dead rows.
  db->VacuumAll();
  EXPECT_EQ(lrc.lrc_store()->LogicalNameCount(), 0u);
  EXPECT_EQ(db->GetTable("t_lfn")->dead_rows(), 0u);
  lrc.Stop();
}

}  // namespace
}  // namespace rls
