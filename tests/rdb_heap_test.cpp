#include "rdb/heap.h"

#include <gtest/gtest.h>

#include <string>

namespace rdb {
namespace {

TEST(PageTest, InsertAndRead) {
  Page page;
  uint16_t slot = page.Insert("hello");
  EXPECT_EQ(page.Read(slot), "hello");
  EXPECT_EQ(page.state(slot), SlotState::kLive);
  EXPECT_EQ(page.live_count(), 1u);
}

TEST(PageTest, MarkDeadKeepsData) {
  Page page;
  uint16_t slot = page.Insert("row");
  page.MarkDead(slot);
  EXPECT_EQ(page.state(slot), SlotState::kDead);
  EXPECT_EQ(page.Read(slot), "row");  // dead tuples are still readable
  EXPECT_EQ(page.live_count(), 0u);
  EXPECT_EQ(page.dead_count(), 1u);
}

TEST(PageTest, MarkFreeReclaimsSpace) {
  Page page;
  std::string row(1000, 'x');
  uint16_t slot = page.Insert(row);
  const std::size_t before = page.FreeBytes();
  page.MarkFree(slot);
  EXPECT_GT(page.FreeBytes(), before);
}

TEST(PageTest, CompactionAllowsReuse) {
  Page page;
  // Fill the page with 1 KB rows, free them, and verify new inserts fit.
  std::string row(1024, 'a');
  std::vector<uint16_t> slots;
  while (page.CanFit(row.size())) slots.push_back(page.Insert(row));
  EXPECT_GE(slots.size(), 6u);
  for (uint16_t s : slots) page.MarkFree(s);
  ASSERT_TRUE(page.CanFit(row.size()));
  uint16_t fresh = page.Insert(row);
  EXPECT_EQ(page.Read(fresh), row);
}

TEST(PageTest, DeadSlotsDoNotFreeSpace) {
  Page page;
  std::string row(1024, 'b');
  std::vector<uint16_t> slots;
  while (page.CanFit(row.size())) slots.push_back(page.Insert(row));
  for (uint16_t s : slots) page.MarkDead(s);
  // Dead (un-vacuumed) tuples keep occupying the page.
  EXPECT_FALSE(page.CanFit(row.size()));
}

TEST(HeapFileTest, InsertAcrossPages) {
  HeapFile heap;
  std::string row(3000, 'c');
  std::vector<Rid> rids;
  for (int i = 0; i < 10; ++i) rids.push_back(heap.Insert(row));
  EXPECT_GT(heap.num_pages(), 1u);
  EXPECT_EQ(heap.live_count(), 10u);
  for (const Rid& rid : rids) EXPECT_EQ(heap.Read(rid), row);
}

TEST(HeapFileTest, FreedSpaceIsReused) {
  HeapFile heap;
  std::string row(2000, 'd');
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) rids.push_back(heap.Insert(row));
  const std::size_t pages_before = heap.num_pages();
  for (const Rid& rid : rids) heap.MarkFree(rid);
  for (int i = 0; i < 100; ++i) heap.Insert(row);
  // MySQL-profile churn must not grow the heap.
  EXPECT_EQ(heap.num_pages(), pages_before);
}

TEST(HeapFileTest, DeadTuplesGrowHeap) {
  HeapFile heap;
  std::string row(2000, 'e');
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) rids.push_back(heap.Insert(row));
  const std::size_t pages_before = heap.num_pages();
  for (const Rid& rid : rids) heap.MarkDead(rid);
  for (int i = 0; i < 100; ++i) heap.Insert(row);
  // PostgreSQL-profile churn bloats the heap until VACUUM.
  EXPECT_GT(heap.num_pages(), pages_before);
  EXPECT_EQ(heap.dead_count(), 100u);
}

TEST(HeapFileTest, ScanVisitsLiveAndDeadSkipsFree) {
  HeapFile heap;
  Rid live = heap.Insert("live");
  Rid dead = heap.Insert("dead");
  Rid freed = heap.Insert("freed");
  heap.MarkDead(dead);
  heap.MarkFree(freed);
  int live_seen = 0, dead_seen = 0, total = 0;
  heap.Scan([&](Rid rid, std::string_view bytes, SlotState st) {
    ++total;
    if (st == SlotState::kLive) {
      ++live_seen;
      EXPECT_EQ(rid, live);
      EXPECT_EQ(bytes, "live");
    } else {
      ++dead_seen;
      EXPECT_EQ(bytes, "dead");
    }
    return true;
  });
  EXPECT_EQ(total, 2);
  EXPECT_EQ(live_seen, 1);
  EXPECT_EQ(dead_seen, 1);
}

TEST(HeapFileTest, ScanEarlyStop) {
  HeapFile heap;
  for (int i = 0; i < 10; ++i) heap.Insert("r");
  int visited = 0;
  heap.Scan([&](Rid, std::string_view, SlotState) { return ++visited < 3; });
  EXPECT_EQ(visited, 3);
}

TEST(HeapFileTest, ClearDropsEverything) {
  HeapFile heap;
  for (int i = 0; i < 10; ++i) heap.Insert("r");
  heap.Clear();
  EXPECT_EQ(heap.num_pages(), 0u);
  EXPECT_EQ(heap.live_count(), 0u);
  Rid rid = heap.Insert("fresh");
  EXPECT_EQ(heap.Read(rid), "fresh");
}

TEST(HeapFileTest, LargeRowGetsOwnPage) {
  HeapFile heap;
  std::string big(Page::kPageSize - 64, 'z');
  Rid rid = heap.Insert(big);
  EXPECT_EQ(heap.Read(rid), big);
}

}  // namespace
}  // namespace rdb
