#include "sql/engine.h"

#include <gtest/gtest.h>

#include <memory>

namespace sql {
namespace {

using rdb::BackendProfile;
using rdb::Database;
using rdb::Value;
using rlscommon::ErrorCode;
using rlscommon::Status;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : db_("test", BackendProfile::MySQL()), engine_(&db_) {}

  ResultSet Exec(const std::string& sql, const std::vector<Value>& params = {}) {
    ResultSet rs;
    Status s = engine_.ExecuteSql(sql, params, &session_, &rs);
    EXPECT_TRUE(s.ok()) << sql << " -> " << s.ToString();
    return rs;
  }

  Status TryExec(const std::string& sql, const std::vector<Value>& params = {}) {
    ResultSet rs;
    return engine_.ExecuteSql(sql, params, &session_, &rs);
  }

  void CreateLfnTable() {
    Exec("CREATE TABLE t_lfn (id INT AUTO_INCREMENT PRIMARY KEY,"
         " name VARCHAR(250) NOT NULL, ref INT)");
    Exec("CREATE UNIQUE INDEX idx_name ON t_lfn (name)");
  }

  Database db_;
  Engine engine_;
  Session session_;
};

TEST_F(EngineTest, InsertSelectRoundTrip) {
  CreateLfnTable();
  ResultSet rs = Exec("INSERT INTO t_lfn (name, ref) VALUES ('a', 1)");
  EXPECT_EQ(rs.affected, 1u);
  EXPECT_EQ(rs.last_insert_id, 1);
  rs = Exec("SELECT * FROM t_lfn WHERE name = 'a'");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsInt(), 1);
  EXPECT_EQ(rs.at(0, 1).AsString(), "a");
}

TEST_F(EngineTest, ParameterBinding) {
  CreateLfnTable();
  Exec("INSERT INTO t_lfn (name, ref) VALUES (?, ?)",
       {Value::String("param-name"), Value::Int(7)});
  ResultSet rs = Exec("SELECT ref FROM t_lfn WHERE name = ?",
                      {Value::String("param-name")});
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsInt(), 7);
}

TEST_F(EngineTest, MissingParameterFails) {
  CreateLfnTable();
  auto s = TryExec("SELECT * FROM t_lfn WHERE name = ?");
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

TEST_F(EngineTest, UniqueIndexRejectsDuplicates) {
  CreateLfnTable();
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('dup', 0)");
  auto s = TryExec("INSERT INTO t_lfn (name, ref) VALUES ('dup', 0)");
  EXPECT_EQ(s.code(), ErrorCode::kAlreadyExists);
}

TEST_F(EngineTest, MultiRowInsertIsAtomic) {
  CreateLfnTable();
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('x', 0)");
  // Second row collides -> whole statement rolls back.
  auto s = TryExec("INSERT INTO t_lfn (name, ref) VALUES ('y', 0), ('x', 0)");
  EXPECT_EQ(s.code(), ErrorCode::kAlreadyExists);
  ResultSet rs = Exec("SELECT COUNT(*) FROM t_lfn");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 1);
}

TEST_F(EngineTest, UpdateWithDeltaAndWhere) {
  CreateLfnTable();
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('r', 5)");
  ResultSet rs = Exec("UPDATE t_lfn SET ref = ref + 1 WHERE name = 'r'");
  EXPECT_EQ(rs.affected, 1u);
  rs = Exec("SELECT ref FROM t_lfn WHERE name = 'r'");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 6);
  Exec("UPDATE t_lfn SET ref = ref - 2 WHERE name = 'r'");
  rs = Exec("SELECT ref FROM t_lfn WHERE name = 'r'");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 4);
}

TEST_F(EngineTest, DeleteByPredicate) {
  CreateLfnTable();
  for (int i = 0; i < 10; ++i) {
    Exec("INSERT INTO t_lfn (name, ref) VALUES (?, ?)",
         {Value::String("n" + std::to_string(i)), Value::Int(i)});
  }
  ResultSet rs = Exec("DELETE FROM t_lfn WHERE ref >= 5");
  EXPECT_EQ(rs.affected, 5u);
  rs = Exec("SELECT COUNT(*) FROM t_lfn");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 5);
}

TEST_F(EngineTest, TwoWayJoinThroughIndexes) {
  CreateLfnTable();
  Exec("CREATE TABLE t_map (lfn_id INT NOT NULL, pfn_id INT NOT NULL)");
  Exec("CREATE INDEX idx_map_lfn ON t_map (lfn_id)");
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('file1', 2)");
  Exec("INSERT INTO t_map (lfn_id, pfn_id) VALUES (1, 100), (1, 101)");
  ResultSet rs = Exec(
      "SELECT t_map.pfn_id FROM t_lfn JOIN t_map ON t_lfn.id = t_map.lfn_id"
      " WHERE t_lfn.name = 'file1'");
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.at(0, 0).AsInt(), 100);
  EXPECT_EQ(rs.at(1, 0).AsInt(), 101);
}

TEST_F(EngineTest, ThreeWayJoinLikeLrcQuery) {
  // The exact query shape the LRC issues for replica lookups.
  CreateLfnTable();
  Exec("CREATE TABLE t_pfn (id INT AUTO_INCREMENT PRIMARY KEY,"
       " name VARCHAR(250) NOT NULL, ref INT)");
  Exec("CREATE UNIQUE INDEX idx_pfn_name ON t_pfn (name)");
  Exec("CREATE TABLE t_map (lfn_id INT NOT NULL, pfn_id INT NOT NULL)");
  Exec("CREATE INDEX idx_map_lfn ON t_map (lfn_id)");
  Exec("CREATE INDEX idx_map_pfn ON t_map (pfn_id)");
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('lfn1', 2)");
  Exec("INSERT INTO t_pfn (name, ref) VALUES ('pfnA', 1), ('pfnB', 1)");
  Exec("INSERT INTO t_map (lfn_id, pfn_id) VALUES (1, 1), (1, 2)");
  ResultSet rs = Exec(
      "SELECT t_pfn.name FROM t_lfn"
      " JOIN t_map ON t_lfn.id = t_map.lfn_id"
      " JOIN t_pfn ON t_map.pfn_id = t_pfn.id"
      " WHERE t_lfn.name = 'lfn1'");
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.at(0, 0).AsString(), "pfnA");
  EXPECT_EQ(rs.at(1, 0).AsString(), "pfnB");
}

TEST_F(EngineTest, LikePredicate) {
  CreateLfnTable();
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('lfn://exp/run-001/f1', 0),"
       " ('lfn://exp/run-001/f2', 0), ('lfn://exp/run-002/f1', 0)");
  ResultSet rs = Exec("SELECT name FROM t_lfn WHERE name LIKE '%run-001%'");
  EXPECT_EQ(rs.size(), 2u);
  rs = Exec("SELECT name FROM t_lfn WHERE name LIKE 'lfn://exp/run-00_/f1'");
  EXPECT_EQ(rs.size(), 2u);
}

TEST_F(EngineTest, LimitStopsEarly) {
  CreateLfnTable();
  for (int i = 0; i < 20; ++i) {
    Exec("INSERT INTO t_lfn (name, ref) VALUES (?, 0)",
         {Value::String("n" + std::to_string(i))});
  }
  ResultSet rs = Exec("SELECT name FROM t_lfn LIMIT 5");
  EXPECT_EQ(rs.size(), 5u);
}

TEST_F(EngineTest, CountStar) {
  CreateLfnTable();
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('a', 0), ('b', 0)");
  ResultSet rs = Exec("SELECT COUNT(*) FROM t_lfn");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 2);
  rs = Exec("SELECT COUNT(*) FROM t_lfn WHERE name = 'missing'");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 0);
}

TEST_F(EngineTest, TransactionCommit) {
  CreateLfnTable();
  Exec("BEGIN");
  EXPECT_TRUE(session_.in_transaction());
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('txn', 0)");
  Exec("COMMIT");
  EXPECT_FALSE(session_.in_transaction());
  ResultSet rs = Exec("SELECT COUNT(*) FROM t_lfn");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 1);
}

TEST_F(EngineTest, TransactionRollbackUndoesEverything) {
  CreateLfnTable();
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('keep', 1)");
  Exec("BEGIN");
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('drop1', 0)");
  Exec("UPDATE t_lfn SET ref = ref + 10 WHERE name = 'keep'");
  Exec("DELETE FROM t_lfn WHERE name = 'keep'");
  Exec("ROLLBACK");
  ResultSet rs = Exec("SELECT name, ref FROM t_lfn");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsString(), "keep");
  EXPECT_EQ(rs.at(0, 1).AsInt(), 1);
  // Indexes must be consistent after rollback.
  rs = Exec("SELECT COUNT(*) FROM t_lfn WHERE name = 'drop1'");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 0);
}

TEST_F(EngineTest, RollbackRestoresUniqueKeySlot) {
  CreateLfnTable();
  Exec("BEGIN");
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('ghost', 0)");
  Exec("ROLLBACK");
  // Must be insertable again.
  EXPECT_TRUE(TryExec("INSERT INTO t_lfn (name, ref) VALUES ('ghost', 0)").ok());
}

TEST_F(EngineTest, NestedBeginRejected) {
  Exec("BEGIN");
  EXPECT_FALSE(TryExec("BEGIN").ok());
  Exec("COMMIT");
}

TEST_F(EngineTest, CommitWithoutBeginRejected) {
  EXPECT_FALSE(TryExec("COMMIT").ok());
  EXPECT_FALSE(TryExec("ROLLBACK").ok());
}

TEST_F(EngineTest, OrderedIndexDrivesRangeDelete) {
  Exec("CREATE TABLE t_map (lfn_id INT, lrc_id INT, updatetime TIMESTAMP)");
  Exec("CREATE ORDERED INDEX idx_time ON t_map (updatetime)");
  for (int i = 0; i < 10; ++i) {
    Exec("INSERT INTO t_map (lfn_id, lrc_id, updatetime) VALUES (?, 1, ?)",
         {Value::Int(i), Value::Timestamp(i * 1000)});
  }
  ResultSet rs = Exec("DELETE FROM t_map WHERE updatetime < ?",
                      {Value::Timestamp(5000)});
  EXPECT_EQ(rs.affected, 5u);
  rs = Exec("SELECT COUNT(*) FROM t_map");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 5);
}

TEST_F(EngineTest, SelectFromMissingTableFails) {
  auto s = TryExec("SELECT * FROM nope");
  EXPECT_EQ(s.code(), ErrorCode::kDatabase);
}

TEST_F(EngineTest, AmbiguousColumnRejected) {
  Exec("CREATE TABLE a (id INT, v INT)");
  Exec("CREATE TABLE b (id INT, w INT)");
  Exec("INSERT INTO a (id, v) VALUES (1, 1)");
  Exec("INSERT INTO b (id, w) VALUES (1, 2)");
  auto s = TryExec("SELECT id FROM a JOIN b ON a.id = b.id");
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

TEST_F(EngineTest, VacuumThroughSql) {
  db_.SetDurableFlush(false);
  Exec("CREATE TABLE t (id INT)");
  Exec("INSERT INTO t (id) VALUES (1), (2), (3)");
  Exec("DELETE FROM t WHERE id >= 2");
  Exec("VACUUM t");
  ResultSet rs = Exec("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 1);
}

TEST_F(EngineTest, NullComparisonsAreNotTrue) {
  Exec("CREATE TABLE t (id INT, v INT)");
  Exec("INSERT INTO t (id, v) VALUES (1, NULL), (2, 5)");
  ResultSet rs = Exec("SELECT id FROM t WHERE v < 10");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsInt(), 2);
  rs = Exec("SELECT id FROM t WHERE v != 5");
  EXPECT_EQ(rs.size(), 0u);
}


TEST_F(EngineTest, OrderByAscAndDesc) {
  CreateLfnTable();
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('b', 2), ('a', 3), ('c', 1)");
  ResultSet rs = Exec("SELECT name FROM t_lfn ORDER BY name");
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs.at(0, 0).AsString(), "a");
  EXPECT_EQ(rs.at(2, 0).AsString(), "c");
  rs = Exec("SELECT name FROM t_lfn ORDER BY ref DESC");
  EXPECT_EQ(rs.at(0, 0).AsString(), "a");   // ref 3
  EXPECT_EQ(rs.at(2, 0).AsString(), "c");   // ref 1
}

TEST_F(EngineTest, OrderByWithLimitAndOffset) {
  CreateLfnTable();
  for (int i = 0; i < 10; ++i) {
    Exec("INSERT INTO t_lfn (name, ref) VALUES (?, ?)",
         {Value::String("n" + std::to_string(i)), Value::Int(i)});
  }
  ResultSet rs = Exec("SELECT ref FROM t_lfn ORDER BY ref LIMIT 3 OFFSET 4");
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs.at(0, 0).AsInt(), 4);
  EXPECT_EQ(rs.at(2, 0).AsInt(), 6);
}

TEST_F(EngineTest, OffsetWithoutOrder) {
  CreateLfnTable();
  for (int i = 0; i < 5; ++i) {
    Exec("INSERT INTO t_lfn (name, ref) VALUES (?, 0)",
         {Value::String("o" + std::to_string(i))});
  }
  ResultSet rs = Exec("SELECT name FROM t_lfn OFFSET 3");
  EXPECT_EQ(rs.size(), 2u);
  rs = Exec("SELECT name FROM t_lfn LIMIT 2 OFFSET 1");
  EXPECT_EQ(rs.size(), 2u);
  rs = Exec("SELECT name FROM t_lfn OFFSET 99");
  EXPECT_EQ(rs.size(), 0u);
}

TEST_F(EngineTest, OrderBySortsNumbersNotLexically) {
  CreateLfnTable();
  Exec("INSERT INTO t_lfn (name, ref) VALUES ('x', 10), ('y', 9), ('z', 100)");
  ResultSet rs = Exec("SELECT ref FROM t_lfn ORDER BY ref");
  EXPECT_EQ(rs.at(0, 0).AsInt(), 9);
  EXPECT_EQ(rs.at(1, 0).AsInt(), 10);
  EXPECT_EQ(rs.at(2, 0).AsInt(), 100);
}

TEST_F(EngineTest, OrderByUnknownColumnFails) {
  CreateLfnTable();
  EXPECT_FALSE(TryExec("SELECT name FROM t_lfn ORDER BY nope").ok());
}

}  // namespace
}  // namespace sql
