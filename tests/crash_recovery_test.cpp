// Deterministic crash matrix for the recovery WAL.
//
// A seeded workload of single-statement transactions runs through the
// full dbapi/sql/rdb stack against a WAL-recovery database, recording
// the WAL length and a reference-model snapshot after every commit.
// Then, for every commit boundary (and several intra-record offsets),
// the test simulates a crash by truncating a copy of the log at that
// byte, reopens a fresh database over the copy, replays, and asserts
// the recovered state equals exactly the committed prefix: no lost
// transaction, no partial transaction, exactly-once application.
//
// Environment knobs (the scripts/check.sh crash gate turns them up):
//   RLS_CRASH_TXNS   workload size      (default 120)
//   RLS_CRASH_SEED   workload seed      (default 42)
//   RLS_CRASH_GROUP  1 = run the whole matrix with WAL group commit
//                    enabled (batched appends; scripts/crash_matrix.sh
//                    runs both modes)
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dbapi/dbapi.h"
#include "rdb/storage_fault.h"

namespace rls {
namespace {

using rlscommon::Status;

// key -> (id, value): what a correct database holds after a prefix of
// the workload. Mirrors the kv table's unique-key semantics.
using Model = std::map<std::string, std::pair<int64_t, int64_t>>;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value && *value ? std::strtoull(value, nullptr, 10) : fallback;
}

std::string TestDir() {
  return ::testing::TempDir() + "/rls_crash_" + std::to_string(::getpid());
}

void RemoveDbFiles(const std::string& wal_path) {
  ::unlink(wal_path.c_str());
  ::unlink((wal_path + ".ckpt").c_str());
  ::unlink((wal_path + ".ckpt.tmp").c_str());
}

bool CopyFile(const std::string& from, const std::string& to) {
  int in = ::open(from.c_str(), O_RDONLY);
  if (in < 0) return false;
  int out = ::open(to.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (out < 0) {
    ::close(in);
    return false;
  }
  char buf[1 << 16];
  ssize_t n;
  bool ok = true;
  while ((n = ::read(in, buf, sizeof(buf))) > 0) {
    if (::write(out, buf, static_cast<std::size_t>(n)) != n) {
      ok = false;
      break;
    }
  }
  ::close(in);
  ::close(out);
  return ok && n == 0;
}

rdb::BackendProfile RecoveryProfile(uint64_t recycle_bytes = 0) {
  rdb::BackendProfile profile = rdb::BackendProfile::MySQL();
  profile.wal_recovery = true;
  // With RLS_CRASH_GROUP=1 every commit goes through the group-commit
  // leader/batch path (batches of one for this single-threaded
  // workload): the whole matrix must hold in both WAL modes.
  profile.wal_group_commit = EnvU64("RLS_CRASH_GROUP", 0) != 0;
  if (recycle_bytes) profile.wal_recycle_bytes = recycle_bytes;
  return profile;
}

Status CreateKvSchema(dbapi::Connection& conn) {
  sql::ResultSet rs;
  Status s = conn.Execute(
      "CREATE TABLE kv (id INT AUTO_INCREMENT PRIMARY KEY,"
      " key VARCHAR(100) NOT NULL, value INT)",
      &rs);
  if (!s.ok()) return s;
  return conn.Execute("CREATE UNIQUE INDEX idx_kv_key ON kv (key)", &rs);
}

/// One step of the seeded workload: a single autocommitted statement.
/// Returns false if the step attempted nothing (e.g. delete of an
/// absent key). When a statement ran, `*ok` reports whether it
/// committed; the model is updated only on success, so after an
/// injected crash the model keeps tracking the committed prefix.
bool WorkloadStep(dbapi::Connection& conn, rlscommon::Xoshiro256& rng,
                  Model* model, bool* ok) {
  const std::string key = "k" + std::to_string(rng.Below(40));
  const int64_t value = static_cast<int64_t>(rng.Below(100000));
  sql::ResultSet rs;
  switch (rng.Below(4)) {
    case 0:
    case 1: {  // insert (fresh keys only; duplicates are a no-op step)
      if (model->count(key)) return false;
      *ok = conn.Execute("INSERT INTO kv (key, value) VALUES (?, ?)",
                         {rdb::Value::String(key), rdb::Value::Int(value)}, &rs)
                .ok();
      if (*ok) (*model)[key] = {conn.LastInsertId(), value};
      return true;
    }
    case 2: {  // update
      if (!model->count(key)) return false;
      *ok = conn.Execute("UPDATE kv SET value = ? WHERE key = ?",
                         {rdb::Value::Int(value), rdb::Value::String(key)}, &rs)
                .ok();
      if (*ok) (*model)[key].second = value;
      return true;
    }
    default: {  // delete
      if (!model->count(key)) return false;
      *ok = conn.Execute("DELETE FROM kv WHERE key = ?",
                         {rdb::Value::String(key)}, &rs)
                .ok();
      if (*ok) model->erase(key);
      return true;
    }
  }
}

/// Reads the kv table back into Model form (ids included, so replay
/// must reproduce auto-increment assignment exactly).
Model DumpTable(rdb::Database* db) {
  Model out;
  const rdb::Table* table = db->GetTable("kv");
  if (!table) return out;
  table->Scan([&](rdb::Rid rid, rdb::SlotState st) {
    if (st != rdb::SlotState::kLive) return true;
    rdb::Row row;
    if (table->ReadRow(rid, &row).ok()) {
      out[row[1].AsString()] = {row[0].AsInt(), row[2].AsInt()};
    }
    return true;
  });
  return out;
}

/// Simulates a reboot: opens a fresh environment over `wal_path`,
/// recreates the schema (DDL is not logged) and replays the log.
/// Returns the recovered database (owned by `env`).
rdb::Database* Reopen(dbapi::Environment& env, const std::string& dsn,
                      const std::string& wal_path,
                      uint64_t recycle_bytes = 0) {
  EXPECT_TRUE(env.CreateDatabaseWithProfile(dsn, RecoveryProfile(recycle_bytes),
                                            wal_path)
                  .ok());
  std::unique_ptr<dbapi::Connection> conn;
  EXPECT_TRUE(dbapi::Connection::Open(env, dsn, &conn).ok());
  EXPECT_TRUE(CreateKvSchema(*conn).ok());
  rdb::Database* db = env.Find(dsn);
  EXPECT_NE(db, nullptr);
  EXPECT_TRUE(db->Recover().ok());
  return db;
}

/// The workload trace: one entry per committed transaction.
struct Boundary {
  uint64_t wal_bytes = 0;  // WAL length right after this commit
  Model model;             // reference state at this point
};

/// Runs the seeded workload against a live database and records every
/// commit boundary. `recycle_bytes` 0 = never wrap during the run.
std::vector<Boundary> RunWorkload(dbapi::Environment& env,
                                  const std::string& dsn,
                                  const std::string& wal_path, uint64_t txns,
                                  uint64_t seed, uint64_t recycle_bytes = 0) {
  EXPECT_TRUE(env.CreateDatabaseWithProfile(dsn, RecoveryProfile(recycle_bytes),
                                            wal_path)
                  .ok());
  std::unique_ptr<dbapi::Connection> conn;
  EXPECT_TRUE(dbapi::Connection::Open(env, dsn, &conn).ok());
  EXPECT_TRUE(CreateKvSchema(*conn).ok());
  rdb::Database* db = env.Find(dsn);
  EXPECT_TRUE(db->Recover().ok());

  rlscommon::Xoshiro256 rng(seed);
  Model model;
  std::vector<Boundary> boundaries;
  boundaries.push_back({db->wal().file_bytes(), model});  // empty prefix
  uint64_t committed = 0;
  while (committed < txns) {
    bool ok = false;
    if (WorkloadStep(*conn, rng, &model, &ok)) {
      EXPECT_TRUE(ok) << "workload statement failed at txn " << committed;
      ++committed;
      boundaries.push_back({db->wal().file_bytes(), model});
    }
  }
  return boundaries;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TestDir();
    ::mkdir(dir_.c_str(), 0755);
  }

  std::string dir_;
  int next_dsn_ = 0;

  std::string NewDsn() {
    return "mysql://crash" + std::to_string(::getpid()) + "_" +
           std::to_string(next_dsn_++);
  }
};

// The tentpole acceptance test: crash at EVERY committed-transaction
// boundary, reopen, replay, and require the recovered state to equal
// the committed prefix exactly.
TEST_F(CrashRecoveryTest, EveryBoundaryRecoversCommittedPrefix) {
  const uint64_t txns = EnvU64("RLS_CRASH_TXNS", 120);
  const uint64_t seed = EnvU64("RLS_CRASH_SEED", 42);
  const std::string wal = dir_ + "/matrix.wal";
  RemoveDbFiles(wal);

  dbapi::Environment live_env;
  const auto boundaries =
      RunWorkload(live_env, NewDsn(), wal, txns, seed);
  ASSERT_EQ(boundaries.size(), txns + 1);

  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    const std::string cut_wal =
        dir_ + "/cut_" + std::to_string(i) + ".wal";
    RemoveDbFiles(cut_wal);
    ASSERT_TRUE(CopyFile(wal, cut_wal)) << "cut " << i;
    ASSERT_EQ(::truncate(cut_wal.c_str(),
                         static_cast<off_t>(boundaries[i].wal_bytes)),
              0);
    dbapi::Environment env;
    rdb::Database* db = Reopen(env, NewDsn(), cut_wal);
    EXPECT_EQ(DumpTable(db), boundaries[i].model) << "boundary " << i;
    EXPECT_EQ(db->recovery_stats().recovered_txns, i) << "boundary " << i;
    EXPECT_EQ(db->recovery_stats().torn_tail_bytes, 0u) << "boundary " << i;
    RemoveDbFiles(cut_wal);
  }
  RemoveDbFiles(wal);
}

// Cuts that land INSIDE a frame must recover to the previous boundary:
// the torn transaction is dropped whole, never applied partially.
TEST_F(CrashRecoveryTest, IntraRecordCutsDropTheTornTransactionWhole) {
  const uint64_t txns = EnvU64("RLS_CRASH_TXNS", 120);
  const uint64_t seed = EnvU64("RLS_CRASH_SEED", 42);
  const std::string wal = dir_ + "/intra.wal";
  RemoveDbFiles(wal);

  dbapi::Environment live_env;
  const auto boundaries =
      RunWorkload(live_env, NewDsn(), wal, txns, seed);

  // >= 3 intra-record cut points spread over the log, plus the very
  // first frame's header (cut after 1 byte of frame 0).
  const std::size_t picks[] = {1, boundaries.size() / 2, boundaries.size() - 1};
  int cuts_tested = 0;
  for (std::size_t i : picks) {
    const uint64_t lo = boundaries[i - 1].wal_bytes;
    const uint64_t hi = boundaries[i].wal_bytes;
    ASSERT_GT(hi, lo);
    for (uint64_t cut : {lo + 1, (lo + hi) / 2, hi - 1}) {
      if (cut <= lo || cut >= hi) continue;
      const std::string cut_wal = dir_ + "/intra_" + std::to_string(i) + "_" +
                                  std::to_string(cut) + ".wal";
      RemoveDbFiles(cut_wal);
      ASSERT_TRUE(CopyFile(wal, cut_wal));
      ASSERT_EQ(::truncate(cut_wal.c_str(), static_cast<off_t>(cut)), 0);
      dbapi::Environment env;
      rdb::Database* db = Reopen(env, NewDsn(), cut_wal);
      EXPECT_EQ(DumpTable(db), boundaries[i - 1].model)
          << "cut " << cut << " in txn " << i;
      EXPECT_EQ(db->recovery_stats().recovered_txns, i - 1);
      EXPECT_EQ(db->recovery_stats().torn_tail_bytes, cut - lo);
      ++cuts_tested;
      RemoveDbFiles(cut_wal);
    }
  }
  EXPECT_GE(cuts_tested, 3);
  RemoveDbFiles(wal);
}

// The injector's CrashAtByte must be equivalent to truncating at that
// byte: what the "dead" process left on disk recovers to the same
// state a file-level cut would.
TEST_F(CrashRecoveryTest, InjectedCrashMatchesFileTruncation) {
  const uint64_t seed = EnvU64("RLS_CRASH_SEED", 42);
  const std::string wal = dir_ + "/inject.wal";
  RemoveDbFiles(wal);

  // First pass (no faults) to learn the boundary offsets.
  dbapi::Environment probe_env;
  const auto boundaries =
      RunWorkload(probe_env, NewDsn(), wal, 40, seed);
  ASSERT_GE(boundaries.size(), 21u);
  // Crash 7 bytes into the 21st transaction's frame.
  const uint64_t crash_at = boundaries[20].wal_bytes + 7;
  RemoveDbFiles(wal);

  rdb::StorageFaultInjector fault(seed);
  fault.CrashAtByte(crash_at);
  dbapi::Environment env;
  const std::string dsn = NewDsn();
  ASSERT_TRUE(
      env.CreateDatabaseWithProfile(dsn, RecoveryProfile(), wal, &fault).ok());
  std::unique_ptr<dbapi::Connection> conn;
  ASSERT_TRUE(dbapi::Connection::Open(env, dsn, &conn).ok());
  ASSERT_TRUE(CreateKvSchema(*conn).ok());
  ASSERT_TRUE(env.Find(dsn)->Recover().ok());

  // Re-run the identical workload; the commit that crosses crash_at
  // fails with DATA_LOSS and every commit after it fails fast.
  rlscommon::Xoshiro256 rng(seed);
  Model model;
  uint64_t committed = 0;
  bool crashed = false;
  for (int step = 0; step < 4096 && !crashed; ++step) {
    bool ok = false;
    if (!WorkloadStep(*conn, rng, &model, &ok)) continue;
    if (ok) {
      ++committed;
    } else {
      crashed = true;  // this step's commit hit the crash point
      EXPECT_TRUE(env.Find(dsn)->wal().poisoned());
    }
  }
  ASSERT_TRUE(crashed);
  EXPECT_EQ(committed, 20u);
  EXPECT_EQ(model, boundaries[20].model);

  // "Reboot" over what the dead process left behind.
  dbapi::Environment reboot_env;
  rdb::Database* db = Reopen(reboot_env, NewDsn(), wal);
  EXPECT_EQ(DumpTable(db), boundaries[20].model);
  EXPECT_EQ(db->recovery_stats().recovered_txns, 20u);
  EXPECT_EQ(db->recovery_stats().torn_tail_bytes, 7u);
  RemoveDbFiles(wal);
}

// Recovery must survive a checkpoint wrap: state = sidecar snapshot +
// frames beyond it, and the matrix property still holds afterwards.
TEST_F(CrashRecoveryTest, RecoversAcrossCheckpointWrap) {
  const uint64_t seed = EnvU64("RLS_CRASH_SEED", 42);
  const std::string wal = dir_ + "/wrap.wal";
  RemoveDbFiles(wal);

  // A tiny recycle threshold forces several checkpoint wraps.
  dbapi::Environment live_env;
  const std::string dsn = NewDsn();
  const auto boundaries =
      RunWorkload(live_env, dsn, wal, 200, seed, /*recycle_bytes=*/2048);
  ASSERT_GE(live_env.Find(dsn)->wal().checkpoints(), 1u);

  dbapi::Environment env;
  rdb::Database* db = Reopen(env, NewDsn(), wal, /*recycle_bytes=*/2048);
  EXPECT_EQ(DumpTable(db), boundaries.back().model);
  EXPECT_GT(db->recovery_stats().snapshot_rows, 0u);
  RemoveDbFiles(wal);
}

// Double replay is a no-op, and commits after recovery continue the
// LSN sequence so a further reopen still recovers everything.
TEST_F(CrashRecoveryTest, DoubleReplayIsNoOpAndCommitsContinue) {
  const uint64_t seed = EnvU64("RLS_CRASH_SEED", 42);
  const std::string wal = dir_ + "/double.wal";
  RemoveDbFiles(wal);

  dbapi::Environment live_env;
  const auto boundaries =
      RunWorkload(live_env, NewDsn(), wal, 30, seed);

  dbapi::Environment env;
  const std::string dsn = NewDsn();
  rdb::Database* db = Reopen(env, dsn, wal);
  const Model recovered = DumpTable(db);
  EXPECT_EQ(recovered, boundaries.back().model);
  const uint64_t lsn_after = db->wal().last_lsn();

  // Second Recover: exactly-once — nothing reapplied, nothing changed.
  ASSERT_TRUE(db->Recover().ok());
  EXPECT_EQ(DumpTable(db), recovered);
  EXPECT_EQ(db->wal().last_lsn(), lsn_after);

  // Replay-then-commit: new transactions extend the log, and another
  // reboot recovers the full combined state.
  std::unique_ptr<dbapi::Connection> conn;
  ASSERT_TRUE(dbapi::Connection::Open(env, dsn, &conn).ok());
  sql::ResultSet rs;
  ASSERT_TRUE(conn->Execute("INSERT INTO kv (key, value) VALUES (?, ?)",
                            {rdb::Value::String("post-recovery"),
                             rdb::Value::Int(777)},
                            &rs)
                  .ok());
  EXPECT_GT(db->wal().last_lsn(), lsn_after);
  Model extended = recovered;
  extended["post-recovery"] = {conn->LastInsertId(), 777};

  dbapi::Environment reboot_env;
  rdb::Database* db2 = Reopen(reboot_env, NewDsn(), wal);
  EXPECT_EQ(DumpTable(db2), extended);
  RemoveDbFiles(wal);
}

// Group commit batches several transactions into ONE contiguous
// append. A power cut landing inside that batch must still recover a
// whole-transaction prefix: complete frames from the batch apply,
// the torn frame is dropped whole, frames after the tear are gone.
TEST_F(CrashRecoveryTest, GroupedBatchCutsRecoverWholeTransactionPrefix) {
  const std::string wal = dir_ + "/group.wal";
  RemoveDbFiles(wal);

  rdb::BackendProfile profile = RecoveryProfile();
  profile.wal_group_commit = true;
  profile.wal_group_max_commits = 4;
  profile.wal_group_max_wait = std::chrono::microseconds(2'000'000);

  dbapi::Environment live_env;
  const std::string dsn = NewDsn();
  ASSERT_TRUE(live_env.CreateDatabaseWithProfile(dsn, profile, wal).ok());
  std::unique_ptr<dbapi::Connection> schema_conn;
  ASSERT_TRUE(dbapi::Connection::Open(live_env, dsn, &schema_conn).ok());
  ASSERT_TRUE(CreateKvSchema(*schema_conn).ok());
  rdb::Database* db = live_env.Find(dsn);
  ASSERT_TRUE(db->Recover().ok());
  const uint64_t before = db->wal().file_bytes();

  // 4 committers with a linger wide enough to collect all of them:
  // exactly one batch, one sync. Identical payload shapes give
  // identical frame sizes, so every intra-batch offset is computable.
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&live_env, &dsn, i] {
      std::unique_ptr<dbapi::Connection> conn;
      ASSERT_TRUE(dbapi::Connection::Open(live_env, dsn, &conn).ok());
      sql::ResultSet rs;
      EXPECT_TRUE(conn->Execute("INSERT INTO kv (key, value) VALUES (?, ?)",
                                {rdb::Value::String("gc" + std::to_string(i)),
                                 rdb::Value::Int(1000 + i)},
                                &rs)
                      .ok());
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t after = db->wal().file_bytes();
  EXPECT_EQ(db->wal().group_commits(), 1u);
  const uint64_t frame = (after - before) / 4;
  ASSERT_EQ(frame * 4, after - before) << "frames are not equal-sized";

  // Cut between frames (offset 0) and inside each frame.
  for (uint64_t k = 0; k < 4; ++k) {
    for (uint64_t d : {uint64_t{0}, uint64_t{1}, frame / 2, frame - 1}) {
      const uint64_t cut = before + k * frame + d;
      const std::string cut_wal = dir_ + "/group_" + std::to_string(k) + "_" +
                                  std::to_string(d) + ".wal";
      RemoveDbFiles(cut_wal);
      ASSERT_TRUE(CopyFile(wal, cut_wal));
      ASSERT_EQ(::truncate(cut_wal.c_str(), static_cast<off_t>(cut)), 0);
      dbapi::Environment env;
      rdb::Database* rec = Reopen(env, NewDsn(), cut_wal);
      const Model recovered = DumpTable(rec);
      // Exactly the k complete frames before the cut applied — commit
      // (= LSN) order, so replayed auto-increment ids are 1..k.
      EXPECT_EQ(recovered.size(), k) << "cut " << cut;
      EXPECT_EQ(rec->recovery_stats().recovered_txns, k) << "cut " << cut;
      EXPECT_EQ(rec->recovery_stats().torn_tail_bytes, d) << "cut " << cut;
      std::vector<int64_t> ids;
      for (const auto& [key, row] : recovered) {
        EXPECT_EQ(key.rfind("gc", 0), 0u) << key;
        ids.push_back(row.first);
      }
      std::sort(ids.begin(), ids.end());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(ids[i], static_cast<int64_t>(i + 1)) << "cut " << cut;
      }
      RemoveDbFiles(cut_wal);
    }
  }
  RemoveDbFiles(wal);
}

// The LRC bulk path logs a whole batch as ONE multi-row transaction:
// a cut anywhere inside that frame must drop the entire batch, never
// a partial one (all-or-nothing at the frame level).
TEST_F(CrashRecoveryTest, BulkTransactionIsAllOrNothingAcrossCrash) {
  const std::string wal = dir_ + "/bulk.wal";
  RemoveDbFiles(wal);

  dbapi::Environment live_env;
  const std::string dsn = NewDsn();
  ASSERT_TRUE(
      live_env.CreateDatabaseWithProfile(dsn, RecoveryProfile(), wal).ok());
  std::unique_ptr<dbapi::Connection> conn;
  ASSERT_TRUE(dbapi::Connection::Open(live_env, dsn, &conn).ok());
  ASSERT_TRUE(CreateKvSchema(*conn).ok());
  rdb::Database* db = live_env.Find(dsn);
  ASSERT_TRUE(db->Recover().ok());

  // One durable anchor txn, then a 10-row batch in a single explicit
  // transaction (the shape LrcStore::AddMappings logs).
  sql::ResultSet rs;
  ASSERT_TRUE(conn->Execute("INSERT INTO kv (key, value) VALUES (?, ?)",
                            {rdb::Value::String("anchor"), rdb::Value::Int(1)},
                            &rs)
                  .ok());
  const uint64_t anchor_bytes = db->wal().file_bytes();
  ASSERT_TRUE(conn->Begin().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(conn->Execute("INSERT INTO kv (key, value) VALUES (?, ?)",
                              {rdb::Value::String("b" + std::to_string(i)),
                               rdb::Value::Int(i)},
                              &rs)
                    .ok());
  }
  ASSERT_TRUE(conn->Commit().ok());
  const uint64_t batch_bytes = db->wal().file_bytes();
  ASSERT_GT(batch_bytes, anchor_bytes);

  for (uint64_t cut : {anchor_bytes + 1, (anchor_bytes + batch_bytes) / 2,
                       batch_bytes - 1, batch_bytes}) {
    const std::string cut_wal = dir_ + "/bulk_" + std::to_string(cut) + ".wal";
    RemoveDbFiles(cut_wal);
    ASSERT_TRUE(CopyFile(wal, cut_wal));
    ASSERT_EQ(::truncate(cut_wal.c_str(), static_cast<off_t>(cut)), 0);
    dbapi::Environment env;
    rdb::Database* rec = Reopen(env, NewDsn(), cut_wal);
    const Model recovered = DumpTable(rec);
    if (cut == batch_bytes) {
      EXPECT_EQ(recovered.size(), 11u) << "cut " << cut;  // anchor + batch
    } else {
      EXPECT_EQ(recovered.size(), 1u) << "cut " << cut;  // anchor only
      EXPECT_EQ(recovered.count("anchor"), 1u);
    }
    RemoveDbFiles(cut_wal);
  }
  RemoveDbFiles(wal);
}

}  // namespace
}  // namespace rls
