#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace sql {
namespace {

Statement MustParse(const std::string& text) {
  Statement stmt;
  auto s = Parse(text, &stmt);
  EXPECT_TRUE(s.ok()) << text << " -> " << s.ToString();
  return stmt;
}

TEST(LexerTest, TokenKinds) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("SELECT 'it''s' 42 3.5 ? >= t.c", &tokens).ok());
  ASSERT_EQ(tokens.size(), 10u);  // incl. end
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].int_value, 42);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 3.5);
  EXPECT_EQ(tokens[4].kind, TokenKind::kParam);
  EXPECT_EQ(tokens[5].text, ">=");
}

TEST(LexerTest, RejectsUnterminatedString) {
  std::vector<Token> tokens;
  EXPECT_FALSE(Tokenize("SELECT 'oops", &tokens).ok());
}

TEST(LexerTest, RejectsStrayCharacter) {
  std::vector<Token> tokens;
  EXPECT_FALSE(Tokenize("SELECT @", &tokens).ok());
}

TEST(LexerTest, NegativeNumbers) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("-5 -2.5", &tokens).ok());
  EXPECT_EQ(tokens[0].int_value, -5);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, -2.5);
}

TEST(ParserTest, SelectStarWithWhere) {
  auto stmt = MustParse("SELECT * FROM t_lfn WHERE name = ?");
  auto& sel = std::get<SelectStmt>(stmt);
  EXPECT_TRUE(sel.star);
  EXPECT_EQ(sel.from.table, "t_lfn");
  ASSERT_EQ(sel.where.size(), 1u);
  EXPECT_EQ(sel.where[0].op, CmpOp::kEq);
  EXPECT_EQ(sel.where[0].rhs.kind, Operand::Kind::kParam);
}

TEST(ParserTest, SelectWithJoins) {
  auto stmt = MustParse(
      "SELECT t_pfn.name FROM t_lfn"
      " JOIN t_map ON t_lfn.id = t_map.lfn_id"
      " JOIN t_pfn ON t_map.pfn_id = t_pfn.id"
      " WHERE t_lfn.name = 'x'");
  auto& sel = std::get<SelectStmt>(stmt);
  ASSERT_EQ(sel.joins.size(), 2u);
  EXPECT_EQ(sel.joins[0].table.table, "t_map");
  ASSERT_EQ(sel.columns.size(), 1u);
  EXPECT_EQ(sel.columns[0].table, "t_pfn");
  EXPECT_EQ(sel.columns[0].column, "name");
}

TEST(ParserTest, SelectCountStar) {
  auto stmt = MustParse("SELECT COUNT(*) FROM t_map WHERE lfn_id = 3");
  auto& sel = std::get<SelectStmt>(stmt);
  EXPECT_TRUE(sel.count_star);
}

TEST(ParserTest, SelectWithLikeAndLimit) {
  auto stmt = MustParse("SELECT name FROM t_lfn WHERE name LIKE '%run%' LIMIT 10");
  auto& sel = std::get<SelectStmt>(stmt);
  ASSERT_EQ(sel.where.size(), 1u);
  EXPECT_EQ(sel.where[0].op, CmpOp::kLike);
  ASSERT_TRUE(sel.limit.has_value());
  EXPECT_EQ(*sel.limit, 10u);
}

TEST(ParserTest, SelectWithAlias) {
  auto stmt = MustParse("SELECT a.name FROM t_lfn AS a WHERE a.id = 1");
  auto& sel = std::get<SelectStmt>(stmt);
  EXPECT_EQ(sel.from.effective_alias(), "a");
}

TEST(ParserTest, RejectsNonEquiJoin) {
  Statement stmt;
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b ON a.x < b.y", &stmt).ok());
}

TEST(ParserTest, InsertWithColumns) {
  auto stmt = MustParse("INSERT INTO t_lfn (name, ref) VALUES (?, 1)");
  auto& ins = std::get<InsertStmt>(stmt);
  EXPECT_EQ(ins.table, "t_lfn");
  ASSERT_EQ(ins.columns.size(), 2u);
  ASSERT_EQ(ins.rows.size(), 1u);
  EXPECT_EQ(ins.rows[0][0].kind, Operand::Kind::kParam);
  EXPECT_EQ(ins.rows[0][1].literal.AsInt(), 1);
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = MustParse("INSERT INTO t (a) VALUES (1), (2), (3)");
  auto& ins = std::get<InsertStmt>(stmt);
  EXPECT_EQ(ins.rows.size(), 3u);
}

TEST(ParserTest, InsertNullLiteral) {
  auto stmt = MustParse("INSERT INTO t (a, b) VALUES (NULL, 'x')");
  auto& ins = std::get<InsertStmt>(stmt);
  EXPECT_TRUE(ins.rows[0][0].literal.is_null());
}

TEST(ParserTest, UpdateWithDelta) {
  auto stmt = MustParse("UPDATE t_lfn SET ref = ref + 1 WHERE id = ?");
  auto& upd = std::get<UpdateStmt>(stmt);
  ASSERT_EQ(upd.sets.size(), 1u);
  EXPECT_TRUE(upd.sets[0].is_delta);
  EXPECT_EQ(upd.sets[0].delta, 1);
}

TEST(ParserTest, UpdateWithNegativeDelta) {
  auto stmt = MustParse("UPDATE t_lfn SET ref = ref - 1 WHERE id = 5");
  auto& upd = std::get<UpdateStmt>(stmt);
  EXPECT_EQ(upd.sets[0].delta, -1);
}

TEST(ParserTest, UpdatePlainAssignment) {
  auto stmt = MustParse("UPDATE t SET value = ?, other = 'x' WHERE id = 1");
  auto& upd = std::get<UpdateStmt>(stmt);
  ASSERT_EQ(upd.sets.size(), 2u);
  EXPECT_FALSE(upd.sets[0].is_delta);
}

TEST(ParserTest, DeleteWithConjunction) {
  auto stmt = MustParse("DELETE FROM t_map WHERE lfn_id = ? AND pfn_id = ?");
  auto& del = std::get<DeleteStmt>(stmt);
  EXPECT_EQ(del.where.size(), 2u);
}

TEST(ParserTest, DeleteWithRangePredicate) {
  auto stmt = MustParse("DELETE FROM t_map WHERE updatetime < ?");
  auto& del = std::get<DeleteStmt>(stmt);
  ASSERT_EQ(del.where.size(), 1u);
  EXPECT_EQ(del.where[0].op, CmpOp::kLt);
}

TEST(ParserTest, CreateTableFull) {
  auto stmt = MustParse(
      "CREATE TABLE t_lfn (id INT AUTO_INCREMENT PRIMARY KEY,"
      " name VARCHAR(250) NOT NULL, ref INT, w DOUBLE, ts TIMESTAMP)");
  auto& ct = std::get<CreateTableStmt>(stmt);
  EXPECT_EQ(ct.schema.name(), "t_lfn");
  ASSERT_EQ(ct.schema.num_columns(), 5u);
  EXPECT_TRUE(ct.schema.columns()[0].auto_increment);
  EXPECT_EQ(ct.primary_key, "id");
  EXPECT_FALSE(ct.schema.columns()[1].nullable);
  EXPECT_EQ(ct.schema.columns()[1].max_length, 250u);
  EXPECT_EQ(ct.schema.columns()[3].type, rdb::ColumnType::kDouble);
  EXPECT_EQ(ct.schema.columns()[4].type, rdb::ColumnType::kTimestamp);
}

TEST(ParserTest, CreateTableMySqlDisplayWidth) {
  // The Fig. 3 schema writes int(11) / timestamp(14).
  auto stmt = MustParse("CREATE TABLE t (id INT(11), ts TIMESTAMP(14))");
  auto& ct = std::get<CreateTableStmt>(stmt);
  EXPECT_EQ(ct.schema.columns()[0].type, rdb::ColumnType::kInt);
}

TEST(ParserTest, CreateIndexVariants) {
  auto stmt = MustParse("CREATE UNIQUE INDEX idx ON t (name)");
  auto& ci = std::get<CreateIndexStmt>(stmt);
  EXPECT_TRUE(ci.unique);
  EXPECT_FALSE(ci.ordered);

  auto stmt2 = MustParse("CREATE ORDERED INDEX idx2 ON t (ts)");
  auto& ci2 = std::get<CreateIndexStmt>(stmt2);
  EXPECT_TRUE(ci2.ordered);
}

TEST(ParserTest, TxnStatements) {
  EXPECT_EQ(std::get<TxnStmt>(MustParse("BEGIN")).kind, TxnStmt::Kind::kBegin);
  EXPECT_EQ(std::get<TxnStmt>(MustParse("COMMIT")).kind, TxnStmt::Kind::kCommit);
  EXPECT_EQ(std::get<TxnStmt>(MustParse("ROLLBACK")).kind, TxnStmt::Kind::kRollback);
  EXPECT_EQ(std::get<TxnStmt>(MustParse("START TRANSACTION")).kind,
            TxnStmt::Kind::kBegin);
}

TEST(ParserTest, VacuumStatements) {
  EXPECT_EQ(std::get<VacuumStmt>(MustParse("VACUUM")).table, "");
  EXPECT_EQ(std::get<VacuumStmt>(MustParse("VACUUM t_map")).table, "t_map");
}

TEST(ParserTest, DropTable) {
  EXPECT_EQ(std::get<DropTableStmt>(MustParse("DROP TABLE t")).table, "t");
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  MustParse("SELECT * FROM t;");
}

TEST(ParserTest, RejectsTrailingGarbage) {
  Statement stmt;
  EXPECT_FALSE(Parse("SELECT * FROM t garbage more", &stmt).ok());
}

TEST(ParserTest, RejectsEmptyInput) {
  Statement stmt;
  EXPECT_FALSE(Parse("", &stmt).ok());
}

TEST(ParserTest, ParamIndexesAssignedInOrder) {
  auto stmt = MustParse("SELECT * FROM t WHERE a = ? AND b = ? AND c = ?");
  auto& sel = std::get<SelectStmt>(stmt);
  EXPECT_EQ(sel.where[0].rhs.param_index, 0u);
  EXPECT_EQ(sel.where[1].rhs.param_index, 1u);
  EXPECT_EQ(sel.where[2].rhs.param_index, 2u);
}

}  // namespace
}  // namespace sql
