// Result paging (offset/limit) through store, server and client.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "rls/client.h"
#include "rls/rls_server.h"

namespace rls {
namespace {

class PagingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    const int id = counter.fetch_add(1);
    RlsServerConfig config;
    config.address = "rls:paging" + std::to_string(id);
    config.lrc.enabled = true;
    config.lrc.dsn = "mysql://paging" + std::to_string(id);
    ASSERT_TRUE(env_.CreateDatabase(config.lrc.dsn).ok());
    server_ = std::make_unique<RlsServer>(&network_, config, &env_);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(LrcClient::Connect(&network_, config.address, {}, &client_).ok());

    // One logical name with 10 replicas; 10 names matching a glob.
    for (int r = 0; r < 10; ++r) {
      auto s = r == 0 ? client_->Create("multi", "replica-0")
                      : client_->Add("multi", "replica-" + std::to_string(r));
      ASSERT_TRUE(s.ok());
    }
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          client_->Create("wild-" + std::to_string(i), "p" + std::to_string(i)).ok());
    }
  }

  net::Network network_;
  dbapi::Environment env_;
  std::unique_ptr<RlsServer> server_;
  std::unique_ptr<LrcClient> client_;
};

TEST_F(PagingTest, QueryLimitCapsResults) {
  std::vector<std::string> targets;
  ASSERT_TRUE(client_->Query("multi", &targets, 0, 3).ok());
  EXPECT_EQ(targets.size(), 3u);
}

TEST_F(PagingTest, QueryPagesAreDisjointAndComplete) {
  std::set<std::string> all;
  for (uint32_t offset = 0; offset < 10; offset += 4) {
    std::vector<std::string> page;
    ASSERT_TRUE(client_->Query("multi", &page, offset, 4).ok());
    EXPECT_LE(page.size(), 4u);
    for (const std::string& t : page) {
      EXPECT_TRUE(all.insert(t).second) << "duplicate across pages: " << t;
    }
  }
  EXPECT_EQ(all.size(), 10u);
}

TEST_F(PagingTest, OffsetPastEndYieldsEmptyPage) {
  std::vector<std::string> page;
  ASSERT_TRUE(client_->Query("multi", &page, 100, 5).ok());
  EXPECT_TRUE(page.empty());
}

TEST_F(PagingTest, ZeroLimitMeansUnlimited) {
  std::vector<std::string> targets;
  ASSERT_TRUE(client_->Query("multi", &targets, 0, 0).ok());
  EXPECT_EQ(targets.size(), 10u);
  ASSERT_TRUE(client_->Query("multi", &targets, 6, 0).ok());
  EXPECT_EQ(targets.size(), 4u);
}

TEST_F(PagingTest, WildcardPaging) {
  std::set<std::string> all;
  for (uint32_t offset = 0; offset < 10; offset += 3) {
    std::vector<Mapping> page;
    ASSERT_TRUE(client_->WildcardQuery("wild-*", 3, &page, offset).ok());
    for (const Mapping& m : page) {
      EXPECT_TRUE(all.insert(m.logical).second);
    }
  }
  EXPECT_EQ(all.size(), 10u);
}

TEST_F(PagingTest, ReverseQueryPaging) {
  // All wild-* names map to distinct targets; multi has 10 replicas —
  // page the reverse lookup of a shared target.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_->Create("shared-" + std::to_string(i), "common-target").ok());
  }
  std::vector<std::string> page;
  ASSERT_TRUE(client_->QueryTarget("common-target", &page, 2, 2).ok());
  EXPECT_EQ(page.size(), 2u);
}

}  // namespace
}  // namespace rls
